//! # gc-safety — end-to-end reproduction pipeline
//!
//! Ties the substrates together into the paper's experiment harness:
//!
//! ```text
//! C source ──(gcsafe annotate?)──► AST ──► IR ──(optimize?)──► VM run
//!                                            │                   │
//!                                            ▼                   ▼
//!                                     asmpost codegen      block profile
//!                                            │                   │
//!                                  (peephole postprocess?)       │
//!                                            └─────── measure ◄──┘
//! ```
//!
//! [`Mode`] enumerates the paper's measurement axes; [`measure_workload`]
//! produces one table row; the `gcbench` crate prints every table.

#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock};

pub use asmpost::{AsmFunc, CostReport, Machine, PeepholeStats};
pub use cvm::{CompileOptions, ExecOutcome, ProgramIr, VmError, VmOptions};
pub use gccache::StageStats;
pub use gcprof::{
    encode_buckets, prom, HeapCensus, Histogram, ProfData, ProfHandle, PromWriter, SiteStats,
    MMU_WINDOWS_NS,
};
pub use gcsafe::Config as AnnotConfig;
pub use gctrace::{merge_tagged, Event, JsonlSink, MemorySink, Sink, TaggedSink, TraceHandle};
pub use workloads::{Scale, Workload};

/// The paper's compilation/measurement modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Mode {
    /// `-O`: optimized baseline.
    O,
    /// `-O safe`: GC-safety annotations, then full optimization.
    OSafe,
    /// `-O safe` + the peephole postprocessor.
    OSafePost,
    /// `-g`: fully debuggable code.
    G,
    /// `-g checked`: debuggable plus pointer-arithmetic checking.
    GChecked,
}

impl Mode {
    /// Display name matching the paper's column headers.
    pub fn label(self) -> &'static str {
        match self {
            Mode::O => "-O",
            Mode::OSafe => "-O, safe",
            Mode::OSafePost => "-O, safe+post",
            Mode::G => "-g",
            Mode::GChecked => "-g, checked",
        }
    }

    /// A short, space-free key for contexts where [`Mode::label`]'s
    /// punctuation would collide with a line format: flamegraph folded
    /// stacks (space-separated), Prometheus-friendly label values, file
    /// names.
    pub fn key(self) -> &'static str {
        match self {
            Mode::O => "O",
            Mode::OSafe => "O-safe",
            Mode::OSafePost => "O-safe-post",
            Mode::G => "g",
            Mode::GChecked => "g-checked",
        }
    }

    /// The compile options implementing this mode.
    pub fn compile_options(self) -> CompileOptions {
        match self {
            Mode::O => CompileOptions::optimized(),
            Mode::OSafe | Mode::OSafePost => CompileOptions::optimized_safe(),
            Mode::G => CompileOptions::debug(),
            Mode::GChecked => CompileOptions::debug_checked(),
        }
    }

    /// Whether this mode carries the paper's GC-safety guarantee: a
    /// source-reachable heap object must never be collected, even under a
    /// paranoid collector that runs at every allocation. `-O` is the one
    /// mode without it (disguised pointers may be collected under it).
    pub fn is_safe(self) -> bool {
        !matches!(self, Mode::O)
    }

    /// All modes in table order.
    pub fn all() -> [Mode; 5] {
        [
            Mode::O,
            Mode::OSafe,
            Mode::OSafePost,
            Mode::G,
            Mode::GChecked,
        ]
    }
}

/// One fully measured build of one program.
#[derive(Debug, Clone)]
pub struct Measured {
    /// Which mode.
    pub mode: Mode,
    /// Execution result (checking mode may legitimately fail).
    pub outcome: Result<ExecOutcome, VmError>,
    /// Cost per machine (keyed by machine name).
    pub costs: BTreeMap<&'static str, CostReport>,
    /// Peephole statistics for [`Mode::OSafePost`].
    pub peephole: Option<PeepholeStats>,
    /// The trace handle the measurement ran under. Disabled unless the
    /// build came from [`measure_source_traced`] — kept here so report
    /// code can keep emitting into the same sink.
    pub trace: TraceHandle,
    /// The profiling handle the run was instrumented with. Disabled
    /// unless the build came from [`measure_source_instrumented`] —
    /// snapshot it to assemble reports and exports.
    pub prof: ProfHandle,
    /// The heap-snapshot handle the run recorded into: the VM's `begin`
    /// and `end` heap-graph snapshots land here. Disabled unless the
    /// build came from [`measure_source_snapped`].
    pub snap: gcsnap::SnapHandle,
}

impl Measured {
    /// The program output, if the run succeeded.
    pub fn output(&self) -> Option<&[u8]> {
        self.outcome.as_ref().ok().map(|o| o.output.as_slice())
    }
}

/// Compiles `source` in `mode`, runs it on `input`, and costs the
/// assembly on every machine in [`Machine::all`].
///
/// # Errors
///
/// Returns `Err` only for *build* failures; run-time failures (e.g. a
/// pointer-arithmetic check firing) are reported inside
/// [`Measured::outcome`].
pub fn measure_source(source: &str, input: &[u8], mode: Mode) -> Result<Measured, String> {
    measure_source_traced(source, input, mode, &TraceHandle::disabled())
}

/// [`measure_source`] with a trace: the annotator's audit events, the
/// optimizer's and verifier's per-function events, the collector's
/// per-collection timeline, the VM run summary, the peephole rewrite
/// events, and one `("bench", "cost")` event per machine all flow into
/// the same sink.
///
/// # Errors
///
/// Same as [`measure_source`].
pub fn measure_source_traced(
    source: &str,
    input: &[u8],
    mode: Mode,
    trace: &TraceHandle,
) -> Result<Measured, String> {
    measure_source_instrumented(source, input, mode, trace, &ProfHandle::disabled())
}

/// The per-machine assembly cache: pristine code-generator output keyed
/// by the compilation key (structural program hash + options fingerprint,
/// from [`cvm::compile_keyed_traced`]) and machine name. The peephole
/// postprocessor mutates assembly in place and emits trace events, so
/// only *un*-postprocessed output is memoized; postprocessing re-runs on
/// every build, keeping hits byte-identical to cold runs.
type AsmKey = (u64, &'static str);

fn asm_cache() -> &'static gccache::Cache<AsmKey, Arc<Vec<AsmFunc>>> {
    static CACHE: OnceLock<gccache::Cache<AsmKey, Arc<Vec<AsmFunc>>>> = OnceLock::new();
    CACHE.get_or_init(|| gccache::Cache::new("asm", 512))
}

/// Counter snapshots for every compilation cache in the pipeline, in
/// stage order: `annotate`, `lower`, `compile`, `asm`. Counters are
/// cumulative for the process and — like wall-clock timings — are *not*
/// deterministic across `--jobs` levels (racing workers may both miss the
/// same key), so exports treat them as timing-class data.
pub fn cache_stats() -> Vec<StageStats> {
    let mut stats = cvm::pipeline_cache_stats();
    stats.push(asm_cache().stats());
    stats
}

/// Drops every memoized compilation artifact, pipeline-wide (counters
/// are preserved). Results never change — only compile time does.
pub fn cache_clear() {
    cvm::pipeline_cache_clear();
    asm_cache().clear();
}

/// [`measure_source_traced`] with a profiling handle attached to the heap
/// and VM: allocation-size and sweep histograms, pause phase timings, the
/// per-site allocation counters, and an end-of-run heap census all land in
/// `prof`. When both handles are enabled, the deterministic slice of the
/// profile (size histograms, census — never wall-clock timings) is also
/// mirrored into the trace as `("prof", "histogram")` and
/// `("prof", "census")` events so trace artifacts stay reproducible.
///
/// Compilation is served from the process-global content-hashed cache
/// (see [`cache_stats`]); hits are byte-identical to cold compiles.
///
/// # Errors
///
/// Same as [`measure_source`].
pub fn measure_source_instrumented(
    source: &str,
    input: &[u8],
    mode: Mode,
    trace: &TraceHandle,
    prof: &ProfHandle,
) -> Result<Measured, String> {
    measure_source_snapped(
        source,
        input,
        mode,
        trace,
        prof,
        &gcsnap::SnapHandle::disabled(),
    )
}

/// [`measure_source_instrumented`] with a heap-snapshot handle: the VM
/// records deterministic `begin`/`end` heap-graph snapshots into `snap`
/// (see `gcsnap`). Snapshots carry no wall-clock data, so they are
/// byte-identical across repeated runs and any `--jobs` level.
///
/// # Errors
///
/// Same as [`measure_source`].
pub fn measure_source_snapped(
    source: &str,
    input: &[u8],
    mode: Mode,
    trace: &TraceHandle,
    prof: &ProfHandle,
    snap: &gcsnap::SnapHandle,
) -> Result<Measured, String> {
    let (prog, ckey) = cvm::compile_keyed_traced(source, &mode.compile_options(), trace)?;
    let vm_opts = VmOptions {
        input: input.to_vec(),
        trace: trace.clone(),
        prof: prof.clone(),
        snap: snap.clone(),
        ..VmOptions::default()
    };
    let outcome = cvm::run_compiled(&prog, &vm_opts);
    let mut costs = BTreeMap::new();
    let mut peephole = None;
    for machine in Machine::all() {
        let akey = (ckey, machine.name);
        let mut asm = match asm_cache().get(&akey) {
            Some(asm) => (*asm).clone(),
            None => {
                let asm = asmpost::codegen_program(&prog, &machine);
                asm_cache().insert(akey, Arc::new(asm.clone()));
                asm
            }
        };
        // The `-O` baseline is postprocessed as well: gcc's -O2 output (the
        // paper's baseline) is already peephole-clean, while our one-pass
        // code generator leaves generic copy/fusion slack that would
        // otherwise understate every overhead column.
        if matches!(mode, Mode::OSafePost | Mode::O) {
            // Peephole events are emitted once, for the machine whose stats
            // the tables report (each machine's rewrite sequence is
            // identical; repeating it per machine would triple the trace).
            let first_machine = peephole.is_none() && mode == Mode::OSafePost;
            let stats = if first_machine {
                asmpost::postprocess_program_traced(&mut asm, trace)
            } else {
                asmpost::postprocess_program(&mut asm)
            };
            if mode == Mode::OSafePost {
                peephole.get_or_insert(stats);
            }
        }
        if let Ok(out) = &outcome {
            let cost = asmpost::measure(&asm, &out.profile, &machine);
            trace.emit(|| {
                Event::new("bench", "cost")
                    .field("mode", mode.label())
                    .field("machine", machine.name)
                    .field("cycles", cost.cycles)
                    .field("size_bytes", cost.size_bytes)
            });
            costs.insert(machine.name, cost);
        }
    }
    if trace.is_enabled() && prof.is_enabled() {
        if let Some(data) = prof.snapshot() {
            // Only the deterministic slice crosses into the trace: traces
            // are compared byte-for-byte in tests and across --jobs, so
            // wall-clock histograms (pause/mark/sweep) stay out.
            for (name, h) in [
                ("alloc_size", &data.alloc_size),
                ("sweep_freed_bytes", &data.sweep_freed_bytes),
            ] {
                trace.emit(|| {
                    Event::histogram(name, h.count(), h.sum(), encode_buckets(h.counts()))
                        .field("mode", mode.label())
                });
            }
            if let Some(census) = &data.census {
                trace.emit(|| {
                    Event::new("prof", "census")
                        .field("mode", mode.label())
                        .field("live_objects", census.live_objects)
                        .field("live_bytes", census.live_bytes)
                        .field("small_pages", census.small_pages)
                        .field("large_pages", census.large_pages)
                        .field("free_pages", census.free_pages)
                        .field("fragmentation_permille", census.fragmentation_permille())
                });
            }
        }
    }
    Ok(Measured {
        mode,
        outcome,
        costs,
        peephole,
        trace: trace.clone(),
        prof: prof.clone(),
        snap: snap.clone(),
    })
}

/// A table cell: a percentage, a failure marker, or absent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cell {
    /// Percent slowdown / expansion relative to the baseline.
    Pct(i64),
    /// The run failed (the paper's `<fails>` for checked gawk).
    Fails,
    /// Not measured.
    Dash,
}

impl std::fmt::Display for Cell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Cell::Pct(p) => write!(f, "{p}%"),
            Cell::Fails => write!(f, "<fails>"),
            Cell::Dash => write!(f, "-"),
        }
    }
}

/// One row of a slowdown/size table.
#[derive(Debug, Clone)]
pub struct Row {
    /// Workload name.
    pub name: &'static str,
    /// Cells keyed by mode.
    pub cells: Vec<(Mode, Cell)>,
}

/// Measures one workload in every mode.
///
/// # Errors
///
/// Returns `Err` if any build fails or if two successful modes disagree on
/// program output (a miscompilation guard).
pub fn measure_workload(w: &Workload, scale: Scale) -> Result<BTreeMap<Mode, Measured>, String> {
    measure_workload_traced(w, scale, &TraceHandle::disabled())
}

/// [`measure_workload`] with a trace. A `("bench", "workload")` event
/// marks where each workload's event stream begins.
///
/// # Errors
///
/// Same as [`measure_workload`].
pub fn measure_workload_traced(
    w: &Workload,
    scale: Scale,
    trace: &TraceHandle,
) -> Result<BTreeMap<Mode, Measured>, String> {
    trace.emit(|| Event::new("bench", "workload").field("name", w.name));
    let mut results = BTreeMap::new();
    for mode in Mode::all() {
        let m = measure_workload_mode_traced(w, scale, mode, trace)?;
        results.insert(mode, m);
    }
    check_workload_agreement(w, &results)?;
    Ok(results)
}

/// Measures a single (workload, mode) cell of the measurement matrix —
/// the independently schedulable unit the parallel driver in `gcbench`
/// fans out over. Unlike [`measure_workload_traced`] this emits no
/// `("bench", "workload")` marker and performs no cross-mode agreement
/// check; callers assembling a full row do both themselves (see
/// [`check_workload_agreement`]).
///
/// # Errors
///
/// Same as [`measure_source`]: `Err` only for build failures.
pub fn measure_workload_mode_traced(
    w: &Workload,
    scale: Scale,
    mode: Mode,
    trace: &TraceHandle,
) -> Result<Measured, String> {
    measure_workload_mode_instrumented(w, scale, mode, trace, &ProfHandle::disabled())
}

/// [`measure_workload_mode_traced`] with a profiling handle (see
/// [`measure_source_instrumented`]). The parallel bench driver hands each
/// cell its own enabled handle so profiles never interleave across
/// workers.
///
/// # Errors
///
/// Same as [`measure_source`].
pub fn measure_workload_mode_instrumented(
    w: &Workload,
    scale: Scale,
    mode: Mode,
    trace: &TraceHandle,
    prof: &ProfHandle,
) -> Result<Measured, String> {
    measure_workload_mode_snapped(w, scale, mode, trace, prof, &gcsnap::SnapHandle::disabled())
}

/// [`measure_workload_mode_instrumented`] with a heap-snapshot handle
/// (see [`measure_source_snapped`]). The parallel bench driver hands
/// each cell its own handle so snapshots never interleave across
/// workers.
///
/// # Errors
///
/// Same as [`measure_source`].
pub fn measure_workload_mode_snapped(
    w: &Workload,
    scale: Scale,
    mode: Mode,
    trace: &TraceHandle,
    prof: &ProfHandle,
    snap: &gcsnap::SnapHandle,
) -> Result<Measured, String> {
    let input = (w.input)(scale);
    measure_source_snapped(w.source, &input, mode, trace, prof, snap)
}

/// The default worker count for parallel drivers (the bench matrix,
/// the fuzzer campaign): the machine's available parallelism.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// The cross-mode output-divergence check: every successful mode must
/// reproduce the `-O` baseline's output byte-for-byte (the repository's
/// miscompilation guard), and the only tolerated failure is the checked
/// mode aborting on a workload that is expected to (the paper's gawk
/// `<fails>` cell). Runs against assembled results, so it gives the same
/// verdict whether the cells were measured serially or out of order.
///
/// # Errors
///
/// Returns a message naming the workload and mode that failed or
/// diverged.
pub fn check_workload_agreement(
    w: &Workload,
    results: &BTreeMap<Mode, Measured>,
) -> Result<(), String> {
    let baseline = results[&Mode::O]
        .output()
        .ok_or_else(|| {
            format!(
                "{}: baseline run failed: {:?}",
                w.name,
                results[&Mode::O].outcome
            )
        })?
        .to_vec();
    for (mode, m) in results {
        match &m.outcome {
            Ok(out) => {
                if out.output != baseline {
                    return Err(format!(
                        "{}: {} output diverges from baseline",
                        w.name,
                        mode.label()
                    ));
                }
            }
            Err(VmError::CheckFailed { .. }) if *mode == Mode::GChecked && w.checked_fails => {}
            Err(e) => {
                return Err(format!("{}: {} failed: {e}", w.name, mode.label()));
            }
        }
    }
    Ok(())
}

/// Builds the slowdown row for one workload on one machine
/// (`-O safe`, `-g`, `-g checked` relative to `-O`).
pub fn slowdown_row(results: &BTreeMap<Mode, Measured>, machine: &str, name: &'static str) -> Row {
    let base = &results[&Mode::O].costs[machine];
    let cell = |mode: Mode| -> Cell {
        let m = &results[&mode];
        match &m.outcome {
            Ok(_) => Cell::Pct(m.costs[machine].slowdown_pct(base)),
            Err(_) => Cell::Fails,
        }
    };
    Row {
        name,
        cells: vec![
            (Mode::OSafe, cell(Mode::OSafe)),
            (Mode::G, cell(Mode::G)),
            (Mode::GChecked, cell(Mode::GChecked)),
        ],
    }
}

/// Builds the code-size expansion row (static bytes, processed code only).
pub fn codesize_row(results: &BTreeMap<Mode, Measured>, machine: &str, name: &'static str) -> Row {
    let base = &results[&Mode::O].costs[machine];
    let cell = |mode: Mode| -> Cell {
        let m = &results[&mode];
        if m.costs.contains_key(machine) {
            Cell::Pct(m.costs[machine].expansion_pct(base))
        } else {
            Cell::Fails
        }
    };
    Row {
        name,
        cells: vec![
            (Mode::OSafe, cell(Mode::OSafe)),
            (Mode::G, cell(Mode::G)),
            (Mode::GChecked, cell(Mode::GChecked)),
        ],
    }
}

/// Builds the postprocessor row: residual running-time and code-size
/// degradation of postprocessed safe code vs the optimized baseline.
pub fn postprocessor_row(
    results: &BTreeMap<Mode, Measured>,
    machine: &str,
    name: &'static str,
) -> Row {
    let base = &results[&Mode::O].costs[machine];
    let post = &results[&Mode::OSafePost];
    let time = match &post.outcome {
        Ok(_) => Cell::Pct(post.costs[machine].slowdown_pct(base)),
        Err(_) => Cell::Fails,
    };
    let size = Cell::Pct(post.costs[machine].expansion_pct(base));
    Row {
        name,
        cells: vec![(Mode::OSafePost, time), (Mode::OSafePost, size)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOY: &str = r#"
        char f(char *p, long i) { return p[i - 3]; }
        int main(void) {
            char *b = (char *) malloc(64);
            long i;
            for (i = 0; i < 64; i++) b[i] = (char)(i * 2);
            putint(f(b, 13));
            return 0;
        }
    "#;

    #[test]
    fn mode_labels_and_options() {
        assert_eq!(Mode::O.label(), "-O");
        assert_eq!(Mode::GChecked.label(), "-g, checked");
        assert!(Mode::OSafe.compile_options().annotate.is_some());
        assert!(Mode::G.compile_options().lower.all_locals_in_memory);
        assert_eq!(Mode::all().len(), 5);
    }

    #[test]
    fn mode_keys_are_flamegraph_safe() {
        for mode in Mode::all() {
            let k = mode.key();
            assert!(
                k.chars().all(|c| c.is_ascii_alphanumeric() || c == '-'),
                "{k}"
            );
        }
        let keys: std::collections::BTreeSet<_> = Mode::all().iter().map(|m| m.key()).collect();
        assert_eq!(keys.len(), 5, "keys are distinct");
    }

    #[test]
    fn instrumented_measurement_profiles_and_traces() {
        let prof = ProfHandle::enabled();
        let (trace, sink) = TraceHandle::memory();
        let m = measure_source_instrumented(TOY, b"", Mode::OSafe, &trace, &prof).expect("builds");
        assert!(m.prof.is_enabled());
        let data = prof.snapshot().expect("profile data");
        assert!(data.alloc_size.count() > 0, "allocation sizes recorded");
        assert!(!data.sites.is_empty(), "allocation sites attributed");
        assert!(
            data.sites.keys().all(|k| k.contains("malloc@")),
            "{:?}",
            data.sites
        );
        let census = data.census.expect("final census");
        assert!(census.live_bytes > 0);
        let events = sink.snapshot();
        let hists = events
            .iter()
            .filter(|e| e.stage == "prof" && e.kind == "histogram")
            .count();
        assert_eq!(hists, 2, "alloc_size + sweep_freed_bytes");
        assert_eq!(
            events
                .iter()
                .filter(|e| e.stage == "prof" && e.kind == "census")
                .count(),
            1
        );
        // The untraced, unprofiled path stays unaffected.
        let plain = measure_source(TOY, b"", Mode::OSafe).expect("builds");
        assert!(!plain.prof.is_enabled());
        assert!(plain.prof.snapshot().is_none());
    }

    #[test]
    fn cell_display() {
        assert_eq!(Cell::Pct(12).to_string(), "12%");
        assert_eq!(Cell::Fails.to_string(), "<fails>");
        assert_eq!(Cell::Dash.to_string(), "-");
    }

    #[test]
    fn measure_source_produces_costs_for_all_machines() {
        for mode in Mode::all() {
            let m = measure_source(TOY, b"", mode).expect("builds");
            let out = m.outcome.expect("runs");
            assert_eq!(out.output, b"20");
            assert_eq!(m.costs.len(), 3, "{:?}", m.costs.keys());
            for cost in m.costs.values() {
                assert!(cost.cycles > 0);
                assert!(cost.size_bytes > 0);
            }
            if mode == Mode::OSafePost {
                assert!(m.peephole.is_some());
            }
        }
    }

    #[test]
    fn safe_mode_costs_at_least_baseline() {
        let base = measure_source(TOY, b"", Mode::O).expect("builds");
        let safe = measure_source(TOY, b"", Mode::OSafe).expect("builds");
        for (machine, b) in &base.costs {
            let s = &safe.costs[machine];
            assert!(s.cycles >= b.cycles, "{machine}");
            assert!(s.size_bytes >= b.size_bytes, "{machine}");
        }
    }
}
