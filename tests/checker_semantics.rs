//! Checker semantics straight from the paper's prose.

use cvm::{compile_and_run, CompileOptions, VmError, VmOptions};

fn run_checked(src: &str) -> Result<i64, VmError> {
    compile_and_run(src, &CompileOptions::debug_checked(), &VmOptions::default())
        .map(|o| o.exit_code)
}

#[test]
fn cast_based_field_overflow_is_caught() {
    // "If we cast a 'struct A *' to 'struct B *', accesses to fields of
    // the resulting pointer will be checked to verify that they are
    // within the allocated object."
    let src = r#"
        struct a { long x; };
        struct b { long f0; long f1; long f2; long f3; long f4; long f5; long f6; long f7; };
        int main(void) {
            struct a *small = (struct a *) malloc(sizeof(struct a));
            struct b *lied = (struct b *) small;
            lied->f0 = 1;            /* within the (rounded) object: fine */
            return (int) lied->f7;   /* far past the end: must be caught */
        }
    "#;
    match run_checked(src) {
        Err(VmError::CheckFailed { .. }) => {}
        other => panic!("expected CheckFailed, got {other:?}"),
    }
}

#[test]
fn rounded_sizes_make_checking_inexact() {
    // "Our checking is not completely accurate, since the garbage
    // collector rounds up object sizes." A one-field overflow that stays
    // inside the size-class slot is tolerated.
    let src = r#"
        struct a { long x; };          /* 8 bytes + extra byte → 16-byte slot */
        struct b { long f0; char c; }; /* c at offset 8: inside the slot */
        int main(void) {
            struct a *small = (struct a *) malloc(sizeof(struct a));
            struct b *lied = (struct b *) small;
            lied->c = 7;
            return lied->c;
        }
    "#;
    assert_eq!(run_checked(src).expect("slack access tolerated"), 7);
}

#[test]
fn one_past_the_end_is_legal() {
    // "Either may also point one past the end of the object, which we
    // handle by allocating all heap objects with at least one extra byte."
    let src = r#"
        int main(void) {
            char *a = (char *) malloc(10);
            char *end = a + 10;       /* one past the end: legal ANSI C */
            char *p;
            long n = 0;
            for (p = a; p != end; p++) { *p = 1; n += *p; }
            return (int) n;
        }
    "#;
    assert_eq!(run_checked(src).expect("one-past-end is fine"), 10);
}

#[test]
fn hashing_pointer_values_is_fine() {
    // "Hashing on pointer values is no problem, since we effectively
    // assume a nonmoving garbage collector."
    let src = r#"
        int main(void) {
            char *p = (char *) malloc(40);
            long h = ((long) p >> 4) % 97;    /* ptr→int, arithmetic on int */
            return h >= 0 && h < 97 ? 0 : 1;
        }
    "#;
    assert_eq!(run_checked(src).expect("pointer hashing passes"), 0);
}

#[test]
fn pointer_int_round_trip_without_arithmetic_is_benign() {
    // "conversion of a pointer to an integer and back, without
    // intervening arithmetic, is benign".
    let src = r#"
        int main(void) {
            char *p = (char *) malloc(16);
            long as_int = (long) p;
            char *q = (char *) as_int;
            *q = 42;
            return *p;
        }
    "#;
    assert_eq!(run_checked(src).expect("round trip is benign"), 42);
}

#[test]
fn small_int_to_pointer_never_dereferenced_is_tolerated() {
    // "the common practice of converting very small integers to pointers
    // that are never dereferenced" — e.g. sentinel values.
    let src = r#"
        int main(void) {
            char *sentinel = (char *) 1;
            char *p = (char *) malloc(8);
            if (p == sentinel) return 9;
            return 0;
        }
    "#;
    assert_eq!(run_checked(src).expect("sentinels are fine"), 0);
}

#[test]
fn subscript_past_extent_is_caught() {
    let src = r#"
        int main(void) {
            long *a = (long *) malloc(4 * sizeof(long));
            long i;
            long s = 0;
            for (i = 0; i <= 8; i++) s += a[i]; /* runs off the object */
            return (int) s;
        }
    "#;
    match run_checked(src) {
        Err(VmError::CheckFailed { .. }) => {}
        other => panic!("expected CheckFailed, got {other:?}"),
    }
}
