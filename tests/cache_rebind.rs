//! The compilation cache's re-binding contract at the facade level: two
//! formattings of the same program share every memoized artifact
//! (compile IR, per-machine assembly), yet the gcprof exports — folded
//! allocation stacks and the pause log's `max_pause_site` attribution —
//! report each formatting's own source coordinates. This is the
//! bug-class the cache's unconditional re-bind exists to prevent:
//! profiles stamped with the donor program's line numbers.

use gc_safety::{cache_stats, measure_source_instrumented, Mode, ProfHandle, TraceHandle};

/// 1-based (line, col) of the first occurrence of `needle` in `src`.
fn pos_of(src: &str, needle: &str) -> (usize, usize) {
    let off = src.find(needle).expect("needle present");
    let line = src[..off].matches('\n').count() + 1;
    let col = off - src[..off].rfind('\n').map_or(0, |i| i + 1) + 1;
    (line, col)
}

fn delta(
    before: &[gc_safety::StageStats],
    after: &[gc_safety::StageStats],
    name: &str,
) -> (u64, u64) {
    let get = |s: &[gc_safety::StageStats]| {
        let st = s.iter().find(|s| s.stage == name).expect("stage exists");
        (st.hits, st.misses)
    };
    let (bh, bm) = get(before);
    let (ah, am) = get(after);
    (ah - bh, am - bm)
}

// Enough garbage to cross the 256 KiB collection threshold several
// times, so the pause log is populated and max_pause_site meaningful.
const SRC_A: &str = "int main(void) {\n    long i;\n    for (i = 0; i < 20000; i = i + 1) {\n        char *p = (char *) malloc(64);\n        p[0] = (char) i;\n    }\n    return 0;\n}\n";
const SRC_B: &str = "/* same program, reflowed: the churn site moves */\nint main(void)\n{\n        long i;\n        for (i = 0; i < 20000; i = i + 1)\n        {\n                char *p = (char *) malloc(64);\n                p[0] = (char) i;\n        }\n        return 0;\n}\n";

#[test]
fn shared_cache_entries_still_profile_under_each_formattings_labels() {
    let pa = cfront::parse(SRC_A).unwrap();
    let pb = cfront::parse(SRC_B).unwrap();
    assert_eq!(
        cfront::program_hash(&pa),
        cfront::program_hash(&pb),
        "the two formattings must be hash-equal for the cache to share"
    );
    let (la, ca) = pos_of(SRC_A, "malloc");
    let (lb, cb) = pos_of(SRC_B, "malloc");
    let label_a = format!("malloc@{la}:{ca}");
    let label_b = format!("malloc@{lb}:{cb}");
    assert_ne!(label_a, label_b);

    let prof_a = ProfHandle::enabled();
    let a = measure_source_instrumented(SRC_A, b"", Mode::O, &TraceHandle::disabled(), &prof_a)
        .expect("A measures");
    let before = cache_stats();
    let prof_b = ProfHandle::enabled();
    let b = measure_source_instrumented(SRC_B, b"", Mode::O, &TraceHandle::disabled(), &prof_b)
        .expect("B measures");
    let after = cache_stats();
    // B's build is served from A's entries: one compile hit, one asm hit
    // per machine, and nothing recompiled.
    assert_eq!(delta(&before, &after, "compile"), (1, 0));
    let (asm_hits, asm_misses) = delta(&before, &after, "asm");
    assert_eq!(asm_misses, 0, "no machine re-ran codegen");
    assert!(asm_hits >= 1, "assembly served from cache");
    assert_eq!(a.output(), b.output(), "formatting cannot change behavior");

    for (m, prof, mine, theirs) in [
        (&a, &prof_a, &label_a, &label_b),
        (&b, &prof_b, &label_b, &label_a),
    ] {
        let d = prof.snapshot().expect("profiled run has data");
        let out = m.outcome.as_ref().expect("run succeeded");
        assert!(
            out.heap.collections > 0,
            "the churn loop must actually collect"
        );
        // Folded allocation stacks carry this formatting's coordinates…
        assert!(
            d.sites.keys().any(|stack| stack.contains(mine.as_str())),
            "sites {:?} missing {mine}",
            d.sites.keys().collect::<Vec<_>>()
        );
        // …and never the other formatting's (donor-coordinate stamping).
        assert!(
            !d.sites.keys().any(|stack| stack.contains(theirs.as_str())),
            "sites leaked the other formatting's label {theirs}"
        );
        // Pause attribution follows the same rule.
        let worst = d
            .collection_log
            .iter()
            .max_by_key(|r| r.pause_ns)
            .expect("collections were logged");
        let site = worst.site.as_deref().expect("worst pause is attributed");
        assert!(
            site.contains(mine.as_str()) && !site.contains(theirs.as_str()),
            "max_pause_site {site:?} must carry this formatting's label {mine}"
        );
    }
}
