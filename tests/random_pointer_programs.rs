//! Property tests over randomly generated *pointer-manipulating* C
//! programs. Every statement template is ANSI-legal by construction
//! (in-bounds subscripts, within-object cursors), so:
//!
//! * all five modes must compute identical output, and
//! * the `-g checked` build must **pass** — any `CheckFailed` here is a
//!   checker false positive (the paper's checker only fires on actual
//!   violations).
//!
//! This exercises the annotator's full rule set — subscripts, `->`
//! chains, cursors with `++`, stored arithmetic, call arguments — far
//! beyond the hand-written cases. Cases come from the deterministic
//! PRNG in `common`.

mod common;

use common::Rng;
use cvm::{compile_and_run, CompileOptions, VmOptions};

/// Safe-by-construction statement templates. `a` has 32 longs, `b` 16,
/// `acc` is a long accumulator, `i` a scratch counter, `p` a cursor.
#[derive(Debug, Clone)]
enum St {
    StoreA(u8, i32),
    AccumA(u8, i32),
    CursorWalk(u8),
    LoopCombine(u8),
    HeapString(u8),
    MaskedIndex,
    BlockCopy(u8),
    NodeChain(u8),
    StoredArith(u8),
}

impl St {
    fn print(&self) -> String {
        match self {
            St::StoreA(k, c) => format!("    a[{}] = acc + {};\n", k % 32, c),
            St::AccumA(k, m) => {
                format!("    acc += a[{}] * {};\n", k % 32, (m % 7) + 1)
            }
            St::CursorWalk(k) => {
                let k = k % 30;
                format!(
                    "    p = a + {k};\n    acc += *p;\n    p++;\n    acc += *p++;\n    acc += p[-1];\n"
                )
            }
            St::LoopCombine(k) => {
                let k = k % 16;
                format!("    for (i = 0; i < 16; i++) b[i] = b[i] + a[i + {k}];\n")
            }
            St::HeapString(k) => {
                let k = k % 10;
                format!(
                    "    {{ char *s = (char *) malloc(24);\n\
                     \x20     for (i = 0; i < 10; i++) s[i] = (char)('a' + (acc + i) % 26);\n\
                     \x20     s[10] = 0;\n\
                     \x20     acc += strlen(s) + s[{k}]; }}\n"
                )
            }
            St::MaskedIndex => "    acc += *(a + (acc & 15));\n".to_string(),
            St::BlockCopy(k) => {
                let k = k % 16;
                format!(
                    "    memcpy(b, a + {k}, 16 * sizeof(long));\n    acc += b[{}];\n",
                    k % 16
                )
            }
            St::NodeChain(n) => {
                let n = (n % 6) + 1;
                format!(
                    "    {{ struct nd *head = 0;\n\
                     \x20     for (i = 0; i < {n}; i++) {{\n\
                     \x20         struct nd *x = (struct nd *) malloc(sizeof(struct nd));\n\
                     \x20         x->v = acc + i;\n\
                     \x20         x->next = head;\n\
                     \x20         head = x;\n\
                     \x20     }}\n\
                     \x20     while (head) {{ acc += head->v; head = head->next; }} }}\n"
                )
            }
            St::StoredArith(k) => {
                let k = k % 24;
                format!(
                    "    {{ long *q;\n\
                     \x20     q = a + {k};\n\
                     \x20     q += 3;\n\
                     \x20     *q = acc;\n\
                     \x20     acc += q[-2] + *(q - 1); }}\n"
                )
            }
        }
    }
}

fn gen_stmt(rng: &mut Rng) -> St {
    match rng.index(9) {
        0 => St::StoreA(rng.next_u8(), rng.range_i64(-50, 50) as i32),
        1 => St::AccumA(rng.next_u8(), rng.next_i32()),
        2 => St::CursorWalk(rng.next_u8()),
        3 => St::LoopCombine(rng.next_u8()),
        4 => St::HeapString(rng.next_u8()),
        5 => St::MaskedIndex,
        6 => St::BlockCopy(rng.next_u8()),
        7 => St::NodeChain(rng.next_u8()),
        _ => St::StoredArith(rng.next_u8()),
    }
}

fn gen_stmts(rng: &mut Rng, max_len: usize) -> Vec<St> {
    let len = 1 + rng.index(max_len - 1);
    (0..len).map(|_| gen_stmt(rng)).collect()
}

fn program(stmts: &[St]) -> String {
    let mut body = String::new();
    for s in stmts {
        body.push_str(&s.print());
    }
    format!(
        "struct nd {{ long v; struct nd *next; }};\n\
         int main(void) {{\n\
         \x20   long *a = (long *) malloc(32 * sizeof(long));\n\
         \x20   long *b = (long *) malloc(16 * sizeof(long));\n\
         \x20   long *p = a;\n\
         \x20   long acc = 1;\n\
         \x20   long i;\n\
         \x20   for (i = 0; i < 32; i++) a[i] = i * 3 + 1;\n\
         \x20   for (i = 0; i < 16; i++) b[i] = i;\n\
         {body}\
         \x20   acc += *p;\n\
         \x20   putint(acc & 0xffffff);\n\
         \x20   return 0;\n\
         }}\n"
    )
}

fn run_mode(src: &str, copts: &CompileOptions) -> Result<Vec<u8>, String> {
    let v = VmOptions {
        max_steps: 30_000_000,
        ..VmOptions::default()
    };
    compile_and_run(src, copts, &v)
        .map(|o| o.output)
        .map_err(|e| e.to_string())
}

#[test]
fn pointer_programs_agree_across_all_modes() {
    for case in 0..40 {
        let mut rng = Rng::for_case("ptr_all_modes", case);
        let src = program(&gen_stmts(&mut rng, 8));
        let baseline = run_mode(&src, &CompileOptions::optimized())
            .unwrap_or_else(|e| panic!("-O failed on:\n{src}\n{e}"));
        for (name, opts) in [
            ("-O safe", CompileOptions::optimized_safe()),
            ("-g", CompileOptions::debug()),
            ("-g checked", CompileOptions::debug_checked()),
        ] {
            let got = run_mode(&src, &opts)
                .unwrap_or_else(|e| panic!("{name} failed (false positive?) on:\n{src}\n{e}"));
            assert_eq!(got, baseline, "{name} diverges on:\n{src}");
        }
    }
}

#[test]
fn safe_builds_survive_paranoid_gc() {
    for case in 0..40 {
        let mut rng = Rng::for_case("ptr_paranoid_gc", case);
        let src = program(&gen_stmts(&mut rng, 6));
        let baseline = run_mode(&src, &CompileOptions::optimized())
            .unwrap_or_else(|e| panic!("-O failed on:\n{src}\n{e}"));
        let v = VmOptions {
            max_steps: 30_000_000,
            heap_config: gcheap::HeapConfig {
                gc_threshold: 1,
                ..gcheap::HeapConfig::default()
            },
            ..VmOptions::default()
        };
        let got = compile_and_run(&src, &CompileOptions::optimized_safe(), &v)
            .unwrap_or_else(|e| panic!("-O safe under paranoid GC failed on:\n{src}\n{e}"));
        assert_eq!(got.output, baseline, "paranoid GC diverges on:\n{src}");
    }
}

#[test]
fn annotated_pointer_programs_verify_statically() {
    for case in 0..40 {
        let mut rng = Rng::for_case("ptr_verify_static", case);
        let src = program(&gen_stmts(&mut rng, 6));
        let prog = cvm::compile(&src, &CompileOptions::optimized_safe())
            .unwrap_or_else(|e| panic!("compile failed on:\n{src}\n{e}"));
        let violations = cvm::verify_program(&prog, false);
        assert!(
            violations.is_empty(),
            "unprotected addresses in:\n{src}\n{violations:?}"
        );
    }
}
