//! The C-to-C preprocessor's *textual* output over the real workloads:
//! the edit list must produce source that re-parses, re-annotates to a
//! fixpoint, and carries the expected annotations.

use gcsafe::{annotate_program, Config};

#[test]
fn workload_sources_annotate_and_reparse() {
    for w in workloads::all() {
        for (mode_name, cfg) in [("safe", Config::gc_safe()), ("checked", Config::checked())] {
            let out = annotate_program(w.source, &cfg)
                .unwrap_or_else(|e| panic!("{} {mode_name}: {e}", w.name));
            // Structural sanity of the emitted text.
            let opens = out.annotated_source.matches('(').count();
            let closes = out.annotated_source.matches(')').count();
            assert_eq!(opens, closes, "{} {mode_name}: unbalanced parens", w.name);
            // The pointer-heavy workloads must actually get annotated.
            let total = out.result.stats.keep_lives + out.result.stats.checks;
            assert!(total > 5, "{} {mode_name}: only {total} wraps", w.name);
        }
    }
}

#[test]
fn gawk_bug_line_gets_a_check() {
    let w = workloads::by_name("gawk").expect("exists");
    let out = annotate_program(w.source, &Config::checked()).expect("annotates");
    assert!(
        out.annotated_source
            .contains("GC_same_obj(fields - 1, fields)"),
        "the fields-1 idiom is checked:\n{}",
        &out.annotated_source[..out.annotated_source.len().min(4000)]
    );
}

#[test]
fn annotation_reaches_a_fixpoint_on_workloads() {
    for w in workloads::all() {
        let first = annotate_program(w.source, &Config::gc_safe())
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        let mut prog = first.program.clone();
        let sema = cfront::analyze(&mut prog).expect("re-sema");
        let second = gcsafe::annotate(&mut prog, &sema, &Config::gc_safe());
        assert_eq!(
            second.stats.keep_lives + second.stats.checks,
            0,
            "{}: annotation is not idempotent",
            w.name
        );
    }
}

#[test]
fn pretty_printed_annotated_workloads_reparse() {
    for w in workloads::all() {
        let out = annotate_program(w.source, &Config::gc_safe())
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        let printed = cfront::pretty::program_to_c(&out.program);
        // KEEP_LIVE renders as a call; redeclare it so the reparse's sema
        // would accept it too (we only need the parse here).
        cfront::parse(&printed).unwrap_or_else(|e| panic!("{}: reparse failed: {e}", w.name));
    }
}

#[test]
fn checked_and_safe_annotate_the_same_points() {
    // The paper's central claim, measured on the real workloads.
    for w in workloads::all() {
        let safe = annotate_program(w.source, &Config::gc_safe()).expect("safe");
        let checked = annotate_program(w.source, &Config::checked()).expect("checked");
        // In safe mode ++/-- wraps are KEEP_LIVEs (counted there); in
        // checked mode they become GC_pre/post_incr calls (counted only as
        // specials).
        let safe_total = safe.result.stats.keep_lives + safe.result.stats.checks;
        let checked_total = checked.result.stats.keep_lives
            + checked.result.stats.checks
            + checked.result.stats.incdec_specials;
        assert_eq!(
            safe_total, checked_total,
            "{}: the two modes disagree on insertion points",
            w.name
        );
    }
}
