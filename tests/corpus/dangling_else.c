/* gcfuzz corpus: dangling_else
 * Pins: the pretty-printer braces a then-branch that would otherwise
 * swallow the else of its enclosing if, so minimizer output reparses
 * to the same tree. Replayed through both the differential oracle and
 * the parse -> print -> parse round-trip in corpus_replay.
 */
int main(void) {
    long x;
    long y;
    x = 3;
    y = 0;
    if (x > 1) {
        if (x > 2)
            y = 1;
    } else {
        y = 3;
    }
    if (x > 5) {
        while (x > 0)
            if (x == 99)
                y = 4;
    } else {
        y = y + 10;
    }
    putint(y);
    putchar(10);
    return (int)y;
}
