/* gcfuzz corpus: valueless_return
 * Pins: a bare `return;` in a non-void function is legal while the
 * result is unused, so a statement-position call must lower with its
 * result discarded. The VM used to substitute 0 silently when such a
 * result WAS used, which could mask real miscompilations from the
 * differential oracle; that is now VmError::MissingReturn.
 */
int tick(int x) {
    if (x > 0) {
        return;
    }
    return 7;
}
int main(void) {
    tick(1);
    putint(tick(0));
    putchar(10);
    return 4;
}
