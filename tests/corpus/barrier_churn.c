/* gcfuzz corpus: barrier_churn
 * Pins: the Dijkstra write barrier under the bounded-pause collector.
 * A rooted list is repeatedly rewired while allocation churn keeps a
 * tiny-budget incremental mark cycle in flight, so the only pointer to
 * a white node is routinely stored into an already-scanned black node
 * (and young nodes are hung off old ones, exercising the remembered-set
 * cards). With the barrier missing, the bounded paranoid oracle run
 * loses a node and faults; with it, all five modes agree.
 */
struct node {
    struct node *next;
    long v;
};
struct node *cons(long v, struct node *next) {
    struct node *n;
    n = (struct node *) malloc(sizeof(struct node));
    n->v = v;
    n->next = next;
    return n;
}
int main(void) {
    struct node *head;
    struct node *p;
    struct node *q;
    struct node *tmp;
    long i;
    long sum;
    head = 0;
    for (i = 0; i < 40; i = i + 1) {
        head = cons(i, head);
    }
    /* Rotate nodes from the middle to the front, allocating garbage in
     * between so marking advances mid-rewire. */
    for (i = 0; i < 120; i = i + 1) {
        p = head;
        q = p->next;
        tmp = (struct node *) malloc(24 + (i % 5) * 16);
        tmp->v = i;
        while (q->next != 0 && (q->v % 7) != (i % 7)) {
            p = q;
            q = q->next;
        }
        p->next = q->next;   /* unlink q: its only reference... */
        q->next = head;      /* ...is stored into scanned memory */
        head = q;
    }
    sum = 0;
    for (p = head; p != 0; p = p->next) {
        sum = sum + p->v;
    }
    putint(sum);
    putchar(10);
    return (int)(sum % 100);
}
