/* gcfuzz corpus: cursor_last_use
 * Pins: last-use pointer arithmetic — the cursor is advanced with
 * *p++ between allocations, so around the final load the only value
 * derived from the array may point one past the end. Safe modes must
 * keep the object alive until that load retires.
 */
long walk(long *a, long n) {
    long *p;
    long *t;
    long s;
    p = a;
    s = 0;
    while (n-- > 0) {
        t = (long *) malloc(16);
        t[0] = s;
        s = t[0] + *p++;
    }
    return s;
}
int main(void) {
    long *a;
    long j;
    long r;
    a = (long *) malloc(12 * sizeof(long));
    for (j = 0; j < 12; j = j + 1) {
        a[j] = j * 7 - 3;
    }
    r = walk(a, 12);
    putint(r);
    putchar(10);
    return (int)(r % 256);
}
