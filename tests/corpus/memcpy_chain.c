/* gcfuzz corpus: memcpy_chain
 * Pins: Memory::copy validates both full ranges before writing any
 * byte, so a faulting copy can no longer partially mutate its
 * destination. This legal chain of block copies (including displaced
 * source/destination bases) rides the same code path in every mode.
 */
int main(void) {
    long *a;
    long *b;
    long *c;
    long i;
    long s;
    a = (long *) malloc(16 * sizeof(long));
    b = (long *) malloc(16 * sizeof(long));
    c = (long *) malloc(16 * sizeof(long));
    for (i = 0; i < 16; i = i + 1) {
        a[i] = i * 11 + 2;
    }
    memcpy(b, a, 16 * sizeof(long));
    memcpy(c, b, 8 * sizeof(long));
    memcpy(c + 8, b + 8, 8 * sizeof(long));
    s = 0;
    for (i = 0; i < 16; i = i + 1) {
        s = s + c[i] - a[i];
    }
    putint(s);
    putchar(10);
    return (int)s;
}
