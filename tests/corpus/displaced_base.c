/* gcfuzz corpus: displaced_base
 * Pins: a displaced base (p[i - 1000]) whose only surviving
 * intermediate points outside the object must stay live across a
 * collecting allocation in every safe mode. The -O baseline has no
 * such guarantee — tests/gc_unsafety.rs shows it dying on exactly
 * this shape under a paranoid collector.
 */
char hazard(char *p) {
    char *trigger = (char *) malloc(64);
    long i = (long) trigger[0] + 2000;
    return p[i - 1000];
}
int main(void) {
    char *buf = (char *) malloc(4000);
    long j;
    for (j = 0; j < 4000; j = j + 1) {
        buf[j] = (char)(j % 50);
    }
    putint(hazard(buf));
    putchar(10);
    return hazard(buf);
}
