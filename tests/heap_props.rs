//! Property tests for the conservative collector: against a Rust-side
//! shadow object graph, a collection must keep exactly the shadow-
//! reachable objects (conservatism can only over-retain via ambiguous
//! roots, which this harness avoids by using precise root words).
//! Cases come from the deterministic PRNG in `common`.

mod common;

use common::Rng;
use gcheap::{GcHeap, HeapConfig, Memory, PointerPolicy, RootSet};
use std::collections::{HashMap, HashSet};

#[derive(Debug, Clone)]
enum Op {
    /// Allocate an object of the given size, rooted.
    Alloc(u16),
    /// Drop the root of object #i (modulo population).
    Unroot(u8),
    /// Store a pointer to object #b into a word of object #a.
    Link(u8, u8),
    /// Clear the first pointer word of object #a.
    Unlink(u8),
    /// Run a collection.
    Collect,
}

fn gen_op(rng: &mut Rng) -> Op {
    match rng.index(5) {
        0 => Op::Alloc(8 + rng.below(592) as u16),
        1 => Op::Unroot(rng.next_u8()),
        2 => Op::Link(rng.next_u8(), rng.next_u8()),
        3 => Op::Unlink(rng.next_u8()),
        _ => Op::Collect,
    }
}

fn gen_ops(rng: &mut Rng, max_len: usize) -> Vec<Op> {
    let len = 1 + rng.index(max_len - 1);
    (0..len).map(|_| gen_op(rng)).collect()
}

#[derive(Debug, Default)]
struct Shadow {
    /// All ever-allocated objects: address → outgoing links (slot → target).
    objects: HashMap<u64, HashMap<u64, u64>>,
    rooted: Vec<u64>,
}

impl Shadow {
    fn reachable(&self) -> HashSet<u64> {
        let mut seen: HashSet<u64> = HashSet::new();
        let mut work: Vec<u64> = self.rooted.clone();
        while let Some(a) = work.pop() {
            if !seen.insert(a) {
                continue;
            }
            if let Some(links) = self.objects.get(&a) {
                for &t in links.values() {
                    work.push(t);
                }
            }
        }
        seen
    }
}

/// Whether a live object is still *based* at `addr`. The shadow graph is
/// keyed by object base, and page reclamation lets a freed page be
/// re-carved for another size class — an old base can come back as an
/// interior address of a new object, where `is_allocated` (a containment
/// query) would report true for the wrong object.
fn is_live_base(heap: &GcHeap, addr: u64) -> bool {
    heap.base(addr) == Some(addr)
}

fn run_ops(ops: &[Op], policy: PointerPolicy) {
    let mut mem = Memory::new(1 << 14, 1 << 14, 1 << 22);
    let mut heap = GcHeap::new(
        &mem,
        HeapConfig {
            policy,
            gc_threshold: u64::MAX,
            ..HeapConfig::default()
        },
    );
    let mut shadow = Shadow::default();
    let mut order: Vec<u64> = Vec::new(); // allocation order, live or dead
    for op in ops {
        match op {
            Op::Alloc(size) => {
                if let Ok(addr) = heap.alloc(&mut mem, *size as u64) {
                    shadow.objects.insert(addr, HashMap::new());
                    shadow.rooted.push(addr);
                    order.push(addr);
                }
            }
            Op::Unroot(i) => {
                if !shadow.rooted.is_empty() {
                    let idx = *i as usize % shadow.rooted.len();
                    shadow.rooted.swap_remove(idx);
                }
            }
            Op::Link(a, b) => {
                let live: Vec<u64> = shadow
                    .objects
                    .keys()
                    .copied()
                    .filter(|&o| is_live_base(&heap, o))
                    .collect();
                if live.len() >= 2 {
                    let mut live = live;
                    live.sort();
                    let src = live[*a as usize % live.len()];
                    let dst = live[*b as usize % live.len()];
                    // Store the pointer at the first word (base-aligned so
                    // both pointer policies see it).
                    mem.write(src, 8, dst).expect("object memory is mapped");
                    shadow.objects.get_mut(&src).expect("known").insert(0, dst);
                }
            }
            Op::Unlink(a) => {
                let live: Vec<u64> = {
                    let mut v: Vec<u64> = shadow
                        .objects
                        .keys()
                        .copied()
                        .filter(|&o| is_live_base(&heap, o))
                        .collect();
                    v.sort();
                    v
                };
                if !live.is_empty() {
                    let src = live[*a as usize % live.len()];
                    mem.write(src, 8, 0).expect("mapped");
                    shadow.objects.get_mut(&src).expect("known").remove(&0);
                }
            }
            Op::Collect => {
                // Prune shadow facts about already-dead objects so the
                // graph matches the heap.
                let dead: Vec<u64> = shadow
                    .objects
                    .keys()
                    .copied()
                    .filter(|&o| !is_live_base(&heap, o))
                    .collect();
                for d in dead {
                    shadow.objects.remove(&d);
                    shadow.rooted.retain(|&r| r != d);
                    for links in shadow.objects.values_mut() {
                        links.retain(|_, &mut t| t != d);
                    }
                }
                let mut roots = RootSet::new();
                for &r in &shadow.rooted {
                    roots.add_word(r);
                }
                heap.collect(&mut mem, &roots);
                let reachable = shadow.reachable();
                for &obj in shadow.objects.keys() {
                    let alive = is_live_base(&heap, obj);
                    if reachable.contains(&obj) {
                        assert!(alive, "reachable object {obj:#x} was collected");
                    } else {
                        assert!(!alive, "unreachable object {obj:#x} survived");
                    }
                }
            }
        }
    }
}

#[test]
fn collection_matches_shadow_reachability() {
    for case in 0..64 {
        let mut rng = Rng::for_case("shadow_reachability", case);
        let ops = gen_ops(&mut rng, 80);
        run_ops(&ops, PointerPolicy::InteriorEverywhere);
    }
}

#[test]
fn base_only_policy_matches_when_links_are_bases() {
    // All shadow links store base pointers, so the Extensions-section
    // policy must agree with shadow reachability too.
    for case in 0..64 {
        let mut rng = Rng::for_case("base_only_policy", case);
        let ops = gen_ops(&mut rng, 80);
        run_ops(&ops, PointerPolicy::InteriorFromRootsOnly);
    }
}

/// A size-class phase shift must never OOM a heap whose objects are all
/// dead: fill the heap with one size class, drop every root, collect,
/// then refill with a *different* class. The refill must reach exactly
/// the capacity a fresh heap offers that class. Before sweeps returned
/// fully-empty small pages to the page pool, the second phase found
/// every page still dedicated to the first class and stopped early.
#[test]
fn page_reclamation_survives_size_class_phase_shifts() {
    let fill = |mem: &mut Memory, heap: &mut GcHeap, size: u64| -> u64 {
        let mut n = 0;
        while heap.alloc(mem, size).is_ok() {
            n += 1;
        }
        n
    };
    let config = HeapConfig {
        gc_threshold: u64::MAX, // no automatic collections
        ..HeapConfig::default()
    };
    for case in 0..32 {
        let mut rng = Rng::for_case("page_reclamation", case);
        // Two sizes far enough apart to land in different size classes.
        let class_a = 8 + rng.below(592);
        let class_b = loop {
            let c = 8 + rng.below(592);
            if c.abs_diff(class_a) > 128 {
                break c;
            }
        };
        // Baseline: how many class-B objects a fresh heap holds.
        let mut mem = Memory::new(1 << 12, 1 << 12, 1 << 16);
        let mut heap = GcHeap::new(&mem, config.clone());
        let fresh_capacity = fill(&mut mem, &mut heap, class_b);
        assert!(fresh_capacity > 0, "case {case}: heap holds nothing");

        // Phase shift: exhaust with class A (unrooted), collect, refill
        // with class B.
        let mut mem = Memory::new(1 << 12, 1 << 12, 1 << 16);
        let mut heap = GcHeap::new(&mem, config.clone());
        let phase_a = fill(&mut mem, &mut heap, class_a);
        assert!(phase_a > 0, "case {case}: phase A allocated nothing");
        heap.collect(&mut mem, &RootSet::new());
        assert!(
            heap.stats().pages_reclaimed > 0,
            "case {case}: empty pages were not reclaimed"
        );
        let phase_b = fill(&mut mem, &mut heap, class_b);
        assert_eq!(
            phase_b, fresh_capacity,
            "case {case}: after {phase_a} dead {class_a}B objects, the \
             reclaimed heap holds fewer {class_b}B objects than a fresh one"
        );
    }
}

/// Histogram bucket placement against an independently computed shadow:
/// every sample lands in exactly the `floor(log2)+1` bucket, bucket
/// counts always sum to the sample count, and sum/min/max track exactly.
#[test]
fn histogram_buckets_partition_the_samples() {
    use gcprof::Histogram;
    for case in 0..64 {
        let mut rng = Rng::for_case("histogram_invariants", case);
        let mut h = Histogram::new();
        let mut shadow = [0u64; gcprof::hist::BUCKETS];
        let (mut sum, mut min, mut max) = (0u64, u64::MAX, 0u64);
        let n = 1 + rng.below(200);
        for _ in 0..n {
            // Spread samples across the full bucket range without
            // overflowing the sum accumulator.
            let v = rng.next_u64() >> (8 + rng.index(56));
            h.record(v);
            shadow[if v == 0 {
                0
            } else {
                64 - v.leading_zeros() as usize
            }] += 1;
            sum += v;
            min = min.min(v);
            max = max.max(v);
        }
        assert_eq!(h.count(), n, "case {case}");
        assert_eq!(h.counts().iter().sum::<u64>(), n, "case {case}");
        assert_eq!(h.counts(), &shadow, "case {case}");
        assert_eq!(h.sum(), sum, "case {case}");
        assert_eq!(h.min(), min, "case {case}");
        assert_eq!(h.max(), max, "case {case}");
        // Every occupied bucket's bound covers its samples' range.
        for (i, _) in h.nonzero() {
            assert!(Histogram::bucket_bound(i) >= min, "case {case} bucket {i}");
        }
    }
}

/// The census occupancy-decile bucketing as a law rather than a few
/// spot values: deciles partition `[0, slots]`, are monotone in the live
/// count, clamp full (and corrupt, `live > slots`) pages into decile 9,
/// and — the zero-slot guard at `HeapCensus::occupancy_decile` — a page
/// reporting zero slots lands in decile 0 instead of dividing by zero.
#[test]
fn occupancy_deciles_partition_and_survive_zero_slots() {
    use gcprof::HeapCensus;
    for case in 0..64 {
        let mut rng = Rng::for_case("occupancy_deciles", case);
        for _ in 0..256 {
            let slots = rng.below(513);
            let live = rng.below(slots + 2); // occasionally exceeds slots
            let d = HeapCensus::occupancy_decile(live, slots);
            assert!(d < 10, "case {case}: decile {d} out of range");
            if slots == 0 {
                assert_eq!(d, 0, "case {case}: zero-slot page must bucket to 0");
                continue;
            }
            // The decile's lower boundary really is below this page's
            // occupancy, and (unless clamped) the next boundary above it.
            assert!(
                10 * live >= d as u64 * slots,
                "case {case}: live={live}/{slots} under decile {d}"
            );
            if d < 9 {
                assert!(
                    10 * live < (d as u64 + 1) * slots,
                    "case {case}: live={live}/{slots} over decile {d}"
                );
            }
            if live >= slots {
                assert_eq!(d, 9, "case {case}: full page must clamp to 9");
            }
            // Monotone: one more live slot never lowers the decile.
            assert!(
                HeapCensus::occupancy_decile(live + 1, slots) >= d,
                "case {case}: decile not monotone at live={live}/{slots}"
            );
        }
    }
}

/// The gcprof invariants the fuzzer's oracle also enforces, here driven
/// directly against the heap by the op machine: the size histogram counts
/// exactly the successful allocations, the pause timeline counts exactly
/// the collections, and the census agrees with the heap's statistics.
#[test]
fn prof_instrumentation_matches_heap_statistics() {
    for case in 0..32 {
        let mut rng = Rng::for_case("prof_consistency", case);
        let ops = gen_ops(&mut rng, 80);
        let mut mem = Memory::new(1 << 14, 1 << 14, 1 << 22);
        let mut heap = GcHeap::new(
            &mem,
            HeapConfig {
                gc_threshold: u64::MAX,
                ..HeapConfig::default()
            },
        );
        let prof = gcprof::ProfHandle::enabled();
        heap.set_prof(prof.clone());
        let mut rooted: Vec<u64> = Vec::new();
        for op in &ops {
            match op {
                Op::Alloc(size) => {
                    if let Ok(addr) = heap.alloc(&mut mem, *size as u64) {
                        rooted.push(addr);
                    }
                }
                Op::Unroot(i) => {
                    if !rooted.is_empty() {
                        let idx = *i as usize % rooted.len();
                        rooted.swap_remove(idx);
                    }
                }
                Op::Collect => {
                    let mut roots = RootSet::new();
                    for &r in &rooted {
                        roots.add_word(r);
                    }
                    heap.collect(&mut mem, &roots);
                }
                // Pointer stores don't touch the profiler.
                Op::Link(..) | Op::Unlink(..) => {}
            }
        }
        let data = prof.snapshot().expect("enabled handle snapshots");
        let stats = heap.stats();
        assert_eq!(data.alloc_size.count(), stats.allocations, "case {case}");
        assert_eq!(data.alloc_size.sum(), stats.bytes_requested, "case {case}");
        assert_eq!(data.collections, stats.collections, "case {case}");
        assert_eq!(data.pause_ns.count(), stats.collections, "case {case}");
        assert_eq!(data.mark_ns.count(), stats.collections, "case {case}");
        assert_eq!(data.sweep_ns.count(), stats.collections, "case {case}");
        assert_eq!(
            data.sweep_freed_bytes.count(),
            stats.collections,
            "case {case}"
        );
        assert_eq!(data.pauses.len() as u64, stats.collections, "case {case}");
        for h in [&data.alloc_size, &data.pause_ns, &data.sweep_freed_bytes] {
            assert_eq!(h.counts().iter().sum::<u64>(), h.count(), "case {case}");
        }
        let census = heap.census();
        assert_eq!(census.live_objects, stats.objects_live, "case {case}");
        assert_eq!(census.live_bytes, stats.bytes_live, "case {case}");
        let class_objects: u64 = census.classes.iter().map(|c| c.live_objects).sum();
        assert_eq!(
            class_objects + census.large_objects,
            census.live_objects,
            "case {case}"
        );
    }
}

/// The bitmap heap against a `Vec<bool>` reference model. The shadow
/// keeps one bool per slot of every small page the heap has carved,
/// mirroring what the page's alloc bitmap must say; large objects are
/// tracked by extent. Randomized alloc/unroot/collect/sweep_all
/// sequences then check, at every step:
///
/// * a fresh allocation lands in a slot the shadow says is free, and no
///   *lower* slot of the serving page is free — the cursor and the
///   lazily swept pages both hand out the lowest set garbage bit, so
///   reuse is address-ordered within a page;
/// * after every collection the heap's bitmaps agree with the shadow
///   bit-for-bit, probed through `base()` (Some exactly on live slots);
/// * census and `HeapStats` agree with the model exactly — per class
///   and in total — even while `sweep_debt_pages` is outstanding, since
///   collections fold bitmaps and counts eagerly and only free-slot
///   *discovery* is deferred;
/// * `sweep_all` retires all debt without changing any live state;
/// * the whole address sequence replays byte-identically.
#[test]
fn bitmap_heap_matches_boolean_reference_model() {
    use gcheap::{HEAP_BASE, PAGE_SIZE, SIZE_CLASSES};
    let max_small = u64::from(*SIZE_CLASSES.last().expect("classes"));
    let page_of = |addr: u64| HEAP_BASE + (addr - HEAP_BASE) / PAGE_SIZE * PAGE_SIZE;

    #[derive(Default)]
    struct Model {
        /// page start → (slot size, one bool per slot: the alloc bitmap).
        pages: HashMap<u64, (u64, Vec<bool>)>,
        /// large object base → page-rounded extent.
        large: HashMap<u64, u64>,
        allocations: u64,
        freed: u64,
    }

    impl Model {
        fn live_objects(&self) -> u64 {
            let small: usize = self
                .pages
                .values()
                .map(|(_, bits)| bits.iter().filter(|b| **b).count())
                .sum();
            small as u64 + self.large.len() as u64
        }
        fn live_bytes(&self) -> u64 {
            let small: u64 = self
                .pages
                .values()
                .map(|(sz, bits)| sz * bits.iter().filter(|b| **b).count() as u64)
                .sum();
            small + self.large.values().sum::<u64>()
        }
    }

    let run = |ops: &[Op]| -> Vec<u64> {
        let mut mem = Memory::new(1 << 14, 1 << 14, 1 << 21);
        let mut heap = GcHeap::new(
            &mem,
            HeapConfig {
                gc_threshold: u64::MAX,
                ..HeapConfig::default()
            },
        );
        let mut model = Model::default();
        let mut rooted: Vec<u64> = Vec::new();
        let mut trace: Vec<u64> = Vec::new();
        for (step, op) in ops.iter().enumerate() {
            match op {
                Op::Alloc(size) => {
                    let Ok(addr) = heap.alloc(&mut mem, u64::from(*size)) else {
                        continue;
                    };
                    trace.push(addr);
                    model.allocations += 1;
                    rooted.push(addr);
                    let (base, extent) = heap.extent(addr).expect("just allocated");
                    assert_eq!(base, addr, "step {step}: allocation is not a base");
                    if extent <= max_small {
                        let page = page_of(addr);
                        let (sz, bits) = model.pages.entry(page).or_insert_with(|| {
                            (extent, vec![false; (PAGE_SIZE / extent) as usize])
                        });
                        assert_eq!(*sz, extent, "step {step}: page class changed under us");
                        let slot = ((addr - page) / extent) as usize;
                        assert!(!bits[slot], "step {step}: served slot {slot} was occupied");
                        assert!(
                            bits[..slot].iter().all(|b| *b),
                            "step {step}: slot {slot} served while a lower slot is free"
                        );
                        bits[slot] = true;
                    } else {
                        model.large.insert(addr, extent);
                    }
                }
                Op::Unroot(i) => {
                    if !rooted.is_empty() {
                        let idx = *i as usize % rooted.len();
                        rooted.swap_remove(idx);
                    }
                }
                // Rewired as "retire the sweep debt" for this machine:
                // links don't exercise the bitmaps, barriers do.
                Op::Link(..) | Op::Unlink(..) => {
                    heap.sweep_all();
                    assert_eq!(heap.stats().sweep_debt_pages, 0, "step {step}");
                }
                Op::Collect => {
                    let keep: HashSet<u64> = rooted.iter().copied().collect();
                    let mut roots = RootSet::new();
                    for &r in &rooted {
                        roots.add_word(r);
                    }
                    heap.collect(&mut mem, &roots);
                    for (page, (sz, bits)) in &mut model.pages {
                        for (slot, bit) in bits.iter_mut().enumerate() {
                            if *bit && !keep.contains(&(page + slot as u64 * *sz)) {
                                *bit = false;
                                model.freed += 1;
                            }
                        }
                    }
                    let dead: Vec<u64> = model
                        .large
                        .keys()
                        .copied()
                        .filter(|a| !keep.contains(a))
                        .collect();
                    model.freed += dead.len() as u64;
                    for a in dead {
                        model.large.remove(&a);
                    }
                    // Fully empty pages are reclaimed by the sweep and may
                    // be re-carved for another class; forget them.
                    model.pages.retain(|_, (_, bits)| bits.iter().any(|b| *b));
                    // Bit-for-bit bitmap agreement, probed through base():
                    // a live slot resolves to its own base, a dead slot
                    // resolves to nothing.
                    for (page, (sz, bits)) in &model.pages {
                        for (slot, bit) in bits.iter().enumerate() {
                            let addr = page + slot as u64 * sz;
                            let want = if *bit { Some(addr) } else { None };
                            assert_eq!(
                                heap.base(addr + sz / 2),
                                want,
                                "step {step}: bitmap disagrees at {addr:#x} slot {slot}"
                            );
                        }
                    }
                    // Census and stats agree with the model exactly, with
                    // or without outstanding sweep debt.
                    let stats = heap.stats();
                    let census = heap.census();
                    assert_eq!(stats.allocations, model.allocations, "step {step}");
                    assert_eq!(stats.objects_freed, model.freed, "step {step}");
                    assert_eq!(stats.objects_live, model.live_objects(), "step {step}");
                    assert_eq!(stats.bytes_live, model.live_bytes(), "step {step}");
                    assert_eq!(census.live_objects, stats.objects_live, "step {step}");
                    assert_eq!(census.live_bytes, stats.bytes_live, "step {step}");
                    for c in &census.classes {
                        let (want_objs, want_pages) =
                            model
                                .pages
                                .values()
                                .fold((0u64, 0u64), |(o, p), (sz, bits)| {
                                    if *sz == u64::from(c.obj_size) {
                                        (o + bits.iter().filter(|b| **b).count() as u64, p + 1)
                                    } else {
                                        (o, p)
                                    }
                                });
                        assert_eq!(
                            c.live_objects, want_objs,
                            "step {step} class {}",
                            c.obj_size
                        );
                        assert_eq!(c.pages, want_pages, "step {step} class {}", c.obj_size);
                    }
                    assert_eq!(
                        census.large_objects,
                        model.large.len() as u64,
                        "step {step}"
                    );
                    assert!(
                        stats.sweep_debt_pages <= census.small_pages,
                        "step {step}: more debt than carved pages"
                    );
                }
            }
        }
        trace
    };

    for case in 0..48 {
        let mut rng = Rng::for_case("bitmap_reference_model", case);
        let ops: Vec<Op> = (0..1 + rng.index(119))
            .map(|_| match rng.index(8) {
                // Weight toward allocation so pages fill, with an
                // occasional large object crossing the page boundary.
                0..=2 => Op::Alloc(8 + rng.below(592) as u16),
                3 => Op::Alloc(2048 + rng.below(8192) as u16),
                4 => Op::Unroot(rng.next_u8()),
                5 => Op::Link(rng.next_u8(), rng.next_u8()),
                _ => Op::Collect,
            })
            .collect();
        let first = run(&ops);
        let second = run(&ops);
        assert_eq!(
            first, second,
            "case {case}: address sequence not deterministic"
        );
    }
}

#[test]
fn base_resolves_everywhere_inside_and_only_inside() {
    for case in 0..96 {
        let mut rng = Rng::for_case("base_resolution", case);
        let size = 1 + rng.below(899) as u16;
        let probe = rng.below(1200) as u16;
        let mut mem = Memory::new(1 << 14, 1 << 14, 1 << 22);
        let mut heap = GcHeap::with_defaults(&mem);
        let addr = heap.alloc(&mut mem, size as u64).expect("fits");
        let (base, extent) = heap.extent(addr).expect("allocated");
        assert_eq!(base, addr);
        // Requested size + 1 extra byte always fit inside the extent.
        assert!(extent > size as u64);
        let p = addr + probe as u64;
        if (probe as u64) < extent {
            assert_eq!(heap.base(p), Some(addr), "size {size}, probe {probe}");
        }
    }
}

#[test]
fn same_obj_is_an_equivalence_within_an_object() {
    for case in 0..96 {
        let mut rng = Rng::for_case("same_obj_equivalence", case);
        let size = 8 + rng.below(492) as u16;
        let a = rng.below(500) as u16;
        let b = rng.below(500) as u16;
        let mut mem = Memory::new(1 << 14, 1 << 14, 1 << 22);
        let mut heap = GcHeap::with_defaults(&mem);
        let addr = heap.alloc(&mut mem, size as u64).expect("fits");
        let (_, extent) = heap.extent(addr).expect("allocated");
        let pa = addr + (a as u64) % extent;
        let pb = addr + (b as u64) % extent;
        assert!(heap.same_obj(pa, pa), "reflexive");
        assert!(heap.same_obj(pa, pb), "interior pointers of one object");
        assert!(heap.same_obj(pb, pa), "symmetric");
    }
}

/// The snapshot walk and the census walk must agree exactly: both
/// enumerate the same allocation bits, so per-class object/byte totals
/// (and the large-object and grand totals) match at *every* observation
/// point — not just at quiescence, but with lazy-sweep debt outstanding
/// and in the middle of an incremental mark cycle.
fn assert_snapshot_matches_census(heap: &GcHeap, when: &str) {
    let census = heap.census();
    let snap = heap.snapshot_nodes();
    let mut by_class: HashMap<u32, (u64, u64)> = HashMap::new();
    let mut large = (0u64, 0u64);
    for n in &snap.nodes {
        if n.large {
            large.0 += 1;
            large.1 += n.size;
        } else {
            let e = by_class.entry(n.class).or_insert((0, 0));
            e.0 += 1;
            e.1 += n.size;
        }
    }
    assert_eq!(census.live_objects, snap.objects(), "total objects {when}");
    assert_eq!(census.live_bytes, snap.bytes(), "total bytes {when}");
    assert_eq!(census.large_objects, large.0, "large objects {when}");
    assert_eq!(census.large_bytes, large.1, "large bytes {when}");
    for c in &census.classes {
        let (objects, bytes) = by_class.remove(&c.obj_size).unwrap_or((0, 0));
        assert_eq!(
            c.live_objects, objects,
            "class {} objects {when}",
            c.obj_size
        );
        assert_eq!(c.live_bytes, bytes, "class {} bytes {when}", c.obj_size);
    }
    assert!(
        by_class.is_empty(),
        "snapshot has classes the census omits {when}: {by_class:?}"
    );
}

#[test]
fn snapshot_totals_agree_with_census_at_every_observation_point() {
    // Interesting observation points only arise under the incremental
    // config: a tiny threshold and mark budget make collections start
    // (and *not* finish) inside ordinary allocation, and the lazy sweep
    // leaves debt pages behind. Count both states to prove the schedule
    // actually exercised them.
    let mut saw_marking = 0u32;
    let mut saw_debt = 0u32;
    for case in 0..24 {
        let mut rng = Rng::for_case("snapshot_census", case);
        let mut mem = Memory::new(1 << 14, 1 << 14, 1 << 22);
        let mut heap = GcHeap::new(
            &mem,
            HeapConfig {
                gc_threshold: 2048,
                mark_budget_bytes: 256,
                ..HeapConfig::bounded_pause()
            },
        );
        heap.set_snap_sites(true);
        let mut live: Vec<u64> = Vec::new();
        for step in 0..200 {
            let size = match rng.index(8) {
                // An occasional large object so the large side of the
                // census is exercised too.
                0 => 4096 + rng.below(8192),
                _ => 8 + rng.below(592),
            };
            let mut roots = RootSet::new();
            for &a in &live {
                roots.add_word(a);
            }
            let addr = heap
                .alloc_with_roots_sited(&mut mem, size, &roots, Some("prop@1:1"))
                .expect("schedule fits the heap");
            live.push(addr);
            // A sliding window of survivors: unrooted objects become
            // garbage that the next collection turns into sweep debt.
            if live.len() > 24 {
                live.remove(rng.index(live.len()));
            }
            if heap.marking_active() {
                saw_marking += 1;
            }
            if heap.stats().sweep_debt_pages > 0 {
                saw_debt += 1;
            }
            assert_snapshot_matches_census(&heap, &format!("case {case} step {step}"));
        }
        // And at the stable points a profiler would export from.
        let mut roots = RootSet::new();
        for &a in &live {
            roots.add_word(a);
        }
        heap.collect(&mut mem, &roots);
        assert_snapshot_matches_census(&heap, &format!("case {case} post-collect"));
        heap.sweep_all();
        assert_snapshot_matches_census(&heap, &format!("case {case} post-sweep"));
    }
    assert!(saw_marking > 0, "schedule never observed a mid-mark cycle");
    assert!(saw_debt > 0, "schedule never observed lazy-sweep debt");
}
