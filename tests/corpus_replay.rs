//! Tier-1 replay of the fuzzer regression corpus.
//!
//! Every program under `tests/corpus/` is a minimized reproducer (or a
//! hand-distilled equivalent) of a bug the differential fuzzer's
//! development flushed out; each file's header comment names the bug it
//! pins. The replay runs the full gcfuzz oracle — five modes, paranoid
//! safe-mode runs, verifier, determinism — plus the pretty-printer
//! round-trip the minimizer depends on, so a regression in any of those
//! fixes fails `cargo test` without re-running a campaign.

use cfront::pretty::program_to_c;
use cfront::{normalize_program, parse};
use std::fs;
use std::path::PathBuf;

fn corpus_entries() -> Vec<(String, String)> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let mut entries: Vec<(String, String)> = fs::read_dir(&dir)
        .expect("tests/corpus exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "c"))
        .map(|p| {
            let name = p
                .file_name()
                .expect("file name")
                .to_string_lossy()
                .into_owned();
            let src = fs::read_to_string(&p).expect("readable corpus file");
            (name, src)
        })
        .collect();
    entries.sort();
    entries
}

#[test]
fn every_corpus_entry_passes_the_differential_oracle() {
    let entries = corpus_entries();
    assert!(entries.len() >= 5, "corpus is populated");
    for (name, src) in &entries {
        if let Some(d) = gcfuzz::check(src) {
            panic!("{name}: {d}");
        }
    }
}

#[test]
fn every_corpus_entry_roundtrips_through_the_printer() {
    for (name, src) in &corpus_entries() {
        let p = parse(src).unwrap_or_else(|e| panic!("{name}: {e}"));
        let printed = program_to_c(&p);
        let q = parse(&printed).unwrap_or_else(|e| panic!("{name} reparse: {e}\n{printed}"));
        assert_eq!(
            normalize_program(&p),
            normalize_program(&q),
            "{name}: printer round-trip changed the tree:\n{printed}"
        );
    }
}
