//! Property tests over randomly generated C programs: every compilation
//! mode must compute the same result. This hunts optimizer and lowering
//! miscompilations far beyond the hand-written cases. Cases come from
//! the deterministic PRNG in `common`.

mod common;

use common::Rng;
use cvm::{compile_and_run, CompileOptions, VmOptions};

/// A tiny expression AST we generate and then print as C.
#[derive(Debug, Clone)]
enum E {
    Var(usize),
    Lit(i64),
    Add(Box<E>, Box<E>),
    Sub(Box<E>, Box<E>),
    Mul(Box<E>, Box<E>),
    Div(Box<E>, Box<E>),
    Cmp(Box<E>, Box<E>),
    Cond(Box<E>, Box<E>, Box<E>),
}

impl E {
    fn print(&self) -> String {
        match self {
            E::Var(i) => format!("v{}", i % 4),
            E::Lit(v) => format!("{v}"),
            E::Add(a, b) => format!("({} + {})", a.print(), b.print()),
            E::Sub(a, b) => format!("({} - {})", a.print(), b.print()),
            E::Mul(a, b) => format!("({} * {})", a.print(), b.print()),
            // Divisor forced nonzero to stay within defined C behaviour.
            E::Div(a, b) => format!("({} / (({} & 7) + 1))", a.print(), b.print()),
            E::Cmp(a, b) => format!("({} < {})", a.print(), b.print()),
            E::Cond(c, t, f) => format!("({} ? {} : {})", c.print(), t.print(), f.print()),
        }
    }
}

fn gen_expr(rng: &mut Rng, depth: u32) -> E {
    if depth == 0 || rng.chance(1, 3) {
        return if rng.chance(1, 2) {
            E::Var(rng.index(4))
        } else {
            E::Lit(rng.range_i64(-50, 50))
        };
    }
    match rng.index(6) {
        0 => E::Add(
            gen_expr(rng, depth - 1).into(),
            gen_expr(rng, depth - 1).into(),
        ),
        1 => E::Sub(
            gen_expr(rng, depth - 1).into(),
            gen_expr(rng, depth - 1).into(),
        ),
        2 => E::Mul(
            gen_expr(rng, depth - 1).into(),
            gen_expr(rng, depth - 1).into(),
        ),
        3 => E::Div(
            gen_expr(rng, depth - 1).into(),
            gen_expr(rng, depth - 1).into(),
        ),
        4 => E::Cmp(
            gen_expr(rng, depth - 1).into(),
            gen_expr(rng, depth - 1).into(),
        ),
        _ => E::Cond(
            gen_expr(rng, depth - 1).into(),
            gen_expr(rng, depth - 1).into(),
            gen_expr(rng, depth - 1).into(),
        ),
    }
}

/// A statement: assignment, loop-accumulate, or pointer round-trip.
#[derive(Debug, Clone)]
enum S {
    Assign(usize, E),
    AddAssign(usize, E),
    IfElse(E, usize, E, E),
    LoopSum(usize, u8, E),
    HeapRoundTrip(usize, E),
}

impl S {
    fn print(&self) -> String {
        match self {
            S::Assign(v, e) => format!("    v{} = {};\n", v % 4, e.print()),
            S::AddAssign(v, e) => format!("    v{} += {};\n", v % 4, e.print()),
            S::IfElse(c, v, t, f) => format!(
                "    if ({}) v{} = {}; else v{} = {};\n",
                c.print(),
                v % 4,
                t.print(),
                v % 4,
                f.print()
            ),
            S::LoopSum(v, n, e) => format!(
                "    for (it = 0; it < {}; it++) v{} += ({}) & 1023;\n",
                n % 8,
                v % 4,
                e.print()
            ),
            S::HeapRoundTrip(v, e) => format!(
                "    {{ long *cell = (long *) malloc(sizeof(long)); *cell = {}; v{} = *cell + 1; }}\n",
                e.print(),
                v % 4
            ),
        }
    }
}

fn gen_stmt(rng: &mut Rng) -> S {
    match rng.index(5) {
        0 => S::Assign(rng.index(4), gen_expr(rng, 3)),
        1 => S::AddAssign(rng.index(4), gen_expr(rng, 3)),
        2 => S::IfElse(
            gen_expr(rng, 3),
            rng.index(4),
            gen_expr(rng, 3),
            gen_expr(rng, 3),
        ),
        3 => S::LoopSum(rng.index(4), rng.next_u8(), gen_expr(rng, 3)),
        _ => S::HeapRoundTrip(rng.index(4), gen_expr(rng, 3)),
    }
}

fn gen_stmts(rng: &mut Rng, max_len: usize) -> Vec<S> {
    let len = 1 + rng.index(max_len - 1);
    (0..len).map(|_| gen_stmt(rng)).collect()
}

fn program_from(stmts: &[S]) -> String {
    let mut body = String::new();
    for s in stmts {
        body.push_str(&s.print());
    }
    format!(
        "int main(void) {{\n\
         \x20   long v0 = 1; long v1 = 2; long v2 = 3; long v3 = 4;\n\
         \x20   long it = 0;\n\
         {body}\
         \x20   putint((v0 + v1 * 3 + v2 * 5 + v3 * 7) & 0xffffff);\n\
         \x20   return 0;\n\
         }}\n"
    )
}

fn run_mode(src: &str, copts: &CompileOptions) -> Result<Vec<u8>, String> {
    let v = VmOptions {
        max_steps: 20_000_000,
        ..VmOptions::default()
    };
    compile_and_run(src, copts, &v)
        .map(|o| o.output)
        .map_err(|e| e.to_string())
}

#[test]
fn every_mode_computes_the_same_value() {
    for case in 0..48 {
        let mut rng = Rng::for_case("every_mode_same", case);
        let src = program_from(&gen_stmts(&mut rng, 10));
        let baseline = run_mode(&src, &CompileOptions::optimized())
            .unwrap_or_else(|e| panic!("-O failed on:\n{src}\n{e}"));
        for (name, opts) in [
            ("-O safe", CompileOptions::optimized_safe()),
            ("-g", CompileOptions::debug()),
            ("-g checked", CompileOptions::debug_checked()),
        ] {
            let got =
                run_mode(&src, &opts).unwrap_or_else(|e| panic!("{name} failed on:\n{src}\n{e}"));
            assert_eq!(got, baseline, "{name} diverges on:\n{src}");
        }
    }
}

#[test]
fn optimizer_ablations_agree() {
    for case in 0..48 {
        let mut rng = Rng::for_case("optimizer_ablations", case);
        let src = program_from(&gen_stmts(&mut rng, 8));
        let baseline = run_mode(&src, &CompileOptions::optimized())
            .unwrap_or_else(|e| panic!("-O failed on:\n{src}\n{e}"));
        // Each disguising pass individually disabled must not change results.
        type Ablate = fn(&mut cvm::OptOptions);
        let single: [(&str, Ablate); 6] = [
            ("reassociate", |o| o.reassociate = false),
            ("schedule", |o| o.schedule = false),
            ("licm", |o| o.licm = false),
            ("gvn", |o| o.gvn = false),
            ("sccp", |o| o.sccp = false),
            ("dse", |o| o.dse = false),
        ];
        for (name, ablate) in single {
            let mut opts = CompileOptions::optimized();
            ablate(&mut opts.opt);
            let got =
                run_mode(&src, &opts).unwrap_or_else(|e| panic!("ablation failed:\n{src}\n{e}"));
            assert_eq!(got, baseline, "ablation (no {name}) diverges on:\n{src}");
        }
        // And the strength+schedule pair: the pass most likely to
        // interact with later scheduling sweeps.
        let mut opts = CompileOptions::optimized();
        opts.opt.strength = false;
        opts.opt.schedule = false;
        let got = run_mode(&src, &opts).unwrap_or_else(|e| panic!("ablation failed:\n{src}\n{e}"));
        assert_eq!(got, baseline, "ablation (no strength+schedule) diverges");
    }
}

#[test]
fn optimizer_is_idempotent_on_generated_programs() {
    // The fixpoint driver stops when a sweep reports zero changes, so a
    // program that already went through `-O` must be a fixed point: a
    // second driver run reports zero fires for *every* registered pass,
    // on every function of any generator program.
    let opts = CompileOptions::optimized();
    for case in 0..40 {
        let src = gcfuzz::generate(11, case);
        let prog = cvm::compile(&src, &opts).unwrap_or_else(|e| panic!("case {case}: {e}"));
        for f in &prog.funcs {
            let mut again = f.clone();
            let ledger = cvm::optimize_func_ledger(&mut again, opts.opt);
            for (pass, fires) in &ledger.fires {
                assert_eq!(
                    *fires,
                    0,
                    "case {case}: pass {pass} fired {fires}x on a second run over `{}`:\n{}",
                    f.name,
                    f.dump()
                );
            }
            assert_eq!(&again, f, "case {case}: second run changed `{}`", f.name);
        }
    }
}
