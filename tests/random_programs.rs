//! Property tests over randomly generated C programs: every compilation
//! mode must compute the same result. This hunts optimizer and lowering
//! miscompilations far beyond the hand-written cases.

use cvm::{compile_and_run, CompileOptions, VmOptions};
use proptest::prelude::*;

/// A tiny expression AST we generate and then print as C.
#[derive(Debug, Clone)]
enum E {
    Var(usize),
    Lit(i64),
    Add(Box<E>, Box<E>),
    Sub(Box<E>, Box<E>),
    Mul(Box<E>, Box<E>),
    Div(Box<E>, Box<E>),
    Cmp(Box<E>, Box<E>),
    Cond(Box<E>, Box<E>, Box<E>),
}

impl E {
    fn print(&self) -> String {
        match self {
            E::Var(i) => format!("v{}", i % 4),
            E::Lit(v) => format!("{v}"),
            E::Add(a, b) => format!("({} + {})", a.print(), b.print()),
            E::Sub(a, b) => format!("({} - {})", a.print(), b.print()),
            E::Mul(a, b) => format!("({} * {})", a.print(), b.print()),
            // Divisor forced nonzero to stay within defined C behaviour.
            E::Div(a, b) => format!("({} / (({} & 7) + 1))", a.print(), b.print()),
            E::Cmp(a, b) => format!("({} < {})", a.print(), b.print()),
            E::Cond(c, t, f) => format!("({} ? {} : {})", c.print(), t.print(), f.print()),
        }
    }
}

fn expr_strategy() -> impl Strategy<Value = E> {
    let leaf = prop_oneof![
        (0usize..4).prop_map(E::Var),
        (-50i64..50).prop_map(E::Lit),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Add(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Sub(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Mul(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Div(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Cmp(a.into(), b.into())),
            (inner.clone(), inner.clone(), inner)
                .prop_map(|(c, t, f)| E::Cond(c.into(), t.into(), f.into())),
        ]
    })
}

/// A statement: assignment, loop-accumulate, or pointer round-trip.
#[derive(Debug, Clone)]
enum S {
    Assign(usize, E),
    AddAssign(usize, E),
    IfElse(E, usize, E, E),
    LoopSum(usize, u8, E),
    HeapRoundTrip(usize, E),
}

impl S {
    fn print(&self) -> String {
        match self {
            S::Assign(v, e) => format!("    v{} = {};\n", v % 4, e.print()),
            S::AddAssign(v, e) => format!("    v{} += {};\n", v % 4, e.print()),
            S::IfElse(c, v, t, f) => format!(
                "    if ({}) v{} = {}; else v{} = {};\n",
                c.print(),
                v % 4,
                t.print(),
                v % 4,
                f.print()
            ),
            S::LoopSum(v, n, e) => format!(
                "    for (it = 0; it < {}; it++) v{} += ({}) & 1023;\n",
                n % 8,
                v % 4,
                e.print()
            ),
            S::HeapRoundTrip(v, e) => format!(
                "    {{ long *cell = (long *) malloc(sizeof(long)); *cell = {}; v{} = *cell + 1; }}\n",
                e.print(),
                v % 4
            ),
        }
    }
}

fn stmt_strategy() -> impl Strategy<Value = S> {
    prop_oneof![
        ((0usize..4), expr_strategy()).prop_map(|(v, e)| S::Assign(v, e)),
        ((0usize..4), expr_strategy()).prop_map(|(v, e)| S::AddAssign(v, e)),
        (expr_strategy(), 0usize..4, expr_strategy(), expr_strategy())
            .prop_map(|(c, v, t, f)| S::IfElse(c, v, t, f)),
        ((0usize..4), any::<u8>(), expr_strategy()).prop_map(|(v, n, e)| S::LoopSum(v, n, e)),
        ((0usize..4), expr_strategy()).prop_map(|(v, e)| S::HeapRoundTrip(v, e)),
    ]
}

fn program_from(stmts: &[S]) -> String {
    let mut body = String::new();
    for s in stmts {
        body.push_str(&s.print());
    }
    format!(
        "int main(void) {{\n\
         \x20   long v0 = 1; long v1 = 2; long v2 = 3; long v3 = 4;\n\
         \x20   long it = 0;\n\
         {body}\
         \x20   putint((v0 + v1 * 3 + v2 * 5 + v3 * 7) & 0xffffff);\n\
         \x20   return 0;\n\
         }}\n"
    )
}

fn run_mode(src: &str, copts: &CompileOptions) -> Result<Vec<u8>, String> {
    let mut v = VmOptions::default();
    v.max_steps = 20_000_000;
    compile_and_run(src, copts, &v)
        .map(|o| o.output)
        .map_err(|e| e.to_string())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn every_mode_computes_the_same_value(stmts in proptest::collection::vec(stmt_strategy(), 1..10)) {
        let src = program_from(&stmts);
        let baseline = run_mode(&src, &CompileOptions::optimized())
            .unwrap_or_else(|e| panic!("-O failed on:\n{src}\n{e}"));
        for (name, opts) in [
            ("-O safe", CompileOptions::optimized_safe()),
            ("-g", CompileOptions::debug()),
            ("-g checked", CompileOptions::debug_checked()),
        ] {
            let got = run_mode(&src, &opts)
                .unwrap_or_else(|e| panic!("{name} failed on:\n{src}\n{e}"));
            prop_assert_eq!(
                &got, &baseline,
                "{} diverges on:\n{}", name, src
            );
        }
    }

    #[test]
    fn optimizer_ablations_agree(stmts in proptest::collection::vec(stmt_strategy(), 1..8)) {
        let src = program_from(&stmts);
        let baseline = run_mode(&src, &CompileOptions::optimized())
            .unwrap_or_else(|e| panic!("-O failed on:\n{src}\n{e}"));
        // Each disguising pass individually disabled must not change results.
        for (reassoc, sched) in [(false, true), (true, false), (false, false)] {
            let mut opts = CompileOptions::optimized();
            opts.opt.reassociate = reassoc;
            opts.opt.schedule = sched;
            let got = run_mode(&src, &opts).unwrap_or_else(|e| panic!("ablation failed:\n{src}\n{e}"));
            prop_assert_eq!(&got, &baseline, "ablation ({}, {}) diverges on:\n{}", reassoc, sched, src);
        }
    }
}
