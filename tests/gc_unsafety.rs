//! Experiment F2: the paper's headline hazard, as a test.
//!
//! The optimizer rewrites a final `p[i-1000]` so the only surviving value
//! points outside the object; with a collection at every allocation the
//! `-O` build loses the object, while the annotated build survives *with
//! the same optimizations enabled*.

use cvm::{compile, compile_and_run, CompileOptions, VmError, VmOptions};
use gcheap::HeapConfig;

const SRC: &str = r#"
    char hazard(char *p) {
        char *trigger = (char *) malloc(64);
        long i = (long) trigger[0] + 2000;
        return p[i - 1000];
    }
    int main(void) {
        char *buf = (char *) malloc(4000);
        long j;
        for (j = 0; j < 4000; j++) buf[j] = (char)(j % 50);
        return hazard(buf);
    }
"#;

fn aggressive_vm() -> VmOptions {
    VmOptions {
        heap_config: HeapConfig {
            gc_threshold: 1,
            ..HeapConfig::default()
        },
        ..VmOptions::default()
    }
}

#[test]
fn optimized_build_suffers_premature_collection() {
    let r = compile_and_run(SRC, &CompileOptions::optimized(), &aggressive_vm());
    match r {
        Err(VmError::UseAfterFree { .. }) => {}
        other => panic!("expected premature collection, got {other:?}"),
    }
}

#[test]
fn annotated_build_survives_the_same_optimizations() {
    let r = compile_and_run(SRC, &CompileOptions::optimized_safe(), &aggressive_vm())
        .expect("safe build runs to completion");
    // p[1000] = 1000 % 50 = 0.
    assert_eq!(r.exit_code, 0);
}

#[test]
fn debug_build_is_safe_without_annotations() {
    // "For most compilers, it is possible to guarantee GC-safety by
    // generating fully debuggable code."
    let r =
        compile_and_run(SRC, &CompileOptions::debug(), &aggressive_vm()).expect("-g build runs");
    assert_eq!(r.exit_code, 0);
}

#[test]
fn disabling_the_disguising_passes_also_avoids_the_hazard() {
    // "Such problems are in fact extremely rare with existing compilers" —
    // without reassociation+scheduling the baseline happens to be safe.
    let mut opts = CompileOptions::optimized();
    opts.opt.reassociate = false;
    opts.opt.schedule = false;
    let r = compile_and_run(SRC, &opts, &aggressive_vm()).expect("tame optimizer is safe");
    assert_eq!(r.exit_code, 0);
}

#[test]
fn the_disguise_is_visible_in_the_ir() {
    let prog = compile(SRC, &CompileOptions::optimized()).expect("compiles");
    let f = &prog.funcs[prog.func_index("hazard").expect("defined")];
    let dump = f.dump();
    assert!(
        dump.contains(", 1000)") && dump.contains("Sub(t"),
        "displaced base present:\n{dump}"
    );
    // The displaced base is computed before the allocation call.
    let block0 = dump
        .lines()
        .skip_while(|l| !l.starts_with("bb0"))
        .take_while(|l| !l.starts_with("bb1"))
        .collect::<Vec<_>>()
        .join("\n");
    let sub_pos = block0.find("Sub(t").expect("sub in entry block");
    let call_pos = block0
        .find("call Malloc")
        .expect("allocation in entry block");
    assert!(sub_pos < call_pos, "sub hoisted above the call:\n{block0}");
}

#[test]
fn safe_ir_keeps_the_base_alive_across_the_call() {
    use cvm::ir::Instr;
    use cvm::liveness::gc_root_maps;
    let prog = compile(SRC, &CompileOptions::optimized_safe()).expect("compiles");
    let fi = prog.func_index("hazard").expect("defined");
    let f = &prog.funcs[fi];
    // Find the param temp (p) and the allocation call.
    let p = f.param_temps[0];
    let maps = gc_root_maps(f);
    let mut found_alloc = false;
    for (bi, b) in f.blocks.iter().enumerate() {
        for (ii, ins) in b.instrs.iter().enumerate() {
            if let Instr::Call { .. } = ins {
                found_alloc = true;
                let roots = &maps[&(bi as u32, ii as u32)];
                assert!(
                    roots.contains(&p),
                    "KEEP_LIVE must keep p (t{}) live across the call; live: {roots:?}\n{}",
                    p.0,
                    f.dump()
                );
            }
        }
    }
    assert!(found_alloc, "hazard contains an allocation call");
}

// ---------------------------------------------------------------------
// The loop form of the hazard: LICM hoists the displaced base to the
// preheader, so inside the loop the only derived value points outside
// the object while allocations trigger collections — the paper's
// "induction variable optimizations" scenario. The variant part of the
// index flows through a load so it stays opaque: were it `t[0] + 1500`,
// a second reassociation sweep would merge the constants into `p + 500`
// — an *interior* pointer the conservative scan recognises — and the
// demonstration would quietly stop demonstrating anything.
// ---------------------------------------------------------------------

const LOOP_SRC: &str = r#"
    long hazard_loop(char *p) {
        long s = 0;
        long j;
        for (j = 0; j < 3; j++) {
            char *t = (char *) malloc(32);   /* GC trigger inside the loop */
            t[0] = 15;
            long i = (long) t[0] * 100;      /* 1500, opaque to the optimizer */
            s += p[i - 1000];
        }
        return s;
    }
    int main(void) {
        char *buf = (char *) malloc(4000);
        long j;
        for (j = 0; j < 4000; j++) buf[j] = (char)(j % 50);
        return (int)(hazard_loop(buf) % 256);
    }
"#;

#[test]
fn loop_hoisted_disguise_also_bites() {
    let r = compile_and_run(LOOP_SRC, &CompileOptions::optimized(), &aggressive_vm());
    match r {
        Err(VmError::UseAfterFree { .. }) => {}
        other => panic!("expected premature collection in the loop form, got {other:?}"),
    }
}

#[test]
fn loop_form_is_safe_when_annotated() {
    let r = compile_and_run(
        LOOP_SRC,
        &CompileOptions::optimized_safe(),
        &aggressive_vm(),
    )
    .expect("annotated loop survives");
    // p[500] = 500 % 50 = 0, three times.
    assert_eq!(r.exit_code, 0);
}

#[test]
fn disabling_licm_hides_the_loop_hazard() {
    let mut opts = CompileOptions::optimized();
    opts.opt.licm = false;
    opts.opt.schedule = false;
    let r = compile_and_run(LOOP_SRC, &opts, &aggressive_vm())
        .expect("without hoisting the base survives in-loop");
    assert_eq!(r.exit_code, 0);
}
