//! Cross-mode agreement: every workload produces identical output under
//! `-O`, `-O safe`, `-O safe+post`, and `-g`; `-g checked` agrees too
//! unless the workload contains the pointer bug the checker exists to
//! catch. This is the repository's strongest miscompilation guard.
//!
//! One measurement pass per workload feeds all assertions (measuring is
//! the expensive part: 5 modes × VM run × 3 machine codegens).

use gc_safety::{measure_workload, Mode, VmError};
use workloads::Scale;

#[test]
fn workloads_behave_like_the_paper_says() {
    let mut total_allocs = 0;
    for w in workloads::all() {
        let results = measure_workload(&w, Scale::Tiny)
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));

        // 1. Cross-mode output agreement.
        let baseline = results[&Mode::O].output().expect("baseline runs").to_vec();
        assert!(!baseline.is_empty(), "{} produces output", w.name);
        for (mode, m) in &results {
            match &m.outcome {
                Ok(out) => assert_eq!(
                    out.output, baseline,
                    "{}: {} diverges",
                    w.name,
                    mode.label()
                ),
                Err(VmError::CheckFailed { func, .. })
                    if *mode == Mode::GChecked && w.checked_fails =>
                {
                    // 2. The paper: gawk "immediately and correctly
                    //    detected a pointer arithmetic error".
                    assert_eq!(w.name, "gawk");
                    assert_eq!(func, "main", "the fields-1 idiom lives in main");
                }
                Err(e) => panic!("{}: {} failed: {e}", w.name, mode.label()),
            }
        }

        // 3. Clean workloads pass the checker (paper: gs had no errors;
        //    cordtest passed after its one benign bug was fixed).
        if !w.checked_fails {
            assert!(
                results[&Mode::GChecked].outcome.is_ok(),
                "{} must pass checking: {:?}",
                w.name,
                results[&Mode::GChecked].outcome
            );
        }

        // 4. Allocation intensity ("very pointer and allocation
        //    intensive") and annotation coverage.
        let heap = results[&Mode::O].outcome.as_ref().expect("ran").heap;
        assert!(heap.allocations > 10, "{} barely allocates", w.name);
        total_allocs += heap.allocations;

        // 5. Safe-mode cost is bounded: never slower than the fully
        //    debuggable build on any machine.
        for machine in ["SPARCstation 2", "SPARC 10", "Pentium 90"] {
            let base = &results[&Mode::O].costs[machine];
            let safe = &results[&Mode::OSafe].costs[machine];
            let g = &results[&Mode::G].costs[machine];
            assert!(
                safe.cycles >= base.cycles,
                "{} on {machine}: safe cannot beat the baseline",
                w.name
            );
            assert!(
                safe.cycles <= g.cycles,
                "{} on {machine}: safe must beat -g (safe={} -g={})",
                w.name,
                safe.cycles,
                g.cycles
            );
        }

        // 6. The postprocessor only removes cost, and never loses a
        //    KEEP_LIVE base.
        if results[&Mode::OSafePost].outcome.is_ok() {
            for machine in ["SPARCstation 2", "SPARC 10", "Pentium 90"] {
                let safe = &results[&Mode::OSafe].costs[machine];
                let post = &results[&Mode::OSafePost].costs[machine];
                assert!(
                    post.cycles <= safe.cycles,
                    "{} on {machine}: postprocessing must not slow code down",
                    w.name
                );
                assert!(post.size_bytes <= safe.size_bytes);
            }
            let stats = results[&Mode::OSafePost].peephole.expect("post ran");
            assert!(stats.total() > 0, "{}: the peephole found work", w.name);
        }
    }
    assert!(total_allocs > 300, "suite-wide allocation volume: {total_allocs}");
}
