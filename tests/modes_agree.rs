//! Cross-mode agreement: every workload produces identical output under
//! `-O`, `-O safe`, `-O safe+post`, and `-g`; `-g checked` agrees too
//! unless the workload contains the pointer bug the checker exists to
//! catch. This is the repository's strongest miscompilation guard.
//!
//! One measurement pass per workload feeds all assertions (measuring is
//! the expensive part: 5 modes × VM run × 3 machine codegens), and the
//! four passes run on scoped worker threads — measuring is embarrassingly
//! parallel across workloads, and every measured quantity the assertions
//! read is a deterministic cycle count.

use gc_safety::{measure_workload, Mode, VmError};
use gctrace::{TraceHandle, Value};
use workloads::Scale;

#[test]
fn workloads_behave_like_the_paper_says() {
    let measured: Vec<_> = std::thread::scope(|s| {
        let handles: Vec<_> = workloads::all()
            .into_iter()
            .map(|w| {
                s.spawn(move || {
                    let r = measure_workload(&w, Scale::Tiny)
                        .unwrap_or_else(|e| panic!("{}: {e}", w.name));
                    (w, r)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("measurement worker panicked"))
            .collect()
    });
    let mut total_allocs = 0;
    for (w, results) in measured {
        // 1. Cross-mode output agreement.
        let baseline = results[&Mode::O].output().expect("baseline runs").to_vec();
        assert!(!baseline.is_empty(), "{} produces output", w.name);
        for (mode, m) in &results {
            match &m.outcome {
                Ok(out) => assert_eq!(
                    out.output,
                    baseline,
                    "{}: {} diverges",
                    w.name,
                    mode.label()
                ),
                Err(VmError::CheckFailed { func, .. })
                    if *mode == Mode::GChecked && w.checked_fails =>
                {
                    // 2. The paper: gawk "immediately and correctly
                    //    detected a pointer arithmetic error".
                    assert_eq!(w.name, "gawk");
                    assert_eq!(func, "main", "the fields-1 idiom lives in main");
                }
                Err(e) => panic!("{}: {} failed: {e}", w.name, mode.label()),
            }
        }

        // 3. Clean workloads pass the checker (paper: gs had no errors;
        //    cordtest passed after its one benign bug was fixed).
        if !w.checked_fails {
            assert!(
                results[&Mode::GChecked].outcome.is_ok(),
                "{} must pass checking: {:?}",
                w.name,
                results[&Mode::GChecked].outcome
            );
        }

        // 4. Allocation intensity ("very pointer and allocation
        //    intensive") and annotation coverage.
        let heap = results[&Mode::O].outcome.as_ref().expect("ran").heap;
        assert!(heap.allocations > 10, "{} barely allocates", w.name);
        total_allocs += heap.allocations;

        // 5. Safe-mode cost is bounded: never slower than the fully
        //    debuggable build on any machine.
        for machine in ["SPARCstation 2", "SPARC 10", "Pentium 90"] {
            let base = &results[&Mode::O].costs[machine];
            let safe = &results[&Mode::OSafe].costs[machine];
            let g = &results[&Mode::G].costs[machine];
            assert!(
                safe.cycles >= base.cycles,
                "{} on {machine}: safe cannot beat the baseline",
                w.name
            );
            assert!(
                safe.cycles <= g.cycles,
                "{} on {machine}: safe must beat -g (safe={} -g={})",
                w.name,
                safe.cycles,
                g.cycles
            );
        }

        // 6. The postprocessor only removes cost, and never loses a
        //    KEEP_LIVE base.
        if results[&Mode::OSafePost].outcome.is_ok() {
            for machine in ["SPARCstation 2", "SPARC 10", "Pentium 90"] {
                let safe = &results[&Mode::OSafe].costs[machine];
                let post = &results[&Mode::OSafePost].costs[machine];
                assert!(
                    post.cycles <= safe.cycles,
                    "{} on {machine}: postprocessing must not slow code down",
                    w.name
                );
                assert!(post.size_bytes <= safe.size_bytes);
            }
            let stats = results[&Mode::OSafePost].peephole.expect("post ran");
            assert!(stats.total() > 0, "{}: the peephole found work", w.name);
        }
    }
    assert!(
        total_allocs > 300,
        "suite-wide allocation volume: {total_allocs}"
    );
}

/// The annotation audit trail is a faithful ledger: for every workload and
/// every annotating mode, the emitted events agree in count and kind with
/// the annotator's own statistics and its source-edit list.
#[test]
fn audit_trail_agrees_with_the_edit_list_across_all_modes() {
    for w in workloads::all() {
        for mode in Mode::all() {
            let Some(cfg) = mode.compile_options().annotate else {
                continue; // -O and -g run no annotator and emit no audit
            };
            let (trace, sink) = TraceHandle::memory();
            let annotated = gcsafe::annotate_program_traced(w.source, &cfg, &trace)
                .unwrap_or_else(|e| panic!("{}: {e:?}", w.name));
            let stats = &annotated.result.stats;
            let events = sink.snapshot();
            let ctx = format!("{} in mode {}", w.name, mode.label());

            assert!(
                events.iter().all(|e| e.stage == "annotate"),
                "{ctx}: non-annotate stage in the audit trail"
            );
            let count = |kind: &str| events.iter().filter(|e| e.kind == kind).count();
            let known = count("wrap")
                + count("skip")
                + count("incdec")
                + count("base_heuristic")
                + count("summary");
            assert_eq!(known, events.len(), "{ctx}: unknown event kind present");

            // Wrap events mirror the wraps the edit list carries out.
            assert_eq!(
                count("wrap"),
                stats.keep_lives + stats.checks,
                "{ctx}: one wrap event per inserted wrapper"
            );
            assert_eq!(count("incdec"), stats.incdec_specials, "{ctx}");
            assert_eq!(count("base_heuristic"), stats.base_heuristic_hits, "{ctx}");
            let skip_reason = |reason: &str| {
                events
                    .iter()
                    .filter(|e| {
                        e.kind == "skip" && e.get("reason") == Some(&Value::Str(reason.into()))
                    })
                    .count()
            };
            assert_eq!(skip_reason("opt1_copy"), stats.skipped_copies, "{ctx}");
            assert_eq!(
                skip_reason("opt4_call_sites_only"),
                stats.skipped_deref_wraps,
                "{ctx}"
            );

            // Every wrap and ++/-- rewrite becomes source edits; skips
            // edit nothing. The edit list can therefore never be shorter
            // than the wrap count, and an empty audit means an empty list.
            let rewrites = count("wrap") + count("incdec");
            let edits = annotated.result.edits.len();
            assert!(
                edits >= rewrites,
                "{ctx}: {rewrites} rewrite events but only {edits} edits"
            );
            assert_eq!(
                edits == 0,
                rewrites == 0,
                "{ctx}: audit/edit emptiness agrees"
            );

            // The per-function summaries restate the same totals.
            let sum_field = |field: &str| -> u64 {
                events
                    .iter()
                    .filter(|e| e.kind == "summary")
                    .map(|e| match e.get(field) {
                        Some(Value::UInt(v)) => *v,
                        other => panic!("{ctx}: summary field {field} is {other:?}"),
                    })
                    .sum()
            };
            assert_eq!(sum_field("keep_lives") as usize, stats.keep_lives, "{ctx}");
            assert_eq!(sum_field("checks") as usize, stats.checks, "{ctx}");

            // Annotating modes always find work in these pointer-heavy
            // workloads.
            assert!(
                count("wrap") > 0,
                "{ctx}: no wraps in a pointer-heavy workload"
            );
        }
    }
}
