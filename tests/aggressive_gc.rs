//! Stress: run every workload with a collection at *every* allocation —
//! the asynchronous-collector worst case the paper's multi-threaded
//! discussion targets ("all transformations are safe in a multi-threaded
//! environment, with an asynchronously triggered collector").
//!
//! Under this regime every disguised pointer is fatal, so a clean run of
//! all four allocation-heavy workloads in `-O safe` mode is the strongest
//! empirical form of the paper's correctness argument this repository can
//! execute.

use cvm::{compile_and_run, CompileOptions, VmOptions};
use gcheap::HeapConfig;
use workloads::Scale;

fn paranoid_vm(input: Vec<u8>) -> VmOptions {
    VmOptions {
        heap_config: HeapConfig {
            gc_threshold: 1,
            ..HeapConfig::default()
        },
        input,
        ..VmOptions::default()
    }
}

#[test]
fn safe_builds_survive_collection_at_every_allocation() {
    for w in workloads::all() {
        let input = (w.input)(Scale::Tiny);
        let base_vm = VmOptions {
            input: input.clone(),
            ..VmOptions::default()
        };
        let expected = compile_and_run(w.source, &CompileOptions::optimized(), &base_vm)
            .unwrap_or_else(|e| panic!("{} baseline: {e}", w.name))
            .output;
        let out = compile_and_run(
            w.source,
            &CompileOptions::optimized_safe(),
            &paranoid_vm(input),
        )
        .unwrap_or_else(|e| panic!("{} -O safe under paranoid GC: {e}", w.name));
        assert_eq!(
            out.output, expected,
            "{} output changed under paranoid GC",
            w.name
        );
        assert!(
            out.heap.collections > out.heap.allocations / 2,
            "{}: the paranoid regime really collected ({} collections, {} allocations)",
            w.name,
            out.heap.collections,
            out.heap.allocations
        );
    }
}

#[test]
fn debug_builds_survive_too() {
    // "For most compilers, it is possible to guarantee GC-safety by
    // generating fully debuggable code."
    for w in workloads::all() {
        let input = (w.input)(Scale::Tiny);
        compile_and_run(w.source, &CompileOptions::debug(), &paranoid_vm(input))
            .unwrap_or_else(|e| panic!("{} -g under paranoid GC: {e}", w.name));
    }
}

#[test]
fn annotated_ir_passes_the_static_safety_verifier() {
    // The machine-checked form of the paper's Correctness section: every
    // heap-capable address in the annotated, optimized workloads derives
    // from a protection point.
    for w in workloads::all() {
        let prog = cvm::compile(w.source, &CompileOptions::optimized_safe())
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        let violations = cvm::verify_program(&prog, false);
        assert!(
            violations.is_empty(),
            "{}: unprotected derived addresses: {:?}",
            w.name,
            violations
        );
    }
}

#[test]
fn unannotated_workloads_do_not_verify() {
    // Sanity for the verifier itself: plain optimized builds of the
    // pointer-heavy workloads contain raw derived addresses.
    let mut flagged = 0;
    for w in workloads::all() {
        let prog = cvm::compile(w.source, &CompileOptions::optimized())
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        flagged += cvm::verify_program(&prog, false).len();
    }
    assert!(
        flagged > 10,
        "the verifier finds raw addressing in baselines: {flagged}"
    );
}

#[test]
fn safe_mode_adds_little_register_pressure() {
    // The Analysis section: "If the overhead were primarily due to
    // additional register pressure and hence register spills, one would
    // have expected much more substantial performance degradation on the
    // Intel Pentium machine". Even with six registers, the safe build
    // must add only a handful of spills.
    let pentium = asmpost::Machine::pentium90();
    for w in workloads::all() {
        let count = |opts: &CompileOptions| -> u32 {
            let prog = cvm::compile(w.source, opts).expect("compiles");
            asmpost::codegen_program(&prog, &pentium)
                .iter()
                .map(|f| f.spill_count)
                .sum()
        };
        let base = count(&CompileOptions::optimized());
        let safe = count(&CompileOptions::optimized_safe());
        assert!(
            safe <= base + 8,
            "{}: safe build ballooned Pentium spills ({base} → {safe})",
            w.name
        );
    }
}
