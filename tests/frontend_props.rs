//! Property tests for the frontend: pretty-print/re-parse round trips
//! over randomly generated programs, and edit-list algebra.

use cfront::edit::EditList;
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Random C program generation (well-formed by construction).
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum CExpr {
    Var(usize),
    Lit(i64),
    Bin(&'static str, Box<CExpr>, Box<CExpr>),
    Neg(Box<CExpr>),
    Ternary(Box<CExpr>, Box<CExpr>, Box<CExpr>),
}

impl CExpr {
    fn print(&self) -> String {
        match self {
            CExpr::Var(i) => format!("x{}", i % 3),
            CExpr::Lit(v) => format!("{v}"),
            CExpr::Bin(op, a, b) => format!("({} {op} {})", a.print(), b.print()),
            CExpr::Neg(a) => format!("(-({}))", a.print()),
            CExpr::Ternary(c, t, f) => {
                format!("({} ? {} : {})", c.print(), t.print(), f.print())
            }
        }
    }
}

fn cexpr() -> impl Strategy<Value = CExpr> {
    let leaf = prop_oneof![
        (0usize..3).prop_map(CExpr::Var),
        (-99i64..99).prop_map(CExpr::Lit),
    ];
    leaf.prop_recursive(4, 32, 3, |inner| {
        let ops = prop_oneof![
            Just("+"),
            Just("-"),
            Just("*"),
            Just("&"),
            Just("|"),
            Just("^"),
            Just("<<"),
            Just("<"),
            Just("=="),
            Just("&&"),
        ];
        prop_oneof![
            (ops, inner.clone(), inner.clone())
                .prop_map(|(op, a, b)| CExpr::Bin(op, a.into(), b.into())),
            inner.clone().prop_map(|a| CExpr::Neg(a.into())),
            (inner.clone(), inner.clone(), inner)
                .prop_map(|(c, t, f)| CExpr::Ternary(c.into(), t.into(), f.into())),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// parse → pretty-print → parse → pretty-print is a fixpoint: the
    /// second print must equal the first (printer/parser agree on
    /// precedence and associativity).
    #[test]
    fn pretty_print_roundtrip_is_a_fixpoint(e in cexpr()) {
        let src = format!(
            "long f(long x0, long x1, long x2) {{ return {}; }}",
            e.print()
        );
        let prog1 = cfront::parse(&src).expect("generated source parses");
        let printed1 = cfront::pretty::program_to_c(&prog1);
        let prog2 = cfront::parse(&printed1)
            .unwrap_or_else(|err| panic!("reparse failed: {err}\n{printed1}"));
        let printed2 = cfront::pretty::program_to_c(&prog2);
        prop_assert_eq!(printed1, printed2);
    }

    /// The printed program is semantically identical to the original:
    /// both compile and compute the same value.
    #[test]
    fn pretty_printed_program_computes_the_same(e in cexpr()) {
        let body = e.print();
        let src = format!(
            "int main(void) {{ long x0 = 5; long x1 = -3; long x2 = 7;\n\
             putint(({body}) & 0xffff); return 0; }}"
        );
        let printed = cfront::pretty::program_to_c(&cfront::parse(&src).expect("parses"));
        let run = |s: &str| {
            cvm::compile_and_run(
                s,
                &cvm::CompileOptions::optimized(),
                &cvm::VmOptions::default(),
            )
            .expect("runs")
            .output
        };
        prop_assert_eq!(run(&src), run(&printed));
    }

    /// Non-overlapping edits: bytes outside all edited ranges survive
    /// application verbatim, in order.
    #[test]
    fn edits_preserve_untouched_bytes(
        src in "[a-z]{20,60}",
        cuts in proptest::collection::vec((0usize..50, 1usize..4, "[A-Z]{0,5}"), 0..6),
    ) {
        // Normalise to sorted, non-overlapping edits inside the string.
        let mut spans: Vec<(usize, usize, String)> = Vec::new();
        let mut last_end = 0usize;
        let mut sorted = cuts;
        sorted.sort_by_key(|c| c.0);
        for (pos, len, ins) in sorted {
            let pos = pos.min(src.len());
            if pos < last_end { continue; }
            let len = len.min(src.len() - pos);
            spans.push((pos, len, ins));
            last_end = pos + len;
        }
        let mut el = EditList::new();
        for (pos, len, ins) in &spans {
            el.replace(*pos, *len, ins.clone());
        }
        let out = el.apply(&src).expect("valid edits apply");
        // Reconstruct the expectation directly.
        let mut expect = String::new();
        let mut cursor = 0usize;
        for (pos, len, ins) in &spans {
            expect.push_str(&src[cursor..*pos]);
            expect.push_str(ins);
            cursor = pos + len;
        }
        expect.push_str(&src[cursor..]);
        prop_assert_eq!(out, expect);
    }

    /// Applying an empty edit list is the identity for any source.
    #[test]
    fn empty_edit_list_is_identity(src in ".{0,200}") {
        prop_assert_eq!(EditList::new().apply(&src).expect("applies"), src);
    }
}
