//! Property tests for the frontend: pretty-print/re-parse round trips
//! over randomly generated programs, and edit-list algebra. Cases are
//! generated with the deterministic PRNG in `common` (the build is
//! offline, so no external property-testing framework).

mod common;

use cfront::edit::EditList;
use common::Rng;

// ---------------------------------------------------------------------
// Random C program generation (well-formed by construction).
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum CExpr {
    Var(usize),
    Lit(i64),
    Bin(&'static str, Box<CExpr>, Box<CExpr>),
    Neg(Box<CExpr>),
    Ternary(Box<CExpr>, Box<CExpr>, Box<CExpr>),
}

impl CExpr {
    fn print(&self) -> String {
        match self {
            CExpr::Var(i) => format!("x{}", i % 3),
            CExpr::Lit(v) => format!("{v}"),
            CExpr::Bin(op, a, b) => format!("({} {op} {})", a.print(), b.print()),
            CExpr::Neg(a) => format!("(-({}))", a.print()),
            CExpr::Ternary(c, t, f) => {
                format!("({} ? {} : {})", c.print(), t.print(), f.print())
            }
        }
    }
}

const OPS: [&str; 10] = ["+", "-", "*", "&", "|", "^", "<<", "<", "==", "&&"];

fn gen_cexpr(rng: &mut Rng, depth: u32) -> CExpr {
    if depth == 0 || rng.chance(1, 3) {
        return if rng.chance(1, 2) {
            CExpr::Var(rng.index(3))
        } else {
            CExpr::Lit(rng.range_i64(-99, 99))
        };
    }
    match rng.index(3) {
        0 => CExpr::Bin(
            OPS[rng.index(OPS.len())],
            gen_cexpr(rng, depth - 1).into(),
            gen_cexpr(rng, depth - 1).into(),
        ),
        1 => CExpr::Neg(gen_cexpr(rng, depth - 1).into()),
        _ => CExpr::Ternary(
            gen_cexpr(rng, depth - 1).into(),
            gen_cexpr(rng, depth - 1).into(),
            gen_cexpr(rng, depth - 1).into(),
        ),
    }
}

/// parse → pretty-print → parse → pretty-print is a fixpoint: the
/// second print must equal the first (printer/parser agree on
/// precedence and associativity).
fn assert_roundtrip_fixpoint(e: &CExpr) {
    let src = format!(
        "long f(long x0, long x1, long x2) {{ return {}; }}",
        e.print()
    );
    let prog1 = cfront::parse(&src).expect("generated source parses");
    let printed1 = cfront::pretty::program_to_c(&prog1);
    let prog2 =
        cfront::parse(&printed1).unwrap_or_else(|err| panic!("reparse failed: {err}\n{printed1}"));
    let printed2 = cfront::pretty::program_to_c(&prog2);
    assert_eq!(printed1, printed2, "not a fixpoint for:\n{src}");
}

#[test]
fn pretty_print_roundtrip_is_a_fixpoint() {
    for case in 0..128 {
        let mut rng = Rng::for_case("roundtrip_fixpoint", case);
        let e = gen_cexpr(&mut rng, 4);
        assert_roundtrip_fixpoint(&e);
    }
}

/// Historical shrink from the fuzzer: `x0 + (-(-1))` once reprinted
/// differently on the second pass.
#[test]
fn regression_neg_of_negative_literal() {
    let e = CExpr::Bin(
        "+",
        CExpr::Var(0).into(),
        CExpr::Neg(CExpr::Lit(-1).into()).into(),
    );
    assert_roundtrip_fixpoint(&e);
}

/// The printed program is semantically identical to the original:
/// both compile and compute the same value.
#[test]
fn pretty_printed_program_computes_the_same() {
    for case in 0..128 {
        let mut rng = Rng::for_case("print_semantics", case);
        let body = gen_cexpr(&mut rng, 4).print();
        let src = format!(
            "int main(void) {{ long x0 = 5; long x1 = -3; long x2 = 7;\n\
             putint(({body}) & 0xffff); return 0; }}"
        );
        let printed = cfront::pretty::program_to_c(&cfront::parse(&src).expect("parses"));
        let run = |s: &str| {
            cvm::compile_and_run(
                s,
                &cvm::CompileOptions::optimized(),
                &cvm::VmOptions::default(),
            )
            .expect("runs")
            .output
        };
        assert_eq!(
            run(&src),
            run(&printed),
            "print changed semantics of:\n{src}"
        );
    }
}

/// Non-overlapping edits: bytes outside all edited ranges survive
/// application verbatim, in order.
#[test]
fn edits_preserve_untouched_bytes() {
    for case in 0..128 {
        let mut rng = Rng::for_case("edit_bytes", case);
        let src: String = (0..rng.range_i64(20, 60))
            .map(|_| (b'a' + rng.next_u8() % 26) as char)
            .collect();
        let n_cuts = rng.index(6);
        let mut cuts: Vec<(usize, usize, String)> = (0..n_cuts)
            .map(|_| {
                let pos = rng.index(50);
                let len = 1 + rng.index(3);
                let ins: String = (0..rng.index(6))
                    .map(|_| (b'A' + rng.next_u8() % 26) as char)
                    .collect();
                (pos, len, ins)
            })
            .collect();
        // Normalise to sorted, non-overlapping edits inside the string.
        let mut spans: Vec<(usize, usize, String)> = Vec::new();
        let mut last_end = 0usize;
        cuts.sort_by_key(|c| c.0);
        for (pos, len, ins) in cuts {
            let pos = pos.min(src.len());
            if pos < last_end {
                continue;
            }
            let len = len.min(src.len() - pos);
            spans.push((pos, len, ins));
            last_end = pos + len;
        }
        let mut el = EditList::new();
        for (pos, len, ins) in &spans {
            el.replace(*pos, *len, ins.clone());
        }
        let out = el.apply(&src).expect("valid edits apply");
        // Reconstruct the expectation directly.
        let mut expect = String::new();
        let mut cursor = 0usize;
        for (pos, len, ins) in &spans {
            expect.push_str(&src[cursor..*pos]);
            expect.push_str(ins);
            cursor = pos + len;
        }
        expect.push_str(&src[cursor..]);
        assert_eq!(out, expect, "edits {spans:?} misapplied to {src:?}");
    }
}

/// Applying an empty edit list is the identity for any source.
#[test]
fn empty_edit_list_is_identity() {
    for case in 0..64 {
        let mut rng = Rng::for_case("empty_edits", case);
        let src: String = (0..rng.index(200))
            .map(|_| {
                // Mixed printable ASCII plus the odd multibyte char.
                match rng.index(12) {
                    0 => 'λ',
                    1 => '\n',
                    _ => (b' ' + rng.next_u8() % 95) as char,
                }
            })
            .collect();
        assert_eq!(EditList::new().apply(&src).expect("applies"), src);
    }
}
