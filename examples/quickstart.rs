//! Quickstart: annotate a function for GC-safety, see the transformation,
//! and run the paper's measurement pipeline on a toy program.

use gc_safety::{measure_source, Mode};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's opening example: a final reference p[i-1000] that an
    // optimizer may rewrite so the only pointer to the object is disguised.
    let src = r#"
        char f(char *p, long i) { return p[i - 1000]; }
        int main(void) {
            char *buf = (char *) malloc(2000);
            long i;
            for (i = 0; i < 2000; i++) buf[i] = (char)(i % 100);
            putint(f(buf + 0, 1500));
            putchar('\n');
            return 0;
        }
    "#;

    // 1. The source-to-source preprocessor (GC-safe mode).
    let annotated = gcsafe::annotate_program(src, &gcsafe::Config::gc_safe())?;
    println!("--- annotated source (KEEP_LIVE inserted) ---");
    println!("{}", annotated.annotated_source.trim());
    println!(
        "inserted {} KEEP_LIVE wrappers\n",
        annotated.result.stats.keep_lives
    );

    // 2. Compile + run + cost every mode on every machine.
    for mode in Mode::all() {
        let m = measure_source(src, b"", mode)?;
        let out = m
            .outcome
            .as_ref()
            .map(|o| String::from_utf8_lossy(&o.output).trim().to_string())
            .unwrap_or_else(|e| format!("<{e}>"));
        print!("{:14} output={out:6}", mode.label());
        for (machine, cost) in &m.costs {
            print!(
                "  {machine}: {} cycles / {} bytes",
                cost.cycles, cost.size_bytes
            );
        }
        println!();
    }
    Ok(())
}
