//! The debugging application (the paper's "Debugging Applications" and
//! "Source Checking" sections): the *same* annotation points, with
//! `KEEP_LIVE` replaced by `GC_same_obj`, become a pointer-arithmetic
//! checker — and it catches the bug the paper found in gawk.

use cvm::{compile_and_run, CompileOptions, VmError, VmOptions};
use workloads::Scale;

fn main() {
    // 1. The one-before-the-array idiom, in miniature.
    let idiom = r#"
        int main(void) {
            long *a = (long *) malloc(10 * sizeof(long));
            long *one_based = a - 1;        /* "technique" = bug */
            long i;
            for (i = 1; i <= 10; i++) one_based[i] = i * i;
            return (int) one_based[3];
        }
    "#;
    println!("== the 1-based-array idiom ==");
    for (name, opts) in [
        ("-O         ", CompileOptions::optimized()),
        ("-g checked ", CompileOptions::debug_checked()),
    ] {
        match compile_and_run(idiom, &opts, &VmOptions::default()) {
            Ok(out) => println!("{name} exit={} — tolerated", out.exit_code),
            Err(VmError::CheckFailed { value, base, .. }) => {
                println!("{name} CHECK FAILED: {value:#x} is not in the same object as {base:#x}")
            }
            Err(e) => println!("{name} error: {e}"),
        }
    }

    // 2. The paper's preprocessor rewrites ++p into a checked call.
    let src = "void f(char *p) { ++p; p += 3; }";
    let checked = gcsafe::annotate_program(src, &gcsafe::Config::checked()).expect("annotates");
    println!("\n== checked-mode preprocessor output ==");
    println!("{}", checked.annotated_source.trim());

    // 3. Run mini-gawk under checking: "It immediately and correctly
    //    detected a pointer arithmetic error" — the paper's <fails> cell.
    println!("\n== mini-gawk under the checker ==");
    let gawk = workloads::by_name("gawk").expect("exists");
    let input = (gawk.input)(Scale::Tiny);
    let vm = VmOptions {
        input: input.clone(),
        ..VmOptions::default()
    };
    match compile_and_run(gawk.source, &CompileOptions::optimized(), &vm) {
        Ok(out) => println!(
            "unchecked: runs correctly → {}",
            String::from_utf8_lossy(&out.output).trim()
        ),
        Err(e) => println!("unchecked: unexpected error: {e}"),
    }
    let vm = VmOptions {
        input,
        ..VmOptions::default()
    };
    match compile_and_run(gawk.source, &CompileOptions::debug_checked(), &vm) {
        Ok(_) => println!("checked: unexpectedly passed"),
        Err(VmError::CheckFailed { func, .. }) => println!(
            "checked: pointer arithmetic error detected in '{func}' — the paper's <fails> cell"
        ),
        Err(e) => println!("checked: {e}"),
    }

    // 4. And gs, "an unusually clean coding style": no errors to find.
    println!("\n== mini-gs under the checker ==");
    let gs = workloads::by_name("gs").expect("exists");
    let vm = VmOptions {
        input: (gs.input)(Scale::Tiny),
        ..VmOptions::default()
    };
    match compile_and_run(gs.source, &CompileOptions::debug_checked(), &vm) {
        Ok(out) => println!(
            "checked: no pointer arithmetic errors → {}",
            String::from_utf8_lossy(&out.output).trim()
        ),
        Err(e) => println!("checked: {e}"),
    }
}
