//! The C-to-C preprocessor as a command-line tool — the artifact the
//! paper actually built ("We have built a GC-safe compiler for ANSI C …
//! by writing a C-to-C preprocessor that annotates the input program").
//!
//! Usage:
//!
//! ```text
//! cargo run --example preprocessor -- [--checked] [--base-heuristic] \
//!     [--call-sites-only] [--no-skip-copies] [file.c]
//! ```
//!
//! Reads the file (or a built-in demo when omitted), prints the annotated
//! source produced by applying the edit list ("insertions and deletions,
//! sorted by character position in the original source string") and the
//! annotation statistics, plus any pointer-hygiene warnings.

use gcsafe::{annotate_program, Config, Mode};

const DEMO: &str = r#"/* The paper's canonical string-copy loop plus assorted arithmetic. */
struct buffer { int len; char data[64]; };

void copy(char *s, char *t) {
    char *p;
    char *q;
    p = s;
    q = t;
    while (*p++ = *q++);
}

char *advance(char *base, long n) {
    base += n;
    return base + 1;
}

int sum(struct buffer *b) {
    int i;
    int acc = 0;
    for (i = 0; i < b->len; i++) acc += b->data[i];
    return acc;
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = Config::gc_safe();
    let mut path = None;
    for a in &args {
        match a.as_str() {
            "--checked" => config.mode = Mode::Checked,
            "--base-heuristic" => config.base_heuristic = true,
            "--call-sites-only" => config.call_sites_only = true,
            "--no-skip-copies" => config.skip_copies = false,
            other => path = Some(other.to_string()),
        }
    }
    let source = match &path {
        Some(p) => std::fs::read_to_string(p)?,
        None => DEMO.to_string(),
    };
    let annotated = annotate_program(&source, &config)?;
    println!("{}", annotated.annotated_source);
    eprintln!("/* --- preprocessor report ---");
    eprintln!(" * mode: {:?}", config.mode);
    eprintln!(
        " * KEEP_LIVE inserted:   {}",
        annotated.result.stats.keep_lives
    );
    eprintln!(" * GC_same_obj inserted: {}", annotated.result.stats.checks);
    eprintln!(
        " * ++/-- specialized:    {}",
        annotated.result.stats.incdec_specials
    );
    eprintln!(
        " * copies skipped:       {}",
        annotated.result.stats.skipped_copies
    );
    eprintln!(
        " * base heuristic hits:  {}",
        annotated.result.stats.base_heuristic_hits
    );
    for w in &annotated.sema.warnings {
        eprintln!(" * warning: {} (at byte {})", w.message, w.span.start);
    }
    eprintln!(" */");
    Ok(())
}
