//! The paper's headline hazard, reproduced end to end (experiment F2).
//!
//! "A conventional C compiler may replace a final reference `p[i-1000]`
//! … by the sequence `p = p - 1000; … p[i] …`. If a garbage collection is
//! triggered between the replacement of p and the reference to p[i], there
//! may be no recognizable pointer to the object referenced by p."
//!
//! Our optimizer performs exactly that rewrite (displacement
//! reassociation + eager scheduling past the allocation call). With
//! collections at every allocation:
//!
//! * the `-O` build **loses the object** — the VM traps the access to
//!   freed memory;
//! * the `-O safe` build (same optimizations!) survives, because
//!   `KEEP_LIVE`'s base operand keeps `p` live across the call.

use cvm::{compile, compile_and_run, CompileOptions, VmError, VmOptions};
use gcheap::HeapConfig;

const SRC: &str = r#"
    char hazard(char *p) {
        /* An allocation between the (about to be disguised) address
           computation and the use of the derived pointer. */
        char *trigger = (char *) malloc(64);
        long i = (long) trigger[0] + 2000;   /* i depends on the call */
        return p[i - 1000];                  /* the paper's p[i-1000] */
    }

    int main(void) {
        char *buf = (char *) malloc(4000);
        long j;
        for (j = 0; j < 4000; j++) buf[j] = (char)(j % 50);
        /* After this call starts, buf's only copy is hazard's parameter. */
        return hazard(buf);
    }
"#;

fn vm_opts() -> VmOptions {
    // Collect at every allocation — the asynchronous-collector worst case.
    VmOptions {
        heap_config: HeapConfig {
            gc_threshold: 1,
            ..HeapConfig::default()
        },
        ..VmOptions::default()
    }
}

fn main() {
    println!("== the generated code ==\n");
    let prog = compile(SRC, &CompileOptions::optimized()).expect("compiles");
    let f = &prog.funcs[prog.func_index("hazard").expect("defined")];
    println!("-O IR for hazard() — note `Sub(p, 1000)` hoisted above the call,\nand p dead afterwards:\n\n{}", f.dump());

    let safe_prog = compile(SRC, &CompileOptions::optimized_safe()).expect("compiles");
    let fs = &safe_prog.funcs[safe_prog.func_index("hazard").expect("defined")];
    println!(
        "-O safe IR — same rewrite, but keep_live keeps p visible:\n\n{}",
        fs.dump()
    );

    println!("== running with a collection at every allocation ==\n");
    for (name, opts) in [
        ("-O        ", CompileOptions::optimized()),
        ("-O safe   ", CompileOptions::optimized_safe()),
        ("-g        ", CompileOptions::debug()),
        ("-g checked", CompileOptions::debug_checked()),
    ] {
        match compile_and_run(SRC, &opts, &vm_opts()) {
            Ok(out) => println!("{name}  exit={}  (object survived)", out.exit_code),
            Err(VmError::UseAfterFree { addr, .. }) => {
                println!("{name}  PREMATURE COLLECTION — access to freed object at {addr:#x}")
            }
            Err(e) => println!("{name}  error: {e}"),
        }
    }
    println!(
        "\nThe -O build loses the object: the only remaining value is the\n\
         out-of-object intermediate p-1000, which the conservative collector\n\
         rightly does not recognize. KEEP_LIVE(e, BASE(e)) does not suppress\n\
         the optimization — it just keeps the base pointer live until the\n\
         derived value is visible. That is the paper's entire point."
    );
}
