//! The paper's *Extensions* section: "It is possible to extend this
//! approach to a collector which considers interior pointers as valid
//! only if they originate from the stack or registers … This requires
//! asserting that the client program stores only pointers to the base of
//! an object in the heap or in statically allocated variables."
//!
//! This demo runs the same program under both collector policies and
//! shows the base-only policy dropping an object that is reachable *only*
//! through a heap-stored interior pointer — and retaining it when the
//! program stores the base, as the extension requires.

use cvm::{compile_and_run, CompileOptions, VmError, VmOptions};
use gcheap::{HeapConfig, PointerPolicy};

/// Stores an *interior* pointer in the heap — fine under the default
/// policy, fatal under the base-only policy.
const INTERIOR: &str = r#"
    struct holder { char *p; };
    int main(void) {
        struct holder *h = (struct holder *) malloc(sizeof(struct holder));
        char *obj = (char *) malloc(100);
        long i;
        for (i = 0; i < 100; i++) obj[i] = (char)(i % 10);
        h->p = obj + 40;          /* interior pointer stored in the heap */
        obj = 0;                  /* drop the base */
        gc_collect();
        return h->p[10];          /* obj[50] == 0 ... if obj survived */
    }
"#;

/// The conforming version under the extension: store the base, keep the
/// offset separately.
const BASE_ONLY: &str = r#"
    struct holder { char *p; long off; };
    int main(void) {
        struct holder *h = (struct holder *) malloc(sizeof(struct holder));
        char *obj = (char *) malloc(100);
        long i;
        for (i = 0; i < 100; i++) obj[i] = (char)(i % 10);
        h->p = obj;               /* base pointer in the heap */
        h->off = 40;
        obj = 0;
        gc_collect();
        return h->p[h->off + 10];
    }
"#;

fn run(src: &str, policy: PointerPolicy) -> Result<i64, VmError> {
    let v = VmOptions {
        heap_config: HeapConfig {
            policy,
            ..HeapConfig::default()
        },
        ..VmOptions::default()
    };
    compile_and_run(src, &CompileOptions::optimized_safe(), &v).map(|o| o.exit_code)
}

fn main() {
    println!("interior pointer stored in the heap:");
    for policy in [
        PointerPolicy::InteriorEverywhere,
        PointerPolicy::InteriorFromRootsOnly,
    ] {
        match run(INTERIOR, policy) {
            Ok(code) => println!("  {policy:?}: exit={code} (object survived)"),
            Err(VmError::UseAfterFree { .. }) => {
                println!("  {policy:?}: object collected — heap interior pointers not recognized")
            }
            Err(e) => println!("  {policy:?}: {e}"),
        }
    }
    println!("\nbase pointer stored in the heap (the extension's contract):");
    for policy in [
        PointerPolicy::InteriorEverywhere,
        PointerPolicy::InteriorFromRootsOnly,
    ] {
        match run(BASE_ONLY, policy) {
            Ok(code) => println!("  {policy:?}: exit={code} (object survived)"),
            Err(e) => println!("  {policy:?}: {e}"),
        }
    }
    println!(
        "\nAs the paper notes, the base-only mode 'avoids some complications\n\
         with allocating large objects' but 'interacts suboptimally with C++\n\
         compilers that use interior pointers' — the first program is exactly\n\
         such a client."
    );
}
