//! A worked leak hunt with heap snapshots: a steady sliding-window
//! churn (site `cache_line@7:3`) next to a drip that is never dropped
//! (site `session@21:9`). Two snapshots and one diff later, the leaky
//! site is named with its retained bytes — the churn site shows zero
//! retained growth even though it allocated the whole time.
//!
//! Run with `cargo run --example leakhunt`.

use gcheap::{GcHeap, HeapConfig, Memory, RootSet};

const CHURN: &str = "cache_line@7:3";
const LEAK: &str = "session@21:9";

fn roots(sets: &[&[u64]]) -> RootSet {
    let mut r = RootSet::new();
    for set in sets {
        for &a in *set {
            r.add_word(a);
        }
    }
    r
}

/// Collect, retire the sweep debt, snapshot, and round-trip through the
/// `snap/1` schema — exactly what `tables --snap-dir` exports and
/// `bench snap diff` reads back.
fn snapshot(
    heap: &mut GcHeap,
    mem: &mut Memory,
    label: &str,
    sets: &[&[u64]],
) -> gcsnap::ParsedSnap {
    let r = roots(sets);
    heap.collect(mem, &r);
    heap.sweep_all();
    let snap = heap.snapshot(mem, &r, &[]);
    let a = gcsnap::analyze(&snap);
    gcsnap::validate(&gcsnap::to_json(label, &snap, &a)).expect("export validates")
}

fn main() {
    let mut mem = Memory::new(1 << 16, 1 << 16, 8 << 20);
    let mut heap = GcHeap::new(&mem, HeapConfig::bounded_pause());
    heap.set_snap_sites(true);
    let mut window: Vec<u64> = Vec::new();
    let mut sessions: Vec<u64> = Vec::new();

    // Phase 1: warm the steady state, then freeze the "begin" picture.
    for _ in 0..64 {
        let r = roots(&[&window, &sessions]);
        let a = heap
            .alloc_with_roots_sited(&mut mem, 48, &r, Some(CHURN))
            .expect("alloc");
        window.push(a);
        if window.len() > 32 {
            window.remove(0);
        }
    }
    let begin = snapshot(&mut heap, &mut mem, "begin", &[&window, &sessions]);

    // Phase 2: the same churn — plus one 64-byte "session" per tick that
    // nothing ever drops.
    for _ in 0..256 {
        let r = roots(&[&window, &sessions]);
        let a = heap
            .alloc_with_roots_sited(&mut mem, 48, &r, Some(CHURN))
            .expect("alloc");
        window.push(a);
        if window.len() > 32 {
            window.remove(0);
        }
        let r = roots(&[&window, &sessions]);
        let s = heap
            .alloc_with_roots_sited(&mut mem, 64, &r, Some(LEAK))
            .expect("alloc");
        sessions.push(s);
    }
    let end = snapshot(&mut heap, &mut mem, "end", &[&window, &sessions]);

    let d = gcsnap::diff::diff(&begin, &end);
    print!("{}", gcsnap::diff::render_table(&d, "begin", "end"));
    let top = d.top_growth().expect("growth exists");
    println!();
    println!(
        "verdict: site {} retains {:+} bytes more at the end — that is the leak.",
        top.site,
        top.retained_delta()
    );
}
