//! The collection microbench: deterministic allocation schedules driven
//! straight against [`gcheap::GcHeap`] (no VM in the loop), so the
//! mark/sweep costs the matrix cells only brush against — cfrac at paper
//! scale never even crosses the 256 KiB threshold — are measured under
//! real collection pressure. Three schedules mirror the paper's workload
//! shapes:
//!
//! * `churn-small` — cfrac-like: a tight loop of short-lived small
//!   objects with a sliding window of survivors;
//! * `churn-mixed` — gs-like: small objects plus periodic multi-page
//!   buffers, some long-lived;
//! * `graph` — cordtest-like: linked structures the mark phase must
//!   chase through heap memory, dropped in batches;
//! * `churn-ptr` — barrier-heavy: lists rewired across generations so
//!   every allocation is chased by pointer stores into existing objects.
//!
//! Every schedule uses [`HeapConfig::bounded_pause`] (256 KiB threshold,
//! incremental marking, nursery collections, poisoning on), drives
//! allocation exactly the way the VM does
//! ([`GcHeap::alloc_with_roots_sited`]: threshold/increment work at the
//! safe point, retry through an emergency collection on OOM), reports
//! heap pointer stores through [`GcHeap::write_barrier`], and is seeded
//! xorshift-deterministic: the allocation *counts* are byte-identical
//! run to run; only the nanosecond timings move. The results seed
//! `BENCH_gc.json`, the repo's perf trajectory.

use gcheap::{GcHeap, HeapConfig, HeapStats, Memory, RootSet};
use gcprof::{ProfData, ProfHandle};
use std::time::Instant;

/// One measured microbench schedule.
#[derive(Debug, Clone)]
pub struct MicroCell {
    /// Schedule name (`churn-small`, `churn-mixed`, `graph`).
    pub name: &'static str,
    /// Final collector statistics for the run.
    pub stats: HeapStats,
    /// Wall-clock time for the whole schedule, in nanoseconds.
    pub wall_ns: u64,
    /// The schedule's profile: pause timeline (for MMU windows) and the
    /// per-collection attribution log (for timelines and budgets).
    pub prof: ProfData,
}

impl MicroCell {
    /// Allocations per wall-clock second, rounded down.
    pub fn allocs_per_sec(&self) -> u64 {
        if self.wall_ns == 0 {
            return 0;
        }
        (self.stats.allocations as u128 * 1_000_000_000 / self.wall_ns as u128) as u64
    }
}

struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed ^ 0x9E37_79B9_7F4A_7C15)
    }
    fn next(&mut self) -> u64 {
        // xorshift64*, as in tests/common.
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn roots_of(live: &[u64]) -> RootSet {
    let mut roots = RootSet::new();
    for &a in live {
        roots.add_word(a);
    }
    roots
}

/// Allocates like the VM does: one allocation safe point, which under the
/// bounded-pause config advances an in-flight mark cycle by one budgeted
/// increment, begins a cycle or runs a nursery collection at the
/// threshold, and retries through an emergency collection on OOM. Returns
/// `None` only when the heap is exhausted even after collecting.
fn alloc_at_safe_point(
    heap: &mut GcHeap,
    mem: &mut Memory,
    size: u64,
    live: &[u64],
) -> Option<u64> {
    heap.alloc_with_roots_sited(mem, size, &roots_of(live), Some("micro"))
        .ok()
}

fn run_schedule(
    name: &'static str,
    allocs: u64,
    f: impl FnOnce(&mut GcHeap, &mut Memory, u64),
) -> MicroCell {
    // 32 MiB of heap: enough bump region that the multi-page objects in
    // churn-mixed never exhaust contiguity (large pages are not recycled
    // for large objects), so the schedules measure collection cost, not
    // out-of-memory thrash.
    let mut mem = Memory::new(1 << 16, 1 << 16, 32 << 20);
    let mut heap = GcHeap::new(&mem, HeapConfig::bounded_pause());
    // Every schedule runs profiled: the pause timeline feeds the MMU
    // floors in BENCH_gc.json and the collection log feeds the timeline
    // export. The overhead is identical across runs, so the trajectory
    // stays comparable with itself.
    let prof = ProfHandle::enabled();
    heap.set_prof(prof.clone());
    let t0 = Instant::now();
    f(&mut heap, &mut mem, allocs);
    let wall_ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
    MicroCell {
        name,
        stats: heap.stats(),
        wall_ns,
        prof: prof.snapshot().expect("profile is enabled"),
    }
}

fn churn_small(heap: &mut GcHeap, mem: &mut Memory, allocs: u64) {
    let mut rng = Rng::new(1);
    let mut live: Vec<u64> = Vec::new();
    const WINDOW: usize = 512;
    for _ in 0..allocs {
        let size = 8 + rng.below(200);
        if let Some(a) = alloc_at_safe_point(heap, mem, size, &live) {
            live.push(a);
            if live.len() > WINDOW {
                let idx = rng.below(live.len() as u64 / 2) as usize;
                live.swap_remove(idx);
            }
        }
    }
}

fn churn_mixed(heap: &mut GcHeap, mem: &mut Memory, allocs: u64) {
    let mut rng = Rng::new(2);
    let mut live: Vec<u64> = Vec::new();
    let mut old: Vec<u64> = Vec::new();
    for i in 0..allocs {
        let size = if i % 64 == 63 {
            4096 + rng.below(3 * 4096)
        } else {
            16 + rng.below(480)
        };
        let mut all: Vec<u64> = live.clone();
        all.extend_from_slice(&old);
        if let Some(a) = alloc_at_safe_point(heap, mem, size, &all) {
            if i % 16 == 0 && old.len() < 256 {
                old.push(a); // long-lived
            } else {
                live.push(a);
                if live.len() > 384 {
                    let idx = rng.below(live.len() as u64) as usize;
                    live.swap_remove(idx);
                }
            }
        }
    }
}

fn graph(heap: &mut GcHeap, mem: &mut Memory, allocs: u64) {
    let mut rng = Rng::new(3);
    // Rooted list heads; each head chains nodes through heap words so the
    // mark phase traverses pointer-filled memory. Chains are dropped often
    // enough that the live set settles around a few thousand nodes —
    // heavy mark work without ever filling the heap.
    let mut heads: Vec<u64> = Vec::new();
    let mut tails: Vec<u64> = Vec::new();
    for i in 0..allocs {
        let size = 24 + rng.below(104);
        if let Some(a) = alloc_at_safe_point(heap, mem, size, &heads) {
            if heads.is_empty() || (heads.len() < 32 && rng.below(16) == 0) {
                heads.push(a);
                tails.push(a);
            } else {
                let h = rng.below(heads.len() as u64) as usize;
                // Link the previous tail to the new node (and tell the
                // collector: the tail may be old or already scanned).
                mem.write(tails[h], 8, a).expect("node is mapped");
                heap.write_barrier(tails[h], a);
                tails[h] = a;
            }
            // Periodically drop a whole chain.
            if i % 128 == 127 && heads.len() > 8 {
                let idx = rng.below(heads.len() as u64) as usize;
                heads.swap_remove(idx);
                tails.swap_remove(idx);
            }
        }
    }
}

fn churn_ptr(heap: &mut GcHeap, mem: &mut Memory, allocs: u64) {
    let mut rng = Rng::new(4);
    // A rooted table of list heads. Every new node is pushed onto a
    // random list through a heap pointer store, lists are periodically
    // spliced together (the only reference to a whole chain moves into
    // heap memory — old→young stores the cards must catch), and whole
    // lists are dropped. This is the write barrier's microbench: the
    // mutator's pointer graph churns *while* marking is in flight.
    const HEADS: usize = 64;
    let mut heads: Vec<u64> = vec![0; HEADS];
    for i in 0..allocs {
        let size = 16 + rng.below(112);
        let live: Vec<u64> = heads.iter().copied().filter(|&a| a != 0).collect();
        let Some(a) = alloc_at_safe_point(heap, mem, size, &live) else {
            continue;
        };
        let h = rng.below(HEADS as u64) as usize;
        mem.write(a, 8, heads[h]).expect("node is mapped");
        heap.write_barrier(a, heads[h]);
        heads[h] = a;
        if i % 32 == 31 {
            // Splice list `src` onto a node a few links into list `dst`.
            let src = rng.below(HEADS as u64) as usize;
            let dst = rng.below(HEADS as u64) as usize;
            if src != dst && heads[src] != 0 && heads[dst] != 0 {
                let mut p = heads[dst];
                let mut steps = rng.below(8);
                loop {
                    let next = mem.read(p, 8).expect("node is mapped");
                    if next == 0 || steps == 0 {
                        break;
                    }
                    p = next;
                    steps -= 1;
                }
                mem.write(p, 8, heads[src]).expect("node is mapped");
                heap.write_barrier(p, heads[src]);
                heads[src] = 0; // the chain now hangs off heap memory only
            }
        }
        if i % 96 == 95 {
            let d = rng.below(HEADS as u64) as usize;
            heads[d] = 0; // drop a whole list
        }
    }
}

/// Runs every microbench schedule at the given size (`tiny` keeps CI
/// smoke runs under a second) and returns the measured cells in a fixed
/// order.
pub fn gc_microbench(tiny: bool) -> Vec<MicroCell> {
    let n = if tiny { 20_000 } else { 120_000 };
    vec![
        run_schedule("churn-small", n, churn_small),
        run_schedule("churn-mixed", n, churn_mixed),
        run_schedule("graph", n, graph),
        run_schedule("churn-ptr", n, churn_ptr),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn microbench_schedules_actually_collect() {
        for cell in gc_microbench(true) {
            assert!(
                cell.stats.collections > 0,
                "{}: no collections under default threshold",
                cell.name
            );
            assert!(cell.stats.objects_freed > 0, "{}: nothing freed", cell.name);
            assert!(cell.stats.allocations > 0, "{}", cell.name);
            assert_eq!(
                cell.prof.collection_log.len() as u64,
                cell.stats.collections,
                "{}: one attribution record per collection",
                cell.name
            );
            assert!(
                cell.prof
                    .collection_log
                    .iter()
                    .all(|r| r.site.as_deref() == Some("micro")),
                "{}: microbench collections carry the harness site",
                cell.name
            );
            assert_eq!(
                cell.stats.collections_threshold
                    + cell.stats.collections_emergency
                    + cell.stats.collections_explicit
                    + cell.stats.collections_increment_finish
                    + cell.stats.collections_nursery,
                cell.stats.collections,
                "{}: the five cause counters partition the collection count",
                cell.name
            );
            assert!(
                cell.stats.collections_nursery > 0,
                "{}: bounded-pause schedules run nursery collections",
                cell.name
            );
            assert!(
                cell.stats.collections_increment_finish > 0,
                "{}: full collections arrive as finished mark cycles",
                cell.name
            );
            assert!(
                cell.stats.mark_increments > cell.stats.collections_increment_finish,
                "{}: cycles take more than one bounded stop",
                cell.name
            );
            assert!(
                cell.stats.sweep_increments > cell.stats.collections_increment_finish,
                "{}: finishing sweeps are retired in chunks",
                cell.name
            );
        }
    }

    #[test]
    fn microbench_counts_are_deterministic() {
        let a = gc_microbench(true);
        let b = gc_microbench(true);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.stats.allocations, y.stats.allocations, "{}", x.name);
            assert_eq!(x.stats.collections, y.stats.collections, "{}", x.name);
            assert_eq!(x.stats.objects_freed, y.stats.objects_freed, "{}", x.name);
            assert_eq!(x.stats.bytes_live, y.stats.bytes_live, "{}", x.name);
            assert_eq!(
                x.stats.collections_threshold, y.stats.collections_threshold,
                "{}",
                x.name
            );
            assert_eq!(
                x.stats.collections_emergency, y.stats.collections_emergency,
                "{}",
                x.name
            );
            assert_eq!(
                x.stats.collections_nursery, y.stats.collections_nursery,
                "{}",
                x.name
            );
            assert_eq!(
                x.stats.collections_increment_finish, y.stats.collections_increment_finish,
                "{}",
                x.name
            );
            assert_eq!(
                x.stats.mark_increments, y.stats.mark_increments,
                "{}",
                x.name
            );
            assert_eq!(
                x.stats.sweep_increments, y.stats.sweep_increments,
                "{}",
                x.name
            );
            assert_eq!(x.stats.barrier_marks, y.stats.barrier_marks, "{}", x.name);
        }
    }
}
