//! Prints every table and figure of the paper.
//!
//! Usage: `tables [sparc2|sparc10|pentium90|codesize|postprocessor|analysis|all] [--tiny]`

use gcbench::*;
use workloads::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let what = args.first().map(String::as_str).unwrap_or("all");
    let scale = if args.iter().any(|a| a == "--tiny") { Scale::Tiny } else { Scale::Paper };

    if what == "analysis" {
        println!("{}", analysis_listing());
        return;
    }
    if what == "spills" {
        println!("{}", register_pressure_report());
        return;
    }
    let data = match collect(scale) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    match what {
        "sparc2" => print!("{}", slowdown_table(&data, "sparc2")),
        "sparc10" => print!("{}", slowdown_table(&data, "sparc10")),
        "pentium90" => print!("{}", slowdown_table(&data, "pentium90")),
        "codesize" => print!("{}", codesize_table(&data)),
        "postprocessor" => print!("{}", postprocessor_table(&data)),
        "ablations" => print!("{}", ablation_table(scale)),
        "compare" => print!("{}", paper_comparison(&data)),
        "all" => {
            println!("Run-time slowdown relative to '-O' (E1-E3)\n");
            for key in ["sparc2", "sparc10", "pentium90"] {
                println!("{}", slowdown_table(&data, key));
            }
            println!("{}", codesize_table(&data));
            println!();
            println!("{}", postprocessor_table(&data));
            println!();
            println!("{}", ablation_table(scale));
            println!();
            println!("Paper vs measured (shape verdicts):\n{}", paper_comparison(&data));
            println!("{}", register_pressure_report());

            println!("Analysis listing (F1):\n{}", analysis_listing());
        }
        other => {
            eprintln!("unknown table '{other}'");
            std::process::exit(2);
        }
    }
}
