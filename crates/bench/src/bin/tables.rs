//! Prints every table and figure of the paper.
//!
//! Usage: `tables [sparc2|sparc10|pentium90|codesize|postprocessor|analysis|all]
//!                [--tiny] [--jobs N] [--trace <file.jsonl>]
//!                [--prof <file.prom>] [--folded <file.txt>]
//!                [--bench-json <file.json>] [--repeat N]
//!                [--timeline <file.json>] [--bench-cache <file.json>]
//!                [--bench-opt <file.json>] [--snap-dir <dir>]`
//!
//! The 4 workloads × 5 modes measurement matrix runs in parallel across
//! `--jobs N` worker threads (default: all cores); every table and trace
//! is byte-identical to a `--jobs 1` serial run.
//!
//! With `--trace`, every pipeline stage's events (annotation audit,
//! optimizer rewrites, verifier verdicts, GC timeline, peephole rewrites,
//! VM run summaries) are appended to `<file.jsonl>` as one JSON object
//! per line, and a human-readable summary is printed at the end.
//!
//! With `--prof`, every cell runs under gcprof instrumentation: the
//! Prometheus exposition is written to `<file.prom>` (validated before it
//! lands), the per-cell summary `BENCH_prof.json` is written next to the
//! working directory, and the human profile report is printed. `--folded`
//! additionally writes flamegraph-folded allocation stacks.
//!
//! With `--timeline`, the per-collection attribution log is exported as a
//! Chrome Trace Event Format document (load it at `ui.perfetto.dev`); the
//! clock is virtual, so the file is byte-identical at any `--jobs`.
//! `--timeline` implies profiling for the matrix cells.
//!
//! `--bench-json --repeat N` reruns the whole measurement N times and
//! writes the median of every wall-clock field (the minimum for
//! `max_pause_ns`, a per-run maximum that noise can only inflate) with a
//! `<field>_mad` noise estimate, asserting every deterministic count
//! identical across repeats. Cells that collected fewer than
//! `MIN_COLLECTIONS` times are reported on stderr.
//!
//! With `--snap-dir`, every matrix cell records deterministic heap-graph
//! snapshots at its first allocation (`begin`) and end of run (`end`),
//! and each is written to `<dir>/{workload}__{mode}__{label}.json` in
//! the versioned `snap/1` schema, round-trip validated before it lands.
//! Snapshots carry no wall-clock data, so the files are byte-identical
//! at any `--jobs` and across cold/warm compilation caches. Diff a pair
//! with `bench snap diff`.
//!
//! With `--bench-cache`, the compilation-cache benchmark runs after the
//! tables: the measurement matrix and a fuzz campaign, each cold (caches
//! cleared) then warm, writing per-pass wall times and per-stage
//! hit/miss deltas to `<file.json>` (schema `cache/1`, gated by `bench
//! compare --budgets budgets-cache.toml`). The warm passes double as a
//! soundness smoke — byte-identical artifacts, equal fuzz verdicts, zero
//! misses — so the run fails loudly on any cache unsoundness.
//! Incompatible with `--repeat` (the cache bench times single passes).
//!
//! With `--bench-opt`, the optimizer benchmark writes `<file.json>`
//! (schema `opt/1`, gated by `bench compare --budgets budgets-opt.toml`):
//! per-pass fire totals over the matrix's optimizer modes, fixpoint
//! driver statistics, and seed-vs-full cycle comparisons per workload ×
//! machine. The document carries no wall-clock fields, so it is
//! byte-identical at any `--jobs` and across cold/warm caches.

use gc_safety::{JsonlSink, TraceHandle};
use gcbench::*;
use std::sync::Arc;
use workloads::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let what = args
        .first()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .unwrap_or("all");
    let scale = if args.iter().any(|a| a == "--tiny") {
        Scale::Tiny
    } else {
        Scale::Paper
    };
    let trace_path: Option<&str> = args
        .iter()
        .position(|a| a == "--trace")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str);
    let prof_path: Option<&str> = args
        .iter()
        .position(|a| a == "--prof")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str);
    let folded_path: Option<&str> = args
        .iter()
        .position(|a| a == "--folded")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str);
    let bench_json_path: Option<&str> = args
        .iter()
        .position(|a| a == "--bench-json")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str);
    let timeline_path: Option<&str> = args
        .iter()
        .position(|a| a == "--timeline")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str);
    let bench_cache_path: Option<&str> = args
        .iter()
        .position(|a| a == "--bench-cache")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str);
    let bench_opt_path: Option<&str> = args
        .iter()
        .position(|a| a == "--bench-opt")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str);
    let snap_dir: Option<&str> = args
        .iter()
        .position(|a| a == "--snap-dir")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str);
    if folded_path.is_some() && prof_path.is_none() {
        eprintln!("error: --folded requires --prof (profiling must be enabled)");
        std::process::exit(2);
    }
    if bench_cache_path.is_some() && args.iter().any(|a| a == "--repeat") {
        eprintln!("error: --bench-cache is incompatible with --repeat (it times single passes)");
        std::process::exit(2);
    }
    let repeat = match args
        .iter()
        .position(|a| a == "--repeat")
        .map(|i| args.get(i + 1))
    {
        Some(Some(n)) => match n.parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => {
                eprintln!("error: --repeat takes a positive integer, got '{n}'");
                std::process::exit(2);
            }
        },
        Some(None) => {
            eprintln!("error: --repeat requires a value");
            std::process::exit(2);
        }
        None => 1,
    };
    let jobs = match args
        .iter()
        .position(|a| a == "--jobs")
        .map(|i| args.get(i + 1))
    {
        Some(Some(n)) => match n.parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => {
                eprintln!("error: --jobs takes a positive integer, got '{n}'");
                std::process::exit(2);
            }
        },
        Some(None) => {
            eprintln!("error: --jobs requires a value");
            std::process::exit(2);
        }
        None => default_jobs(),
    };
    let trace = match trace_path {
        Some(path) => {
            let file = match std::fs::File::create(path) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("error: cannot create trace file '{path}': {e}");
                    std::process::exit(1);
                }
            };
            TraceHandle::new(Arc::new(JsonlSink::new(Box::new(file))))
        }
        None => TraceHandle::disabled(),
    };

    if what == "analysis" {
        println!("{}", analysis_listing());
        return;
    }
    if what == "spills" {
        println!("{}", register_pressure_report());
        return;
    }
    // The timeline and the trajectory's attribution/MMU fields are built
    // from the per-collection log, so both exports profile the matrix
    // cells just like --prof does (the overhead is uniform across modes,
    // keeping the trajectory self-comparable).
    let prof_on = prof_path.is_some() || timeline_path.is_some() || bench_json_path.is_some();
    let data = match collect_snapped_jobs(scale, &trace, prof_on, snap_dir.is_some(), jobs) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    match what {
        "sparc2" => print!("{}", slowdown_table(&data, "sparc2")),
        "sparc10" => print!("{}", slowdown_table(&data, "sparc10")),
        "pentium90" => print!("{}", slowdown_table(&data, "pentium90")),
        "codesize" => print!("{}", codesize_table(&data)),
        "postprocessor" => print!("{}", postprocessor_table(&data)),
        "ablations" => print!("{}", ablation_table(scale)),
        "compare" => print!("{}", paper_comparison(&data)),
        "all" => {
            println!("Run-time slowdown relative to '-O' (E1-E3)\n");
            for key in ["sparc2", "sparc10", "pentium90"] {
                println!("{}", slowdown_table(&data, key));
            }
            println!("{}", codesize_table(&data));
            println!();
            println!("{}", postprocessor_table(&data));
            println!();
            println!("{}", ablation_table(scale));
            println!();
            println!(
                "Paper vs measured (shape verdicts):\n{}",
                paper_comparison(&data)
            );
            println!("{}", register_pressure_report());

            match opt_pass_fires() {
                Ok(sweep) => {
                    println!("{}", opt_report(&sweep));
                    let zero = zero_fire_passes(&sweep);
                    if !zero.is_empty() {
                        eprintln!(
                            "warning: {} registered pass(es) never fired across the matrix \
                             (regressed matching or an unexercised registry entry): {}",
                            zero.len(),
                            zero.join(", ")
                        );
                    }
                }
                Err(e) => eprintln!("warning: optimizer fire sweep failed: {e}"),
            }
            println!("Analysis listing (F1):\n{}", analysis_listing());
        }
        other => {
            eprintln!("unknown table '{other}'");
            std::process::exit(2);
        }
    }
    let micro = if bench_json_path.is_some() || timeline_path.is_some() {
        Some(gc_microbench(scale == Scale::Tiny))
    } else {
        None
    };
    if let Some(path) = bench_json_path {
        // The perf trajectory: matrix-cell collector stats plus the
        // heap-direct collection microbench, validated before it lands.
        let micro = micro
            .as_deref()
            .expect("micro runs whenever bench-json is requested");
        let mut text = bench_gc_json(&data, micro);
        if repeat > 1 {
            // Robust statistics: rerun the whole measurement and fold
            // the runs (median wall-clock fields, min for the per-run
            // maximum max_pause_ns, MAD as the noise estimate the
            // regression gate keys on). Deterministic counts must not
            // move between repeats; aggregate() enforces that.
            let mut runs = Vec::with_capacity(repeat);
            match gcwatch::stats::parse_cells(&text) {
                Ok(cells) => runs.push(cells),
                Err(e) => {
                    eprintln!("error: generated gc bench json does not parse: {e}");
                    std::process::exit(1);
                }
            }
            for r in 1..repeat {
                let rerun = collect_instrumented_jobs(
                    scale,
                    &gc_safety::TraceHandle::disabled(),
                    prof_on,
                    jobs,
                )
                .and_then(|d| {
                    let m = gc_microbench(scale == Scale::Tiny);
                    gcwatch::stats::parse_cells(&bench_gc_json(&d, &m))
                });
                match rerun {
                    Ok(cells) => runs.push(cells),
                    Err(e) => {
                        eprintln!("error: repeat {r} failed: {e}");
                        std::process::exit(1);
                    }
                }
            }
            text = match gcwatch::aggregate(&runs) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("error: aggregating {repeat} repeats: {e}");
                    std::process::exit(1);
                }
            };
        }
        match validate_bench_gc_json(&text) {
            Ok(cells) => {
                if let Err(e) = std::fs::write(path, &text) {
                    eprintln!("error: cannot write gc bench json '{path}': {e}");
                    std::process::exit(1);
                }
                println!("\ngc perf trajectory: {cells} cells written to {path}");
            }
            Err(e) => {
                eprintln!("error: generated gc bench json does not validate: {e}");
                std::process::exit(1);
            }
        }
        match low_collection_cells(&text, MIN_COLLECTIONS) {
            Ok(low) if !low.is_empty() => {
                let cells: Vec<String> =
                    low.iter().map(|(key, n)| format!("{key} ({n})")).collect();
                eprintln!(
                    "warning: {} cell(s) collected fewer than {MIN_COLLECTIONS} times — \
                     their pause statistics are under-sampled: {}",
                    low.len(),
                    cells.join(", ")
                );
            }
            Ok(_) => {}
            Err(e) => eprintln!("warning: low-collection scan failed: {e}"),
        }
    }
    if let Some(path) = timeline_path {
        let micro = micro
            .as_deref()
            .expect("micro runs whenever timeline is requested");
        let text = gcwatch::chrome_trace(&timeline_cells(&data, micro));
        match gcwatch::validate_chrome_trace(&text) {
            Ok(events) => {
                if let Err(e) = std::fs::write(path, &text) {
                    eprintln!("error: cannot write timeline '{path}': {e}");
                    std::process::exit(1);
                }
                println!("\ncollection timeline: {events} trace events written to {path} (load at ui.perfetto.dev)");
            }
            Err(e) => {
                eprintln!("error: generated timeline does not validate: {e}");
                std::process::exit(1);
            }
        }
    }
    if let Some(path) = prof_path {
        let prom = prometheus_export(&data);
        match gc_safety::prom::validate(&prom) {
            Ok(samples) => {
                if let Err(e) = std::fs::write(path, &prom) {
                    eprintln!("error: cannot write prometheus export '{path}': {e}");
                    std::process::exit(1);
                }
                println!("\nprometheus export: {samples} samples written to {path}");
            }
            Err(e) => {
                eprintln!("error: generated prometheus text does not parse: {e}");
                std::process::exit(1);
            }
        }
        if let Err(e) = std::fs::write("BENCH_prof.json", bench_json(&data)) {
            eprintln!("error: cannot write BENCH_prof.json: {e}");
            std::process::exit(1);
        }
        println!("per-cell summary written to BENCH_prof.json");
        if let Some(folded) = folded_path {
            if let Err(e) = std::fs::write(folded, folded_export(&data)) {
                eprintln!("error: cannot write folded stacks '{folded}': {e}");
                std::process::exit(1);
            }
            println!("flamegraph folded stacks written to {folded}");
        }
        println!();
        print!("{}", prof_report(&data));
    }
    if let Some(dir) = snap_dir {
        // Heap-graph snapshots, one `snap/1` document per (cell, label),
        // each round-trip validated before it lands on disk.
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("error: cannot create snapshot dir '{dir}': {e}");
            std::process::exit(1);
        }
        match snap_exports(&data) {
            Ok(exports) => {
                let n = exports.len();
                for (name, json) in exports {
                    let path = format!("{dir}/{name}");
                    if let Err(e) = std::fs::write(&path, &json) {
                        eprintln!("error: cannot write snapshot '{path}': {e}");
                        std::process::exit(1);
                    }
                }
                println!("\nheap snapshots: {n} snap/1 documents written to {dir}/");
            }
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    }
    if let Some(path) = bench_cache_path {
        // The cache trajectory: matrix and fuzz campaign, cold then
        // warm, with the warm passes doubling as a soundness smoke.
        let fuzz_seed = 1;
        let fuzz_count = 64;
        match run_cache_bench(scale, jobs, fuzz_seed, fuzz_count) {
            Ok(text) => match validate_bench_cache_json(&text) {
                Ok(cells) => {
                    if let Err(e) = std::fs::write(path, &text) {
                        eprintln!("error: cannot write cache bench json '{path}': {e}");
                        std::process::exit(1);
                    }
                    println!("\ncache trajectory: {cells} cells written to {path}");
                }
                Err(e) => {
                    eprintln!("error: generated cache bench json does not validate: {e}");
                    std::process::exit(1);
                }
            },
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    }
    if let Some(path) = bench_opt_path {
        // The optimizer trajectory: per-pass fire totals, fixpoint
        // statistics, and seed-vs-full cycle cells, all deterministic.
        match run_opt_bench(scale) {
            Ok(text) => match validate_bench_opt_json(&text) {
                Ok(cells) => {
                    if let Err(e) = std::fs::write(path, &text) {
                        eprintln!("error: cannot write opt bench json '{path}': {e}");
                        std::process::exit(1);
                    }
                    println!("\nopt trajectory: {cells} cells written to {path}");
                }
                Err(e) => {
                    eprintln!("error: generated opt bench json does not validate: {e}");
                    std::process::exit(1);
                }
            },
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    }
    // The process-cumulative cache counters, one ("cache", "stats")
    // event per stage plus a total, so traces record how much of the run
    // the compilation cache absorbed. Emitted last: the counters cover
    // everything above, including the cache bench passes.
    if trace.is_enabled() {
        let stats = gc_safety::cache_stats();
        for s in stats.iter().chain(std::iter::once(&gccache::total(&stats))) {
            trace.emit(|| {
                gc_safety::Event::new("cache", "stats")
                    .field("stage", s.stage)
                    .field("hits", s.hits)
                    .field("misses", s.misses)
                    .field("evictions", s.evictions)
                    .field("entries", s.entries)
            });
        }
    }
    if let Some(path) = trace_path {
        // `File` writes are unbuffered, so the JSONL is already on disk
        // even though `data` still holds handle clones.
        match std::fs::read_to_string(path) {
            Ok(jsonl) => {
                println!();
                print!("{}", trace_report(&jsonl));
                println!("trace written to {path}");
            }
            Err(e) => eprintln!("error: cannot read back trace '{path}': {e}"),
        }
    }
}
