//! # gcbench — regenerates every table and figure of the paper
//!
//! One entry point per paper artifact (see DESIGN.md's experiment index):
//!
//! * E1–E3 — [`slowdown_table`] for `sparc2` / `sparc10` / `pentium90`;
//! * E4 — [`codesize_table`];
//! * E5 — [`postprocessor_table`];
//! * F1 — [`analysis_listing`] (the `char f(char *x){return x[1];}` story).
//!
//! `cargo run -p gcbench --bin tables -- all` prints everything;
//! the Criterion benches under `benches/` print their table and then time
//! the pipeline stage that produces it.

#![warn(missing_docs)]

pub mod micro;

pub use micro::{gc_microbench, MicroCell};

use gc_safety::{
    merge_tagged, Cell, Event, Machine, Measured, Mode, ProfData, ProfHandle, Sink, TaggedSink,
    TraceHandle,
};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use workloads::Scale;

/// All measurements for all workloads, ready for table formatting.
#[derive(Debug)]
pub struct Dataset {
    /// Per-workload mode measurements, in the paper's row order.
    pub rows: Vec<(&'static str, BTreeMap<Mode, Measured>)>,
}

/// The worker count [`collect`] fans the measurement matrix out over:
/// the machine's available parallelism, capped at the matrix size.
pub fn default_jobs() -> usize {
    gc_safety::default_jobs()
}

/// Runs every workload in every mode at the given scale, in parallel
/// across [`default_jobs`] workers. The result is deterministic and
/// identical to a serial run ([`collect_jobs`] with `jobs = 1`).
///
/// # Errors
///
/// Propagates build failures or cross-mode output divergence (which would
/// indicate a miscompilation).
pub fn collect(scale: Scale) -> Result<Dataset, String> {
    collect_traced(scale, &TraceHandle::disabled())
}

/// [`collect`] with an explicit worker count.
///
/// # Errors
///
/// Same as [`collect`].
pub fn collect_jobs(scale: Scale, jobs: usize) -> Result<Dataset, String> {
    collect_traced_jobs(scale, &TraceHandle::disabled(), jobs)
}

/// [`collect`] with a trace: the whole pipeline's event stream — from the
/// annotator's per-expression audit through collections and peephole
/// rewrites — flows into one sink, workload by workload.
///
/// # Errors
///
/// Same as [`collect`].
pub fn collect_traced(scale: Scale, trace: &TraceHandle) -> Result<Dataset, String> {
    collect_traced_jobs(scale, trace, default_jobs())
}

/// The parallel measurement driver behind every `collect` variant.
///
/// The 4 workloads × 5 modes matrix is fanned out across `jobs` scoped
/// worker threads, one (workload, mode) cell at a time, then reassembled
/// in the paper's row order, so tables built from the [`Dataset`] are
/// byte-identical regardless of `jobs` (every cost is a deterministic
/// cycle count, not wall-clock). Tracing survives the fan-out: each cell
/// emits into its own [`TaggedSink`], and the buffered streams are merged
/// into `trace` in deterministic (workload, mode, seq) order — with the
/// serial driver's per-workload `("bench", "workload")` markers
/// interleaved — so the user's sink sees exactly the stream a serial run
/// would have produced (wall-clock fields like `pause_ns` aside). The
/// cross-mode output-divergence check runs on the assembled rows, so it
/// compares against the `-O` baseline even when cells finish out of
/// order.
///
/// # Errors
///
/// Build failures and divergence are reported for the first failing cell
/// in deterministic (workload, mode) order, whichever thread hit it.
pub fn collect_traced_jobs(
    scale: Scale,
    trace: &TraceHandle,
    jobs: usize,
) -> Result<Dataset, String> {
    collect_instrumented_jobs(scale, trace, false, jobs)
}

/// [`collect_traced_jobs`] with optional gcprof instrumentation. When
/// `prof` is true every (workload, mode) cell runs under its own enabled
/// [`ProfHandle`] — profiles never interleave across workers, so the
/// deterministic slice of every export built from the [`Dataset`]
/// (flamegraph folded stacks, site counters, size histograms, census) is
/// byte-identical at any `jobs`, mirroring the trace's [`TaggedSink`]
/// reassembly guarantee.
///
/// # Errors
///
/// Same as [`collect`].
pub fn collect_instrumented_jobs(
    scale: Scale,
    trace: &TraceHandle,
    prof: bool,
    jobs: usize,
) -> Result<Dataset, String> {
    collect_snapped_jobs(scale, trace, prof, false, jobs)
}

/// [`collect_instrumented_jobs`] with optional heap-graph snapshots.
/// When `snap` is true every (workload, mode) cell runs under its own
/// enabled `gcsnap::SnapHandle`, so the VM's `begin`/`end` snapshots
/// never interleave across workers; snapshots carry no wall-clock data,
/// so the `snap/1` exports built from the [`Dataset`] are byte-identical
/// at any `jobs` and across cold/warm compilation caches.
///
/// # Errors
///
/// Same as [`collect`].
pub fn collect_snapped_jobs(
    scale: Scale,
    trace: &TraceHandle,
    prof: bool,
    snap: bool,
    jobs: usize,
) -> Result<Dataset, String> {
    let ws = workloads::all();
    let modes = Mode::all();
    let cells: Vec<(usize, usize)> = (0..ws.len())
        .flat_map(|wi| (0..modes.len()).map(move |mi| (wi, mi)))
        .collect();
    // Per-cell buffering sinks, plus one pre-filled marker sink per
    // workload standing in for the serial driver's workload event.
    // Tag space: (workload, 0) = marker, (workload, 1 + mode) = cell.
    let mut tagged: Vec<Arc<TaggedSink>> = Vec::new();
    let cell_traces: Vec<TraceHandle> = if trace.is_enabled() {
        for (wi, w) in ws.iter().enumerate() {
            let marker = Arc::new(TaggedSink::new(wi as u64, 0));
            marker.emit(Event::new("bench", "workload").field("name", w.name));
            tagged.push(marker);
        }
        cells
            .iter()
            .map(|&(wi, mi)| {
                let sink = Arc::new(TaggedSink::new(wi as u64, 1 + mi as u64));
                tagged.push(sink.clone());
                TraceHandle::new(sink)
            })
            .collect()
    } else {
        cells.iter().map(|_| TraceHandle::disabled()).collect()
    };
    let cell_profs: Vec<ProfHandle> = cells
        .iter()
        .map(|_| {
            if prof {
                ProfHandle::enabled()
            } else {
                ProfHandle::disabled()
            }
        })
        .collect();
    let cell_snaps: Vec<gcsnap::SnapHandle> = cells
        .iter()
        .map(|_| {
            if snap {
                gcsnap::SnapHandle::enabled()
            } else {
                gcsnap::SnapHandle::disabled()
            }
        })
        .collect();
    let slots: Vec<Mutex<Option<Result<Measured, String>>>> =
        cells.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let workers = jobs.clamp(1, cells.len());
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(&(wi, mi)) = cells.get(i) else { break };
                let r = gc_safety::measure_workload_mode_snapped(
                    &ws[wi],
                    scale,
                    modes[mi],
                    &cell_traces[i],
                    &cell_profs[i],
                    &cell_snaps[i],
                );
                *slots[i].lock().expect("cell slot") = Some(r);
            });
        }
    });
    // Replay the buffered event streams in serial order before touching
    // the results, so the trace is complete even when assembly errors.
    merge_tagged(&tagged, trace);
    let mut slots = slots.into_iter();
    let mut rows = Vec::new();
    for w in &ws {
        let mut results = BTreeMap::new();
        for &mode in &modes {
            let cell = slots
                .next()
                .expect("one slot per cell")
                .into_inner()
                .expect("cell slot")
                .expect("every cell was measured");
            results.insert(mode, cell?);
        }
        gc_safety::check_workload_agreement(w, &results)?;
        rows.push((w.name, results));
    }
    Ok(Dataset { rows })
}

fn fmt_cell(c: Cell) -> String {
    c.to_string()
}

/// E1/E2/E3: the run-time slowdown table for one machine, matching the
/// paper's layout (`-O safe`, `-g`, `-g checked` relative to `-O`).
pub fn slowdown_table(data: &Dataset, machine_key: &str) -> String {
    let machine = Machine::by_key(machine_key).expect("known machine key");
    let mut out = String::new();
    let _ = writeln!(out, "{}:", machine.name);
    let _ = writeln!(
        out,
        "{:10}{:>12}{:>8}{:>14}",
        "", "-O, safe", "-g", "-g, checked"
    );
    for (name, results) in &data.rows {
        let row = gc_safety::slowdown_row(results, machine.name, name);
        let _ = writeln!(
            out,
            "{:10}{:>12}{:>8}{:>14}",
            name,
            fmt_cell(row.cells[0].1),
            fmt_cell(row.cells[1].1),
            fmt_cell(row.cells[2].1),
        );
    }
    out
}

/// E4: static code size expansion (processed code only), SPARC encoding.
pub fn codesize_table(data: &Dataset) -> String {
    let machine = Machine::sparc10();
    let mut out = String::new();
    let _ = writeln!(out, "SPARC object code expansion (processed code only):");
    let _ = writeln!(
        out,
        "{:10}{:>12}{:>8}{:>14}",
        "", "-O2, safe", "-g", "-g, checked"
    );
    for (name, results) in &data.rows {
        let row = gc_safety::codesize_row(results, machine.name, name);
        let _ = writeln!(
            out,
            "{:10}{:>12}{:>8}{:>14}",
            name,
            fmt_cell(row.cells[0].1),
            fmt_cell(row.cells[1].1),
            fmt_cell(row.cells[2].1),
        );
    }
    out
}

/// E5: the postprocessor table — residual degradation of peephole-cleaned
/// safe code vs the optimized baseline, on the SPARC 10 (as in the paper).
pub fn postprocessor_table(data: &Dataset) -> String {
    let machine = Machine::sparc10();
    let mut out = String::new();
    let _ = writeln!(out, "After the peephole postprocessor (SPARC 10):");
    let _ = writeln!(out, "{:10}{:>14}{:>12}", "", "running time", "code size");
    for (name, results) in &data.rows {
        let row = gc_safety::postprocessor_row(results, machine.name, name);
        let _ = writeln!(
            out,
            "{:10}{:>14}{:>12}",
            name,
            fmt_cell(row.cells[0].1),
            fmt_cell(row.cells[1].1),
        );
    }
    out
}

/// F1: the Analysis-section listing — `char f(char *x) { return x[1]; }`
/// in baseline, safe, and postprocessed form.
pub fn analysis_listing() -> String {
    let src = "char f(char *x) { return x[1]; } int main(void) { return 0; }";
    let machine = Machine::sparc10();
    let mut out = String::new();
    let base = cvm::compile(src, &cvm::CompileOptions::optimized()).expect("compiles");
    let safe = cvm::compile(src, &cvm::CompileOptions::optimized_safe()).expect("compiles");
    let fi = base.func_index("f").expect("f exists");
    let base_asm = asmpost::codegen_program(&base, &machine);
    let mut safe_asm = asmpost::codegen_program(&safe, &machine);
    let _ = writeln!(
        out,
        "--- normal optimized code (the paper's `ldsb [%o0+1],%o0`) ---"
    );
    let _ = write!(out, "{}", base_asm[fi].listing());
    let _ = writeln!(
        out,
        "\n--- GC-safe code (the paper's add; empty asm; ldsb) ---"
    );
    let _ = write!(out, "{}", safe_asm[fi].listing());
    let stats = asmpost::postprocess_program(&mut safe_asm);
    let _ = writeln!(
        out,
        "\n--- after the peephole postprocessor ({} folds) ---",
        stats.loads_folded
    );
    let _ = write!(out, "{}", safe_asm[fi].listing());
    out
}

/// Ablation table for the paper's Optimizations section: `KEEP_LIVE`
/// counts and measured safe-mode cost under each annotator configuration.
///
/// * **opt 1 off** — copies are wrapped too ("there is clearly no reason
///   to replace the assignment p = q by p = KEEP_LIVE(q, q)");
/// * **opt 3 on** — the slowly-varying base heuristic;
/// * **opt 4 on** — call-site-only collection drops dereference wraps
///   ("the number of KEEP_LIVE invocations could often be reduced
///   dramatically").
pub fn ablation_table(scale: Scale) -> String {
    use gc_safety::CompileOptions;
    let machine = Machine::sparc10();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Annotator ablations (SPARC 10 cycles, wraps inserted):"
    );
    let _ = writeln!(
        out,
        "{:10}{:>10}{:>12}{:>12}{:>12}{:>14}{:>13}",
        "", "-O", "safe", "no-opt1", "base-heur", "call-sites", "naive-call"
    );
    let mut configs: Vec<(&str, CompileOptions)> = vec![
        ("safe", CompileOptions::optimized_safe()),
        ("no-opt1", {
            let mut o = CompileOptions::optimized_safe();
            o.annotate = Some(gcsafe::Config {
                skip_copies: false,
                ..gcsafe::Config::gc_safe()
            });
            o
        }),
        ("base-heur", {
            let mut o = CompileOptions::optimized_safe();
            o.annotate = Some(gcsafe::Config {
                base_heuristic: true,
                ..gcsafe::Config::gc_safe()
            });
            o
        }),
        ("call-sites", {
            let mut o = CompileOptions::optimized_safe();
            o.annotate = Some(gcsafe::Config {
                call_sites_only: true,
                ..gcsafe::Config::gc_safe()
            });
            o
        }),
        ("naive-call", CompileOptions::optimized_safe_naive()),
    ];
    let configs: Vec<(&str, CompileOptions)> = std::mem::take(&mut configs);
    for w in workloads::all() {
        let input = (w.input)(scale);
        let measure = |copts: &CompileOptions| -> (u64, usize) {
            let annotated = copts
                .annotate
                .as_ref()
                .map(|cfg| gcsafe::annotate_program(w.source, cfg).expect("annotates"));
            let wraps = annotated
                .map(|a| a.result.stats.keep_lives + a.result.stats.checks)
                .unwrap_or(0);
            let prog = cvm::compile(w.source, copts).expect("compiles");
            let vm = cvm::VmOptions {
                input: input.clone(),
                ..cvm::VmOptions::default()
            };
            let outcome = cvm::run_compiled(&prog, &vm).expect("runs");
            let asm = asmpost::codegen_program(&prog, &machine);
            let cost = asmpost::measure(&asm, &outcome.profile, &machine);
            (cost.cycles, wraps)
        };
        let (base_cycles, _) = measure(&CompileOptions::optimized());
        let _ = write!(out, "{:10}{:>10}", w.name, base_cycles);
        for (_, copts) in &configs {
            let (cycles, wraps) = measure(copts);
            let pct = (cycles as i128 * 100 / base_cycles as i128) - 100;
            let _ = write!(out, "{:>7}%/{:<4}", pct, wraps);
        }
        let _ = writeln!(out);
    }
    out
}

/// Renders a human-readable summary of a JSON-Lines trace, as produced by
/// [`gc_safety::JsonlSink`] via `tables --trace <file.jsonl>`.
///
/// Malformed lines are counted and reported, never fatal: a trace cut
/// short by a crash should still summarize.
pub fn trace_report(jsonl: &str) -> String {
    use gctrace::json::{parse_object, JsonValue};
    #[derive(Default)]
    struct Agg {
        total: usize,
        malformed: usize,
        workloads: Vec<String>,
        // annotate
        wraps: u64,
        wraps_by_primitive: BTreeMap<String, u64>,
        skips: u64,
        skips_by_reason: BTreeMap<String, u64>,
        incdecs: u64,
        base_heuristics: u64,
        annotate_summaries: u64,
        // opt
        opt_functions: u64,
        pass_fires: BTreeMap<String, u64>,
        // verify
        verdicts: u64,
        verdicts_clean: u64,
        // gc
        collections: u64,
        total_pause_ns: u64,
        max_pause_ns: u64,
        objects_swept: u64,
        bytes_swept: u64,
        // peephole
        peephole_functions: u64,
        loads_folded: u64,
        movs_forwarded: u64,
        add_movs_fused: u64,
        // vm
        runs: u64,
        steps: u64,
        // prof
        prof_histograms: BTreeMap<String, u64>,
        prof_censuses: u64,
        prof_live_bytes: u64,
    }
    let mut a = Agg::default();
    let get_u64 = |obj: &BTreeMap<String, JsonValue>, key: &str| -> u64 {
        obj.get(key).and_then(JsonValue::as_u64).unwrap_or(0)
    };
    let get_str = |obj: &BTreeMap<String, JsonValue>, key: &str| -> String {
        obj.get(key)
            .and_then(JsonValue::as_str)
            .unwrap_or("?")
            .to_string()
    };
    for line in jsonl.lines().filter(|l| !l.trim().is_empty()) {
        a.total += 1;
        let Ok(obj) = parse_object(line) else {
            a.malformed += 1;
            continue;
        };
        let stage = get_str(&obj, "stage");
        let kind = get_str(&obj, "kind");
        match (stage.as_str(), kind.as_str()) {
            ("bench", "workload") => a.workloads.push(get_str(&obj, "name")),
            ("annotate", "wrap") => {
                a.wraps += 1;
                *a.wraps_by_primitive
                    .entry(get_str(&obj, "primitive"))
                    .or_insert(0) += 1;
            }
            ("annotate", "skip") => {
                a.skips += 1;
                *a.skips_by_reason
                    .entry(get_str(&obj, "reason"))
                    .or_insert(0) += 1;
            }
            ("annotate", "incdec") => a.incdecs += 1,
            ("annotate", "base_heuristic") => a.base_heuristics += 1,
            ("annotate", "summary") => a.annotate_summaries += 1,
            ("opt", "function") => a.opt_functions += 1,
            ("opt", "pass") => {
                *a.pass_fires.entry(get_str(&obj, "pass")).or_insert(0) += get_u64(&obj, "fires");
            }
            ("verify", "verdict") => {
                a.verdicts += 1;
                if obj.get("ok") == Some(&JsonValue::Bool(true)) {
                    a.verdicts_clean += 1;
                }
            }
            ("gc", "collection") => {
                a.collections += 1;
                let pause = get_u64(&obj, "pause_ns");
                a.total_pause_ns += pause;
                a.max_pause_ns = a.max_pause_ns.max(pause);
                a.objects_swept += get_u64(&obj, "objects_swept");
                a.bytes_swept += get_u64(&obj, "bytes_swept");
            }
            ("peephole", "function") => {
                a.peephole_functions += 1;
                a.loads_folded += get_u64(&obj, "loads_folded");
                a.movs_forwarded += get_u64(&obj, "movs_forwarded");
                a.add_movs_fused += get_u64(&obj, "add_movs_fused");
            }
            ("vm", "run") => {
                a.runs += 1;
                a.steps += get_u64(&obj, "steps");
            }
            ("prof", "histogram") => {
                *a.prof_histograms.entry(get_str(&obj, "name")).or_insert(0) +=
                    get_u64(&obj, "count");
            }
            ("prof", "census") => {
                a.prof_censuses += 1;
                a.prof_live_bytes += get_u64(&obj, "live_bytes");
            }
            _ => {}
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "=== Trace report: {} events ===", a.total);
    if a.malformed > 0 {
        let _ = writeln!(out, "  ({} malformed lines skipped)", a.malformed);
    }
    if !a.workloads.is_empty() {
        let _ = writeln!(out, "workloads: {}", a.workloads.join(", "));
    }
    let _ = writeln!(
        out,
        "annotate:  {} wraps, {} skips, {} ++/-- rewrites, {} base-heuristic hits ({} function summaries)",
        a.wraps, a.skips, a.incdecs, a.base_heuristics, a.annotate_summaries
    );
    for (prim, n) in &a.wraps_by_primitive {
        let _ = writeln!(out, "           wrap {prim}: {n}");
    }
    for (reason, n) in &a.skips_by_reason {
        let _ = writeln!(out, "           skip {reason}: {n}");
    }
    let _ = write!(out, "optimizer: {} functions optimized", a.opt_functions);
    for (pass, n) in &a.pass_fires {
        let _ = write!(out, "; {pass} fired {n}x");
    }
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "verifier:  {} verdicts, {} clean, {} with violations",
        a.verdicts,
        a.verdicts_clean,
        a.verdicts - a.verdicts_clean
    );
    let _ = writeln!(
        out,
        "collector: {} collections, {:.3} ms total pause, {:.3} ms max pause, {} objects / {} bytes swept",
        a.collections,
        a.total_pause_ns as f64 / 1e6,
        a.max_pause_ns as f64 / 1e6,
        a.objects_swept,
        a.bytes_swept
    );
    let _ = writeln!(
        out,
        "peephole:  {} functions rewritten; {} loads folded, {} movs forwarded, {} add/movs fused",
        a.peephole_functions, a.loads_folded, a.movs_forwarded, a.add_movs_fused
    );
    let _ = writeln!(
        out,
        "vm:        {} runs, {} instructions executed",
        a.runs, a.steps
    );
    if a.prof_censuses > 0 || !a.prof_histograms.is_empty() {
        let hists: Vec<String> = a
            .prof_histograms
            .iter()
            .map(|(name, n)| format!("{name} x{n}"))
            .collect();
        let _ = writeln!(
            out,
            "prof:      {} censuses ({} live bytes), histogram samples: {}",
            a.prof_censuses,
            a.prof_live_bytes,
            if hists.is_empty() {
                "none".to_string()
            } else {
                hists.join(", ")
            }
        );
    }
    out
}

/// The annotated source of the paper's opening example, as the
/// preprocessor emits it.
pub fn annotated_example() -> String {
    let src = "char f(char *p, long i) { return p[i - 1000]; }";
    let annotated = gcsafe::annotate_program(src, &gcsafe::Config::gc_safe()).expect("annotates");
    annotated.annotated_source
}

/// Snapshots every profiled (workload, mode) cell of a [`Dataset`], in
/// the deterministic row-major order all exports share. Cells measured
/// without profiling (disabled handles) are skipped.
pub fn prof_cells(data: &Dataset) -> Vec<(&'static str, Mode, ProfData)> {
    let mut out = Vec::new();
    for (name, results) in &data.rows {
        for (mode, m) in results {
            if let Some(d) = m.prof.snapshot() {
                out.push((*name, *mode, d));
            }
        }
    }
    out
}

/// The gcprof human report: one block per profiled (workload, mode) cell.
///
/// Lines beginning with `pause:` or `mmu:` carry wall-clock timings and
/// are the only nondeterministic content; everything else (allocation
/// histogram, sites, census) is byte-identical at any `--jobs`.
pub fn prof_report(data: &Dataset) -> String {
    let mut out = String::new();
    for (name, mode, d) in prof_cells(data) {
        let _ = writeln!(out, "=== gcprof: {name} / {} ===", mode.label());
        let _ = writeln!(
            out,
            "alloc:     {} objects, {} bytes requested (sizes {}..{})",
            d.alloc_size.count(),
            d.alloc_size.sum(),
            if d.alloc_size.is_empty() {
                0
            } else {
                d.alloc_size.min()
            },
            d.alloc_size.max(),
        );
        let _ = writeln!(
            out,
            "collector: {} collections, {} bytes swept back",
            d.collections,
            d.sweep_freed_bytes.sum(),
        );
        let total_pause: u64 = d.pause_ns.sum();
        let _ = writeln!(
            out,
            "pause:     total {:.3} ms, max {:.3} ms (mark {:.3} ms / sweep {:.3} ms)",
            total_pause as f64 / 1e6,
            if d.pause_ns.is_empty() {
                0
            } else {
                d.pause_ns.max()
            } as f64
                / 1e6,
            d.mark_ns.sum() as f64 / 1e6,
            d.sweep_ns.sum() as f64 / 1e6,
        );
        let mut mmu = String::new();
        for (window_ns, label) in gc_safety::MMU_WINDOWS_NS {
            let _ = write!(mmu, "  {label} {}‰", d.mmu_permille(window_ns));
        }
        let _ = writeln!(out, "mmu:      {mmu}");
        if let Some(c) = &d.census {
            let _ = writeln!(
                out,
                "census:    {} live objects / {} bytes; {} small pages ({}‰ fragmentation), {} large, {} free, {} blacklisted",
                c.live_objects,
                c.live_bytes,
                c.small_pages,
                c.fragmentation_permille(),
                c.large_pages,
                c.free_pages,
                c.blacklisted_pages,
            );
        }
        let mut sites: Vec<_> = d.sites.iter().collect();
        sites.sort_by(|a, b| b.1.bytes.cmp(&a.1.bytes).then(a.0.cmp(b.0)));
        for (stack, stats) in sites.iter().take(5) {
            let _ = writeln!(
                out,
                "site:      {} bytes / {} allocs  {stack}",
                stats.bytes, stats.allocs
            );
        }
    }
    out
}

/// Prometheus text exposition for a profiled [`Dataset`]: every cell's
/// counters, histograms, site totals, census gauges, and MMU windows,
/// labelled `{workload=..., mode=...}`, plus the process-wide compilation
/// cache counters. Metric families whose names start with `gcprof_pause`,
/// `gcprof_mark`, `gcprof_sweep_ns`, `gcprof_mmu`, `gc_pause`, or
/// `gccache_` carry wall-clock or schedule-dependent data (cache counters
/// race across `--jobs` workers); everything else is deterministic across
/// `--jobs` (the parallel-determinism test relies on that prefix split).
pub fn prometheus_export(data: &Dataset) -> String {
    let cells = prof_cells(data);
    let mut w = gc_safety::PromWriter::new();
    w.family(
        "gcprof_collections_total",
        "Completed garbage collections",
        "counter",
    );
    for (name, mode, d) in &cells {
        w.sample(
            "gcprof_collections_total",
            &[("workload", name), ("mode", mode.key())],
            d.collections,
        );
    }
    let hists: [(&str, &str, fn(&ProfData) -> &gc_safety::Histogram); 5] = [
        (
            "gcprof_alloc_size_bytes",
            "Requested allocation sizes",
            |d| &d.alloc_size,
        ),
        (
            "gcprof_sweep_freed_bytes",
            "Bytes returned per sweep",
            |d| &d.sweep_freed_bytes,
        ),
        (
            "gcprof_pause_ns",
            "Stop-the-world pause per collection",
            |d| &d.pause_ns,
        ),
        ("gcprof_mark_ns", "Mark phase of each pause", |d| &d.mark_ns),
        ("gcprof_sweep_ns", "Sweep phase of each pause", |d| {
            &d.sweep_ns
        }),
    ];
    for (metric, help, pick) in hists {
        w.family(metric, help, "histogram");
        for (name, mode, d) in &cells {
            w.histogram(metric, &[("workload", name), ("mode", mode.key())], pick(d));
        }
    }
    w.family(
        "gcprof_site_allocs_total",
        "Allocations per call-stack-qualified allocation site",
        "counter",
    );
    for (name, mode, d) in &cells {
        for (site, stats) in &d.sites {
            w.sample(
                "gcprof_site_allocs_total",
                &[("workload", name), ("mode", mode.key()), ("site", site)],
                stats.allocs,
            );
        }
    }
    w.family(
        "gcprof_site_bytes_total",
        "Bytes allocated per call-stack-qualified allocation site",
        "counter",
    );
    for (name, mode, d) in &cells {
        for (site, stats) in &d.sites {
            w.sample(
                "gcprof_site_bytes_total",
                &[("workload", name), ("mode", mode.key()), ("site", site)],
                stats.bytes,
            );
        }
    }
    w.family(
        "gcprof_census_live_objects",
        "Live objects at end of run",
        "gauge",
    );
    for (name, mode, d) in &cells {
        if let Some(c) = &d.census {
            w.sample(
                "gcprof_census_live_objects",
                &[("workload", name), ("mode", mode.key())],
                c.live_objects,
            );
        }
    }
    w.family(
        "gcprof_census_live_bytes",
        "Live bytes at end of run",
        "gauge",
    );
    for (name, mode, d) in &cells {
        if let Some(c) = &d.census {
            w.sample(
                "gcprof_census_live_bytes",
                &[("workload", name), ("mode", mode.key())],
                c.live_bytes,
            );
        }
    }
    w.family(
        "gcprof_census_pages",
        "Heap pages by kind at end of run",
        "gauge",
    );
    for (name, mode, d) in &cells {
        if let Some(c) = &d.census {
            for (kind, v) in [
                ("small", c.small_pages),
                ("large", c.large_pages),
                ("free", c.free_pages),
                ("blacklisted", c.blacklisted_pages),
            ] {
                w.sample(
                    "gcprof_census_pages",
                    &[("workload", name), ("mode", mode.key()), ("kind", kind)],
                    v,
                );
            }
        }
    }
    w.family(
        "gcprof_census_fragmentation_permille",
        "Unused small-page capacity per mille at end of run",
        "gauge",
    );
    for (name, mode, d) in &cells {
        if let Some(c) = &d.census {
            w.sample(
                "gcprof_census_fragmentation_permille",
                &[("workload", name), ("mode", mode.key())],
                c.fragmentation_permille(),
            );
        }
    }
    w.family(
        "gcprof_census_class_live_bytes",
        "Live bytes per small size class at end of run",
        "gauge",
    );
    for (name, mode, d) in &cells {
        if let Some(c) = &d.census {
            for cls in &c.classes {
                let class = cls.obj_size.to_string();
                w.sample(
                    "gcprof_census_class_live_bytes",
                    &[("workload", name), ("mode", mode.key()), ("class", &class)],
                    cls.live_bytes,
                );
            }
        }
    }
    w.family(
        "gcprof_mmu_permille",
        "Minimum mutator utilization per window",
        "gauge",
    );
    for (name, mode, d) in &cells {
        for (window_ns, label) in gc_safety::MMU_WINDOWS_NS {
            w.sample(
                "gcprof_mmu_permille",
                &[("workload", name), ("mode", mode.key()), ("window", label)],
                d.mmu_permille(window_ns),
            );
        }
    }
    // The SLO-facing pause families under the stable `gc_` prefix: the
    // log2 bucket histogram alerting rules scrape, plus the p50/p99
    // summary. Both are wall-clock (covered by the `gc_pause` prefix in
    // the parallel-determinism strip list).
    w.family(
        "gc_pause_ns",
        "Stop-the-world pause distribution (log2 buckets)",
        "histogram",
    );
    for (name, mode, d) in &cells {
        w.histogram(
            "gc_pause_ns",
            &[("workload", name), ("mode", mode.key())],
            &d.pause_ns,
        );
    }
    w.family(
        "gc_pause_quantile_ns",
        "Stop-the-world pause quantiles",
        "summary",
    );
    for (name, mode, d) in &cells {
        w.summary(
            "gc_pause_quantile_ns",
            &[("workload", name), ("mode", mode.key())],
            &d.pause_ns,
        );
    }
    // Dominator-retained bytes per allocation site, from each cell's
    // `end` heap snapshot (top 5 sites by retained size, the same cut
    // `prof_report` applies to shallow site totals). Snapshots carry no
    // wall-clock data, so unlike the pause families this one is
    // deterministic across `--jobs` and stays out of the strip list.
    w.family(
        "gc_retained_bytes",
        "Dominator-retained bytes per allocation site (top 5, end-of-run snapshot)",
        "gauge",
    );
    for (name, mode, snaps) in snap_cells(data) {
        let Some((_, snap)) = snaps.iter().find(|(l, _)| l == "end") else {
            continue;
        };
        let a = gcsnap::analyze(snap);
        for r in gcsnap::site_rollup(snap, &a).iter().take(5) {
            w.sample(
                "gc_retained_bytes",
                &[("workload", name), ("mode", mode.key()), ("site", &r.site)],
                r.retained_bytes,
            );
        }
    }
    // Optimizer pass fires and fixpoint-driver statistics over the
    // matrix's optimizer modes. These are a pure function of the sources
    // and the pass registry — no wall-clock, no thread schedule — so the
    // families stay out of the stripped prefixes and must be
    // byte-identical at any `--jobs`.
    if let Ok(sweep) = opt_pass_fires() {
        w.family(
            "opt_pass_fires",
            "Optimizer pass fires over the matrix's optimizer modes (fixpoint driver)",
            "counter",
        );
        for (pass, fires) in &sweep.fires {
            w.sample("opt_pass_fires", &[("pass", pass)], *fires);
        }
        w.family(
            "opt_fixpoint_sweeps",
            "Fixpoint driver statistics over the matrix's optimizer modes",
            "gauge",
        );
        for (stat, v) in [
            ("functions", sweep.functions),
            ("total", sweep.sweeps_total),
            ("max", sweep.sweeps_max),
        ] {
            w.sample("opt_fixpoint_sweeps", &[("stat", stat)], v);
        }
    }
    // Compilation-cache counters. These are cumulative for the process
    // (not per-cell) and schedule-dependent — racing workers may both
    // miss one key — which is why every family sits under the stripped
    // `gccache_` prefix.
    let cache = gc_safety::cache_stats();
    w.family(
        "gccache_lookups_total",
        "Compilation cache lookups by stage and result",
        "counter",
    );
    for s in &cache {
        w.sample(
            "gccache_lookups_total",
            &[("stage", s.stage), ("result", "hit")],
            s.hits,
        );
        w.sample(
            "gccache_lookups_total",
            &[("stage", s.stage), ("result", "miss")],
            s.misses,
        );
    }
    w.family(
        "gccache_evictions_total",
        "Compilation cache entries dropped by FIFO eviction",
        "counter",
    );
    for s in &cache {
        w.sample(
            "gccache_evictions_total",
            &[("stage", s.stage)],
            s.evictions,
        );
    }
    w.family(
        "gccache_entries",
        "Compilation cache resident entries",
        "gauge",
    );
    for s in &cache {
        w.sample("gccache_entries", &[("stage", s.stage)], s.entries);
    }
    w.family(
        "gccache_hit_rate_permille",
        "Compilation cache hit rate per stage",
        "gauge",
    );
    for s in &cache {
        w.sample(
            "gccache_hit_rate_permille",
            &[("stage", s.stage)],
            s.hit_rate_permille(),
        );
    }
    w.finish()
}

/// Every snapped cell in row order: `(workload, mode, snapshots)` for
/// cells whose [`gcsnap::SnapHandle`] collected anything.
fn snap_cells(data: &Dataset) -> Vec<(&'static str, Mode, Vec<(String, gcsnap::Snapshot)>)> {
    let mut out = Vec::new();
    for (name, results) in &data.rows {
        for (mode, m) in results {
            if let Some(snaps) = m.snap.snapshots() {
                if !snaps.is_empty() {
                    out.push((*name, *mode, snaps));
                }
            }
        }
    }
    out
}

/// The `snap/1` heap-graph exports of a snapped [`Dataset`]: one
/// `(file_name, json)` pair per recorded snapshot, named
/// `{workload}__{mode}__{label}.json` in deterministic row order. Every
/// document is round-tripped through [`gcsnap::validate`] before it is
/// returned, so a corrupt export fails here rather than downstream.
/// Snapshots carry no wall-clock data, so the whole export set is
/// byte-identical at any `--jobs` and across cold/warm compilation
/// caches.
///
/// # Errors
///
/// Returns the validator's message for the first export that fails
/// round-trip validation (which would indicate a serializer bug).
pub fn snap_exports(data: &Dataset) -> Result<Vec<(String, String)>, String> {
    let mut out = Vec::new();
    for (name, mode, snaps) in snap_cells(data) {
        for (label, snap) in &snaps {
            let a = gcsnap::analyze(snap);
            let json = gcsnap::to_json(label, snap, &a);
            gcsnap::validate(&json).map_err(|e| {
                format!(
                    "snapshot export {name}/{}/{label} failed validation: {e}",
                    mode.key()
                )
            })?;
            out.push((format!("{name}__{}__{label}.json", mode.key()), json));
        }
    }
    Ok(out)
}

/// Flamegraph-folded stacks of allocated bytes: one line per
/// `workload;mode;call-stack;site`, weight = bytes allocated there. Feed
/// to `flamegraph.pl` / `inferno-flamegraph` as-is. Fully deterministic.
pub fn folded_export(data: &Dataset) -> String {
    let mut out = String::new();
    for (name, mode, d) in prof_cells(data) {
        for (stack, stats) in &d.sites {
            let _ = writeln!(out, "{name};{};{stack} {}", mode.key(), stats.bytes);
        }
    }
    out
}

/// Machine-readable per-cell summary (`BENCH_prof.json`): a JSON array
/// with one object per (workload, mode) cell — deterministic throughput
/// (SPARC 10 cycles, VM steps), allocation totals, collection count,
/// pause totals, and the live-bytes high-water mark.
pub fn bench_json(data: &Dataset) -> String {
    let machine = Machine::sparc10();
    let mut lines = Vec::new();
    for (name, results) in &data.rows {
        for (mode, m) in results {
            let mut w = gctrace::json::Writer::new();
            w.str_field("workload", name);
            w.str_field("mode", mode.key());
            if let Some(cost) = m.costs.get(machine.name) {
                w.uint_field("cycles_sparc10", cost.cycles);
            }
            if let Ok(out) = &m.outcome {
                w.uint_field("steps", out.steps);
                w.uint_field("allocations", out.heap.allocations);
                w.uint_field("bytes_requested", out.heap.bytes_requested);
                w.uint_field("collections", out.heap.collections);
                w.uint_field("total_pause_ns", out.heap.total_pause_ns);
                w.uint_field("max_pause_ns", out.heap.max_pause_ns);
                w.uint_field("peak_bytes_live", out.heap.peak_bytes_live);
            }
            lines.push(format!("  {}", w.finish()));
        }
    }
    format!("[\n{}\n]\n", lines.join(",\n"))
}

/// The GC perf trajectory (`BENCH_gc.json`): a JSON array with one flat
/// object per line — first every (workload, mode) matrix cell's collector
/// statistics, then the [`gc_microbench`] schedules. Schema `gc/1`; every
/// consumer keys on `"kind"` (`"matrix"` or `"micro"`). Timing fields
/// (`*_ns`, `allocs_per_sec`) are wall-clock and move run to run; every
/// count is deterministic.
pub fn bench_gc_json(data: &Dataset, micro: &[MicroCell]) -> String {
    let mut lines = Vec::new();
    let heap_fields = |w: &mut gctrace::json::Writer, h: &gcheap::HeapStats| {
        w.uint_field("allocations", h.allocations);
        w.uint_field("bytes_requested", h.bytes_requested);
        w.uint_field("collections", h.collections);
        w.uint_field("objects_freed", h.objects_freed);
        w.uint_field("pages_reclaimed", h.pages_reclaimed);
        w.uint_field("pages_swept_lazily", h.pages_swept_lazily);
        w.uint_field("sweep_debt_pages", h.sweep_debt_pages);
        w.uint_field("total_mark_ns", h.total_mark_ns);
        w.uint_field("total_sweep_ns", h.total_sweep_ns);
        w.uint_field("total_root_scan_ns", h.total_root_scan_ns);
        w.uint_field("total_heap_scan_ns", h.total_heap_scan_ns);
        w.uint_field("total_pause_ns", h.total_pause_ns);
        w.uint_field("max_pause_ns", h.max_pause_ns);
        w.uint_field("peak_bytes_live", h.peak_bytes_live);
        w.uint_field("collections_threshold", h.collections_threshold);
        w.uint_field("collections_emergency", h.collections_emergency);
        w.uint_field("collections_explicit", h.collections_explicit);
        w.uint_field(
            "collections_increment_finish",
            h.collections_increment_finish,
        );
        w.uint_field("collections_nursery", h.collections_nursery);
        w.uint_field("mark_increments", h.mark_increments);
        w.uint_field("sweep_increments", h.sweep_increments);
        w.uint_field("barrier_marks", h.barrier_marks);
    };
    // Pause attribution and MMU windows ride along whenever the cell was
    // profiled: the worst pause's cause/site answer "why" for every
    // max_pause_ns in the trajectory, and the MMU floors in budgets.toml
    // key on the mmu_* fields.
    let prof_fields = |w: &mut gctrace::json::Writer, d: &ProfData| {
        if let Some(worst) = d.collection_log.iter().max_by_key(|r| r.pause_ns) {
            w.str_field("max_pause_cause", worst.cause.as_str());
            w.str_field("max_pause_site", worst.site.as_deref().unwrap_or("-"));
        }
        for (window_ns, label) in gc_safety::MMU_WINDOWS_NS {
            w.uint_field(&format!("mmu_{label}_permille"), d.mmu_permille(window_ns));
        }
    };
    for (name, results) in &data.rows {
        for (mode, m) in results {
            let Ok(out) = &m.outcome else { continue };
            let mut w = gctrace::json::Writer::new();
            w.str_field("schema", "gc/1");
            w.str_field("kind", "matrix");
            w.str_field("workload", name);
            w.str_field("mode", mode.key());
            heap_fields(&mut w, &out.heap);
            if let Some(d) = m.prof.snapshot() {
                prof_fields(&mut w, &d);
            }
            lines.push(format!("  {}", w.finish()));
        }
    }
    for cell in micro {
        let mut w = gctrace::json::Writer::new();
        w.str_field("schema", "gc/1");
        w.str_field("kind", "micro");
        w.str_field("workload", cell.name);
        w.str_field("mode", "heap-direct");
        heap_fields(&mut w, &cell.stats);
        w.uint_field("wall_ns", cell.wall_ns);
        w.uint_field("allocs_per_sec", cell.allocs_per_sec());
        prof_fields(&mut w, &cell.prof);
        lines.push(format!("  {}", w.finish()));
    }
    format!("[\n{}\n]\n", lines.join(",\n"))
}

/// Validates a [`bench_gc_json`] document: every line between the array
/// brackets must parse as a flat JSON object carrying the `gc/1` schema
/// tag and the fields every trajectory consumer keys on. Returns the
/// number of cells.
///
/// # Errors
///
/// Returns a message naming the first malformed line.
pub fn validate_bench_gc_json(text: &str) -> Result<usize, String> {
    let mut cells = 0;
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        if line.is_empty() || line == "[" || line == "]" {
            continue;
        }
        let obj = gctrace::json::parse_object(line).map_err(|e| format!("bad cell: {e}"))?;
        for key in [
            "schema",
            "kind",
            "workload",
            "mode",
            "collections",
            "pages_swept_lazily",
            "total_mark_ns",
            "total_sweep_ns",
            "max_pause_ns",
        ] {
            if !obj.contains_key(key) {
                return Err(format!("cell missing {key:?}: {line}"));
            }
        }
        if obj.get("schema").and_then(gctrace::json::JsonValue::as_str) != Some("gc/1") {
            return Err(format!("unknown schema in cell: {line}"));
        }
        cells += 1;
    }
    if cells == 0 {
        return Err("no cells".into());
    }
    Ok(cells)
}

/// The `workload/mode` keys of [`bench_gc_json`] cells that never
/// collected. A zero-collection cell contributes nothing to the perf
/// trajectory — its pause budget is vacuously met — so the harness warns
/// about every one (this is how the under-scaled cfrac cells were
/// caught).
///
/// # Errors
///
/// Propagates parse errors from the document.
pub fn zero_collection_cells(text: &str) -> Result<Vec<String>, String> {
    Ok(low_collection_cells(text, 1)?
        .into_iter()
        .map(|(key, _)| key)
        .collect())
}

/// The minimum collections per collecting cell the harness considers
/// paper-honest: below this, pause statistics are a handful of samples
/// and the trajectory's percentiles are noise. Workload inputs at
/// [`Scale::Paper`] are sized so every collecting matrix cell clears it.
pub const MIN_COLLECTIONS: u64 = 10;

/// The `(workload/mode, collections)` pairs of [`bench_gc_json`] cells
/// that collected fewer than `min` times. `min = 1` reduces to
/// [`zero_collection_cells`]; the harness warns at
/// [`MIN_COLLECTIONS`], which is how the under-pressured gs and cordtest
/// cells were caught.
///
/// # Errors
///
/// Propagates parse errors from the document.
pub fn low_collection_cells(text: &str, min: u64) -> Result<Vec<(String, u64)>, String> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        if line.is_empty() || line == "[" || line == "]" {
            continue;
        }
        let obj = gctrace::json::parse_object(line).map_err(|e| format!("bad cell: {e}"))?;
        let get = |k: &str| obj.get(k).and_then(gctrace::json::JsonValue::as_str);
        let collections = obj
            .get("collections")
            .and_then(gctrace::json::JsonValue::as_u64)
            .unwrap_or(0);
        if collections < min {
            out.push((
                format!(
                    "{}/{}",
                    get("workload").unwrap_or("?"),
                    get("mode").unwrap_or("?")
                ),
                collections,
            ));
        }
    }
    Ok(out)
}

/// Builds the Perfetto timeline cells for `--timeline`: every profiled
/// matrix cell followed by the microbench schedules, each carrying its
/// per-collection attribution log. The order (row-major matrix, then
/// micro) and every record field the Chrome trace consumes are
/// deterministic, so [`gcwatch::chrome_trace`] over this is byte-identical
/// at any `--jobs`.
pub fn timeline_cells(data: &Dataset, micro: &[MicroCell]) -> Vec<gcwatch::TimelineCell> {
    let mut out = Vec::new();
    for (name, mode, d) in prof_cells(data) {
        out.push(gcwatch::TimelineCell {
            workload: name.to_string(),
            mode: mode.key().to_string(),
            records: d.collection_log,
        });
    }
    for cell in micro {
        out.push(gcwatch::TimelineCell {
            workload: cell.name.to_string(),
            mode: "heap-direct".to_string(),
            records: cell.prof.collection_log.clone(),
        });
    }
    out
}

/// One timed pass of the cache benchmark: a workload (`"matrix"` or
/// `"campaign"`) run either `"cold"` (caches just cleared) or `"warm"`
/// (immediately after an identical cold pass), with the per-stage
/// counter *deltas* attributable to this pass. `wall_ns` is wall-clock
/// and moves run to run; the hit/miss deltas are deterministic for a
/// fixed workload and cache state.
#[derive(Debug, Clone)]
pub struct CachePass {
    /// `"matrix"` (the 4×5 measurement matrix) or `"campaign"` (the
    /// fuzz oracle's five-mode differential builds).
    pub workload: &'static str,
    /// `"cold"` or `"warm"`.
    pub mode: &'static str,
    /// Wall-clock duration of the pass.
    pub wall_ns: u64,
    /// Per-stage hit/miss/eviction deltas for the pass; `entries` is the
    /// absolute resident count when the pass finished.
    pub stages: Vec<gc_safety::StageStats>,
}

/// Per-stage counter deltas between two [`gc_safety::cache_stats`]
/// snapshots: hits/misses/evictions are `after − before` (the global
/// counters are process-cumulative and survive [`gc_safety::cache_clear`]),
/// `entries` is `after`'s absolute count.
fn stage_deltas(
    before: &[gc_safety::StageStats],
    after: &[gc_safety::StageStats],
) -> Vec<gc_safety::StageStats> {
    after
        .iter()
        .map(|a| {
            let b = before.iter().find(|b| b.stage == a.stage);
            let base = |f: fn(&gc_safety::StageStats) -> u64| b.map(f).unwrap_or(0);
            gc_safety::StageStats {
                stage: a.stage,
                hits: a.hits.saturating_sub(base(|s| s.hits)),
                misses: a.misses.saturating_sub(base(|s| s.misses)),
                evictions: a.evictions.saturating_sub(base(|s| s.evictions)),
                entries: a.entries,
            }
        })
        .collect()
}

/// The compilation-cache trajectory (`BENCH_cache.json`): a JSON array
/// with one flat object per [`CachePass`]. Schema `cache/1`; each cell
/// carries the pass wall time, per-stage `<stage>_hits` /
/// `<stage>_misses` / `<stage>_evictions` / `<stage>_entries` deltas,
/// their totals, and `hit_rate_permille` — the field the
/// `budgets-cache.toml` floors key on. `wall_ns` is wall-clock; every
/// count is deterministic per pass.
pub fn bench_cache_json(passes: &[CachePass]) -> String {
    let mut lines = Vec::new();
    for pass in passes {
        let mut w = gctrace::json::Writer::new();
        w.str_field("schema", "cache/1");
        w.str_field("kind", "cache");
        w.str_field("workload", pass.workload);
        w.str_field("mode", pass.mode);
        w.uint_field("wall_ns", pass.wall_ns);
        for s in &pass.stages {
            w.uint_field(&format!("{}_hits", s.stage), s.hits);
            w.uint_field(&format!("{}_misses", s.stage), s.misses);
            w.uint_field(&format!("{}_evictions", s.stage), s.evictions);
            w.uint_field(&format!("{}_entries", s.stage), s.entries);
        }
        let t = gccache::total(&pass.stages);
        w.uint_field("hits", t.hits);
        w.uint_field("misses", t.misses);
        w.uint_field("evictions", t.evictions);
        w.uint_field("hit_rate_permille", t.hit_rate_permille());
        lines.push(format!("  {}", w.finish()));
    }
    format!("[\n{}\n]\n", lines.join(",\n"))
}

/// Validates a [`bench_cache_json`] document: every line between the
/// array brackets must parse as a flat JSON object carrying the
/// `cache/1` schema tag and the fields the cache gate keys on. Returns
/// the number of cells.
///
/// # Errors
///
/// Returns a message naming the first malformed line.
pub fn validate_bench_cache_json(text: &str) -> Result<usize, String> {
    let mut cells = 0;
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        if line.is_empty() || line == "[" || line == "]" {
            continue;
        }
        let obj = gctrace::json::parse_object(line).map_err(|e| format!("bad cell: {e}"))?;
        for key in [
            "schema",
            "kind",
            "workload",
            "mode",
            "wall_ns",
            "hits",
            "misses",
            "hit_rate_permille",
        ] {
            if !obj.contains_key(key) {
                return Err(format!("cell missing {key:?}: {line}"));
            }
        }
        if obj.get("schema").and_then(gctrace::json::JsonValue::as_str) != Some("cache/1") {
            return Err(format!("unknown schema in cell: {line}"));
        }
        cells += 1;
    }
    if cells == 0 {
        return Err("no cells".into());
    }
    Ok(cells)
}

/// The deterministic artifact set the cache bench byte-compares across
/// cold and warm passes: the three slowdown tables, the codesize and
/// postprocessor tables, and the flamegraph folded stacks. (The
/// Prometheus export and JSON trajectories carry wall-clock fields, so
/// they are covered by the stripped-metric comparisons in the test
/// suite instead.)
fn cache_bench_artifacts(data: &Dataset) -> String {
    let mut out = String::new();
    for key in ["sparc2", "sparc10", "pentium90"] {
        out.push_str(&slowdown_table(data, key));
    }
    out.push_str(&codesize_table(data));
    out.push_str(&postprocessor_table(data));
    out.push_str(&folded_export(data));
    out
}

/// Runs the cache benchmark and returns the [`bench_cache_json`]
/// document: the measurement matrix and a `fuzz_count`-case fuzz
/// campaign, each run cold (caches cleared) and then warm, timing every
/// pass and attributing per-stage hit/miss deltas to it.
///
/// This is also the cache's soundness smoke: the warm matrix must
/// reproduce the cold pass's deterministic artifacts byte-for-byte
/// ([`cache_bench_artifacts`]) with zero cache misses, and the warm
/// campaign must return a [`gcfuzz::Report`] equal to the cold one.
/// Keep `fuzz_count` modest (≲ 80): the campaign compiles each case
/// under four distinct option sets, and the warm-pass zero-miss
/// assertion needs all of them resident in the 512-entry compile and
/// lower caches.
///
/// # Errors
///
/// Build failures, cross-mode divergence, cold/warm artifact or verdict
/// mismatches, and unexpected warm-pass misses are all reported as
/// messages (the caller should treat any of them as a failed run).
pub fn run_cache_bench(
    scale: Scale,
    jobs: usize,
    fuzz_seed: u64,
    fuzz_count: u64,
) -> Result<String, String> {
    fn timed<T>(
        passes: &mut Vec<CachePass>,
        workload: &'static str,
        mode: &'static str,
        run: impl FnOnce() -> Result<T, String>,
    ) -> Result<T, String> {
        let before = gc_safety::cache_stats();
        let start = std::time::Instant::now();
        let out = run()?;
        let wall_ns = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        let after = gc_safety::cache_stats();
        passes.push(CachePass {
            workload,
            mode,
            wall_ns,
            stages: stage_deltas(&before, &after),
        });
        Ok(out)
    }
    if !gccache::enabled() {
        return Err("cache bench: the compilation cache is disabled".into());
    }
    let mut passes = Vec::new();
    let matrix = || collect_instrumented_jobs(scale, &TraceHandle::disabled(), true, jobs);

    // Matrix, cold then warm: identical inputs, so the warm pass must be
    // served entirely from cache and reproduce every deterministic
    // artifact byte-for-byte.
    gc_safety::cache_clear();
    let cold = timed(&mut passes, "matrix", "cold", matrix)?;
    let warm = timed(&mut passes, "matrix", "warm", matrix)?;
    if cache_bench_artifacts(&cold) != cache_bench_artifacts(&warm) {
        return Err(
            "cache bench: warm matrix artifacts diverge from the cold pass (cache unsoundness)"
                .into(),
        );
    }
    let t = gccache::total(&passes.last().expect("warm matrix pass").stages);
    if t.misses != 0 || t.hits == 0 {
        return Err(format!(
            "cache bench: warm matrix pass expected pure hits, got {} hits / {} misses",
            t.hits, t.misses
        ));
    }

    // Fuzz campaign, cold then warm: the oracle's five-mode differential
    // builds all flow through the compile cache, and the verdicts must
    // not move when they are served from it.
    gc_safety::cache_clear();
    let campaign = || Ok::<_, String>(gcfuzz::run_campaign(fuzz_seed, fuzz_count, jobs));
    let cold_report = timed(&mut passes, "campaign", "cold", campaign)?;
    let warm_report = timed(&mut passes, "campaign", "warm", campaign)?;
    if !cold_report.failures.is_empty() {
        return Err(format!(
            "cache bench: fuzz campaign (seed {fuzz_seed}) found {} divergent case(s)",
            cold_report.failures.len()
        ));
    }
    if cold_report != warm_report {
        return Err(
            "cache bench: warm campaign verdicts diverge from the cold pass (cache unsoundness)"
                .into(),
        );
    }
    let t = gccache::total(&passes.last().expect("warm campaign pass").stages);
    if t.misses != 0 || t.hits == 0 {
        return Err(format!(
            "cache bench: warm campaign pass expected pure hits, got {} hits / {} misses",
            t.hits, t.misses
        ));
    }
    Ok(bench_cache_json(&passes))
}

/// A deterministic synthetic kernel folded into the optimizer fire-count
/// sweep alongside the paper workloads. Each region is shaped for one of
/// the registry's gated passes — back-to-back stores for dse, a branch
/// that binds the same constant on both arms for sccp, a loop-carried
/// scaled index for strength reduction, and a dominated recomputation
/// for gvn — so the fire-count gate never depends on the paper sources
/// happening to contain every shape.
const OPT_KERNEL_SOURCE: &str = r#"
int main(void) {
    long n = 64;
    long *a = (long *) malloc(n * sizeof(long));
    long *t = (long *) malloc(2 * sizeof(long));
    long i; long s = 0; long f = 0; long m = 0; long x = 0; long y = 0;
    for (i = 0; i < n; i++) a[i] = i * 2 + 1;
    /* dse: the first store to t[0] is overwritten before any read or
       call can observe it. */
    for (i = 0; i < n; i++) {
        t[0] = s + 7;
        t[0] = i * 3;
        s = s + t[0] + a[i];
    }
    /* sccp: both arms bind the same constant, so only constant
       propagation through the branch proves the loop-body condition. */
    if (n > 4) f = 5; else f = 5;
    for (i = 0; i < n; i++) {
        if (f > 4) s = s + a[i]; else s = s - a[i] * 2;
    }
    /* strength: a loop-carried scaled index becomes a strided pointer. */
    m = n / 3;
    for (i = 0; i < m; i++) s = s + a[i * 3];
    /* gvn: the entry computation of x*9+1 dominates the recomputation
       inside the loop. */
    x = s / 7;
    y = x * 9 + 1;
    for (i = 0; i < 4; i++) s = s + x * 9 + 1 - y;
    putint(s & 0xffffff);
    return 0;
}
"#;

/// Per-pass fire totals and fixpoint-driver statistics over the
/// optimizer sweep: every paper workload plus [`OPT_KERNEL_SOURCE`],
/// compiled to pre-optimizer IR under each optimizer-running mode, then
/// driven to fixpoint with a ledger attached. Everything here is a
/// deterministic function of the sources and the pass registry — no
/// wall-clock, no thread schedule — so the numbers are byte-identical
/// at any `--jobs` and across cold/warm compilation caches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OptSweep {
    /// `(pass name, total fires)` in registry order, summed over the sweep.
    pub fires: Vec<(&'static str, u64)>,
    /// Functions driven to fixpoint.
    pub functions: u64,
    /// Total driver sweeps across all functions (each includes the final
    /// all-zero sweep that proves the fixpoint).
    pub sweeps_total: u64,
    /// Maximum sweeps any single function needed.
    pub sweeps_max: u64,
}

/// Runs the optimizer fire-count sweep (see [`OptSweep`]).
///
/// The optimizer-running modes are `-O` and `-O safe`; `-O safe+post`
/// shares the safe build's optimizer configuration (the postprocessor
/// runs after codegen), so counting it would only double the safe rows.
/// Each source is compiled with the optimizer disabled to obtain the
/// exact pre-optimizer IR, then every function is cloned and driven
/// through [`cvm::optimize_func_ledger`] under the mode's real options.
///
/// # Errors
///
/// Returns a message naming the source/mode whose front-end failed.
pub fn opt_pass_fires() -> Result<OptSweep, String> {
    let mut sweep = OptSweep {
        fires: cvm::pass_names().iter().map(|n| (*n, 0u64)).collect(),
        functions: 0,
        sweeps_total: 0,
        sweeps_max: 0,
    };
    let mut sources: Vec<(&str, &str)> = workloads::all()
        .iter()
        .map(|w| (w.name, w.source))
        .collect();
    sources.push(("optkernel", OPT_KERNEL_SOURCE));
    for (name, source) in sources {
        for mode in [Mode::O, Mode::OSafe] {
            let copts = mode.compile_options();
            let mut front = mode.compile_options();
            front.opt.enabled = false;
            let prog = cvm::compile(source, &front)
                .map_err(|e| format!("opt bench: {name}/{} front-end: {e}", mode.key()))?;
            for f in &prog.funcs {
                let mut again = f.clone();
                let ledger = cvm::optimize_func_ledger(&mut again, copts.opt);
                sweep.functions += 1;
                sweep.sweeps_total += ledger.sweeps as u64;
                sweep.sweeps_max = sweep.sweeps_max.max(ledger.sweeps as u64);
                for (slot, (pass, fires)) in sweep.fires.iter_mut().zip(&ledger.fires) {
                    debug_assert_eq!(slot.0, *pass);
                    slot.1 += *fires as u64;
                }
            }
        }
    }
    Ok(sweep)
}

/// Registered passes that never fired across the sweep — the signal the
/// tables runner warns on, and the CI smoke fails on: a zero-fire pass
/// is either regressed pattern matching or a registry entry nothing
/// exercises.
pub fn zero_fire_passes(sweep: &OptSweep) -> Vec<&'static str> {
    sweep
        .fires
        .iter()
        .filter(|(_, fires)| *fires == 0)
        .map(|(pass, _)| *pass)
        .collect()
}

/// Human-readable per-pass fire summary for the tables output.
pub fn opt_report(sweep: &OptSweep) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Optimizer pass fires (paper workloads + kernel, -O and -O safe):"
    );
    for (pass, fires) in &sweep.fires {
        let _ = writeln!(out, "  {pass:16}{fires:>8}");
    }
    let _ = writeln!(
        out,
        "  {} functions to fixpoint in {} sweeps (max {} per function, cap {})",
        sweep.functions,
        sweep.sweeps_total,
        sweep.sweeps_max,
        cvm::opt::FIXPOINT_SWEEP_CAP,
    );
    out
}

/// One `-O` cycle-comparison cell: a workload's measured cycles with the
/// seed pipeline (the four PR-10 passes disabled) against the full
/// registry, on one machine model.
#[derive(Debug, Clone)]
pub struct OptCycles {
    /// Workload name.
    pub workload: &'static str,
    /// Machine key (`sparc2`, `sparc10`, `pentium90`).
    pub machine: &'static str,
    /// Cycles with gvn/sccp/dse/strength disabled.
    pub cycles_base: u64,
    /// Cycles with the full registry.
    pub cycles_full: u64,
}

impl OptCycles {
    /// Cycles saved by the new passes, in permille of the base (0 when
    /// the full pipeline is not an improvement).
    pub fn saved_permille(&self) -> u64 {
        if self.cycles_base == 0 {
            return 0;
        }
        self.cycles_base.saturating_sub(self.cycles_full) * 1000 / self.cycles_base
    }
}

/// Measures every paper workload under `-O` with the seed pipeline
/// (gvn/sccp/dse/strength off) and with the full registry, and reports
/// cycles per machine model. Deterministic: the VM's cycle model has no
/// wall-clock input.
///
/// # Errors
///
/// Returns a message naming the workload whose build or run failed.
pub fn opt_cycles(scale: Scale) -> Result<Vec<OptCycles>, String> {
    let mut out = Vec::new();
    for w in workloads::all() {
        let input = (w.input)(scale);
        let measure = |opt: cvm::OptOptions| -> Result<BTreeMap<&'static str, u64>, String> {
            let mut copts = Mode::O.compile_options();
            copts.opt = opt;
            let prog = cvm::compile(w.source, &copts)
                .map_err(|e| format!("opt bench: {} does not compile: {e}", w.name))?;
            let vm = cvm::VmOptions {
                input: input.clone(),
                ..cvm::VmOptions::default()
            };
            let outcome = cvm::run_compiled(&prog, &vm)
                .map_err(|e| format!("opt bench: {} failed to run: {e}", w.name))?;
            let mut cycles = BTreeMap::new();
            for key in ["sparc2", "sparc10", "pentium90"] {
                let machine = Machine::by_key(key).expect("known machine key");
                let asm = asmpost::codegen_program(&prog, &machine);
                cycles.insert(
                    key,
                    asmpost::measure(&asm, &outcome.profile, &machine).cycles,
                );
            }
            Ok(cycles)
        };
        let mut seed = Mode::O.compile_options().opt;
        seed.gvn = false;
        seed.sccp = false;
        seed.dse = false;
        seed.strength = false;
        let base = measure(seed)?;
        let full = measure(Mode::O.compile_options().opt)?;
        for key in ["sparc2", "sparc10", "pentium90"] {
            out.push(OptCycles {
                workload: w.name,
                machine: key,
                cycles_base: base[key],
                cycles_full: full[key],
            });
        }
    }
    Ok(out)
}

/// The optimizer trajectory (`BENCH_opt.json`), schema `opt/1`:
///
/// * one `kind: "pass"` cell per registered pass (cell key
///   `pass/<name>`) with its sweep-wide fire total and `fired_permille`
///   (1000 or 0) — the field `budgets-opt.toml` floors at 1000;
/// * one `kind: "fixpoint"` cell with the driver statistics;
/// * one `kind: "cycles"` cell per workload × machine (cell key
///   `<workload>/O-<machine>`) with seed-vs-full cycles and
///   `saved_permille` for the improvement floors.
///
/// No cell carries wall-clock or a `collections` field, so the document
/// is byte-identical at any `--jobs` and exempt from the perf gate's
/// new-cell pause check.
pub fn bench_opt_json(sweep: &OptSweep, cycles: &[OptCycles]) -> String {
    let mut lines = Vec::new();
    for (pass, fires) in &sweep.fires {
        let mut w = gctrace::json::Writer::new();
        w.str_field("schema", "opt/1");
        w.str_field("kind", "pass");
        w.str_field("workload", "pass");
        w.str_field("mode", pass);
        w.uint_field("fires", *fires);
        w.uint_field("fired_permille", if *fires > 0 { 1000 } else { 0 });
        lines.push(format!("  {}", w.finish()));
    }
    {
        let mut w = gctrace::json::Writer::new();
        w.str_field("schema", "opt/1");
        w.str_field("kind", "fixpoint");
        w.str_field("workload", "fixpoint");
        w.str_field("mode", "all");
        w.uint_field("functions", sweep.functions);
        w.uint_field("sweeps_total", sweep.sweeps_total);
        w.uint_field("sweeps_max", sweep.sweeps_max);
        lines.push(format!("  {}", w.finish()));
    }
    for c in cycles {
        let mut w = gctrace::json::Writer::new();
        w.str_field("schema", "opt/1");
        w.str_field("kind", "cycles");
        w.str_field("workload", c.workload);
        w.str_field("mode", &format!("O-{}", c.machine));
        w.uint_field("cycles_base", c.cycles_base);
        w.uint_field("cycles_full", c.cycles_full);
        w.uint_field("saved_permille", c.saved_permille());
        lines.push(format!("  {}", w.finish()));
    }
    format!("[\n{}\n]\n", lines.join(",\n"))
}

/// Validates a [`bench_opt_json`] document: every line between the array
/// brackets must parse as a flat object carrying the `opt/1` schema tag
/// and the fields its `kind` is gated on. Returns the number of cells.
///
/// # Errors
///
/// Returns a message naming the first malformed line.
pub fn validate_bench_opt_json(text: &str) -> Result<usize, String> {
    let mut cells = 0;
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        if line.is_empty() || line == "[" || line == "]" {
            continue;
        }
        let obj = gctrace::json::parse_object(line).map_err(|e| format!("bad cell: {e}"))?;
        if obj.get("schema").and_then(gctrace::json::JsonValue::as_str) != Some("opt/1") {
            return Err(format!("unknown schema in cell: {line}"));
        }
        let kind = obj
            .get("kind")
            .and_then(gctrace::json::JsonValue::as_str)
            .ok_or_else(|| format!("cell missing \"kind\": {line}"))?;
        let required: &[&str] = match kind {
            "pass" => &["workload", "mode", "fires", "fired_permille"],
            "fixpoint" => &[
                "workload",
                "mode",
                "functions",
                "sweeps_total",
                "sweeps_max",
            ],
            "cycles" => &[
                "workload",
                "mode",
                "cycles_base",
                "cycles_full",
                "saved_permille",
            ],
            other => return Err(format!("unknown cell kind {other:?}: {line}")),
        };
        for key in required {
            if !obj.contains_key(*key) {
                return Err(format!("{kind} cell missing {key:?}: {line}"));
            }
        }
        cells += 1;
    }
    if cells == 0 {
        return Err("no cells".into());
    }
    Ok(cells)
}

/// Runs the optimizer benchmark and returns the [`bench_opt_json`]
/// document: the fire-count sweep plus the seed-vs-full cycle
/// comparison. Fully deterministic — see [`OptSweep`].
///
/// # Errors
///
/// Build or run failures are reported as messages.
pub fn run_opt_bench(scale: Scale) -> Result<String, String> {
    let sweep = opt_pass_fires()?;
    let cycles = opt_cycles(scale)?;
    Ok(bench_opt_json(&sweep, &cycles))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_gc_json_is_valid_and_covers_matrix_and_micro() {
        let data = collect(Scale::Tiny).expect("all workloads run");
        let micro = gc_microbench(true);
        let text = bench_gc_json(&data, &micro);
        let cells = validate_bench_gc_json(&text).expect("parses");
        // Cells whose VM run traps (g-checked catching a hazard) carry no
        // heap stats and are skipped, so count from the dataset itself.
        let measured: usize = data
            .rows
            .iter()
            .map(|(_, results)| results.iter().filter(|(_, m)| m.outcome.is_ok()).count())
            .sum();
        assert_eq!(cells, measured + micro.len());
        assert!(
            cells >= 19 + 3,
            "nearly every matrix cell measured: {cells}"
        );
        assert!(text.contains("\"kind\":\"micro\""));
        assert!(text.contains("\"workload\":\"churn-small\""));
        assert!(validate_bench_gc_json("[\n]\n").is_err(), "empty rejected");
        assert!(validate_bench_gc_json("[\n  not json\n]\n").is_err());
    }

    #[test]
    fn tiny_dataset_builds_all_tables() {
        let data = collect(Scale::Tiny).expect("all workloads run");
        let t1 = slowdown_table(&data, "sparc10");
        assert!(t1.contains("cordtest"));
        assert!(t1.contains("gawk"));
        assert!(t1.contains("<fails>"), "gawk checked cell: {t1}");
        let t2 = codesize_table(&data);
        assert!(t2.contains("%"));
        let t3 = postprocessor_table(&data);
        assert!(t3.contains("cordtest"));
    }

    #[test]
    fn shape_envelope_holds_even_at_tiny_scale() {
        let data = collect(Scale::Tiny).expect("all workloads run");
        let report = paper_comparison(&data);
        assert!(
            !report.contains("SHAPE MISMATCH"),
            "qualitative envelope violated:\n{report}"
        );
        assert!(report.contains("every cell within the paper's qualitative envelope"));
    }

    #[test]
    fn traced_collect_produces_a_complete_jsonl_and_report() {
        let buf = std::sync::Arc::new(std::sync::Mutex::new(Vec::<u8>::new()));
        struct Shared(std::sync::Arc<std::sync::Mutex<Vec<u8>>>);
        impl std::io::Write for Shared {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let trace = TraceHandle::new(std::sync::Arc::new(gc_safety::JsonlSink::new(Box::new(
            Shared(buf.clone()),
        ))));
        collect_traced(Scale::Tiny, &trace).expect("all workloads run");
        // Tiny-scale workloads allocate less than the collector's 256 KiB
        // trigger threshold, so add one allocation-heavy measurement to
        // exercise the GC timeline through the same facade path. (The
        // paper-scale `tables --trace` run collects on its own.)
        let churn = r#"
            int main(void) {
                long i;
                for (i = 0; i < 4000; i++) { char *p = (char *) malloc(256); p[0] = 1; }
                return 0;
            }
        "#;
        let m =
            gc_safety::measure_source_traced(churn, b"", Mode::OSafePost, &trace).expect("builds");
        assert!(m.outcome.expect("runs").heap.collections > 0);
        let jsonl = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        // Every line is a valid JSON object with stage and kind.
        let mut stages = std::collections::BTreeSet::new();
        for line in jsonl.lines() {
            let obj = gctrace::json::parse_object(line)
                .unwrap_or_else(|e| panic!("bad line: {e}\n{line}"));
            let stage = obj["stage"]
                .as_str()
                .expect("stage is a string")
                .to_string();
            assert!(obj.contains_key("kind"), "{line}");
            stages.insert(stage);
        }
        // The acceptance criterion: annotation, optimizer, collection, and
        // peephole events are all present for at least one workload.
        for required in ["annotate", "opt", "gc", "peephole", "verify", "vm", "bench"] {
            assert!(
                stages.contains(required),
                "missing stage '{required}' in {stages:?}"
            );
        }
        let report = trace_report(&jsonl);
        assert!(report.contains("=== Trace report:"), "{report}");
        assert!(!report.contains("malformed"), "{report}");
        for needle in ["wraps", "collections", "loads folded", "verdicts", "runs"] {
            assert!(report.contains(needle), "missing '{needle}' in:\n{report}");
        }
        // Workload markers made it through (cordtest is the first row).
        assert!(report.contains("cordtest"), "{report}");
    }

    #[test]
    fn trace_report_tolerates_garbage_lines() {
        let jsonl = "{\"stage\":\"gc\",\"kind\":\"collection\",\"pause_ns\":1000}\nnot json\n";
        let report = trace_report(jsonl);
        assert!(report.contains("1 malformed"), "{report}");
        assert!(report.contains("1 collections"), "{report}");
    }

    #[test]
    fn analysis_listing_shows_the_story() {
        let l = analysis_listing();
        assert!(l.contains("[%r") && l.contains("+1]"), "indexed load: {l}");
        assert!(l.contains("keep_live"), "marker: {l}");
    }

    #[test]
    fn annotated_example_matches_paper_form() {
        let a = annotated_example();
        assert!(a.contains("KEEP_LIVE"), "{a}");
    }

    #[test]
    fn every_registered_pass_fires_in_the_opt_sweep() {
        // The fire-count gate's core claim: the paper workloads plus the
        // synthetic kernel give every registered pass — in particular
        // the second crop (gvn, sccp, dse, strength) — at least one
        // firing opportunity, and the sweep is deterministic.
        let sweep = opt_pass_fires().expect("sweep runs");
        assert_eq!(zero_fire_passes(&sweep), Vec::<&str>::new());
        for pass in ["gvn", "sccp", "dse", "strength"] {
            let (_, fires) = sweep
                .fires
                .iter()
                .find(|(p, _)| *p == pass)
                .expect("registered");
            assert!(*fires > 0, "{pass} never fired");
        }
        assert!(sweep.functions > 0 && sweep.sweeps_max >= 2);
        assert!(sweep.sweeps_max as usize <= cvm::opt::FIXPOINT_SWEEP_CAP);
        assert_eq!(sweep, opt_pass_fires().expect("sweep reruns"));
    }

    #[test]
    fn bench_opt_json_is_valid_and_deterministic() {
        let text = run_opt_bench(Scale::Tiny).expect("opt bench runs");
        let cells = validate_bench_opt_json(&text).expect("validates");
        // One cell per registered pass, one fixpoint cell, one cycles
        // cell per workload × machine.
        assert_eq!(cells, cvm::pass_names().len() + 1 + 4 * 3);
        assert_eq!(text, run_opt_bench(Scale::Tiny).expect("opt bench reruns"));
        assert!(validate_bench_opt_json("[\n]\n").is_err(), "empty rejected");
        assert!(
            validate_bench_opt_json("[\n  {\"schema\":\"opt/1\",\"kind\":\"pass\"}\n]\n").is_err(),
            "pass cell without fires rejected"
        );
    }
}

/// The paper's published numbers, for programmatic shape comparison.
/// `None` marks cells the paper leaves empty (cfrac's `-g` inlining
/// problem, the checked cells it could not run).
pub mod paper {
    /// (program, safe%, -g%, checked%) per machine; `None` = not reported.
    pub type SlowdownRow = (&'static str, Option<i64>, Option<i64>, Option<i64>);

    /// SPARCstation 2 slowdown table.
    pub const SPARC2: &[SlowdownRow] = &[
        ("cordtest", Some(9), Some(54), Some(514)),
        ("cfrac", Some(17), None, None),
        ("gawk", Some(8), Some(25), None), // checked: <fails>
        ("gs", Some(0), Some(33), Some(205)),
    ];

    /// SPARC 10 slowdown table.
    pub const SPARC10: &[SlowdownRow] = &[
        ("cordtest", Some(9), Some(56), Some(529)),
        ("cfrac", Some(8), None, None),
        ("gawk", Some(8), Some(48), None),
        ("gs", Some(5), Some(37), Some(366)),
    ];

    /// Pentium 90 slowdown table.
    pub const PENTIUM90: &[SlowdownRow] = &[
        ("cordtest", Some(12), Some(28), Some(510)),
        ("cfrac", Some(11), None, None),
        ("gawk", Some(9), Some(41), None),
        ("gs", Some(6), Some(17), Some(279)),
    ];

    /// Code-size expansion table.
    pub const CODESIZE: &[SlowdownRow] = &[
        ("cordtest", Some(9), Some(69), Some(130)),
        ("cfrac", Some(6), None, None),
        ("gawk", Some(15), Some(68), None),
        ("gs", Some(19), Some(73), Some(160)),
    ];

    /// Postprocessor table: (program, time%, size%).
    pub const POSTPROCESSOR: &[(&str, i64, i64)] = &[
        ("cordtest", 4, 3),
        ("cfrac", 2, 3),
        ("gawk", 1, 7),
        ("gs", 2, 7),
    ];
}

/// Prints a paper-vs-measured comparison with shape verdicts: the safe
/// column stays under 25%, `-g` lands in the tens of percent, checked
/// runs at least ~1.5× (or fails where the paper's did), and the
/// postprocessor residual stays in single digits.
pub fn paper_comparison(data: &Dataset) -> String {
    let mut out = String::new();
    let machines: [(&str, &str, &[paper::SlowdownRow]); 3] = [
        ("sparc2", "SPARCstation 2", paper::SPARC2),
        ("sparc10", "SPARC 10", paper::SPARC10),
        ("pentium90", "Pentium 90", paper::PENTIUM90),
    ];
    let mut all_ok = true;
    for (key, label, rows) in machines {
        let machine = Machine::by_key(key).expect("known");
        let _ = writeln!(out, "{label} (paper → measured):");
        for (name, results) in &data.rows {
            let row = gc_safety::slowdown_row(results, machine.name, name);
            let prow = rows
                .iter()
                .find(|(n, ..)| n == name)
                .copied()
                .unwrap_or((name, None, None, None));
            let fmt_pair = |p: Option<i64>, m: Cell| -> String {
                let paper_s = p.map(|v| format!("{v}%")).unwrap_or_else(|| "-".into());
                format!("{paper_s} → {m}")
            };
            let safe = row.cells[0].1;
            let g = row.cells[1].1;
            let checked = row.cells[2].1;
            // Shape verdicts.
            let safe_ok = matches!(safe, Cell::Pct(v) if (0..=25).contains(&v));
            let g_ok = matches!(g, Cell::Pct(v) if (10..=120).contains(&v));
            let checked_ok = match checked {
                Cell::Pct(v) => v >= 50,
                Cell::Fails => *name == "gawk",
                Cell::Dash => false,
            };
            let ok = safe_ok && g_ok && checked_ok;
            all_ok &= ok;
            let _ = writeln!(
                out,
                "  {:10} safe {:>14}   -g {:>14}   checked {:>18}   [{}]",
                name,
                fmt_pair(prow.1, safe),
                fmt_pair(prow.2, g),
                fmt_pair(prow.3, checked),
                if ok { "shape ok" } else { "SHAPE MISMATCH" },
            );
        }
        let _ = writeln!(out);
    }
    let _ = writeln!(
        out,
        "overall: {}",
        if all_ok {
            "every cell within the paper's qualitative envelope"
        } else {
            "MISMATCHES PRESENT"
        }
    );
    out
}

/// The Analysis-section register-pressure report: "If the overhead were
/// primarily due to additional register pressure and hence register
/// spills, one would have expected much more substantial performance
/// degradation on the Intel Pentium machine". This prints the allocator's
/// spill counts per workload × machine for the baseline and safe builds —
/// the safe build should add few or no spills even on six registers.
pub fn register_pressure_report() -> String {
    use gc_safety::CompileOptions;
    let mut out = String::new();
    let _ = writeln!(out, "Register spills (baseline → safe):");
    let _ = writeln!(
        out,
        "{:10}{:>22}{:>22}{:>22}",
        "", "SPARCstation 2", "SPARC 10", "Pentium 90"
    );
    for w in workloads::all() {
        let base = cvm::compile(w.source, &CompileOptions::optimized()).expect("compiles");
        let safe = cvm::compile(w.source, &CompileOptions::optimized_safe()).expect("compiles");
        let _ = write!(out, "{:10}", w.name);
        for machine in Machine::all() {
            let count = |prog: &cvm::ProgramIr| -> u32 {
                asmpost::codegen_program(prog, &machine)
                    .iter()
                    .map(|f| f.spill_count)
                    .sum()
            };
            let _ = write!(out, "{:>15} → {:<4}", count(&base), count(&safe));
        }
        let _ = writeln!(out);
    }
    out
}
