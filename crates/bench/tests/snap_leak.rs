//! The leak-diff acceptance story: a deliberately leaky micro schedule
//! driven straight against [`gcheap::GcHeap`] (no VM in the loop), with
//! `begin`/`end` snapshots routed through the `snap/1` schema exactly
//! like `tables --snap-dir` writes them and `bench snap diff` reads them
//! back. The diff must name the leaking allocation site, with retained
//! bytes, as the top growth row — and the steady-churn site must not be
//! blamed.

use gcheap::{GcHeap, HeapConfig, Memory, RootSet};

const STEADY: &str = "steady@7:3";
const LEAK: &str = "leak@21:9";

fn roots(live: &[Vec<u64>]) -> RootSet {
    let mut r = RootSet::new();
    for set in live {
        for &a in set {
            r.add_word(a);
        }
    }
    r
}

/// Collects, retires the sweep debt, and snapshots — the stable points a
/// leak hunt compares (mid-cycle floating garbage would only add noise
/// to the begin/end delta).
fn snapshot_at(heap: &mut GcHeap, mem: &mut Memory, live: &[Vec<u64>]) -> gcsnap::ParsedSnap {
    let r = roots(live);
    heap.collect(mem, &r);
    heap.sweep_all();
    let snap = heap.snapshot(mem, &r, &[]);
    let a = gcsnap::analyze(&snap);
    gcsnap::validate(&gcsnap::to_json("t", &snap, &a)).expect("export validates")
}

#[test]
fn leak_diff_names_the_leaking_site_with_retained_bytes() {
    let mut mem = Memory::new(1 << 16, 1 << 16, 8 << 20);
    let mut heap = GcHeap::new(&mem, HeapConfig::bounded_pause());
    heap.set_snap_sites(true);
    let mut steady: Vec<u64> = Vec::new();
    let mut leaked: Vec<u64> = Vec::new();

    let churn = |heap: &mut GcHeap, mem: &mut Memory, steady: &mut Vec<u64>, leaked: &[u64]| {
        let r = roots(&[steady.clone(), leaked.to_vec()]);
        let a = heap
            .alloc_with_roots_sited(mem, 48, &r, Some(STEADY))
            .expect("steady alloc");
        steady.push(a);
        if steady.len() > 32 {
            steady.remove(0);
        }
    };

    // Warm the steady state up to its sliding window, then freeze the
    // "begin" picture.
    for _ in 0..64 {
        churn(&mut heap, &mut mem, &mut steady, &leaked);
    }
    let begin = snapshot_at(&mut heap, &mut mem, &[steady.clone(), leaked.clone()]);

    // The leaky phase: the same steady churn, plus a site whose objects
    // are never dropped from the root set.
    for _ in 0..256 {
        churn(&mut heap, &mut mem, &mut steady, &leaked);
        let r = roots(&[steady.clone(), leaked.clone()]);
        let l = heap
            .alloc_with_roots_sited(&mut mem, 64, &r, Some(LEAK))
            .expect("leak alloc");
        leaked.push(l);
    }
    let end = snapshot_at(&mut heap, &mut mem, &[steady.clone(), leaked.clone()]);

    let d = gcsnap::diff::diff(&begin, &end);
    let top = d
        .top_growth()
        .expect("the leak shows up as retained growth");
    assert_eq!(top.site, LEAK, "the leaking site is named");
    assert!(
        top.retained_delta() >= 256 * 64,
        "all 256 leaked objects are retained: {}",
        top.retained_delta()
    );
    assert!(d.over_budget(0), "reachable growth trips a zero budget");
    let steady_row = d
        .rows
        .iter()
        .find(|r| r.site == STEADY)
        .expect("steady site is present");
    assert_eq!(
        steady_row.retained_delta(),
        0,
        "the steady churn is not blamed"
    );

    // The rendered table (what `bench snap diff` prints) carries the
    // same attribution.
    let table = gcsnap::diff::render_table(&d, "begin", "end");
    assert!(table.contains(LEAK), "{table}");
    assert!(
        table.contains(&format!("+{}", top.retained_delta())),
        "{table}"
    );
}
