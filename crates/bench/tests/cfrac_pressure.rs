//! cfrac must actually exercise the collector at paper scale.
//!
//! The trajectory's early revisions carried cfrac cells with zero
//! collections — 6 KB of bignum churn never crossed the 256 KiB
//! threshold, so every cfrac `max_pause_ns` was vacuous. The workload now
//! mirrors the original cfrac's allocating `pdiv` (a scratch digit vector
//! per `big_mod_small` call) and factors enough numbers that every mode
//! cell collects well over ten times. This test pins that floor so input
//! rescaling can't silently regress the trajectory back to vacuity.

use gc_safety::Mode;
use workloads::Scale;

#[test]
fn cfrac_paper_cells_collect_at_least_ten_times() {
    let w = workloads::all()
        .into_iter()
        .find(|w| w.name == "cfrac")
        .expect("cfrac is in the suite");
    let results = gc_safety::measure_workload(&w, Scale::Paper).expect("cfrac measures");
    for mode in Mode::all() {
        let m = &results[&mode];
        let out = m.outcome.as_ref().expect("cfrac runs in every mode");
        assert!(
            out.heap.collections >= 10,
            "cfrac/{}: only {} collections — the workload no longer \
pressures the collector (bytes_requested={})",
            mode.key(),
            out.heap.collections,
            out.heap.bytes_requested,
        );
    }
}
