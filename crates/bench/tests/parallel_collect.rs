//! The parallel measurement driver's determinism contract: a fanned-out
//! `collect` must be indistinguishable from a serial one — cell for cell
//! in the dataset, byte for byte in every rendered table, and event for
//! event in the merged trace stream (wall-clock pause fields aside,
//! which no table consumes).

use gc_safety::{Event, Mode, TraceHandle};
use gcbench::{
    bench_json, codesize_table, collect_instrumented_jobs, collect_jobs, collect_traced_jobs,
    folded_export, postprocessor_table, prof_report, prometheus_export, slowdown_table,
};
use gctrace::Value;
use workloads::Scale;

#[test]
fn parallel_collect_equals_serial_cell_for_cell() {
    let serial = collect_jobs(Scale::Tiny, 1).expect("serial collect");
    let parallel = collect_jobs(Scale::Tiny, 4).expect("parallel collect");
    assert_eq!(serial.rows.len(), parallel.rows.len());
    for ((sn, srow), (pn, prow)) in serial.rows.iter().zip(&parallel.rows) {
        assert_eq!(sn, pn, "row order is the paper's");
        assert_eq!(srow.len(), prow.len(), "{sn}: same mode set");
        for mode in Mode::all() {
            let s = &srow[&mode];
            let p = &prow[&mode];
            let ctx = format!("{sn} in {}", mode.label());
            assert_eq!(
                s.output(),
                p.output(),
                "{ctx}: program output must not depend on scheduling"
            );
            assert_eq!(s.outcome.is_ok(), p.outcome.is_ok(), "{ctx}");
            assert_eq!(
                s.costs.keys().collect::<Vec<_>>(),
                p.costs.keys().collect::<Vec<_>>(),
                "{ctx}: same machines costed"
            );
            for (machine, sc) in &s.costs {
                let pc = &p.costs[machine];
                assert_eq!(sc.cycles, pc.cycles, "{ctx} on {machine}: cycles");
                assert_eq!(sc.size_bytes, pc.size_bytes, "{ctx} on {machine}: size");
            }
            assert_eq!(
                s.peephole.map(|st| st.total()),
                p.peephole.map(|st| st.total()),
                "{ctx}: peephole work"
            );
        }
    }
    // The acceptance criterion itself: E1–E5 render byte-identically.
    for key in ["sparc2", "sparc10", "pentium90"] {
        assert_eq!(
            slowdown_table(&serial, key),
            slowdown_table(&parallel, key),
            "slowdown table {key} differs"
        );
    }
    assert_eq!(codesize_table(&serial), codesize_table(&parallel));
    assert_eq!(postprocessor_table(&serial), postprocessor_table(&parallel));
}

/// Strips the wall-clock fields (collection pauses) that legitimately
/// differ between two runs of the same deterministic pipeline.
fn normalized(events: Vec<Event>) -> Vec<Event> {
    const WALL_CLOCK: [&str; 8] = [
        "pause_ns",
        "total_pause_ns",
        "max_pause_ns",
        "mark_ns",
        "sweep_ns",
        "root_scan_ns",
        "heap_scan_ns",
        "class_sweep_ns",
    ];
    events
        .into_iter()
        .map(|mut e| {
            e.fields.retain(|(k, _)| !WALL_CLOCK.contains(k));
            e
        })
        .collect()
}

/// Drops the Prometheus families that carry wall-clock timings
/// (`gcprof_pause*`, `gcprof_mark*`, `gcprof_sweep_ns*`, `gcprof_mmu*`,
/// `gc_pause*`) or process-cumulative run-history counters
/// (`gccache_*`, which depend on what compiled earlier in the process);
/// everything left must be byte-identical across schedules.
fn strip_timing_metrics(text: &str) -> String {
    const TIMING: [&str; 6] = [
        "gcprof_pause",
        "gcprof_mark",
        "gcprof_sweep_ns",
        "gcprof_mmu",
        "gc_pause",
        "gccache_",
    ];
    let mut out: String = text
        .lines()
        .filter(|l| {
            let name = l
                .strip_prefix("# HELP ")
                .or_else(|| l.strip_prefix("# TYPE "))
                .unwrap_or(l);
            !TIMING.iter().any(|p| name.starts_with(p))
        })
        .collect::<Vec<_>>()
        .join("\n");
    out.push('\n');
    out
}

/// Drops the wall-clock lines of the human profile report and the
/// wall-clock fields of the per-cell JSON summary.
fn strip_timing_report(text: &str) -> String {
    let mut out: String = text
        .lines()
        .filter(|l| !l.starts_with("pause:") && !l.starts_with("mmu:"))
        .collect::<Vec<_>>()
        .join("\n");
    out.push('\n');
    out
}

fn strip_timing_json(text: &str) -> String {
    text.lines()
        .map(|l| {
            l.split(',')
                .filter(|part| !part.contains("pause_ns"))
                .collect::<Vec<_>>()
                .join(",")
        })
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn instrumented_parallel_exports_match_serial_modulo_timing() {
    let serial = collect_instrumented_jobs(Scale::Tiny, &TraceHandle::disabled(), true, 1)
        .expect("serial instrumented collect");
    let parallel = collect_instrumented_jobs(Scale::Tiny, &TraceHandle::disabled(), true, 4)
        .expect("parallel instrumented collect");
    // Flamegraph folded stacks are fully deterministic: compared raw.
    let folded = folded_export(&serial);
    assert!(!folded.is_empty(), "profiling produced allocation stacks");
    assert_eq!(folded, folded_export(&parallel), "folded stacks differ");
    // Prometheus exposition: valid under the independent parser, and
    // byte-identical once the wall-clock families are dropped.
    let s_prom = prometheus_export(&serial);
    let p_prom = prometheus_export(&parallel);
    gc_safety::prom::validate(&s_prom).expect("serial export parses");
    gc_safety::prom::validate(&p_prom).expect("parallel export parses");
    let s_stripped = strip_timing_metrics(&s_prom);
    assert_eq!(
        s_stripped,
        strip_timing_metrics(&p_prom),
        "deterministic metric families differ"
    );
    for needle in [
        "gcprof_site_bytes_total",
        "gcprof_census_live_bytes",
        "gcprof_alloc_size_bytes_bucket",
        "gcprof_collections_total",
    ] {
        assert!(s_stripped.contains(needle), "missing {needle}");
    }
    // Human report and per-cell JSON: identical modulo wall-clock lines.
    assert_eq!(
        strip_timing_report(&prof_report(&serial)),
        strip_timing_report(&prof_report(&parallel))
    );
    assert_eq!(
        strip_timing_json(&bench_json(&serial)),
        strip_timing_json(&bench_json(&parallel))
    );
}

#[test]
fn timeline_export_is_byte_identical_at_any_jobs() {
    use gcbench::{gc_microbench, timeline_cells};
    let serial = collect_instrumented_jobs(Scale::Tiny, &TraceHandle::disabled(), true, 1)
        .expect("serial instrumented collect");
    let parallel = collect_instrumented_jobs(Scale::Tiny, &TraceHandle::disabled(), true, 4)
        .expect("parallel instrumented collect");
    // The microbench is rerun for each trace: its wall-clock fields move,
    // but the virtual-clock trace must not — only deterministic counters
    // reach the export.
    let s = gcwatch::chrome_trace(&timeline_cells(&serial, &gc_microbench(true)));
    let p = gcwatch::chrome_trace(&timeline_cells(&parallel, &gc_microbench(true)));
    let events = gcwatch::validate_chrome_trace(&s).expect("timeline is well-formed");
    assert!(events > 0, "timeline has events");
    assert_eq!(s, p, "timeline differs between --jobs 1 and --jobs 4");
    // Every collection slice carries its attribution. The microbench
    // schedules run bounded-pause, so the trajectory must show nursery
    // collections, finished incremental cycles, and their bounded mark
    // stops as first-class slices.
    assert!(
        s.contains("\"cause\":\"nursery\""),
        "nursery causes exported"
    );
    assert!(
        s.contains("\"cause\":\"increment-finish\""),
        "finished cycles exported"
    );
    assert!(
        s.contains("\"name\":\"mark-inc\""),
        "increment slices exported"
    );
    assert!(s.contains("\"site\":\"micro\""), "sites exported");
    assert!(s.contains("root-scan"), "phase sub-slices exported");
    assert!(
        s.contains("\"name\":\"process_name\"") && s.contains("\"name\":\"thread_name\""),
        "Perfetto process/thread metadata present"
    );
}

#[test]
fn warm_cache_exports_are_byte_identical_to_cold() {
    use gcbench::{gc_microbench, timeline_cells};
    // The first pass may or may not be cold (tests share the process-
    // global caches), but the second is fully warm for everything the
    // first compiled — so any divergence below is cache unsoundness.
    gc_safety::cache_clear();
    let cold = collect_instrumented_jobs(Scale::Tiny, &TraceHandle::disabled(), true, 2)
        .expect("cold instrumented collect");
    let warm = collect_instrumented_jobs(Scale::Tiny, &TraceHandle::disabled(), true, 2)
        .expect("warm instrumented collect");
    for key in ["sparc2", "sparc10", "pentium90"] {
        assert_eq!(
            slowdown_table(&cold, key),
            slowdown_table(&warm, key),
            "slowdown table {key} differs cold vs warm"
        );
    }
    assert_eq!(codesize_table(&cold), codesize_table(&warm));
    assert_eq!(postprocessor_table(&cold), postprocessor_table(&warm));
    let folded = folded_export(&cold);
    assert!(!folded.is_empty());
    assert_eq!(folded, folded_export(&warm), "folded stacks differ");
    assert_eq!(
        strip_timing_metrics(&prometheus_export(&cold)),
        strip_timing_metrics(&prometheus_export(&warm)),
        "deterministic metric families differ cold vs warm"
    );
    assert_eq!(
        strip_timing_report(&prof_report(&cold)),
        strip_timing_report(&prof_report(&warm))
    );
    assert_eq!(
        strip_timing_json(&bench_json(&cold)),
        strip_timing_json(&bench_json(&warm))
    );
    assert_eq!(
        gcwatch::chrome_trace(&timeline_cells(&cold, &gc_microbench(true))),
        gcwatch::chrome_trace(&timeline_cells(&warm, &gc_microbench(true))),
        "timeline differs cold vs warm"
    );
}

#[test]
fn warm_cache_replays_the_cold_trace_stream() {
    // Traced builds either run live or replay a stored stream captured
    // from an identical source — so modulo wall-clock fields the two
    // runs' merged streams must be event-for-event identical.
    let (cold_trace, cold_sink) = TraceHandle::memory();
    collect_traced_jobs(Scale::Tiny, &cold_trace, 2).expect("cold traced collect");
    let (warm_trace, warm_sink) = TraceHandle::memory();
    collect_traced_jobs(Scale::Tiny, &warm_trace, 2).expect("warm traced collect");
    let cold = normalized(cold_sink.snapshot());
    let warm = normalized(warm_sink.snapshot());
    assert!(!cold.is_empty());
    assert_eq!(cold.len(), warm.len(), "streams have the same event count");
    for (i, (c, w)) in cold.iter().zip(&warm).enumerate() {
        assert_eq!(c, w, "event #{i} differs between cold and warm runs");
    }
}

#[test]
fn merged_parallel_trace_matches_the_serial_stream() {
    let (serial_trace, serial_sink) = TraceHandle::memory();
    collect_traced_jobs(Scale::Tiny, &serial_trace, 1).expect("serial collect");
    let (parallel_trace, parallel_sink) = TraceHandle::memory();
    collect_traced_jobs(Scale::Tiny, &parallel_trace, 4).expect("parallel collect");

    let serial = normalized(serial_sink.snapshot());
    let parallel = normalized(parallel_sink.snapshot());
    assert!(!serial.is_empty(), "the traced run produced events");
    assert_eq!(
        serial.len(),
        parallel.len(),
        "streams have the same event count"
    );
    for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
        assert_eq!(s, p, "event #{i} differs between serial and merged");
    }
    // The audit-trail shape the serial driver guaranteed: each workload
    // marker precedes all of that workload's cell events.
    let marker_names: Vec<&Value> = serial
        .iter()
        .filter(|e| (e.stage, e.kind) == ("bench", "workload"))
        .map(|e| e.get("name").expect("marker carries the name"))
        .collect();
    let expected: Vec<Value> = workloads::all()
        .iter()
        .map(|w| Value::Str(w.name.to_string()))
        .collect();
    assert_eq!(
        marker_names,
        expected.iter().collect::<Vec<_>>(),
        "one marker per workload, in paper row order"
    );
}

#[test]
fn snapshot_exports_are_byte_identical_at_any_jobs() {
    use gcbench::{collect_snapped_jobs, snap_exports};
    let serial = collect_snapped_jobs(Scale::Tiny, &TraceHandle::disabled(), false, true, 1)
        .expect("serial snapped collect");
    let parallel = collect_snapped_jobs(Scale::Tiny, &TraceHandle::disabled(), false, true, 2)
        .expect("parallel snapped collect");
    let s = snap_exports(&serial).expect("serial exports validate");
    let p = snap_exports(&parallel).expect("parallel exports validate");
    assert!(!s.is_empty(), "the matrix produced snapshots");
    assert_eq!(
        s.iter().map(|(n, _)| n).collect::<Vec<_>>(),
        p.iter().map(|(n, _)| n).collect::<Vec<_>>(),
        "same documents in the same order"
    );
    // Snapshots carry no wall-clock fields, so no stripping: the whole
    // document is the determinism contract.
    for ((name, sd), (_, pd)) in s.iter().zip(&p) {
        assert_eq!(sd, pd, "{name} differs between --jobs 1 and --jobs 2");
    }
}

#[test]
fn snapshot_exports_are_byte_identical_cold_vs_warm_cache() {
    use gcbench::{collect_snapped_jobs, snap_exports};
    gc_safety::cache_clear();
    let cold = collect_snapped_jobs(Scale::Tiny, &TraceHandle::disabled(), false, true, 2)
        .expect("cold snapped collect");
    let warm = collect_snapped_jobs(Scale::Tiny, &TraceHandle::disabled(), false, true, 2)
        .expect("warm snapped collect");
    let c = snap_exports(&cold).expect("cold exports validate");
    let w = snap_exports(&warm).expect("warm exports validate");
    assert!(!c.is_empty(), "the matrix produced snapshots");
    assert_eq!(c, w, "snapshot documents differ cold vs warm");
}
