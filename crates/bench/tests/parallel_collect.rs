//! The parallel measurement driver's determinism contract: a fanned-out
//! `collect` must be indistinguishable from a serial one — cell for cell
//! in the dataset, byte for byte in every rendered table, and event for
//! event in the merged trace stream (wall-clock pause fields aside,
//! which no table consumes).

use gc_safety::{Event, Mode, TraceHandle};
use gcbench::{
    codesize_table, collect_jobs, collect_traced_jobs, postprocessor_table, slowdown_table,
};
use gctrace::Value;
use workloads::Scale;

#[test]
fn parallel_collect_equals_serial_cell_for_cell() {
    let serial = collect_jobs(Scale::Tiny, 1).expect("serial collect");
    let parallel = collect_jobs(Scale::Tiny, 4).expect("parallel collect");
    assert_eq!(serial.rows.len(), parallel.rows.len());
    for ((sn, srow), (pn, prow)) in serial.rows.iter().zip(&parallel.rows) {
        assert_eq!(sn, pn, "row order is the paper's");
        assert_eq!(srow.len(), prow.len(), "{sn}: same mode set");
        for mode in Mode::all() {
            let s = &srow[&mode];
            let p = &prow[&mode];
            let ctx = format!("{sn} in {}", mode.label());
            assert_eq!(
                s.output(),
                p.output(),
                "{ctx}: program output must not depend on scheduling"
            );
            assert_eq!(s.outcome.is_ok(), p.outcome.is_ok(), "{ctx}");
            assert_eq!(
                s.costs.keys().collect::<Vec<_>>(),
                p.costs.keys().collect::<Vec<_>>(),
                "{ctx}: same machines costed"
            );
            for (machine, sc) in &s.costs {
                let pc = &p.costs[machine];
                assert_eq!(sc.cycles, pc.cycles, "{ctx} on {machine}: cycles");
                assert_eq!(sc.size_bytes, pc.size_bytes, "{ctx} on {machine}: size");
            }
            assert_eq!(
                s.peephole.map(|st| st.total()),
                p.peephole.map(|st| st.total()),
                "{ctx}: peephole work"
            );
        }
    }
    // The acceptance criterion itself: E1–E5 render byte-identically.
    for key in ["sparc2", "sparc10", "pentium90"] {
        assert_eq!(
            slowdown_table(&serial, key),
            slowdown_table(&parallel, key),
            "slowdown table {key} differs"
        );
    }
    assert_eq!(codesize_table(&serial), codesize_table(&parallel));
    assert_eq!(postprocessor_table(&serial), postprocessor_table(&parallel));
}

/// Strips the wall-clock fields (collection pauses) that legitimately
/// differ between two runs of the same deterministic pipeline.
fn normalized(events: Vec<Event>) -> Vec<Event> {
    const WALL_CLOCK: [&str; 3] = ["pause_ns", "total_pause_ns", "max_pause_ns"];
    events
        .into_iter()
        .map(|mut e| {
            e.fields.retain(|(k, _)| !WALL_CLOCK.contains(k));
            e
        })
        .collect()
}

#[test]
fn merged_parallel_trace_matches_the_serial_stream() {
    let (serial_trace, serial_sink) = TraceHandle::memory();
    collect_traced_jobs(Scale::Tiny, &serial_trace, 1).expect("serial collect");
    let (parallel_trace, parallel_sink) = TraceHandle::memory();
    collect_traced_jobs(Scale::Tiny, &parallel_trace, 4).expect("parallel collect");

    let serial = normalized(serial_sink.snapshot());
    let parallel = normalized(parallel_sink.snapshot());
    assert!(!serial.is_empty(), "the traced run produced events");
    assert_eq!(
        serial.len(),
        parallel.len(),
        "streams have the same event count"
    );
    for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
        assert_eq!(s, p, "event #{i} differs between serial and merged");
    }
    // The audit-trail shape the serial driver guaranteed: each workload
    // marker precedes all of that workload's cell events.
    let marker_names: Vec<&Value> = serial
        .iter()
        .filter(|e| (e.stage, e.kind) == ("bench", "workload"))
        .map(|e| e.get("name").expect("marker carries the name"))
        .collect();
    let expected: Vec<Value> = workloads::all()
        .iter()
        .map(|w| Value::Str(w.name.to_string()))
        .collect();
    assert_eq!(
        marker_names,
        expected.iter().collect::<Vec<_>>(),
        "one marker per workload, in paper row order"
    );
}
