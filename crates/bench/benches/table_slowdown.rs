//! E1–E3: regenerates the paper's three slowdown tables, then times the
//! full measurement pipeline on the smallest workload.

use criterion::{criterion_group, criterion_main, Criterion};
use gcbench::{collect, slowdown_table};
use workloads::Scale;

fn bench(c: &mut Criterion) {
    // Print the actual paper tables once (paper scale).
    match collect(Scale::Paper) {
        Ok(data) => {
            println!("\n=== E1–E3: run-time slowdown relative to -O ===");
            for key in ["sparc2", "sparc10", "pentium90"] {
                println!("{}", slowdown_table(&data, key));
            }
        }
        Err(e) => eprintln!("table generation failed: {e}"),
    }
    let mut g = c.benchmark_group("table_slowdown");
    g.sample_size(10);
    g.bench_function("measure_cordtest_tiny", |b| {
        let w = workloads::by_name("cordtest").expect("exists");
        b.iter(|| gc_safety::measure_workload(&w, Scale::Tiny).expect("runs"));
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
