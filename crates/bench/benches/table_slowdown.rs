//! E1–E3: regenerates the paper's three slowdown tables, then times the
//! full measurement pipeline on the smallest workload.

mod timing;

use gcbench::{collect, slowdown_table};
use timing::bench;
use workloads::Scale;

fn main() {
    // Print the actual paper tables once (paper scale).
    match collect(Scale::Paper) {
        Ok(data) => {
            println!("\n=== E1–E3: run-time slowdown relative to -O ===");
            for key in ["sparc2", "sparc10", "pentium90"] {
                println!("{}", slowdown_table(&data, key));
            }
        }
        Err(e) => eprintln!("table generation failed: {e}"),
    }
    let w = workloads::by_name("cordtest").expect("exists");
    bench("measure_cordtest_tiny", 1, 10, || {
        gc_safety::measure_workload(&w, Scale::Tiny).expect("runs")
    });
}
