//! E5: regenerates the paper's postprocessor table, then times the
//! peephole pass itself.

use criterion::{criterion_group, criterion_main, Criterion};
use gcbench::{collect, postprocessor_table};
use workloads::Scale;

fn bench(c: &mut Criterion) {
    match collect(Scale::Tiny) {
        Ok(data) => {
            println!("\n=== E5: after the peephole postprocessor ===");
            println!("{}", postprocessor_table(&data));
        }
        Err(e) => eprintln!("table generation failed: {e}"),
    }
    let w = workloads::by_name("cordtest").expect("exists");
    let prog = cvm::compile(w.source, &cvm::CompileOptions::optimized_safe()).expect("compiles");
    let machine = asmpost::Machine::sparc10();
    let asm = asmpost::codegen_program(&prog, &machine);
    let mut g = c.benchmark_group("table_postprocessor");
    g.sample_size(10);
    g.bench_function("peephole_cordtest", |b| {
        b.iter(|| {
            let mut copy = asm.clone();
            asmpost::postprocess_program(&mut copy)
        });
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
