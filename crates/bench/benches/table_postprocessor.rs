//! E5: regenerates the paper's postprocessor table, then times the
//! peephole pass itself.

mod timing;

use gcbench::{collect, postprocessor_table};
use timing::bench;
use workloads::Scale;

fn main() {
    match collect(Scale::Tiny) {
        Ok(data) => {
            println!("\n=== E5: after the peephole postprocessor ===");
            println!("{}", postprocessor_table(&data));
        }
        Err(e) => eprintln!("table generation failed: {e}"),
    }
    let w = workloads::by_name("cordtest").expect("exists");
    let prog = cvm::compile(w.source, &cvm::CompileOptions::optimized_safe()).expect("compiles");
    let machine = asmpost::Machine::sparc10();
    let asm = asmpost::codegen_program(&prog, &machine);
    bench("peephole_cordtest", 1, 10, || {
        let mut copy = asm.clone();
        asmpost::postprocess_program(&mut copy)
    });
}
