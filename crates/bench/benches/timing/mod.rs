//! Minimal timing harness shared by the bench binaries: warm up, run a
//! fixed iteration count, report min/median/mean wall-clock per
//! iteration. No external benchmarking framework — the container
//! builds offline.

use std::time::Instant;

/// Times `f` over `iters` iterations (after `warmup` untimed runs) and
/// prints a one-line summary. Returns the median nanoseconds.
pub fn bench<R>(name: &str, warmup: u32, iters: u32, mut f: impl FnMut() -> R) -> u128 {
    for _ in 0..warmup {
        std::hint::black_box(f());
    }
    let mut samples: Vec<u128> = Vec::with_capacity(iters as usize);
    for _ in 0..iters {
        let t0 = Instant::now();
        std::hint::black_box(f());
        samples.push(t0.elapsed().as_nanos());
    }
    samples.sort_unstable();
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let mean: u128 = samples.iter().sum::<u128>() / samples.len() as u128;
    println!(
        "{name:<28} min {:>12}  median {:>12}  mean {:>12}  ({iters} iters)",
        fmt_ns(min),
        fmt_ns(median),
        fmt_ns(mean)
    );
    median
}

fn fmt_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}
