//! Component microbenchmarks: the substrates' hot paths (parser, sema,
//! annotator, collector, page-map lookups) plus an ablation of the
//! annotator's optimizations, and the end-to-end `measure_workload`
//! path with tracing disabled (the NullSink overhead guard).

mod timing;

use gcheap::{GcHeap, Memory, RootSet};
use timing::bench;

fn main() {
    let src = workloads::by_name("gs").expect("exists").source;

    println!("== components ==");

    bench("parse_gs", 2, 20, || cfront::parse(src).expect("parses"));

    bench("annotate_gs_safe", 2, 20, || {
        gcsafe::annotate_program(src, &gcsafe::Config::gc_safe()).expect("annotates")
    });

    bench("annotate_gs_checked", 2, 20, || {
        gcsafe::annotate_program(src, &gcsafe::Config::checked()).expect("annotates")
    });

    // Ablation: optimization 1 (copy suppression) off.
    let no_opt1 = gcsafe::Config {
        skip_copies: false,
        ..gcsafe::Config::gc_safe()
    };
    bench("annotate_gs_no_opt1", 2, 20, || {
        gcsafe::annotate_program(src, &no_opt1).expect("annotates")
    });

    bench("gc_alloc_collect_cycle", 2, 20, || {
        let mut mem = Memory::new(1 << 16, 1 << 16, 1 << 22);
        let mut heap = GcHeap::with_defaults(&mem);
        let mut keep = Vec::new();
        for i in 0..2000u64 {
            let a = heap.alloc(&mut mem, 32).expect("fits");
            if i % 7 == 0 {
                keep.push(a);
            }
        }
        let mut roots = RootSet::new();
        for &k in &keep {
            roots.add_word(k);
        }
        heap.collect(&mut mem, &roots);
        heap.stats().objects_live
    });

    {
        let mut mem = Memory::new(1 << 16, 1 << 16, 1 << 22);
        let mut heap = GcHeap::with_defaults(&mem);
        let objs: Vec<u64> = (0..512)
            .map(|_| heap.alloc(&mut mem, 48).expect("fits"))
            .collect();
        bench("page_map_base_lookup", 2, 20, || {
            let mut acc = 0u64;
            for &o in &objs {
                acc = acc.wrapping_add(heap.base(o + 17).expect("interior resolves"));
            }
            acc
        });
    }

    // NullSink guard: the traced pipeline with tracing disabled must
    // match the untraced seed path (<1% is the acceptance bar; compare
    // this number across commits).
    bench("measure_cordtest_nullsink", 1, 10, || {
        let w = workloads::by_name("cordtest").expect("exists");
        gc_safety::measure_workload(&w, workloads::Scale::Tiny).expect("runs")
    });
}
