//! Component microbenchmarks: the substrates' hot paths (parser, sema,
//! annotator, collector, page-map lookups) plus an ablation of the
//! annotator's optimizations.

use criterion::{criterion_group, criterion_main, Criterion};
use gcheap::{GcHeap, Memory, RootSet};

fn bench(c: &mut Criterion) {
    let src = workloads::by_name("gs").expect("exists").source;

    let mut g = c.benchmark_group("components");
    g.sample_size(20);

    g.bench_function("parse_gs", |b| b.iter(|| cfront::parse(src).expect("parses")));

    g.bench_function("annotate_gs_safe", |b| {
        b.iter(|| gcsafe::annotate_program(src, &gcsafe::Config::gc_safe()).expect("annotates"))
    });

    g.bench_function("annotate_gs_checked", |b| {
        b.iter(|| gcsafe::annotate_program(src, &gcsafe::Config::checked()).expect("annotates"))
    });

    // Ablation: optimization 1 (copy suppression) off.
    let no_opt1 = gcsafe::Config { skip_copies: false, ..gcsafe::Config::gc_safe() };
    g.bench_function("annotate_gs_no_opt1", |b| {
        b.iter(|| gcsafe::annotate_program(src, &no_opt1).expect("annotates"))
    });

    g.bench_function("gc_alloc_collect_cycle", |b| {
        b.iter(|| {
            let mut mem = Memory::new(1 << 16, 1 << 16, 1 << 22);
            let mut heap = GcHeap::with_defaults(&mem);
            let mut keep = Vec::new();
            for i in 0..2000u64 {
                let a = heap.alloc(&mut mem, 32).expect("fits");
                if i % 7 == 0 {
                    keep.push(a);
                }
            }
            let mut roots = RootSet::new();
            for &k in &keep {
                roots.add_word(k);
            }
            heap.collect(&mut mem, &roots);
            heap.stats().objects_live
        })
    });

    g.bench_function("page_map_base_lookup", |b| {
        let mut mem = Memory::new(1 << 16, 1 << 16, 1 << 22);
        let mut heap = GcHeap::with_defaults(&mem);
        let objs: Vec<u64> =
            (0..512).map(|_| heap.alloc(&mut mem, 48).expect("fits")).collect();
        b.iter(|| {
            let mut acc = 0u64;
            for &o in &objs {
                acc = acc.wrapping_add(heap.base(o + 17).expect("interior resolves"));
            }
            acc
        })
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
