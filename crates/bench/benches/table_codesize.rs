//! E4: regenerates the paper's object-code-size table, then times the
//! codegen stage.

mod timing;

use gcbench::{codesize_table, collect};
use timing::bench;
use workloads::Scale;

fn main() {
    match collect(Scale::Tiny) {
        Ok(data) => {
            println!("\n=== E4: code size expansion ===");
            println!("{}", codesize_table(&data));
        }
        Err(e) => eprintln!("table generation failed: {e}"),
    }
    let w = workloads::by_name("gs").expect("exists");
    let prog = cvm::compile(w.source, &cvm::CompileOptions::optimized_safe()).expect("compiles");
    let machine = asmpost::Machine::sparc10();
    bench("codegen_gs_safe", 1, 10, || {
        asmpost::codegen_program(&prog, &machine)
    });
}
