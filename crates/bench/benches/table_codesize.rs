//! E4: regenerates the paper's object-code-size table, then times the
//! codegen stage.

use criterion::{criterion_group, criterion_main, Criterion};
use gcbench::{codesize_table, collect};
use workloads::Scale;

fn bench(c: &mut Criterion) {
    match collect(Scale::Tiny) {
        Ok(data) => {
            println!("\n=== E4: code size expansion ===");
            println!("{}", codesize_table(&data));
        }
        Err(e) => eprintln!("table generation failed: {e}"),
    }
    let w = workloads::by_name("gs").expect("exists");
    let prog = cvm::compile(w.source, &cvm::CompileOptions::optimized_safe()).expect("compiles");
    let machine = asmpost::Machine::sparc10();
    let mut g = c.benchmark_group("table_codesize");
    g.sample_size(10);
    g.bench_function("codegen_gs_safe", |b| {
        b.iter(|| asmpost::codegen_program(&prog, &machine));
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
