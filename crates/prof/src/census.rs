//! Heap census: a point-in-time walk of the collector's page map.
//!
//! The collector fills this in ([`gcheap`]'s `GcHeap::census`); gcprof
//! only defines the shape so every layer above the heap can consume it.
//! All derived ratios are integer permille so reports containing them
//! stay byte-identical across runs and platforms.

/// Live-object census for one small-object size class.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ClassCensus {
    /// Slot size in bytes.
    pub obj_size: u32,
    /// Pages currently carved into this class.
    pub pages: u64,
    /// Total slots across those pages.
    pub slots: u64,
    /// Allocated slots.
    pub live_objects: u64,
    /// Allocated bytes (slot-rounded, as the collector accounts them).
    pub live_bytes: u64,
}

/// A point-in-time census of the whole heap.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HeapCensus {
    /// Per-size-class occupancy, ascending by `obj_size`; classes with no
    /// pages are omitted.
    pub classes: Vec<ClassCensus>,
    /// Live large (multi-page) objects.
    pub large_objects: u64,
    /// Bytes in live large objects (page-rounded).
    pub large_bytes: u64,
    /// Pages owned by live large objects.
    pub large_pages: u64,
    /// Pages currently carved into small-object slots.
    pub small_pages: u64,
    /// Byte capacity of those small pages (slot size × slot count).
    pub small_capacity_bytes: u64,
    /// Pages in the free pool or never touched.
    pub free_pages: u64,
    /// Total pages the heap covers.
    pub pages_total: u64,
    /// Pages the blacklist refuses to hand out (false-pointer pressure).
    pub blacklisted_pages: u64,
    /// Touched small pages bucketed by live-slot occupancy decile:
    /// index d counts pages with occupancy in `[d*10%, (d+1)*10%)`,
    /// with 100%-full pages counted in the last decile.
    pub occupancy_deciles: [u64; 10],
    /// Total live objects (small + large).
    pub live_objects: u64,
    /// Total live bytes (small slot-rounded + large page-rounded).
    pub live_bytes: u64,
}

impl HeapCensus {
    /// Wasted small-page capacity as permille: 0 means every slot of
    /// every touched small page is live, 1000 means all slack. Free and
    /// large pages don't count — this is internal fragmentation of the
    /// size-class pages only.
    pub fn fragmentation_permille(&self) -> u64 {
        let live_small: u64 = self.classes.iter().map(|c| c.live_bytes).sum();
        if self.small_capacity_bytes == 0 {
            return 0;
        }
        1000 - (1000 * live_small) / self.small_capacity_bytes
    }

    /// Decile index for a page with `live` of `slots` slots occupied.
    pub fn occupancy_decile(live: u64, slots: u64) -> usize {
        if slots == 0 {
            return 0;
        }
        (((10 * live) / slots) as usize).min(9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fragmentation_is_slack_over_capacity() {
        let census = HeapCensus {
            classes: vec![ClassCensus {
                obj_size: 64,
                pages: 1,
                slots: 64,
                live_objects: 16,
                live_bytes: 1024,
            }],
            small_pages: 1,
            small_capacity_bytes: 4096,
            ..HeapCensus::default()
        };
        assert_eq!(census.fragmentation_permille(), 750);
        assert_eq!(HeapCensus::default().fragmentation_permille(), 0);
    }

    #[test]
    fn occupancy_deciles_clamp_full_pages() {
        assert_eq!(HeapCensus::occupancy_decile(0, 64), 0);
        assert_eq!(HeapCensus::occupancy_decile(6, 64), 0);
        assert_eq!(HeapCensus::occupancy_decile(7, 64), 1);
        assert_eq!(HeapCensus::occupancy_decile(32, 64), 5);
        assert_eq!(HeapCensus::occupancy_decile(64, 64), 9);
        assert_eq!(HeapCensus::occupancy_decile(0, 0), 0);
    }
}
