//! # gcprof — low-overhead profiling for the gc-safety pipeline
//!
//! Where gctrace answers "what happened, in order", gcprof answers "how
//! much, and where from": log-bucketed [`Histogram`]s of pause times,
//! allocation sizes and sweep yields, per-allocation-site counters keyed
//! by the VM's shadow call stack, a point-in-time [`HeapCensus`] of the
//! collector's page map, and mutator-utilization ([`mmu_permille`])
//! windows over the pause timeline.
//!
//! The [`ProfHandle`] follows the `TraceHandle` discipline exactly: a
//! thin `Option<Arc<…>>` whose disabled form costs one branch and never
//! evaluates the closures that would build stack keys or walk the heap.
//! Enabled data lives behind a mutex per handle; the measurement matrix
//! gives every (workload, mode) cell its own handle, so cells never
//! contend and per-cell data is deterministic regardless of `--jobs`.
//!
//! Exports: Prometheus text exposition ([`prom`]), flamegraph-folded
//! stacks (assembled by gcbench from [`ProfData::sites`]), and the human
//! `ProfReport` table (also gcbench). Everything timing-free in the
//! exports is byte-identical between serial and parallel runs.

#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, Mutex};
use std::time::Instant;

pub mod census;
pub mod hist;
pub mod mmu;
pub mod prom;

pub use census::{ClassCensus, HeapCensus};
pub use hist::{decode_buckets, encode_buckets, Histogram};
pub use mmu::{mmu_permille, Pause, MMU_WINDOWS_NS};
pub use prom::PromWriter;

/// Why a collection ran. Attribution starts here: every pause in an
/// export can be traced back to the mutator action that triggered it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CollectCause {
    /// The allocation-byte threshold was crossed at a safe point.
    #[default]
    Threshold,
    /// A failed allocation forced a collect-and-retry.
    Emergency,
    /// The program (or harness) asked for a collection directly.
    Explicit,
    /// An incremental mark cycle drained its worklist and finished with
    /// the final root re-scan plus sweep. The record's totals cover the
    /// whole cycle (initial root scan, every increment, the finish step).
    IncrementFinish,
    /// A nursery collection: only pages carved since the previous cycle
    /// were collected, guided by the store barrier's remembered-set cards.
    Nursery,
}

impl CollectCause {
    /// Stable lowercase name used in trace events, JSON exports, and the
    /// gcwatch diff tables.
    pub fn as_str(self) -> &'static str {
        match self {
            CollectCause::Threshold => "threshold",
            CollectCause::Emergency => "emergency",
            CollectCause::Explicit => "explicit",
            CollectCause::IncrementFinish => "increment-finish",
            CollectCause::Nursery => "nursery",
        }
    }

    /// Inverse of [`CollectCause::as_str`].
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "threshold" => Some(CollectCause::Threshold),
            "emergency" => Some(CollectCause::Emergency),
            "explicit" => Some(CollectCause::Explicit),
            "increment-finish" => Some(CollectCause::IncrementFinish),
            "nursery" => Some(CollectCause::Nursery),
            _ => None,
        }
    }
}

/// Everything one collection reports: the trigger, the deterministic
/// phase counters, and the wall-clock phase breakdown. The deterministic
/// fields are safe to export into byte-compared artifacts (traces,
/// timelines); the `*_ns` fields are wall clock and must stay behind the
/// same masking discipline as every other timing.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CollectionRecord {
    /// What triggered the collection.
    pub cause: CollectCause,
    /// Allocation-site label of the triggering allocation, when the
    /// caller knows it (VM allocations under an enabled handle).
    pub site: Option<String>,
    /// Bytes allocated since the previous collection (captured before
    /// the counter resets).
    pub bytes_since_gc: u64,
    /// Bytes live after the sweep.
    pub bytes_live: u64,
    /// Bytes returned to the free lists by the sweep.
    pub freed_bytes: u64,
    /// Candidate root words scanned.
    pub roots_scanned: u64,
    /// Heap words scanned while draining the mark worklist.
    pub words_marked: u64,
    /// Pages left holding at least one live object after the cycle.
    pub pages_live: u64,
    /// Carved pages the sweep visited.
    pub pages_swept: u64,
    /// Pages queued for lazy adoption when the sweep finished.
    pub sweep_debt_pages: u64,
    /// Total stop-the-world pause, nanoseconds.
    pub pause_ns: u64,
    /// Mark-phase share of the pause, nanoseconds.
    pub mark_ns: u64,
    /// Sweep-phase share of the pause, nanoseconds.
    pub sweep_ns: u64,
    /// Root-scan share of the mark phase, nanoseconds.
    pub root_scan_ns: u64,
    /// Worklist-drain (heap-scan) share of the mark phase, nanoseconds.
    pub heap_scan_ns: u64,
    /// Sweep nanoseconds per size class as `(object size, ns)` pairs;
    /// object size `0` is the large-object pass. Empty when the heap
    /// skipped per-class timing (no trace or prof handle attached).
    pub class_sweep_ns: Vec<(u32, u64)>,
    /// Bounded mark increments the cycle ran between the initial root
    /// scan and the finish step. `0` for a stop-the-world collection.
    pub increments: u64,
    /// Heap words scanned by each bounded increment, in increment order
    /// (deterministic — safe for byte-compared timelines). The initial
    /// root scan and the finish step are not listed here; their work is
    /// in `roots_scanned`/`words_marked`.
    pub increment_words: Vec<u64>,
    /// Wall-clock stop for each bounded increment, as MMU-ready pauses on
    /// the profile timeline. Same masking discipline as the `*_ns`
    /// fields. Empty for a stop-the-world collection.
    pub increment_pauses: Vec<Pause>,
    /// Young pages the sweep visited (nursery cycles); `0` when the whole
    /// heap was collected.
    pub young_pages_swept: u64,
}

impl CollectionRecord {
    /// The per-class sweep breakdown in the repo's standard sparse string
    /// encoding (`"size:ns size:ns …"`, `-` when empty) — the same shape
    /// `encode_buckets` gives histograms crossing the trace boundary.
    pub fn class_sweep_encoded(&self) -> String {
        if self.class_sweep_ns.is_empty() {
            return "-".to_string();
        }
        let mut out = String::new();
        for (i, (size, ns)) in self.class_sweep_ns.iter().enumerate() {
            if i > 0 {
                out.push(' ');
            }
            out.push_str(&format!("{size}:{ns}"));
        }
        out
    }

    /// The per-increment scanned-word counts in the same sparse string
    /// encoding (`"w w w"`, `-` when the cycle ran stop-the-world).
    /// Deterministic, so it may cross into byte-compared artifacts.
    pub fn increment_words_encoded(&self) -> String {
        if self.increment_words.is_empty() {
            return "-".to_string();
        }
        let mut out = String::new();
        for (i, w) in self.increment_words.iter().enumerate() {
            if i > 0 {
                out.push(' ');
            }
            out.push_str(&format!("{w}"));
        }
        out
    }
}

/// Per-allocation-site totals. The site key is the VM's shadow call
/// stack joined with `;`, ending in the `primitive@line:col` site label
/// — already in flamegraph-folded frame order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SiteStats {
    /// Number of allocations attributed to the stack.
    pub allocs: u64,
    /// Requested bytes attributed to the stack.
    pub bytes: u64,
}

/// Everything one profiled run accumulates.
#[derive(Debug, Clone, Default)]
pub struct ProfData {
    /// Requested allocation sizes (every successful `Heap::alloc`).
    pub alloc_size: Histogram,
    /// Stop-the-world pause per collection, nanoseconds.
    pub pause_ns: Histogram,
    /// Mark-phase share of each pause, nanoseconds.
    pub mark_ns: Histogram,
    /// Sweep-phase share of each pause, nanoseconds.
    pub sweep_ns: Histogram,
    /// Bytes returned to free lists per sweep.
    pub sweep_freed_bytes: Histogram,
    /// Per-call-stack allocation totals, deterministically ordered.
    pub sites: BTreeMap<String, SiteStats>,
    /// Pause timeline for MMU computation (offsets from profile start).
    pub pauses: Vec<Pause>,
    /// Completed collections observed.
    pub collections: u64,
    /// One attribution record per collection, in collection order: the
    /// trigger cause + site, the deterministic phase counters, and the
    /// wall-clock phase breakdown. This is what the gcwatch timeline and
    /// the per-cell "why" columns are built from.
    pub collection_log: Vec<CollectionRecord>,
    /// Final heap census, recorded when the VM run ends.
    pub census: Option<HeapCensus>,
}

impl ProfData {
    /// Minimum mutator utilization in permille for `window_ns`.
    pub fn mmu_permille(&self, window_ns: u64) -> u64 {
        mmu_permille(&self.pauses, window_ns)
    }
}

struct ProfCell {
    start: Instant,
    data: Mutex<ProfData>,
}

/// The handle the heap and VM record into. Cloning is an `Arc` bump or a
/// `None` copy; the disabled handle does literally nothing — closures
/// passed to the `record_*` methods are never evaluated.
#[derive(Clone, Default)]
pub struct ProfHandle(Option<Arc<ProfCell>>);

impl ProfHandle {
    /// The zero-overhead handle: every `record_*` is a single branch.
    pub fn disabled() -> Self {
        ProfHandle(None)
    }

    /// A fresh, enabled profile starting its timeline now.
    pub fn enabled() -> Self {
        ProfHandle(Some(Arc::new(ProfCell {
            start: Instant::now(),
            data: Mutex::new(ProfData::default()),
        })))
    }

    /// Whether samples will actually be recorded.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Records one successful allocation of `size` requested bytes into
    /// the size histogram. Called by the heap on the allocation path.
    #[inline]
    pub fn record_alloc_size(&self, size: u64) {
        if let Some(cell) = &self.0 {
            cell.data.lock().expect("prof lock").alloc_size.record(size);
        }
    }

    /// Attributes `bytes` to the allocation site identified by the stack
    /// key `key` builds. Called by the VM, which owns the shadow call
    /// stack; when disabled, `key` is never evaluated and no string is
    /// ever built.
    #[inline]
    pub fn record_site(&self, bytes: u64, key: impl FnOnce() -> String) {
        if let Some(cell) = &self.0 {
            let site = key();
            let mut data = cell.data.lock().expect("prof lock");
            let s = data.sites.entry(site).or_default();
            s.allocs += 1;
            s.bytes += bytes;
        }
    }

    /// Nanoseconds elapsed since the profile started — the clock
    /// [`Pause::end_ns`] offsets are measured on. `0` when disabled.
    /// The heap uses this to timestamp the bounded stops of an
    /// incremental cycle as they happen, so the MMU windows see each
    /// short stop where it really fell instead of one summed pause.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        match &self.0 {
            Some(cell) => cell.start.elapsed().as_nanos() as u64,
            None => 0,
        }
    }

    /// Records one completed collection from the [`CollectionRecord`]
    /// `build` produces: the pause/mark/sweep/freed histograms, the pause
    /// timeline for MMU computation, and the attribution log. When
    /// disabled, `build` is never evaluated — the collector pays one
    /// branch and builds no record.
    ///
    /// An incremental cycle lands as one record (so `collections` and the
    /// pause histogram still count cycles), but its MMU timeline entries
    /// are the individual bounded stops: every pause in
    /// `increment_pauses`, then the finish step (the record's total minus
    /// the increments' share).
    #[inline]
    pub fn record_collection(&self, build: impl FnOnce() -> CollectionRecord) {
        if let Some(cell) = &self.0 {
            let end_ns = cell.start.elapsed().as_nanos() as u64;
            let rec = build();
            let mut data = cell.data.lock().expect("prof lock");
            data.pause_ns.record(rec.pause_ns);
            data.mark_ns.record(rec.mark_ns);
            data.sweep_ns.record(rec.sweep_ns);
            data.sweep_freed_bytes.record(rec.freed_bytes);
            let incremental_ns: u64 = rec.increment_pauses.iter().map(|p| p.pause_ns).sum();
            data.pauses.extend(rec.increment_pauses.iter().copied());
            data.pauses.push(Pause {
                end_ns,
                pause_ns: rec.pause_ns.saturating_sub(incremental_ns),
            });
            data.collections += 1;
            data.collection_log.push(rec);
        }
    }

    /// Stores the heap census `build` produces. When disabled, the heap
    /// walk never happens.
    #[inline]
    pub fn record_census(&self, build: impl FnOnce() -> HeapCensus) {
        if let Some(cell) = &self.0 {
            cell.data.lock().expect("prof lock").census = Some(build());
        }
    }

    /// A copy of everything recorded so far; `None` when disabled.
    pub fn snapshot(&self) -> Option<ProfData> {
        self.0
            .as_ref()
            .map(|cell| cell.data.lock().expect("prof lock").clone())
    }
}

impl fmt::Debug for ProfHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(if self.is_enabled() {
            "ProfHandle(enabled)"
        } else {
            "ProfHandle(disabled)"
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The zero-cost pin, mirroring gctrace's
    /// `disabled_handle_never_builds_the_event`: a disabled handle must
    /// never evaluate the stack-key or census closures, so the hot
    /// allocation path does no histogram or site work.
    #[test]
    fn disabled_handle_never_evaluates_closures() {
        let h = ProfHandle::disabled();
        let mut key_built = false;
        h.record_site(64, || {
            key_built = true;
            String::from("main;malloc@1:1")
        });
        let mut census_built = false;
        h.record_census(|| {
            census_built = true;
            HeapCensus::default()
        });
        h.record_alloc_size(64);
        let mut record_built = false;
        h.record_collection(|| {
            record_built = true;
            CollectionRecord {
                pause_ns: 10,
                mark_ns: 6,
                sweep_ns: 4,
                freed_bytes: 128,
                ..CollectionRecord::default()
            }
        });
        assert!(!key_built, "disabled handle must not build stack keys");
        assert!(!census_built, "disabled handle must not walk the heap");
        assert!(
            !record_built,
            "disabled handle must not build collection records"
        );
        assert!(!h.is_enabled());
        assert!(h.snapshot().is_none());
    }

    #[test]
    fn enabled_handle_accumulates_everything() {
        let h = ProfHandle::enabled();
        assert!(h.is_enabled());
        h.record_alloc_size(64);
        h.record_alloc_size(100);
        h.record_site(64, || "main;malloc@3:9".into());
        h.record_site(100, || "main;push;malloc@7:2".into());
        h.record_site(36, || "main;push;malloc@7:2".into());
        h.record_collection(|| CollectionRecord {
            cause: CollectCause::Emergency,
            site: Some("main;push;malloc@7:2".into()),
            pause_ns: 1000,
            mark_ns: 600,
            sweep_ns: 400,
            root_scan_ns: 250,
            heap_scan_ns: 350,
            freed_bytes: 4096,
            class_sweep_ns: vec![(16, 300), (0, 100)],
            ..CollectionRecord::default()
        });
        h.record_census(|| HeapCensus {
            live_objects: 2,
            live_bytes: 164,
            ..HeapCensus::default()
        });
        let d = h.snapshot().expect("enabled");
        assert_eq!(d.alloc_size.count(), 2);
        assert_eq!(d.alloc_size.sum(), 164);
        assert_eq!(d.collections, 1);
        assert_eq!(d.pause_ns.count(), d.collections);
        assert_eq!(d.mark_ns.sum() + d.sweep_ns.sum(), 1000);
        assert_eq!(d.pauses.len(), 1);
        assert_eq!(d.collection_log.len(), 1);
        let rec = &d.collection_log[0];
        assert_eq!(rec.cause, CollectCause::Emergency);
        assert_eq!(rec.site.as_deref(), Some("main;push;malloc@7:2"));
        assert_eq!(rec.root_scan_ns + rec.heap_scan_ns, rec.mark_ns);
        assert_eq!(rec.class_sweep_encoded(), "16:300 0:100");
        assert_eq!(CollectionRecord::default().class_sweep_encoded(), "-");
        assert_eq!(d.sites.len(), 2);
        let push = &d.sites["main;push;malloc@7:2"];
        assert_eq!((push.allocs, push.bytes), (2, 136));
        assert_eq!(d.census.as_ref().unwrap().live_bytes, 164);
    }

    #[test]
    fn collect_causes_round_trip() {
        for c in [
            CollectCause::Threshold,
            CollectCause::Emergency,
            CollectCause::Explicit,
            CollectCause::IncrementFinish,
            CollectCause::Nursery,
        ] {
            assert_eq!(CollectCause::parse(c.as_str()), Some(c));
        }
        assert_eq!(CollectCause::parse("bogus"), None);
    }

    #[test]
    fn incremental_records_split_the_mmu_timeline_but_count_once() {
        let h = ProfHandle::enabled();
        h.record_collection(|| CollectionRecord {
            cause: CollectCause::IncrementFinish,
            pause_ns: 1000,
            mark_ns: 900,
            sweep_ns: 100,
            increments: 2,
            increment_words: vec![500, 120],
            increment_pauses: vec![
                Pause {
                    end_ns: 10,
                    pause_ns: 300,
                },
                Pause {
                    end_ns: 20,
                    pause_ns: 200,
                },
            ],
            ..CollectionRecord::default()
        });
        let d = h.snapshot().expect("enabled");
        // One cycle: one histogram entry, one collection, one log record.
        assert_eq!(d.collections, 1);
        assert_eq!(d.pause_ns.count(), 1);
        assert_eq!(d.pause_ns.sum(), 1000);
        assert_eq!(d.collection_log.len(), 1);
        // Three MMU stops: both increments plus the finish step, and the
        // stop durations re-sum to the cycle total.
        assert_eq!(d.pauses.len(), 3);
        assert_eq!(d.pauses[0].pause_ns, 300);
        assert_eq!(d.pauses[1].pause_ns, 200);
        assert_eq!(d.pauses[2].pause_ns, 500);
        assert_eq!(
            d.collection_log[0].increment_words_encoded(),
            "500 120",
            "deterministic increment encoding"
        );
        assert_eq!(CollectionRecord::default().increment_words_encoded(), "-");
    }

    #[test]
    fn clones_share_the_same_profile() {
        let h = ProfHandle::enabled();
        let h2 = h.clone();
        h.record_alloc_size(8);
        h2.record_alloc_size(8);
        assert_eq!(h.snapshot().unwrap().alloc_size.count(), 2);
        assert_eq!(format!("{h:?}"), "ProfHandle(enabled)");
        assert_eq!(
            format!("{:?}", ProfHandle::disabled()),
            "ProfHandle(disabled)"
        );
    }
}
