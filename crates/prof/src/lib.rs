//! # gcprof — low-overhead profiling for the gc-safety pipeline
//!
//! Where gctrace answers "what happened, in order", gcprof answers "how
//! much, and where from": log-bucketed [`Histogram`]s of pause times,
//! allocation sizes and sweep yields, per-allocation-site counters keyed
//! by the VM's shadow call stack, a point-in-time [`HeapCensus`] of the
//! collector's page map, and mutator-utilization ([`mmu_permille`])
//! windows over the pause timeline.
//!
//! The [`ProfHandle`] follows the `TraceHandle` discipline exactly: a
//! thin `Option<Arc<…>>` whose disabled form costs one branch and never
//! evaluates the closures that would build stack keys or walk the heap.
//! Enabled data lives behind a mutex per handle; the measurement matrix
//! gives every (workload, mode) cell its own handle, so cells never
//! contend and per-cell data is deterministic regardless of `--jobs`.
//!
//! Exports: Prometheus text exposition ([`prom`]), flamegraph-folded
//! stacks (assembled by gcbench from [`ProfData::sites`]), and the human
//! `ProfReport` table (also gcbench). Everything timing-free in the
//! exports is byte-identical between serial and parallel runs.

#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, Mutex};
use std::time::Instant;

pub mod census;
pub mod hist;
pub mod mmu;
pub mod prom;

pub use census::{ClassCensus, HeapCensus};
pub use hist::{decode_buckets, encode_buckets, Histogram};
pub use mmu::{mmu_permille, Pause, MMU_WINDOWS_NS};
pub use prom::PromWriter;

/// Per-allocation-site totals. The site key is the VM's shadow call
/// stack joined with `;`, ending in the `primitive@line:col` site label
/// — already in flamegraph-folded frame order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SiteStats {
    /// Number of allocations attributed to the stack.
    pub allocs: u64,
    /// Requested bytes attributed to the stack.
    pub bytes: u64,
}

/// Everything one profiled run accumulates.
#[derive(Debug, Clone, Default)]
pub struct ProfData {
    /// Requested allocation sizes (every successful `Heap::alloc`).
    pub alloc_size: Histogram,
    /// Stop-the-world pause per collection, nanoseconds.
    pub pause_ns: Histogram,
    /// Mark-phase share of each pause, nanoseconds.
    pub mark_ns: Histogram,
    /// Sweep-phase share of each pause, nanoseconds.
    pub sweep_ns: Histogram,
    /// Bytes returned to free lists per sweep.
    pub sweep_freed_bytes: Histogram,
    /// Per-call-stack allocation totals, deterministically ordered.
    pub sites: BTreeMap<String, SiteStats>,
    /// Pause timeline for MMU computation (offsets from profile start).
    pub pauses: Vec<Pause>,
    /// Completed collections observed.
    pub collections: u64,
    /// Final heap census, recorded when the VM run ends.
    pub census: Option<HeapCensus>,
}

impl ProfData {
    /// Minimum mutator utilization in permille for `window_ns`.
    pub fn mmu_permille(&self, window_ns: u64) -> u64 {
        mmu_permille(&self.pauses, window_ns)
    }
}

struct ProfCell {
    start: Instant,
    data: Mutex<ProfData>,
}

/// The handle the heap and VM record into. Cloning is an `Arc` bump or a
/// `None` copy; the disabled handle does literally nothing — closures
/// passed to the `record_*` methods are never evaluated.
#[derive(Clone, Default)]
pub struct ProfHandle(Option<Arc<ProfCell>>);

impl ProfHandle {
    /// The zero-overhead handle: every `record_*` is a single branch.
    pub fn disabled() -> Self {
        ProfHandle(None)
    }

    /// A fresh, enabled profile starting its timeline now.
    pub fn enabled() -> Self {
        ProfHandle(Some(Arc::new(ProfCell {
            start: Instant::now(),
            data: Mutex::new(ProfData::default()),
        })))
    }

    /// Whether samples will actually be recorded.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Records one successful allocation of `size` requested bytes into
    /// the size histogram. Called by the heap on the allocation path.
    #[inline]
    pub fn record_alloc_size(&self, size: u64) {
        if let Some(cell) = &self.0 {
            cell.data.lock().expect("prof lock").alloc_size.record(size);
        }
    }

    /// Attributes `bytes` to the allocation site identified by the stack
    /// key `key` builds. Called by the VM, which owns the shadow call
    /// stack; when disabled, `key` is never evaluated and no string is
    /// ever built.
    #[inline]
    pub fn record_site(&self, bytes: u64, key: impl FnOnce() -> String) {
        if let Some(cell) = &self.0 {
            let site = key();
            let mut data = cell.data.lock().expect("prof lock");
            let s = data.sites.entry(site).or_default();
            s.allocs += 1;
            s.bytes += bytes;
        }
    }

    /// Records one completed collection: total pause, its mark/sweep
    /// split, and the bytes the sweep returned to the free lists. Also
    /// appends to the pause timeline for MMU computation.
    #[inline]
    pub fn record_collection(&self, pause_ns: u64, mark_ns: u64, sweep_ns: u64, freed_bytes: u64) {
        if let Some(cell) = &self.0 {
            let end_ns = cell.start.elapsed().as_nanos() as u64;
            let mut data = cell.data.lock().expect("prof lock");
            data.pause_ns.record(pause_ns);
            data.mark_ns.record(mark_ns);
            data.sweep_ns.record(sweep_ns);
            data.sweep_freed_bytes.record(freed_bytes);
            data.pauses.push(Pause { end_ns, pause_ns });
            data.collections += 1;
        }
    }

    /// Stores the heap census `build` produces. When disabled, the heap
    /// walk never happens.
    #[inline]
    pub fn record_census(&self, build: impl FnOnce() -> HeapCensus) {
        if let Some(cell) = &self.0 {
            cell.data.lock().expect("prof lock").census = Some(build());
        }
    }

    /// A copy of everything recorded so far; `None` when disabled.
    pub fn snapshot(&self) -> Option<ProfData> {
        self.0
            .as_ref()
            .map(|cell| cell.data.lock().expect("prof lock").clone())
    }
}

impl fmt::Debug for ProfHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(if self.is_enabled() {
            "ProfHandle(enabled)"
        } else {
            "ProfHandle(disabled)"
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The zero-cost pin, mirroring gctrace's
    /// `disabled_handle_never_builds_the_event`: a disabled handle must
    /// never evaluate the stack-key or census closures, so the hot
    /// allocation path does no histogram or site work.
    #[test]
    fn disabled_handle_never_evaluates_closures() {
        let h = ProfHandle::disabled();
        let mut key_built = false;
        h.record_site(64, || {
            key_built = true;
            String::from("main;malloc@1:1")
        });
        let mut census_built = false;
        h.record_census(|| {
            census_built = true;
            HeapCensus::default()
        });
        h.record_alloc_size(64);
        h.record_collection(10, 6, 4, 128);
        assert!(!key_built, "disabled handle must not build stack keys");
        assert!(!census_built, "disabled handle must not walk the heap");
        assert!(!h.is_enabled());
        assert!(h.snapshot().is_none());
    }

    #[test]
    fn enabled_handle_accumulates_everything() {
        let h = ProfHandle::enabled();
        assert!(h.is_enabled());
        h.record_alloc_size(64);
        h.record_alloc_size(100);
        h.record_site(64, || "main;malloc@3:9".into());
        h.record_site(100, || "main;push;malloc@7:2".into());
        h.record_site(36, || "main;push;malloc@7:2".into());
        h.record_collection(1000, 600, 400, 4096);
        h.record_census(|| HeapCensus {
            live_objects: 2,
            live_bytes: 164,
            ..HeapCensus::default()
        });
        let d = h.snapshot().expect("enabled");
        assert_eq!(d.alloc_size.count(), 2);
        assert_eq!(d.alloc_size.sum(), 164);
        assert_eq!(d.collections, 1);
        assert_eq!(d.pause_ns.count(), d.collections);
        assert_eq!(d.mark_ns.sum() + d.sweep_ns.sum(), 1000);
        assert_eq!(d.pauses.len(), 1);
        assert_eq!(d.sites.len(), 2);
        let push = &d.sites["main;push;malloc@7:2"];
        assert_eq!((push.allocs, push.bytes), (2, 136));
        assert_eq!(d.census.as_ref().unwrap().live_bytes, 164);
    }

    #[test]
    fn clones_share_the_same_profile() {
        let h = ProfHandle::enabled();
        let h2 = h.clone();
        h.record_alloc_size(8);
        h2.record_alloc_size(8);
        assert_eq!(h.snapshot().unwrap().alloc_size.count(), 2);
        assert_eq!(format!("{h:?}"), "ProfHandle(enabled)");
        assert_eq!(
            format!("{:?}", ProfHandle::disabled()),
            "ProfHandle(disabled)"
        );
    }
}
