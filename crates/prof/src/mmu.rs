//! Minimum mutator utilization (MMU) from a pause timeline.
//!
//! The collector records every pause as `(end offset, duration)` relative
//! to the profile's start. For a window length `w`, the MMU is the worst
//! fraction of any `w`-long window the mutator got to run in. The minimum
//! over all window placements is attained with a window edge aligned to a
//! pause boundary, so only `2·pauses` candidate placements need checking.

/// One stop-the-world pause on the profile timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pause {
    /// Nanoseconds from profile start to the end of the pause.
    pub end_ns: u64,
    /// Pause duration in nanoseconds.
    pub pause_ns: u64,
}

impl Pause {
    fn start_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.pause_ns)
    }
}

/// Total pause time overlapping the window `[start, start + window)`.
fn overlap_ns(pauses: &[Pause], start: u64, window: u64) -> u64 {
    let end = start.saturating_add(window);
    pauses
        .iter()
        .map(|p| {
            let lo = p.start_ns().max(start);
            let hi = p.end_ns.min(end);
            hi.saturating_sub(lo)
        })
        .sum()
}

/// Minimum mutator utilization over windows of `window_ns`, in permille.
/// 1000 means the mutator was never interrupted for that window size;
/// 0 means some window was pure pause. An empty timeline is 1000.
pub fn mmu_permille(pauses: &[Pause], window_ns: u64) -> u64 {
    if pauses.is_empty() || window_ns == 0 {
        return 1000;
    }
    let horizon = pauses.iter().map(|p| p.end_ns).max().unwrap_or(0);
    if horizon <= window_ns {
        // One window covers the whole timeline.
        let total: u64 = pauses.iter().map(|p| p.pause_ns).sum();
        let busy = total.min(horizon);
        if horizon == 0 {
            return 1000;
        }
        return 1000 - (1000 * busy) / horizon;
    }
    let mut worst = 0u64;
    for p in pauses {
        // Window starting at a pause start, and window ending at a pause
        // end — clamped so the window stays inside [0, horizon].
        let a = p.start_ns().min(horizon - window_ns);
        let b = p.end_ns.saturating_sub(window_ns);
        worst = worst.max(overlap_ns(pauses, a, window_ns));
        worst = worst.max(overlap_ns(pauses, b, window_ns));
    }
    let worst = worst.min(window_ns);
    1000 - (1000 * worst) / window_ns
}

/// The standard report windows: 1 ms, 10 ms, 100 ms.
pub const MMU_WINDOWS_NS: [(u64, &str); 3] = [
    (1_000_000, "1ms"),
    (10_000_000, "10ms"),
    (100_000_000, "100ms"),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_timeline_is_fully_utilized() {
        assert_eq!(mmu_permille(&[], 1_000_000), 1000);
    }

    #[test]
    fn one_pause_dominates_small_windows() {
        // A 100 µs pause ending at t=200 µs on a 1 ms run.
        let pauses = [
            Pause {
                end_ns: 200_000,
                pause_ns: 100_000,
            },
            Pause {
                end_ns: 1_000_000,
                pause_ns: 0,
            },
        ];
        // A 100 µs window can sit entirely inside the pause.
        assert_eq!(mmu_permille(&pauses, 100_000), 0);
        // A 200 µs window carries at most the full 100 µs pause.
        assert_eq!(mmu_permille(&pauses, 200_000), 500);
        // The whole-run window sees 100 µs of pause in 1 ms.
        assert_eq!(mmu_permille(&pauses, 1_000_000), 900);
    }

    #[test]
    fn adjacent_pauses_accumulate() {
        // Two 10 µs pauses 20 µs apart: a 40 µs window can cover both.
        let pauses = [
            Pause {
                end_ns: 20_000,
                pause_ns: 10_000,
            },
            Pause {
                end_ns: 50_000,
                pause_ns: 10_000,
            },
            Pause {
                end_ns: 400_000,
                pause_ns: 0,
            },
        ];
        assert_eq!(mmu_permille(&pauses, 40_000), 500);
    }
}
