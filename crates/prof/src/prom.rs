//! Prometheus text exposition (version 0.0.4) writer and validator.
//!
//! The writer produces the classic `# HELP` / `# TYPE` / sample-line
//! format; the validator is a small independent parser used by the
//! `tables` binary (and CI) to assert that whatever we wrote actually
//! parses as exposition text. All sample values are integers — gcprof
//! deliberately exports permille instead of floating ratios so output
//! stays byte-stable.

use std::fmt::Write as _;

/// Builds Prometheus exposition text.
#[derive(Debug, Default)]
pub struct PromWriter {
    out: String,
}

fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

impl PromWriter {
    /// A fresh, empty document.
    pub fn new() -> Self {
        Self::default()
    }

    /// Writes the `# HELP` / `# TYPE` header for a metric family.
    /// `kind` is one of `counter`, `gauge`, `histogram`.
    pub fn family(&mut self, name: &str, help: &str, kind: &str) {
        debug_assert!(valid_name(name), "bad metric name {name:?}");
        let _ = writeln!(self.out, "# HELP {name} {}", help.replace('\n', " "));
        let _ = writeln!(self.out, "# TYPE {name} {kind}");
    }

    /// Writes one sample line `name{labels} value`.
    pub fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: u64) {
        debug_assert!(valid_name(name), "bad metric name {name:?}");
        self.out.push_str(name);
        if !labels.is_empty() {
            self.out.push('{');
            for (i, (k, v)) in labels.iter().enumerate() {
                debug_assert!(valid_name(k), "bad label name {k:?}");
                if i > 0 {
                    self.out.push(',');
                }
                let _ = write!(self.out, "{k}=\"{}\"", escape_label(v));
            }
            self.out.push('}');
        }
        let _ = writeln!(self.out, " {value}");
    }

    /// Exports a [`crate::Histogram`] as a Prometheus histogram family:
    /// cumulative `_bucket` lines with power-of-two `le` bounds over the
    /// occupied range, then `_sum` and `_count`.
    pub fn histogram(&mut self, name: &str, labels: &[(&str, &str)], h: &crate::Histogram) {
        let mut cumulative = 0u64;
        let top = h.nonzero().last().map(|(i, _)| i).unwrap_or(0);
        let bucket_name = format!("{name}_bucket");
        for (i, &c) in h.counts().iter().enumerate().take(top + 1) {
            cumulative += c;
            let bound = crate::Histogram::bucket_bound(i).to_string();
            let mut ls: Vec<(&str, &str)> = labels.to_vec();
            ls.push(("le", &bound));
            self.sample(&bucket_name, &ls, cumulative);
        }
        let mut ls: Vec<(&str, &str)> = labels.to_vec();
        ls.push(("le", "+Inf"));
        self.sample(&bucket_name, &ls, h.count());
        self.sample(&format!("{name}_sum"), labels, h.sum());
        self.sample(&format!("{name}_count"), labels, h.count());
    }

    /// Exports a [`crate::Histogram`] as a Prometheus summary family:
    /// one `name{quantile="…"}` line per requested quantile (estimated
    /// from the log2 buckets, see [`crate::Histogram::quantile`]), then
    /// `_sum` and `_count`.
    pub fn summary(&mut self, name: &str, labels: &[(&str, &str)], h: &crate::Histogram) {
        for q in ["0.5", "0.99"] {
            let v = h.quantile(q.parse().expect("literal quantile"));
            let mut ls: Vec<(&str, &str)> = labels.to_vec();
            ls.push(("quantile", q));
            self.sample(name, &ls, v);
        }
        self.sample(&format!("{name}_sum"), labels, h.sum());
        self.sample(&format!("{name}_count"), labels, h.count());
    }

    /// The finished document.
    pub fn finish(self) -> String {
        self.out
    }
}

/// One parsed sample line: metric name, raw label pairs, numeric value.
struct Sample {
    name: String,
    labels: Vec<(String, String)>,
    value: f64,
}

impl Sample {
    /// Label value for `key`, if present.
    fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// The label set minus `skip`, canonicalized for grouping the series
    /// of one histogram/summary family by base labels.
    fn base_key(&self, skip: &str) -> String {
        let mut ls: Vec<&(String, String)> =
            self.labels.iter().filter(|(k, _)| k != skip).collect();
        ls.sort();
        ls.iter()
            .map(|(k, v)| format!("{k}={v:?}"))
            .collect::<Vec<_>>()
            .join(",")
    }
}

/// Parses exposition text, returning the number of sample lines, or a
/// description of the first malformed line. Families declared
/// `# TYPE … histogram` or `# TYPE … summary` get the structural checks
/// scrapers rely on: `_bucket` series with increasing `le` bounds and
/// cumulative counts ending at an `+Inf` bucket that matches `_count`,
/// quantile labels in `[0, 1]`, and `_sum`/`_count` present per series.
pub fn validate(text: &str) -> Result<usize, String> {
    let mut samples: Vec<(usize, Sample)> = Vec::new();
    let mut families: Vec<(String, String)> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let n = lineno + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let rest = rest.trim_start();
            if let Some(decl) = rest.strip_prefix("HELP ") {
                let name = decl.split_whitespace().next().unwrap_or("");
                if !valid_name(name) {
                    return Err(format!("line {n}: HELP with bad metric name {name:?}"));
                }
            } else if let Some(decl) = rest.strip_prefix("TYPE ") {
                let mut parts = decl.split_whitespace();
                let name = parts.next().unwrap_or("");
                let kind = parts.next().unwrap_or("");
                if !valid_name(name) {
                    return Err(format!("line {n}: TYPE with bad metric name {name:?}"));
                }
                if !matches!(
                    kind,
                    "counter" | "gauge" | "histogram" | "summary" | "untyped"
                ) {
                    return Err(format!("line {n}: unknown metric type {kind:?}"));
                }
                families.push((name.to_string(), kind.to_string()));
            }
            // Other comment lines are legal and ignored.
            continue;
        }
        let s = parse_sample(line).map_err(|e| format!("line {n}: {e}"))?;
        samples.push((n, s));
    }
    for (name, kind) in &families {
        match kind.as_str() {
            "histogram" => validate_histogram_family(name, &samples)?,
            "summary" => validate_summary_family(name, &samples)?,
            _ => {}
        }
    }
    Ok(samples.len())
}

/// Structural checks for one declared histogram family.
fn validate_histogram_family(name: &str, samples: &[(usize, Sample)]) -> Result<(), String> {
    use std::collections::BTreeMap;
    let bucket_name = format!("{name}_bucket");
    // Base label set -> the `(line, le, value)` series in document order.
    let mut groups: BTreeMap<String, Vec<(usize, f64, f64)>> = BTreeMap::new();
    for (n, s) in samples {
        if s.name != bucket_name {
            continue;
        }
        let le = s
            .label("le")
            .ok_or_else(|| format!("line {n}: {bucket_name} sample without le label"))?;
        let le = if le == "+Inf" {
            f64::INFINITY
        } else {
            le.parse::<f64>()
                .map_err(|_| format!("line {n}: bad le bound {le:?}"))?
        };
        groups
            .entry(s.base_key("le"))
            .or_default()
            .push((*n, le, s.value));
    }
    if groups.is_empty() {
        return Err(format!(
            "histogram family {name} declared but has no {bucket_name} samples"
        ));
    }
    let find = |suffix: &str, key: &str| -> Option<f64> {
        let full = format!("{name}{suffix}");
        samples
            .iter()
            .find(|(_, s)| s.name == full && s.base_key("le") == key)
            .map(|(_, s)| s.value)
    };
    for (key, series) in &groups {
        let mut prev_le = f64::NEG_INFINITY;
        let mut prev_v = 0.0f64;
        for (n, le, v) in series {
            if *le <= prev_le {
                return Err(format!("line {n}: {bucket_name} le bounds not increasing"));
            }
            if *v < prev_v {
                return Err(format!("line {n}: {bucket_name} counts not cumulative"));
            }
            prev_le = *le;
            prev_v = *v;
        }
        let (_, last_le, last_v) = *series.last().expect("non-empty series");
        if !last_le.is_infinite() {
            return Err(format!(
                "histogram {name}{{{key}}} missing le=\"+Inf\" bucket"
            ));
        }
        let count = find("_count", key)
            .ok_or_else(|| format!("histogram {name}{{{key}}} missing _count"))?;
        if count != last_v {
            return Err(format!(
                "histogram {name}{{{key}}}: +Inf bucket {last_v} != _count {count}"
            ));
        }
        find("_sum", key).ok_or_else(|| format!("histogram {name}{{{key}}} missing _sum"))?;
    }
    Ok(())
}

/// Structural checks for one declared summary family.
fn validate_summary_family(name: &str, samples: &[(usize, Sample)]) -> Result<(), String> {
    use std::collections::BTreeSet;
    let mut keys: BTreeSet<String> = BTreeSet::new();
    for (n, s) in samples {
        if s.name != name {
            continue;
        }
        let q = s
            .label("quantile")
            .ok_or_else(|| format!("line {n}: summary {name} sample without quantile label"))?;
        let q: f64 = q
            .parse()
            .map_err(|_| format!("line {n}: bad quantile {q:?}"))?;
        if !(0.0..=1.0).contains(&q) {
            return Err(format!("line {n}: quantile {q} outside [0, 1]"));
        }
        keys.insert(s.base_key("quantile"));
    }
    if keys.is_empty() {
        return Err(format!(
            "summary family {name} declared but has no quantile samples"
        ));
    }
    for key in &keys {
        for suffix in ["_sum", "_count"] {
            let full = format!("{name}{suffix}");
            if !samples
                .iter()
                .any(|(_, s)| s.name == full && s.base_key("quantile") == *key)
            {
                return Err(format!("summary {name}{{{key}}} missing {suffix}"));
            }
        }
    }
    Ok(())
}

fn parse_sample(line: &str) -> Result<Sample, String> {
    let bytes = line.as_bytes();
    let mut i = 0;
    while i < bytes.len()
        && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_' || bytes[i] == b':')
    {
        i += 1;
    }
    let name = &line[..i];
    if !valid_name(name) {
        return Err(format!("bad metric name {name:?}"));
    }
    let mut rest = &line[i..];
    let mut labels = Vec::new();
    if let Some(after) = rest.strip_prefix('{') {
        let close = find_label_close(after).ok_or("unterminated label set")?;
        labels = parse_labels(&after[..close])?;
        rest = &after[close + 1..];
    }
    let value = rest.trim();
    if value.is_empty() {
        return Err("missing sample value".into());
    }
    // A value, optionally followed by a timestamp.
    let mut parts = value.split_whitespace();
    let v = parts.next().unwrap();
    let parsed = match v {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        "NaN" => f64::NAN,
        _ => v
            .parse::<f64>()
            .map_err(|_| format!("bad sample value {v:?}"))?,
    };
    if let Some(ts) = parts.next() {
        ts.parse::<i64>()
            .map_err(|_| format!("bad timestamp {ts:?}"))?;
    }
    if parts.next().is_some() {
        return Err("trailing garbage after sample".into());
    }
    Ok(Sample {
        name: name.to_string(),
        labels,
        value: parsed,
    })
}

/// Index of the `}` closing the label set, skipping quoted values.
fn find_label_close(s: &str) -> Option<usize> {
    let mut in_quotes = false;
    let mut escaped = false;
    for (i, c) in s.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_quotes => escaped = true,
            '"' => in_quotes = !in_quotes,
            '}' if !in_quotes => return Some(i),
            _ => {}
        }
    }
    None
}

fn parse_labels(s: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    if s.is_empty() {
        return Ok(labels);
    }
    let mut rest = s;
    loop {
        let eq = rest.find('=').ok_or("label without '='")?;
        let name = &rest[..eq];
        if !valid_name(name) {
            return Err(format!("bad label name {name:?}"));
        }
        let after = rest[eq + 1..]
            .strip_prefix('"')
            .ok_or("label value not quoted")?;
        let mut end = None;
        let mut escaped = false;
        let mut value = String::new();
        for (i, c) in after.char_indices() {
            if escaped {
                match c {
                    '\\' => value.push('\\'),
                    '"' => value.push('"'),
                    'n' => value.push('\n'),
                    _ => return Err(format!("bad escape \\{c} in label value")),
                }
                escaped = false;
                continue;
            }
            match c {
                '\\' => escaped = true,
                '"' => {
                    end = Some(i);
                    break;
                }
                _ => value.push(c),
            }
        }
        let end = end.ok_or("unterminated label value")?;
        labels.push((name.to_string(), value));
        rest = &after[end + 1..];
        if rest.is_empty() {
            return Ok(labels);
        }
        rest = rest
            .strip_prefix(',')
            .ok_or("expected ',' between labels")?;
        if rest.is_empty() {
            return Ok(labels); // trailing comma is tolerated by scrapers
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Histogram;

    #[test]
    fn writer_output_validates() {
        let mut w = PromWriter::new();
        w.family(
            "gcprof_collections_total",
            "Completed collections",
            "counter",
        );
        w.sample(
            "gcprof_collections_total",
            &[("workload", "cfrac"), ("mode", "O-safe")],
            7,
        );
        let mut h = Histogram::new();
        h.record(100);
        h.record(3000);
        w.family("gcprof_pause_ns", "Stop-the-world pause", "histogram");
        w.histogram("gcprof_pause_ns", &[("mode", "g")], &h);
        let text = w.finish();
        let n = validate(&text).expect("writer output must parse");
        // 1 counter + bucket lines + +Inf + sum + count.
        assert!(n >= 5, "{text}");
        assert!(text.contains(r#"gcprof_pause_ns_bucket{mode="g",le="+Inf"} 2"#));
        assert!(text.contains("gcprof_pause_ns_sum{mode=\"g\"} 3100"));
    }

    #[test]
    fn label_values_are_escaped() {
        let mut w = PromWriter::new();
        w.sample("m", &[("site", "a\"b\\c\nd")], 1);
        let text = w.finish();
        assert_eq!(text, "m{site=\"a\\\"b\\\\c\\nd\"} 1\n");
        assert_eq!(validate(&text), Ok(1));
    }

    #[test]
    fn validator_rejects_malformed_lines() {
        assert!(validate("1bad_name 3").is_err());
        assert!(validate("m{x=3} 1").is_err());
        assert!(validate("m{x=\"unterminated} 1").is_err());
        assert!(validate("m ").is_err());
        assert!(validate("m notanumber").is_err());
        assert!(validate("# TYPE m flavor").is_err());
        assert!(validate("m 1 2 3").is_err());
        assert_eq!(validate("m{} 4\n\n# just a comment\nm2 0.5 1700"), Ok(2));
    }

    #[test]
    fn summary_writer_output_validates() {
        let mut h = Histogram::new();
        for _ in 0..98 {
            h.record(1000);
        }
        h.record(70_000);
        h.record(70_000);
        let mut w = PromWriter::new();
        w.family("gc_pause_ns_summary", "Pause quantiles", "summary");
        w.summary("gc_pause_ns_summary", &[("mode", "g")], &h);
        let text = w.finish();
        validate(&text).expect("summary must parse and validate");
        assert!(
            text.contains(r#"gc_pause_ns_summary{mode="g",quantile="0.5"} 1023"#),
            "{text}"
        );
        assert!(
            text.contains(r#"gc_pause_ns_summary{mode="g",quantile="0.99"} 70000"#),
            "{text}"
        );
        assert!(text.contains("gc_pause_ns_summary_count{mode=\"g\"} 100"));
    }

    /// The zero-collection-cell path of the `gc_pause_quantile_ns`
    /// writer: a cell that never paused still gets a summary family, and
    /// the empty histogram's quantiles must export as 0 rather than
    /// panicking in `Histogram::quantile` (rank clamp on `count == 0`).
    #[test]
    fn summary_of_a_zero_collection_cell_exports_zeros() {
        let h = Histogram::new();
        let mut w = PromWriter::new();
        w.family("gc_pause_quantile_ns", "Pause quantiles", "summary");
        let labels = [("workload", "idle"), ("mode", "O")];
        w.summary("gc_pause_quantile_ns", &labels, &h);
        let text = w.finish();
        validate(&text).expect("empty summary must parse and validate");
        assert!(
            text.contains(r#"gc_pause_quantile_ns{workload="idle",mode="O",quantile="0.5"} 0"#),
            "{text}"
        );
        assert!(
            text.contains(r#"gc_pause_quantile_ns{workload="idle",mode="O",quantile="0.99"} 0"#),
            "{text}"
        );
        assert!(
            text.contains(r#"gc_pause_quantile_ns_count{workload="idle",mode="O"} 0"#),
            "{text}"
        );
    }

    #[test]
    fn validator_enforces_histogram_family_structure() {
        // Declared histogram with no bucket samples at all.
        assert!(validate("# TYPE h histogram\nh_sum 1\nh_count 1").is_err());
        // Bucket counts that go backwards.
        let bad = "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\n\
                   h_bucket{le=\"+Inf\"} 5\nh_sum 9\nh_count 5";
        assert!(validate(bad).unwrap_err().contains("not cumulative"));
        // le bounds that do not increase.
        let bad = "# TYPE h histogram\nh_bucket{le=\"4\"} 1\nh_bucket{le=\"2\"} 2\n\
                   h_bucket{le=\"+Inf\"} 2\nh_sum 9\nh_count 2";
        assert!(validate(bad).unwrap_err().contains("not increasing"));
        // Missing the +Inf bucket.
        let bad = "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1";
        assert!(validate(bad).unwrap_err().contains("+Inf"));
        // +Inf bucket disagrees with _count.
        let bad = "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 4";
        assert!(validate(bad).unwrap_err().contains("_count"));
        // Missing _sum.
        let bad = "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_count 3";
        assert!(validate(bad).unwrap_err().contains("_sum"));
        // A well-formed family, with two label series, passes.
        let good = "# TYPE h histogram\n\
                    h_bucket{mode=\"g\",le=\"1\"} 1\nh_bucket{mode=\"g\",le=\"+Inf\"} 2\n\
                    h_sum{mode=\"g\"} 9\nh_count{mode=\"g\"} 2\n\
                    h_bucket{mode=\"O\",le=\"+Inf\"} 0\n\
                    h_sum{mode=\"O\"} 0\nh_count{mode=\"O\"} 0";
        assert_eq!(validate(good), Ok(7));
    }

    #[test]
    fn validator_enforces_summary_family_structure() {
        assert!(validate("# TYPE s summary\ns_sum 1\ns_count 1").is_err());
        let bad = "# TYPE s summary\ns{quantile=\"1.5\"} 2\ns_sum 2\ns_count 1";
        assert!(validate(bad).unwrap_err().contains("outside"));
        let bad = "# TYPE s summary\ns{quantile=\"0.5\"} 2\ns_count 1";
        assert!(validate(bad).unwrap_err().contains("_sum"));
        let bad = "# TYPE s summary\ns 2\ns_sum 2\ns_count 1";
        assert!(validate(bad).unwrap_err().contains("quantile"));
        let good = "# TYPE s summary\ns{quantile=\"0.5\"} 2\ns{quantile=\"0.99\"} 7\n\
                    s_sum 9\ns_count 2";
        assert_eq!(validate(good), Ok(4));
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let mut h = Histogram::new();
        h.record(1);
        h.record(2);
        h.record(2);
        let mut w = PromWriter::new();
        w.histogram("x", &[], &h);
        let text = w.finish();
        assert!(text.contains("x_bucket{le=\"1\"} 1"), "{text}");
        assert!(text.contains("x_bucket{le=\"3\"} 3"), "{text}");
        assert!(text.contains("x_bucket{le=\"+Inf\"} 3"), "{text}");
        assert!(text.contains("x_count 3"), "{text}");
        assert_eq!(validate(&text).unwrap(), 6);
    }
}
