//! Prometheus text exposition (version 0.0.4) writer and validator.
//!
//! The writer produces the classic `# HELP` / `# TYPE` / sample-line
//! format; the validator is a small independent parser used by the
//! `tables` binary (and CI) to assert that whatever we wrote actually
//! parses as exposition text. All sample values are integers — gcprof
//! deliberately exports permille instead of floating ratios so output
//! stays byte-stable.

use std::fmt::Write as _;

/// Builds Prometheus exposition text.
#[derive(Debug, Default)]
pub struct PromWriter {
    out: String,
}

fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

impl PromWriter {
    /// A fresh, empty document.
    pub fn new() -> Self {
        Self::default()
    }

    /// Writes the `# HELP` / `# TYPE` header for a metric family.
    /// `kind` is one of `counter`, `gauge`, `histogram`.
    pub fn family(&mut self, name: &str, help: &str, kind: &str) {
        debug_assert!(valid_name(name), "bad metric name {name:?}");
        let _ = writeln!(self.out, "# HELP {name} {}", help.replace('\n', " "));
        let _ = writeln!(self.out, "# TYPE {name} {kind}");
    }

    /// Writes one sample line `name{labels} value`.
    pub fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: u64) {
        debug_assert!(valid_name(name), "bad metric name {name:?}");
        self.out.push_str(name);
        if !labels.is_empty() {
            self.out.push('{');
            for (i, (k, v)) in labels.iter().enumerate() {
                debug_assert!(valid_name(k), "bad label name {k:?}");
                if i > 0 {
                    self.out.push(',');
                }
                let _ = write!(self.out, "{k}=\"{}\"", escape_label(v));
            }
            self.out.push('}');
        }
        let _ = writeln!(self.out, " {value}");
    }

    /// Exports a [`crate::Histogram`] as a Prometheus histogram family:
    /// cumulative `_bucket` lines with power-of-two `le` bounds over the
    /// occupied range, then `_sum` and `_count`.
    pub fn histogram(&mut self, name: &str, labels: &[(&str, &str)], h: &crate::Histogram) {
        let mut cumulative = 0u64;
        let top = h.nonzero().last().map(|(i, _)| i).unwrap_or(0);
        let bucket_name = format!("{name}_bucket");
        for (i, &c) in h.counts().iter().enumerate().take(top + 1) {
            cumulative += c;
            let bound = crate::Histogram::bucket_bound(i).to_string();
            let mut ls: Vec<(&str, &str)> = labels.to_vec();
            ls.push(("le", &bound));
            self.sample(&bucket_name, &ls, cumulative);
        }
        let mut ls: Vec<(&str, &str)> = labels.to_vec();
        ls.push(("le", "+Inf"));
        self.sample(&bucket_name, &ls, h.count());
        self.sample(&format!("{name}_sum"), labels, h.sum());
        self.sample(&format!("{name}_count"), labels, h.count());
    }

    /// The finished document.
    pub fn finish(self) -> String {
        self.out
    }
}

/// Parses exposition text, returning the number of sample lines, or a
/// description of the first malformed line.
pub fn validate(text: &str) -> Result<usize, String> {
    let mut samples = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        let n = lineno + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let rest = rest.trim_start();
            if let Some(decl) = rest.strip_prefix("HELP ") {
                let name = decl.split_whitespace().next().unwrap_or("");
                if !valid_name(name) {
                    return Err(format!("line {n}: HELP with bad metric name {name:?}"));
                }
            } else if let Some(decl) = rest.strip_prefix("TYPE ") {
                let mut parts = decl.split_whitespace();
                let name = parts.next().unwrap_or("");
                let kind = parts.next().unwrap_or("");
                if !valid_name(name) {
                    return Err(format!("line {n}: TYPE with bad metric name {name:?}"));
                }
                if !matches!(
                    kind,
                    "counter" | "gauge" | "histogram" | "summary" | "untyped"
                ) {
                    return Err(format!("line {n}: unknown metric type {kind:?}"));
                }
            }
            // Other comment lines are legal and ignored.
            continue;
        }
        parse_sample(line).map_err(|e| format!("line {n}: {e}"))?;
        samples += 1;
    }
    Ok(samples)
}

fn parse_sample(line: &str) -> Result<(), String> {
    let bytes = line.as_bytes();
    let mut i = 0;
    while i < bytes.len()
        && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_' || bytes[i] == b':')
    {
        i += 1;
    }
    let name = &line[..i];
    if !valid_name(name) {
        return Err(format!("bad metric name {name:?}"));
    }
    let mut rest = &line[i..];
    if let Some(after) = rest.strip_prefix('{') {
        let close = find_label_close(after).ok_or("unterminated label set")?;
        parse_labels(&after[..close])?;
        rest = &after[close + 1..];
    }
    let value = rest.trim();
    if value.is_empty() {
        return Err("missing sample value".into());
    }
    // A value, optionally followed by a timestamp.
    let mut parts = value.split_whitespace();
    let v = parts.next().unwrap();
    let ok = matches!(v, "+Inf" | "-Inf" | "NaN") || v.parse::<f64>().is_ok();
    if !ok {
        return Err(format!("bad sample value {v:?}"));
    }
    if let Some(ts) = parts.next() {
        ts.parse::<i64>()
            .map_err(|_| format!("bad timestamp {ts:?}"))?;
    }
    if parts.next().is_some() {
        return Err("trailing garbage after sample".into());
    }
    Ok(())
}

/// Index of the `}` closing the label set, skipping quoted values.
fn find_label_close(s: &str) -> Option<usize> {
    let mut in_quotes = false;
    let mut escaped = false;
    for (i, c) in s.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_quotes => escaped = true,
            '"' => in_quotes = !in_quotes,
            '}' if !in_quotes => return Some(i),
            _ => {}
        }
    }
    None
}

fn parse_labels(s: &str) -> Result<(), String> {
    if s.is_empty() {
        return Ok(());
    }
    let mut rest = s;
    loop {
        let eq = rest.find('=').ok_or("label without '='")?;
        let name = &rest[..eq];
        if !valid_name(name) {
            return Err(format!("bad label name {name:?}"));
        }
        let after = rest[eq + 1..]
            .strip_prefix('"')
            .ok_or("label value not quoted")?;
        let mut end = None;
        let mut escaped = false;
        for (i, c) in after.char_indices() {
            if escaped {
                if !matches!(c, '\\' | '"' | 'n') {
                    return Err(format!("bad escape \\{c} in label value"));
                }
                escaped = false;
                continue;
            }
            match c {
                '\\' => escaped = true,
                '"' => {
                    end = Some(i);
                    break;
                }
                _ => {}
            }
        }
        let end = end.ok_or("unterminated label value")?;
        rest = &after[end + 1..];
        if rest.is_empty() {
            return Ok(());
        }
        rest = rest
            .strip_prefix(',')
            .ok_or("expected ',' between labels")?;
        if rest.is_empty() {
            return Ok(()); // trailing comma is tolerated by scrapers
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Histogram;

    #[test]
    fn writer_output_validates() {
        let mut w = PromWriter::new();
        w.family(
            "gcprof_collections_total",
            "Completed collections",
            "counter",
        );
        w.sample(
            "gcprof_collections_total",
            &[("workload", "cfrac"), ("mode", "O-safe")],
            7,
        );
        let mut h = Histogram::new();
        h.record(100);
        h.record(3000);
        w.family("gcprof_pause_ns", "Stop-the-world pause", "histogram");
        w.histogram("gcprof_pause_ns", &[("mode", "g")], &h);
        let text = w.finish();
        let n = validate(&text).expect("writer output must parse");
        // 1 counter + bucket lines + +Inf + sum + count.
        assert!(n >= 5, "{text}");
        assert!(text.contains(r#"gcprof_pause_ns_bucket{mode="g",le="+Inf"} 2"#));
        assert!(text.contains("gcprof_pause_ns_sum{mode=\"g\"} 3100"));
    }

    #[test]
    fn label_values_are_escaped() {
        let mut w = PromWriter::new();
        w.sample("m", &[("site", "a\"b\\c\nd")], 1);
        let text = w.finish();
        assert_eq!(text, "m{site=\"a\\\"b\\\\c\\nd\"} 1\n");
        assert_eq!(validate(&text), Ok(1));
    }

    #[test]
    fn validator_rejects_malformed_lines() {
        assert!(validate("1bad_name 3").is_err());
        assert!(validate("m{x=3} 1").is_err());
        assert!(validate("m{x=\"unterminated} 1").is_err());
        assert!(validate("m ").is_err());
        assert!(validate("m notanumber").is_err());
        assert!(validate("# TYPE m flavor").is_err());
        assert!(validate("m 1 2 3").is_err());
        assert_eq!(validate("m{} 4\n\n# just a comment\nm2 0.5 1700"), Ok(2));
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let mut h = Histogram::new();
        h.record(1);
        h.record(2);
        h.record(2);
        let mut w = PromWriter::new();
        w.histogram("x", &[], &h);
        let text = w.finish();
        assert!(text.contains("x_bucket{le=\"1\"} 1"), "{text}");
        assert!(text.contains("x_bucket{le=\"3\"} 3"), "{text}");
        assert!(text.contains("x_bucket{le=\"+Inf\"} 3"), "{text}");
        assert!(text.contains("x_count 3"), "{text}");
        assert_eq!(validate(&text).unwrap(), 6);
    }
}
