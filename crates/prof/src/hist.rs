//! Log-bucketed histograms.
//!
//! One bucket per power of two: bucket 0 holds the value 0, bucket `i`
//! (for `i >= 1`) holds values in `[2^(i-1), 2^i - 1]`. Recording is a
//! leading-zeros count plus two adds — cheap enough for the allocation
//! hot path — and the fixed bucket layout makes two histograms mergeable
//! and comparable without any rebinning.

/// Number of buckets: the zero bucket plus one per bit of a `u64`.
pub const BUCKETS: usize = 65;

/// A fixed-layout log2 histogram with count/sum/min/max.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bucket index for a value: 0 for 0, else `floor(log2(v)) + 1`.
    #[inline]
    pub fn bucket_of(v: u64) -> usize {
        (64 - v.leading_zeros()) as usize
    }

    /// Inclusive upper bound of bucket `i`.
    pub fn bucket_bound(i: usize) -> u64 {
        if i >= 64 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.counts[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample, or 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Raw per-bucket counts.
    pub fn counts(&self) -> &[u64; BUCKETS] {
        &self.counts
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// Upper-bound estimate of the `q`-quantile (`0.0 ..= 1.0`): the
    /// inclusive bound of the bucket holding the `⌈q·count⌉`-th sample,
    /// clamped to the exact observed maximum so a p99 never exceeds it.
    /// Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cumulative += c;
            if cumulative >= rank {
                return Self::bucket_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// Non-empty `(bucket index, count)` pairs in ascending bucket order.
    pub fn nonzero(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
    }

    /// Compact textual bucket encoding: `"i:count i:count …"` over the
    /// non-empty buckets, or `"-"` when empty. Round-trips through
    /// [`decode_buckets`].
    pub fn encode_buckets(&self) -> String {
        encode_buckets(&self.counts)
    }
}

/// Encodes sparse bucket counts as `"i:count i:count …"` (or `"-"`).
pub fn encode_buckets(counts: &[u64]) -> String {
    let mut out = String::new();
    for (i, &c) in counts.iter().enumerate() {
        if c == 0 {
            continue;
        }
        if !out.is_empty() {
            out.push(' ');
        }
        out.push_str(&format!("{i}:{c}"));
    }
    if out.is_empty() {
        out.push('-');
    }
    out
}

/// Parses the [`encode_buckets`] format back into `(index, count)` pairs.
pub fn decode_buckets(text: &str) -> Result<Vec<(usize, u64)>, String> {
    if text == "-" {
        return Ok(Vec::new());
    }
    let mut out = Vec::new();
    for part in text.split(' ') {
        let (i, c) = part
            .split_once(':')
            .ok_or_else(|| format!("bad bucket entry {part:?}"))?;
        let i: usize = i.parse().map_err(|_| format!("bad bucket index {i:?}"))?;
        let c: u64 = c.parse().map_err(|_| format!("bad bucket count {c:?}"))?;
        out.push((i, c));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_is_powers_of_two() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(1024), 11);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
        assert_eq!(Histogram::bucket_bound(0), 0);
        assert_eq!(Histogram::bucket_bound(1), 1);
        assert_eq!(Histogram::bucket_bound(2), 3);
        assert_eq!(Histogram::bucket_bound(11), 2047);
        assert_eq!(Histogram::bucket_bound(64), u64::MAX);
    }

    #[test]
    fn counts_sum_min_max() {
        let mut h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.min(), 0);
        for v in [0u64, 1, 3, 16, 16, 4096] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 4132);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 4096);
        let total: u64 = h.counts().iter().sum();
        assert_eq!(total, h.count(), "bucket counts sum to sample count");
    }

    #[test]
    fn merge_adds_bucketwise() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(7);
        b.record(7);
        b.record(100);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum(), 114);
        assert_eq!(a.max(), 100);
        assert_eq!(a.counts()[Histogram::bucket_of(7)], 2);
    }

    #[test]
    fn quantiles_come_from_bucket_bounds() {
        let mut h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0, "empty histogram");
        for _ in 0..98 {
            h.record(10); // bucket 4, bound 15
        }
        h.record(1000); // bucket 10, bound 1023
        h.record(5000); // bucket 13, bound 8191
        assert_eq!(h.quantile(0.5), 15);
        assert_eq!(h.quantile(0.99), 1023);
        assert_eq!(h.quantile(1.0), 5000, "clamped to the observed max");
        let mut one = Histogram::new();
        one.record(7);
        assert_eq!(one.quantile(0.0), 7, "rank is clamped to at least 1");
    }

    /// Pins the empty-histogram guard in `quantile`: a cell that never
    /// collected exports pause quantiles, and those must read 0 at every
    /// `q` rather than indexing into a histogram with no samples. (The
    /// rank computation divides by nothing, but an unguarded version
    /// would scan to the fallthrough and return an uninitialized max.)
    #[test]
    fn empty_histogram_quantiles_are_zero_at_every_q() {
        let h = Histogram::new();
        for q in [0.0, 0.5, 0.9, 0.99, 0.999, 1.0] {
            assert_eq!(h.quantile(q), 0, "empty histogram at q={q}");
        }
        // Merging an empty into an empty must not fabricate samples or
        // disturb the min/max sentinels the guard relies on.
        let mut m = Histogram::new();
        m.merge(&h);
        assert!(m.is_empty());
        assert_eq!(m.quantile(0.99), 0);
        assert_eq!((m.min(), m.max()), (0, 0));
        // One sample after the empty merge behaves like a fresh record.
        m.record(42);
        assert_eq!(m.quantile(0.5), 42);
    }

    #[test]
    fn bucket_encoding_round_trips() {
        let mut h = Histogram::new();
        h.record(5);
        h.record(5);
        h.record(900);
        let enc = h.encode_buckets();
        assert_eq!(enc, "3:2 10:1");
        assert_eq!(decode_buckets(&enc).unwrap(), vec![(3, 2), (10, 1)]);
        assert_eq!(Histogram::new().encode_buckets(), "-");
        assert_eq!(decode_buckets("-").unwrap(), vec![]);
        assert!(decode_buckets("x").is_err());
        assert!(decode_buckets("1:b").is_err());
    }
}
