//! The SPARC-like target assembly.
//!
//! A small RISC ISA with register+register and register+immediate
//! addressing — enough to express the paper's central cost story: the
//! baseline folds address arithmetic into `ld [x+y]`, the `KEEP_LIVE`
//! barrier forces `add x,y,z ; ld [z]`, and the peephole postprocessor
//! folds it back.
//!
//! `KEEP_LIVE` itself appears as a zero-size pseudo-instruction — the
//! paper's "special comment understood by the peephole optimizer" — that
//! marks its base register as protected.

use crate::cost::Machine;
use std::fmt;

/// A physical register `%r0 … %rK-1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(pub u8);

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%r{}", self.0)
    }
}

/// Register-or-immediate second operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegImm {
    /// Register operand.
    Reg(Reg),
    /// Immediate operand.
    Imm(i64),
}

impl fmt::Display for RegImm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegImm::Reg(r) => write!(f, "{r}"),
            RegImm::Imm(v) => write!(f, "{v}"),
        }
    }
}

impl From<Reg> for RegImm {
    fn from(r: Reg) -> Self {
        RegImm::Reg(r)
    }
}

/// ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum AluOp {
    Add,
    Sub,
    Mul,
    Div,
    DivU,
    Rem,
    RemU,
    And,
    Or,
    Xor,
    Shl,
    Sar,
    Shr,
}

impl AluOp {
    fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Mul => "smul",
            AluOp::Div => "sdiv",
            AluOp::DivU => "udiv",
            AluOp::Rem => "srem",
            AluOp::RemU => "urem",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Shl => "sll",
            AluOp::Sar => "sra",
            AluOp::Shr => "srl",
        }
    }
}

/// Branch conditions (signed/unsigned comparisons against a second
/// operand; `cmp` is fused into the branch for costing purposes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Cond {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    LtU,
    LeU,
    GtU,
    GeU,
}

impl Cond {
    fn mnemonic(self) -> &'static str {
        match self {
            Cond::Eq => "be",
            Cond::Ne => "bne",
            Cond::Lt => "bl",
            Cond::Le => "ble",
            Cond::Gt => "bg",
            Cond::Ge => "bge",
            Cond::LtU => "blu",
            Cond::LeU => "bleu",
            Cond::GtU => "bgu",
            Cond::GeU => "bgeu",
        }
    }
}

/// Call targets at the assembly level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmCallTarget {
    /// User function by name.
    Named(String),
    /// Runtime builtin by name.
    Runtime(&'static str),
    /// Indirect through a register.
    Indirect(Reg),
}

impl fmt::Display for AsmCallTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmCallTarget::Named(n) => write!(f, "{n}"),
            AsmCallTarget::Runtime(n) => write!(f, "{n}"),
            AsmCallTarget::Indirect(r) => write!(f, "{r}"),
        }
    }
}

/// One assembly instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum AsmInstr {
    /// `op rd, rs, op2`.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination.
        rd: Reg,
        /// First source.
        rs: Reg,
        /// Second source.
        op2: RegImm,
    },
    /// `mov rd, src`.
    Mov {
        /// Destination.
        rd: Reg,
        /// Source.
        src: RegImm,
    },
    /// `sethi`-style load of a large constant.
    SetImm {
        /// Destination.
        rd: Reg,
        /// Constant.
        value: i64,
    },
    /// `ld [base + off], rd`.
    Ld {
        /// Destination.
        rd: Reg,
        /// Base register.
        base: Reg,
        /// Offset (register or immediate).
        off: RegImm,
        /// Access width in bytes.
        width: u8,
        /// Sign-extend.
        signed: bool,
    },
    /// `st rs, [base + off]`.
    St {
        /// Stored register.
        rs: Reg,
        /// Base register.
        base: Reg,
        /// Offset.
        off: RegImm,
        /// Access width in bytes.
        width: u8,
    },
    /// Compare and set 0/1: `cmp a, b; mov<cond> 1, rd` (two instructions
    /// on the real machine).
    SetCc {
        /// Condition.
        cond: Cond,
        /// Destination (receives 0 or 1).
        rd: Reg,
        /// Left comparand.
        a: Reg,
        /// Right comparand.
        b: RegImm,
    },
    /// Fused compare-and-branch `cmp a, b; b<cond> target`.
    Bcc {
        /// Condition.
        cond: Cond,
        /// Left comparand.
        a: Reg,
        /// Right comparand.
        b: RegImm,
        /// Target block index within the function.
        target: u32,
    },
    /// Unconditional branch.
    Ba {
        /// Target block index.
        target: u32,
    },
    /// Call.
    Call {
        /// Callee.
        target: AsmCallTarget,
        /// Number of argument moves already emitted (for documentation).
        args: u8,
    },
    /// Return.
    Ret,
    /// The `KEEP_LIVE` marker: zero bytes of code. `base` is the protected
    /// register; the peephole pass refuses to eliminate it.
    KeepLive {
        /// Register holding the protected (derived) value.
        value: Reg,
        /// Base register kept visible, if any.
        base: Option<Reg>,
    },
    /// `GC_same_obj(value, base)` runtime check (a real call).
    CheckSame {
        /// Result/derived-value register.
        value: Reg,
        /// Base register.
        base: Reg,
    },
    /// `memmove`-style block copy (runtime call).
    BlockCopy {
        /// Destination address register.
        dst: Reg,
        /// Source address register.
        src: Reg,
        /// Length in bytes.
        len: u64,
    },
}

impl AsmInstr {
    /// Code size contribution in bytes (fixed 4-byte encoding; pseudo
    /// instructions are free; calls include the argument window setup).
    pub fn size_bytes(&self) -> u64 {
        match self {
            AsmInstr::KeepLive { .. } => 0,
            AsmInstr::SetImm { value, .. }
                // Large constants need sethi+or.
                if (*value > 0x1fff || *value < -0x1000) => {
                    8
                }
            AsmInstr::SetCc { .. } => 8, // cmp + conditional move
            AsmInstr::Bcc { .. } => 8, // cmp + branch
            AsmInstr::CheckSame { .. } => 12, // two arg moves + call
            AsmInstr::BlockCopy { .. } => 12,
            _ => 4,
        }
    }

    /// Cycle cost under a machine model.
    pub fn cost(&self, m: &Machine) -> u64 {
        match self {
            AsmInstr::Alu { op, .. } => match op {
                AluOp::Mul => m.mul_cost,
                AluOp::Div | AluOp::DivU | AluOp::Rem | AluOp::RemU => m.div_cost,
                _ => m.alu_cost,
            },
            AsmInstr::Mov { .. } | AsmInstr::SetImm { .. } => m.alu_cost,
            AsmInstr::Ld { .. } => m.load_cost,
            AsmInstr::St { .. } => m.store_cost,
            AsmInstr::SetCc { .. } => 2 * m.alu_cost,
            AsmInstr::Bcc { .. } => m.alu_cost + m.branch_cost,
            AsmInstr::Ba { .. } => m.branch_cost,
            AsmInstr::Call { .. } => m.call_cost,
            AsmInstr::Ret => m.branch_cost,
            AsmInstr::KeepLive { .. } => 0,
            AsmInstr::CheckSame { .. } => m.check_cost,
            AsmInstr::BlockCopy { len, .. } => m.call_cost + (len * m.byte_work_cost_milli) / 1000,
        }
    }

    /// Registers read by this instruction.
    pub fn reads(&self) -> Vec<Reg> {
        let mut out = Vec::new();
        let push_ri = |ri: &RegImm, out: &mut Vec<Reg>| {
            if let RegImm::Reg(r) = ri {
                out.push(*r);
            }
        };
        match self {
            AsmInstr::Alu { rs, op2, .. } => {
                out.push(*rs);
                push_ri(op2, &mut out);
            }
            AsmInstr::Mov { src, .. } => push_ri(src, &mut out),
            AsmInstr::SetImm { .. } => {}
            AsmInstr::Ld { base, off, .. } => {
                out.push(*base);
                push_ri(off, &mut out);
            }
            AsmInstr::St { rs, base, off, .. } => {
                out.push(*rs);
                out.push(*base);
                push_ri(off, &mut out);
            }
            AsmInstr::SetCc { a, b, .. } | AsmInstr::Bcc { a, b, .. } => {
                out.push(*a);
                push_ri(b, &mut out);
            }
            AsmInstr::Ba { .. } | AsmInstr::Ret => {}
            AsmInstr::Call { target, .. } => {
                if let AsmCallTarget::Indirect(r) = target {
                    out.push(*r);
                }
            }
            AsmInstr::KeepLive { value, base } => {
                out.push(*value);
                if let Some(b) = base {
                    out.push(*b);
                }
            }
            AsmInstr::CheckSame { value, base } => {
                out.push(*value);
                out.push(*base);
            }
            AsmInstr::BlockCopy { dst, src, .. } => {
                out.push(*dst);
                out.push(*src);
            }
        }
        out
    }

    /// Register written by this instruction, if any.
    pub fn writes(&self) -> Option<Reg> {
        match self {
            AsmInstr::Alu { rd, .. }
            | AsmInstr::Mov { rd, .. }
            | AsmInstr::SetImm { rd, .. }
            | AsmInstr::SetCc { rd, .. }
            | AsmInstr::Ld { rd, .. } => Some(*rd),
            AsmInstr::KeepLive { .. } => None,
            AsmInstr::CheckSame { value, .. } => Some(*value),
            _ => None,
        }
    }
}

impl fmt::Display for AsmInstr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmInstr::Alu { op, rd, rs, op2 } => {
                write!(f, "{} {rs},{op2},{rd}", op.mnemonic())
            }
            AsmInstr::Mov { rd, src } => write!(f, "mov {src},{rd}"),
            AsmInstr::SetImm { rd, value } => write!(f, "set {value},{rd}"),
            AsmInstr::Ld {
                rd,
                base,
                off,
                width,
                signed,
            } => {
                let suffix = match (width, signed) {
                    (1, true) => "sb",
                    (1, false) => "ub",
                    (4, true) => "sw",
                    (4, false) => "uw",
                    _ => "x",
                };
                write!(f, "ld{suffix} [{base}+{off}],{rd}")
            }
            AsmInstr::St {
                rs,
                base,
                off,
                width,
            } => {
                let suffix = match width {
                    1 => "b",
                    4 => "w",
                    _ => "x",
                };
                write!(f, "st{suffix} {rs},[{base}+{off}]")
            }
            AsmInstr::SetCc { cond, rd, a, b } => {
                write!(f, "cmp {a},{b}; mov{} 1,{rd}", cond.mnemonic())
            }
            AsmInstr::Bcc { cond, a, b, target } => {
                write!(f, "cmp {a},{b}; {} .LB{target}", cond.mnemonic())
            }
            AsmInstr::Ba { target } => write!(f, "ba .LB{target}"),
            AsmInstr::Call { target, args } => write!(f, "call {target} ! {args} args"),
            AsmInstr::Ret => write!(f, "ret"),
            AsmInstr::KeepLive { value, base } => match base {
                Some(b) => write!(f, "! keep_live {value} base {b}"),
                None => write!(f, "! keep_live {value}"),
            },
            AsmInstr::CheckSame { value, base } => {
                write!(f, "call GC_same_obj({value},{base})")
            }
            AsmInstr::BlockCopy { dst, src, len } => {
                write!(f, "call memmove({dst},{src},{len})")
            }
        }
    }
}

/// One assembly basic block, aligned 1:1 with the source IR block so VM
/// profiles transfer directly.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AsmBlock {
    /// Instructions.
    pub instrs: Vec<AsmInstr>,
}

impl AsmBlock {
    /// Static size in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.instrs.iter().map(AsmInstr::size_bytes).sum()
    }

    /// Cycle cost of one execution under `m`.
    pub fn cost(&self, m: &Machine) -> u64 {
        self.instrs.iter().map(|i| i.cost(m)).sum()
    }
}

/// An assembled function.
#[derive(Debug, Clone, PartialEq)]
pub struct AsmFunc {
    /// Function name.
    pub name: String,
    /// Blocks, index-aligned with the IR function's blocks.
    pub blocks: Vec<AsmBlock>,
    /// Registers the allocator spilled (for diagnostics).
    pub spill_count: u32,
}

impl AsmFunc {
    /// Static code size in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.blocks.iter().map(AsmBlock::size_bytes).sum()
    }

    /// Pretty listing.
    pub fn listing(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "{}:", self.name);
        for (i, b) in self.blocks.iter().enumerate() {
            let _ = writeln!(out, ".LB{i}:");
            for ins in &b.instrs {
                let _ = writeln!(out, "    {ins}");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keep_live_is_free() {
        let kl = AsmInstr::KeepLive {
            value: Reg(1),
            base: Some(Reg(2)),
        };
        assert_eq!(kl.size_bytes(), 0);
        assert_eq!(kl.cost(&Machine::sparc10()), 0);
        assert_eq!(kl.reads(), vec![Reg(1), Reg(2)]);
        assert_eq!(kl.writes(), None);
    }

    #[test]
    fn check_is_expensive() {
        let m = Machine::sparc10();
        let chk = AsmInstr::CheckSame {
            value: Reg(1),
            base: Reg(2),
        };
        assert!(chk.cost(&m) > 10 * m.alu_cost);
    }

    #[test]
    fn indexed_load_displays() {
        let ld = AsmInstr::Ld {
            rd: Reg(0),
            base: Reg(1),
            off: RegImm::Reg(Reg(2)),
            width: 1,
            signed: true,
        };
        assert_eq!(ld.to_string(), "ldsb [%r1+%r2],%r0");
    }

    #[test]
    fn reads_writes_tracking() {
        let add = AsmInstr::Alu {
            op: AluOp::Add,
            rd: Reg(3),
            rs: Reg(1),
            op2: RegImm::Reg(Reg(2)),
        };
        assert_eq!(add.reads(), vec![Reg(1), Reg(2)]);
        assert_eq!(add.writes(), Some(Reg(3)));
        let st = AsmInstr::St {
            rs: Reg(0),
            base: Reg(1),
            off: RegImm::Imm(4),
            width: 8,
        };
        assert_eq!(st.reads(), vec![Reg(0), Reg(1)]);
        assert_eq!(st.writes(), None);
    }

    #[test]
    fn block_accounting() {
        let m = Machine::sparc2();
        let b = AsmBlock {
            instrs: vec![
                AsmInstr::Alu {
                    op: AluOp::Add,
                    rd: Reg(0),
                    rs: Reg(1),
                    op2: RegImm::Imm(1),
                },
                AsmInstr::Ld {
                    rd: Reg(0),
                    base: Reg(0),
                    off: RegImm::Imm(0),
                    width: 8,
                    signed: false,
                },
            ],
        };
        assert_eq!(b.size_bytes(), 8);
        assert_eq!(b.cost(&m), m.alu_cost + m.load_cost);
    }
}
