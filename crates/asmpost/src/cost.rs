//! Cycle and code-size accounting.
//!
//! Running time of a build = Σ over basic blocks of
//! (VM execution count × static block cost under the machine model),
//! plus the runtime-library work (builtins) observed by the VM. Code size
//! counts only the program's own functions — the paper's size table
//! "include\[s\] only the code that was actually processed, not the standard
//! libraries".

pub use cvm::machine::Machine;

use crate::asm::AsmFunc;
use cvm::vm::Profile;

/// Cost summary of one build on one machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostReport {
    /// Estimated cycles of the measured run.
    pub cycles: u64,
    /// Static code size in bytes (processed code only).
    pub size_bytes: u64,
}

impl CostReport {
    /// Percentage slowdown of `self` relative to `baseline` (rounded).
    pub fn slowdown_pct(&self, baseline: &CostReport) -> i64 {
        pct(self.cycles, baseline.cycles)
    }

    /// Percentage code-size expansion relative to `baseline`.
    pub fn expansion_pct(&self, baseline: &CostReport) -> i64 {
        pct(self.size_bytes, baseline.size_bytes)
    }

    /// Serializes the report as a flat JSON object.
    pub fn to_json(&self) -> String {
        let mut w = gctrace::json::Writer::new();
        w.uint_field("cycles", self.cycles);
        w.uint_field("size_bytes", self.size_bytes);
        w.finish()
    }

    /// Parses a report previously written by [`CostReport::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a message when the text is not a JSON object or a field is
    /// missing or mistyped.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let obj = gctrace::json::parse_object(text)?;
        let get = |key: &str| -> Result<u64, String> {
            obj.get(key)
                .and_then(|v| v.as_u64())
                .ok_or_else(|| format!("missing or non-numeric field '{key}'"))
        };
        Ok(CostReport {
            cycles: get("cycles")?,
            size_bytes: get("size_bytes")?,
        })
    }
}

fn pct(ours: u64, base: u64) -> i64 {
    if base == 0 {
        return 0;
    }
    ((ours as i128 * 100 / base as i128) - 100) as i64
}

/// Computes the cost report for an assembled program under `machine`,
/// weighting each block by its VM execution count.
pub fn measure(funcs: &[AsmFunc], profile: &Profile, machine: &Machine) -> CostReport {
    let mut cycles: u64 = 0;
    let mut size: u64 = 0;
    for (fi, f) in funcs.iter().enumerate() {
        size += f.size_bytes();
        let counts = profile
            .block_counts
            .get(fi)
            .map(|v| v.as_slice())
            .unwrap_or(&[]);
        for (bi, b) in f.blocks.iter().enumerate() {
            let n = counts.get(bi).copied().unwrap_or(0);
            cycles += n * b.cost(machine);
        }
    }
    // Runtime library work (identical across modes except for the extra
    // checking entry points, which carry their own counts).
    for (&b, &n) in &profile.builtin_calls {
        cycles += n * machine.builtin_call_cost(b);
    }
    cycles += profile.builtin_byte_work * machine.byte_work_cost_milli / 1000;
    CostReport {
        cycles,
        size_bytes: size,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::{AsmBlock, AsmInstr, Reg, RegImm};

    #[test]
    fn percentage_math() {
        let base = CostReport {
            cycles: 100,
            size_bytes: 1000,
        };
        let ours = CostReport {
            cycles: 109,
            size_bytes: 1190,
        };
        assert_eq!(ours.slowdown_pct(&base), 9);
        assert_eq!(ours.expansion_pct(&base), 19);
        assert_eq!(base.slowdown_pct(&base), 0);
    }

    #[test]
    fn cost_report_json_round_trips() {
        let r = CostReport {
            cycles: 123_456_789,
            size_bytes: 4096,
        };
        let text = r.to_json();
        let back = CostReport::from_json(&text).expect("valid json");
        assert_eq!(back, r);
        let obj = gctrace::json::parse_object(&text).unwrap();
        assert_eq!(obj.len(), 2, "{text}");
        assert!(CostReport::from_json("{\"cycles\":1}").is_err());
        assert!(CostReport::from_json("not json").is_err());
    }

    #[test]
    fn measure_weights_blocks_by_profile() {
        let m = Machine::sparc10();
        let f = AsmFunc {
            name: "f".into(),
            blocks: vec![
                AsmBlock {
                    instrs: vec![AsmInstr::Mov {
                        rd: Reg(0),
                        src: RegImm::Imm(1),
                    }],
                },
                AsmBlock {
                    instrs: vec![AsmInstr::Ld {
                        rd: Reg(0),
                        base: Reg(1),
                        off: RegImm::Imm(0),
                        width: 8,
                        signed: false,
                    }],
                },
            ],
            spill_count: 0,
        };
        let mut profile = Profile::default();
        profile.block_counts = vec![vec![1, 10]];
        let r = measure(&[f], &profile, &m);
        assert_eq!(r.cycles, m.alu_cost + 10 * m.load_cost);
        assert_eq!(r.size_bytes, 8);
    }
}
