//! Code generation: IR → SPARC-like assembly.
//!
//! Linear-scan register allocation over a machine's register budget (with
//! `%r0` reserved as the frame pointer and the two highest registers as
//! spill scratch), instruction selection with the two foldings real
//! compilers do and the paper's analysis section revolves around:
//!
//! * **address folding** — a single-use `add` feeding a load/store becomes
//!   the load's `[x+y]` addressing mode. A `KEEP_LIVE` result is never an
//!   `add`, so annotated addresses do *not* fold: that is the safe-mode
//!   `add; (empty asm); ldsb` sequence of the paper's Analysis section;
//! * **compare folding** — a single-use comparison feeding a branch
//!   becomes a fused `cmp; bcc`.

use crate::asm::*;
use crate::cost::Machine;
use cvm::ir::{BinIr, CallTarget, FuncIr, Instr, Operand, Temp};
use cvm::liveness::Liveness;
use std::collections::HashMap;

/// Where a temp lives after allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Loc {
    Reg(Reg),
    /// Frame offset of the spill slot.
    Spill(u32),
}

/// The frame-pointer register.
pub const FP: Reg = Reg(0);

/// Generates assembly for every function of a program.
pub fn codegen_program(prog: &cvm::ProgramIr, machine: &Machine) -> Vec<AsmFunc> {
    prog.funcs
        .iter()
        .map(|f| codegen_func(f, machine))
        .collect()
}

/// Generates assembly for one function.
pub fn codegen_func(func: &FuncIr, machine: &Machine) -> AsmFunc {
    let alloc = allocate(func, machine);
    let mut blocks = Vec::with_capacity(func.blocks.len());
    for (bi, b) in func.blocks.iter().enumerate() {
        blocks.push(emit_block(func, bi, b, &alloc));
    }
    AsmFunc {
        name: func.name.clone(),
        blocks,
        spill_count: alloc.spill_count,
    }
}

struct Allocation {
    locs: HashMap<Temp, Loc>,
    spill_count: u32,
    scratch: [Reg; 2],
}

/// Linear-scan allocation with move-coalescing hints.
fn allocate(func: &FuncIr, machine: &Machine) -> Allocation {
    let regs = machine.regs.max(4);
    let scratch = [Reg((regs - 2) as u8), Reg((regs - 1) as u8)];
    let allocatable: Vec<Reg> = (1..regs - 2).map(|i| Reg(i as u8)).collect();
    // Linear positions.
    let mut pos_of_block_start = Vec::with_capacity(func.blocks.len());
    let mut pos = 0u32;
    for b in &func.blocks {
        pos_of_block_start.push(pos);
        pos += b.instrs.len() as u32 + 1;
    }
    let total = pos;
    // Intervals from defs/uses plus block-boundary liveness.
    let lv = Liveness::compute(func);
    let mut start: HashMap<Temp, u32> = HashMap::new();
    let mut end: HashMap<Temp, u32> = HashMap::new();
    let touch = |t: Temp, p: u32, start: &mut HashMap<Temp, u32>, end: &mut HashMap<Temp, u32>| {
        start.entry(t).and_modify(|s| *s = (*s).min(p)).or_insert(p);
        end.entry(t).and_modify(|e| *e = (*e).max(p)).or_insert(p);
    };
    for t in &func.param_temps {
        touch(*t, 0, &mut start, &mut end);
    }
    let mut uses_buf = Vec::new();
    for (bi, b) in func.blocks.iter().enumerate() {
        let bstart = pos_of_block_start[bi];
        let bend = bstart + b.instrs.len() as u32;
        for t in lv.live_in[bi].iter() {
            touch(t, bstart, &mut start, &mut end);
        }
        for t in lv.live_out[bi].iter() {
            touch(t, bend, &mut start, &mut end);
        }
        for (ii, ins) in b.instrs.iter().enumerate() {
            let p = bstart + ii as u32;
            if let Some(d) = ins.dst() {
                touch(d, p, &mut start, &mut end);
            }
            uses_buf.clear();
            ins.uses(&mut uses_buf);
            for &u in &uses_buf {
                touch(u, p, &mut start, &mut end);
            }
        }
    }
    // Coalescing hints from Mov/KeepLive/CheckSame chains.
    let mut hints: HashMap<Temp, Temp> = HashMap::new();
    for b in &func.blocks {
        for ins in &b.instrs {
            match ins {
                Instr::Mov {
                    dst,
                    src: Operand::Temp(s),
                }
                | Instr::KeepLive {
                    dst,
                    value: Operand::Temp(s),
                    ..
                }
                | Instr::CheckSame {
                    dst,
                    value: Operand::Temp(s),
                    ..
                } => {
                    hints.insert(*dst, *s);
                }
                _ => {}
            }
        }
    }
    // Sort intervals by start.
    let mut intervals: Vec<(Temp, u32, u32)> =
        start.iter().map(|(&t, &s)| (t, s, end[&t])).collect();
    intervals.sort_by_key(|&(t, s, _)| (s, t));
    let mut active: Vec<(u32, Reg, Temp)> = Vec::new(); // (end, reg, temp)
    let mut free: Vec<Reg> = allocatable.clone();
    let mut locs: HashMap<Temp, Loc> = HashMap::new();
    let mut spill_count = 0;
    let mut next_spill_off = func.frame_size;
    let _ = total;
    for (t, s, e) in intervals {
        // Expire finished intervals. An interval ending exactly where the
        // next begins may share its register: the new temp's defining
        // instruction reads the old one before writing (rd == rs is fine),
        // and this is what lets Mov/KeepLive coalescing hints succeed.
        active.retain(|&(aend, reg, _)| {
            if aend <= s {
                free.push(reg);
                false
            } else {
                true
            }
        });
        // Prefer the hint register when available.
        let hinted = hints
            .get(&t)
            .and_then(|h| locs.get(h))
            .and_then(|l| match l {
                Loc::Reg(r) => Some(*r),
                Loc::Spill(_) => None,
            })
            .filter(|r| free.contains(r));
        let reg = match hinted {
            Some(r) => {
                free.retain(|x| *x != r);
                Some(r)
            }
            None => free.pop(),
        };
        match reg {
            Some(r) => {
                locs.insert(t, Loc::Reg(r));
                active.push((e, r, t));
            }
            None => {
                // Spill the interval that ends last (it or a current one).
                let (victim_idx, &(vend, vreg, vt)) = active
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, &(aend, _, _))| aend)
                    .expect("active set is non-empty when out of registers");
                if vend > e {
                    // Steal the victim's register.
                    locs.insert(vt, Loc::Spill(next_spill_off));
                    next_spill_off += 8;
                    spill_count += 1;
                    locs.insert(t, Loc::Reg(vreg));
                    active[victim_idx] = (e, vreg, t);
                } else {
                    locs.insert(t, Loc::Spill(next_spill_off));
                    next_spill_off += 8;
                    spill_count += 1;
                }
            }
        }
    }
    Allocation {
        locs,
        spill_count,
        scratch,
    }
}

struct Emitter<'a> {
    alloc: &'a Allocation,
    out: Vec<AsmInstr>,
}

impl Emitter<'_> {
    /// Materialises an operand into a register (reloading spills and
    /// constants into the given scratch register).
    fn use_op(&mut self, o: Operand, scratch_idx: usize) -> Reg {
        match o {
            Operand::Const(c) => {
                let r = self.alloc.scratch[scratch_idx];
                self.out.push(AsmInstr::SetImm { rd: r, value: c });
                r
            }
            Operand::Temp(t) => match self.alloc.locs.get(&t) {
                Some(Loc::Reg(r)) => *r,
                Some(Loc::Spill(off)) => {
                    let r = self.alloc.scratch[scratch_idx];
                    self.out.push(AsmInstr::Ld {
                        rd: r,
                        base: FP,
                        off: RegImm::Imm(*off as i64),
                        width: 8,
                        signed: false,
                    });
                    r
                }
                None => {
                    // A temp with no interval is dead everywhere; any
                    // register will do and the value is never read.
                    self.alloc.scratch[scratch_idx]
                }
            },
        }
    }

    /// Operand as reg-or-imm (immediates stay immediate when small).
    fn use_ri(&mut self, o: Operand, scratch_idx: usize) -> RegImm {
        match o {
            Operand::Const(c) if (-0x1000..=0xfff).contains(&c) => RegImm::Imm(c),
            other => RegImm::Reg(self.use_op(other, scratch_idx)),
        }
    }

    /// Register to compute a result into.
    fn def_reg(&mut self, t: Temp) -> Reg {
        match self.alloc.locs.get(&t) {
            Some(Loc::Reg(r)) => *r,
            _ => self.alloc.scratch[0],
        }
    }

    /// Stores a spilled destination back to its slot.
    fn finish_def(&mut self, t: Temp, r: Reg) {
        if let Some(Loc::Spill(off)) = self.alloc.locs.get(&t) {
            self.out.push(AsmInstr::St {
                rs: r,
                base: FP,
                off: RegImm::Imm(*off as i64),
                width: 8,
            });
        }
    }
}

fn bin_to_alu(op: BinIr) -> Option<AluOp> {
    Some(match op {
        BinIr::Add => AluOp::Add,
        BinIr::Sub => AluOp::Sub,
        BinIr::Mul => AluOp::Mul,
        BinIr::Div => AluOp::Div,
        BinIr::DivU => AluOp::DivU,
        BinIr::Rem => AluOp::Rem,
        BinIr::RemU => AluOp::RemU,
        BinIr::And => AluOp::And,
        BinIr::Or => AluOp::Or,
        BinIr::Xor => AluOp::Xor,
        BinIr::Shl => AluOp::Shl,
        BinIr::Sar => AluOp::Sar,
        BinIr::Shr => AluOp::Shr,
        _ => return None,
    })
}

fn bin_to_cond(op: BinIr) -> Option<Cond> {
    Some(match op {
        BinIr::CmpEq => Cond::Eq,
        BinIr::CmpNe => Cond::Ne,
        BinIr::CmpLt => Cond::Lt,
        BinIr::CmpLe => Cond::Le,
        BinIr::CmpGt => Cond::Gt,
        BinIr::CmpGe => Cond::Ge,
        BinIr::CmpLtU => Cond::LtU,
        BinIr::CmpLeU => Cond::LeU,
        BinIr::CmpGtU => Cond::GtU,
        BinIr::CmpGeU => Cond::GeU,
        _ => return None,
    })
}

/// Decides which instruction indices are folded into a consumer (address
/// adds into loads/stores, compares into branches) and therefore skipped.
fn fold_decisions(func: &FuncIr, bi: usize) -> HashMap<usize, usize> {
    // map: producer index -> consumer index
    let b = &func.blocks[bi];
    // Count uses of each temp across the whole function (single-use test).
    let mut uses: HashMap<Temp, usize> = HashMap::new();
    let mut buf = Vec::new();
    for blk in &func.blocks {
        for ins in &blk.instrs {
            buf.clear();
            ins.uses(&mut buf);
            for &t in &buf {
                *uses.entry(t).or_insert(0) += 1;
            }
        }
    }
    let mut folds = HashMap::new();
    for (ci, ins) in b.instrs.iter().enumerate() {
        let addr = match ins {
            Instr::Load {
                addr: Operand::Temp(t),
                ..
            } => Some(*t),
            Instr::Store {
                addr: Operand::Temp(t),
                ..
            } => Some(*t),
            Instr::Branch {
                cond: Operand::Temp(t),
                ..
            } => Some(*t),
            _ => None,
        };
        let Some(t) = addr else { continue };
        if uses.get(&t).copied().unwrap_or(0) != 1 {
            continue;
        }
        // Find the producer earlier in this block.
        let Some(pi) = b.instrs[..ci].iter().rposition(|p| p.dst() == Some(t)) else {
            continue;
        };
        let foldable = match (&b.instrs[pi], ins) {
            (Instr::Bin { op: BinIr::Add, .. }, Instr::Load { .. } | Instr::Store { .. }) => true,
            (Instr::Bin { op, .. }, Instr::Branch { .. }) => bin_to_cond(*op).is_some(),
            _ => false,
        };
        if !foldable {
            continue;
        }
        // The producer's operands must not be redefined in between.
        let mut ops = Vec::new();
        b.instrs[pi].uses(&mut ops);
        let clobbered = b.instrs[pi + 1..ci]
            .iter()
            .any(|mid| mid.dst().map(|d| ops.contains(&d)).unwrap_or(false));
        if clobbered {
            continue;
        }
        folds.insert(pi, ci);
    }
    folds
}

fn emit_block(func: &FuncIr, bi: usize, b: &cvm::ir::Block, alloc: &Allocation) -> AsmBlock {
    let folds = fold_decisions(func, bi);
    let folded_producers: HashMap<usize, usize> = folds.clone();
    let consumer_of: HashMap<usize, usize> = folds.iter().map(|(&p, &c)| (c, p)).collect();
    let mut e = Emitter {
        alloc,
        out: Vec::new(),
    };
    for (ii, ins) in b.instrs.iter().enumerate() {
        if folded_producers.contains_key(&ii) {
            continue; // folded into its consumer
        }
        match ins {
            Instr::Const { dst, value } => {
                let rd = e.def_reg(*dst);
                e.out.push(AsmInstr::SetImm { rd, value: *value });
                e.finish_def(*dst, rd);
            }
            Instr::Mov { dst, src } => {
                let rd = e.def_reg(*dst);
                let s = e.use_ri(*src, 1);
                if s != RegImm::Reg(rd) {
                    e.out.push(AsmInstr::Mov { rd, src: s });
                }
                e.finish_def(*dst, rd);
            }
            Instr::Bin { dst, op, a, b: rhs } => {
                if let Some(alu) = bin_to_alu(*op) {
                    let rs = e.use_op(*a, 0);
                    let op2 = e.use_ri(*rhs, 1);
                    let rd = e.def_reg(*dst);
                    e.out.push(AsmInstr::Alu {
                        op: alu,
                        rd,
                        rs,
                        op2,
                    });
                    e.finish_def(*dst, rd);
                } else {
                    let cond = bin_to_cond(*op).expect("compare op");
                    let ra = e.use_op(*a, 0);
                    let rb = e.use_ri(*rhs, 1);
                    let rd = e.def_reg(*dst);
                    e.out.push(AsmInstr::SetCc {
                        cond,
                        rd,
                        a: ra,
                        b: rb,
                    });
                    e.finish_def(*dst, rd);
                }
            }
            Instr::Load {
                dst,
                addr,
                width,
                signed,
            } => {
                let (base, off) = match consumer_of.get(&ii).map(|p| &b.instrs[*p]) {
                    Some(Instr::Bin { a, b: rhs, .. }) => {
                        let base = e.use_op(*a, 0);
                        let off = e.use_ri(*rhs, 1);
                        (base, off)
                    }
                    _ => (e.use_op(*addr, 0), RegImm::Imm(0)),
                };
                let rd = e.def_reg(*dst);
                e.out.push(AsmInstr::Ld {
                    rd,
                    base,
                    off,
                    width: *width,
                    signed: *signed,
                });
                e.finish_def(*dst, rd);
            }
            Instr::Store { addr, value, width } => {
                let (base, off) = match consumer_of.get(&ii).map(|p| &b.instrs[*p]) {
                    Some(Instr::Bin { a, b: rhs, .. }) => {
                        let base = e.use_op(*a, 0);
                        let off = e.use_ri(*rhs, 1);
                        (base, off)
                    }
                    _ => (e.use_op(*addr, 0), RegImm::Imm(0)),
                };
                let rs = e.use_op(*value, 1);
                e.out.push(AsmInstr::St {
                    rs,
                    base,
                    off,
                    width: *width,
                });
            }
            Instr::FrameAddr { dst, offset } => {
                let rd = e.def_reg(*dst);
                e.out.push(AsmInstr::Alu {
                    op: AluOp::Add,
                    rd,
                    rs: FP,
                    op2: RegImm::Imm(*offset as i64),
                });
                e.finish_def(*dst, rd);
            }
            Instr::MemCopy {
                dst_addr,
                src_addr,
                len,
            } => {
                let d = e.use_op(*dst_addr, 0);
                let s = e.use_op(*src_addr, 1);
                e.out.push(AsmInstr::BlockCopy {
                    dst: d,
                    src: s,
                    len: *len,
                });
            }
            Instr::Call {
                dst, target, args, ..
            } => {
                // Argument moves into the (conceptual) out registers.
                for (i, a) in args.iter().enumerate() {
                    let src = e.use_ri(*a, i % 2);
                    e.out.push(AsmInstr::Mov {
                        rd: e.alloc.scratch[0],
                        src,
                    });
                }
                let t = match target {
                    CallTarget::Func(_) => AsmCallTarget::Named(format!("fn{target:?}")),
                    CallTarget::Builtin(b) => AsmCallTarget::Runtime(builtin_name(*b)),
                    CallTarget::Indirect(o) => {
                        let r = e.use_op(*o, 0);
                        AsmCallTarget::Indirect(r)
                    }
                };
                e.out.push(AsmInstr::Call {
                    target: t,
                    args: args.len() as u8,
                });
                if let Some(d) = dst {
                    let rd = e.def_reg(*d);
                    e.out.push(AsmInstr::Mov {
                        rd,
                        src: RegImm::Reg(e.alloc.scratch[0]),
                    });
                    e.finish_def(*d, rd);
                }
            }
            Instr::KeepLive { dst, value, base } => {
                let v = e.use_op(*value, 0);
                let b_reg = base.map(|b| e.use_op(b, 1));
                // The paper's empty asm: the value must occupy the same
                // location as the result.
                let rd = e.def_reg(*dst);
                e.out.push(AsmInstr::KeepLive {
                    value: v,
                    base: b_reg,
                });
                if rd != v {
                    e.out.push(AsmInstr::Mov {
                        rd,
                        src: RegImm::Reg(v),
                    });
                }
                e.finish_def(*dst, rd);
            }
            Instr::CheckSame { dst, value, base } => {
                let v = e.use_op(*value, 0);
                let b_reg = e.use_op(*base, 1);
                e.out.push(AsmInstr::CheckSame {
                    value: v,
                    base: b_reg,
                });
                let rd = e.def_reg(*dst);
                if rd != v {
                    e.out.push(AsmInstr::Mov {
                        rd,
                        src: RegImm::Reg(v),
                    });
                }
                e.finish_def(*dst, rd);
            }
            Instr::Ret { value } => {
                if let Some(v) = value {
                    let src = e.use_ri(*v, 0);
                    e.out.push(AsmInstr::Mov {
                        rd: e.alloc.scratch[0],
                        src,
                    });
                }
                e.out.push(AsmInstr::Ret);
            }
            Instr::Jump { target } => {
                if target.0 as usize != bi + 1 {
                    e.out.push(AsmInstr::Ba { target: target.0 });
                }
            }
            Instr::Branch {
                cond,
                if_true,
                if_false,
            } => {
                match consumer_of.get(&ii).map(|p| &b.instrs[*p]) {
                    Some(Instr::Bin { op, a, b: rhs, .. }) => {
                        let c = bin_to_cond(*op).expect("fold checked");
                        let ra = e.use_op(*a, 0);
                        let rb = e.use_ri(*rhs, 1);
                        e.out.push(AsmInstr::Bcc {
                            cond: c,
                            a: ra,
                            b: rb,
                            target: if_true.0,
                        });
                    }
                    _ => {
                        let r = e.use_op(*cond, 0);
                        e.out.push(AsmInstr::Bcc {
                            cond: Cond::Ne,
                            a: r,
                            b: RegImm::Imm(0),
                            target: if_true.0,
                        });
                    }
                }
                if if_false.0 as usize != bi + 1 {
                    e.out.push(AsmInstr::Ba { target: if_false.0 });
                }
            }
        }
    }
    AsmBlock { instrs: e.out }
}

fn builtin_name(b: cfront::Builtin) -> &'static str {
    use cfront::Builtin::*;
    match b {
        Malloc => "GC_malloc",
        Calloc => "GC_calloc",
        Realloc => "GC_realloc",
        Free => "GC_free",
        Strlen => "strlen",
        Strcmp => "strcmp",
        Strncmp => "strncmp",
        Strcpy => "strcpy",
        Memcpy => "memcpy",
        Memset => "memset",
        Memcmp => "memcmp",
        Getchar => "getchar",
        Putchar => "putchar",
        Putstr => "putstr",
        Putint => "putint",
        Exit => "exit",
        Abort => "abort",
        GcCollect => "GC_gcollect",
        GcHeapSize => "GC_get_heap_size",
        GcSameObj => "GC_same_obj",
        GcPreIncr => "GC_pre_incr",
        GcPostIncr => "GC_post_incr",
        GcBase => "GC_base",
        KeepLiveFn => "GC_keep_live",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cvm::{compile, CompileOptions};

    fn gen(src: &str, opts: &CompileOptions) -> Vec<AsmFunc> {
        let prog = compile(src, opts).expect("compiles");
        codegen_program(&prog, &Machine::sparc10())
    }

    const PAPER_F: &str = "char f(char *x) { return x[1]; } int main(void) { return 0; }";

    #[test]
    fn baseline_folds_indexed_load() {
        // The paper's Analysis section: optimized code is a single
        // `ldsb [%o0+1]`.
        let funcs = gen(PAPER_F, &CompileOptions::optimized());
        let listing = funcs[0].listing();
        assert!(
            listing.contains("ldsb [") && listing.contains("+1]"),
            "expected indexed load in:\n{listing}"
        );
        let adds = funcs[0].blocks[0]
            .instrs
            .iter()
            .filter(|i| matches!(i, AsmInstr::Alu { op: AluOp::Add, .. }))
            .count();
        assert_eq!(adds, 0, "no separate add in baseline:\n{listing}");
    }

    #[test]
    fn safe_mode_forces_separate_add() {
        // add %o0,1,%g2 ; (empty asm) ; ldsb [%g2] — the paper's sequence.
        let funcs = gen(PAPER_F, &CompileOptions::optimized_safe());
        let listing = funcs[0].listing();
        assert!(listing.contains("keep_live"), "marker present:\n{listing}");
        let adds = funcs[0].blocks[0]
            .instrs
            .iter()
            .filter(|i| matches!(i, AsmInstr::Alu { op: AluOp::Add, .. }))
            .count();
        assert!(adds >= 1, "separate add required:\n{listing}");
        assert!(listing.contains("+0]"), "non-indexed load:\n{listing}");
    }

    #[test]
    fn safe_build_is_larger() {
        let base = gen(PAPER_F, &CompileOptions::optimized());
        let safe = gen(PAPER_F, &CompileOptions::optimized_safe());
        assert!(safe[0].size_bytes() > base[0].size_bytes());
    }

    #[test]
    fn compare_folds_into_branch() {
        let src = "int main(void) { int i; int s = 0; for (i = 0; i < 10; i++) s += i; return s; }";
        let funcs = gen(src, &CompileOptions::optimized());
        let listing = funcs[0].listing();
        assert!(listing.contains("bl "), "fused compare-branch:\n{listing}");
        assert!(
            !listing.contains("movbl"),
            "no SetCc for the loop test:\n{listing}"
        );
    }

    #[test]
    fn few_registers_cause_spills() {
        // Many simultaneously live values on a 6-register Pentium.
        // Values come from getchar() so the optimizer cannot fold them;
        // all stay live until the last expression.
        let src = r#"
            int main(void) {
                int a = getchar(); int b = getchar(); int c = getchar();
                int d = getchar(); int e = getchar(); int f = getchar();
                int g = getchar(); int h = getchar(); int i = getchar();
                int j = getchar();
                int s1 = a + b; int s2 = c + d; int s3 = e + f;
                int s4 = g + h; int s5 = i + j;
                return (a + b + c + d + e + f + g + h + i + j)
                     * (s1 + s2 + s3 + s4 + s5);
            }
        "#;
        let prog = compile(src, &CompileOptions::optimized()).unwrap();
        let sparc = codegen_func(&prog.funcs[prog.main], &Machine::sparc10());
        let pentium = codegen_func(&prog.funcs[prog.main], &Machine::pentium90());
        assert!(
            pentium.spill_count > sparc.spill_count,
            "pentium {} vs sparc {}",
            pentium.spill_count,
            sparc.spill_count
        );
    }

    #[test]
    fn debug_build_has_frame_traffic() {
        let src = "int main(void) { int x = 1; int y = 2; return x + y; }";
        let opt = gen(src, &CompileOptions::optimized());
        let dbg = gen(src, &CompileOptions::debug());
        let count_mem = |f: &AsmFunc| {
            f.blocks
                .iter()
                .flat_map(|b| &b.instrs)
                .filter(|i| matches!(i, AsmInstr::Ld { .. } | AsmInstr::St { .. }))
                .count()
        };
        assert!(count_mem(&dbg[0]) > count_mem(&opt[0]));
    }
}
