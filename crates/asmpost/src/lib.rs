//! # asmpost — SPARC-like codegen and the peephole postprocessor
//!
//! The final two stages of the paper's toolchain:
//!
//! * [`codegen`] — instruction selection and linear-scan register
//!   allocation onto a SPARC-like ISA, reproducing the Analysis section's
//!   central fact: a `KEEP_LIVE` barrier forfeits the indexed-load
//!   addressing mode (`add x,y,z; (empty asm); ld [z]` instead of
//!   `ld [x+y]`);
//! * [`peephole`] — the paper's three-pattern postprocessor (derived, in
//!   the paper, from a SPARC instruction scheduler) that removes most of
//!   that residual overhead while provably preserving `KEEP_LIVE`
//!   semantics;
//! * [`cost`] — cycle/code-size accounting that turns VM block profiles
//!   into the numbers in the paper's tables.

#![warn(missing_docs)]

pub mod asm;
pub mod codegen;
pub mod cost;
pub mod peephole;

pub use asm::{AsmBlock, AsmFunc, AsmInstr, Reg, RegImm};
pub use codegen::{codegen_func, codegen_program};
pub use cost::{measure, CostReport, Machine};
pub use peephole::{
    keep_live_bases_preserved, postprocess, postprocess_program, postprocess_program_traced,
    PeepholeStats,
};

#[cfg(test)]
mod postprocess_integration {
    use crate::peephole::{defined_before_use, keep_live_bases_preserved};
    use crate::{codegen_program, postprocess, Machine, Reg};
    use cvm::{compile, CompileOptions};

    /// Registers implicitly defined at function entry: the frame pointer
    /// plus every allocatable and scratch register (parameters arrive in
    /// allocated registers, and scratch is written before reads by
    /// construction — we only care that the *peephole* does not introduce
    /// NEW undefined reads relative to the input).
    fn entry_regs(machine: &Machine) -> Vec<Reg> {
        (0..machine.regs as u8).map(Reg).collect()
    }

    #[test]
    fn postprocessing_workload_asm_preserves_sanity() {
        let machine = Machine::sparc10();
        for w in workloads_srcs() {
            let prog = compile(w, &CompileOptions::optimized_safe()).expect("compiles");
            let funcs = codegen_program(&prog, &machine);
            for f in funcs {
                let mut post = f.clone();
                let pre_ok = defined_before_use(&f, &entry_regs(&machine));
                postprocess(&mut post);
                assert!(
                    keep_live_bases_preserved(&f, &post),
                    "{}: a KEEP_LIVE base changed",
                    f.name
                );
                if pre_ok {
                    assert!(
                        defined_before_use(&post, &entry_regs(&machine)),
                        "{}: peephole introduced an undefined read:\n{}",
                        f.name,
                        post.listing()
                    );
                }
                assert!(post.size_bytes() <= f.size_bytes(), "{}", f.name);
            }
        }
    }

    fn workloads_srcs() -> Vec<&'static str> {
        vec![
            "struct n { long v; struct n *next; };\n\
             long sum(struct n *h) { long s = 0; while (h) { s += h->v; h = h->next; } return s; }\n\
             int main(void) { return 0; }",
            "void copy(char *s, char *t) { char *p; char *q; p = s; q = t; while (*p++ = *q++); }\n\
             int main(void) { return 0; }",
            "char f(char *x, long i) { return x[i + 3]; } int main(void) { return 0; }",
        ]
    }
}
