//! The peephole postprocessor ("A Postprocessor" section).
//!
//! "It first performs a simple global, intraprocedural analysis that
//! allows us to identify possible uses of register values. It subsequently
//! looks for one of the following three patterns inside each basic block
//! and transforms them appropriately:
//!
//! 1. `add x,y,z; …; ld [z]`   →  `…; ld [x+y]`
//! 2. `mov x,z;   …; …z…`      →  `…; …x…`
//! 3. `add x,y,z; mov z,w`     →  `add x,y,w`
//!
//! … the important \[constraint\] is that the register z should have no
//! other uses. … The transformation could not apply if z were originally
//! mentioned as the second argument of a KEEP_LIVE."
//!
//! The "no other uses" condition is a *value*-level condition checked with
//! a global register liveness analysis (the paper's "simple global,
//! intraprocedural analysis"): the value in `z` must die at its single
//! consumer. `KEEP_LIVE` markers participate: a marker's base registers
//! are live (that is the marker's whole point) and block any rewrite that
//! would lose them — the paper's safety arguments (1)–(3) hold verbatim.

use crate::asm::{AsmFunc, AsmInstr, Reg, RegImm};
use gctrace::{Event, TraceHandle};
use std::collections::HashSet;

/// What the postprocessor did to one function.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PeepholeStats {
    /// Pattern 1 applications (load folding).
    pub loads_folded: usize,
    /// Pattern 2 applications (copy forwarding).
    pub movs_forwarded: usize,
    /// Pattern 3 applications (add/mov fusion).
    pub add_movs_fused: usize,
}

impl PeepholeStats {
    /// Total rewrites applied.
    pub fn total(&self) -> usize {
        self.loads_folded + self.movs_forwarded + self.add_movs_fused
    }

    fn merge(&mut self, other: PeepholeStats) {
        self.loads_folded += other.loads_folded;
        self.movs_forwarded += other.movs_forwarded;
        self.add_movs_fused += other.add_movs_fused;
    }

    /// Serializes the stats as a flat JSON object.
    pub fn to_json(&self) -> String {
        let mut w = gctrace::json::Writer::new();
        w.uint_field("loads_folded", self.loads_folded as u64);
        w.uint_field("movs_forwarded", self.movs_forwarded as u64);
        w.uint_field("add_movs_fused", self.add_movs_fused as u64);
        w.finish()
    }

    /// Parses stats previously written by [`PeepholeStats::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a message when the text is not a JSON object or a field is
    /// missing or mistyped.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let obj = gctrace::json::parse_object(text)?;
        let get = |key: &str| -> Result<usize, String> {
            obj.get(key)
                .and_then(|v| v.as_u64())
                .map(|v| v as usize)
                .ok_or_else(|| format!("missing or non-numeric field '{key}'"))
        };
        Ok(PeepholeStats {
            loads_folded: get("loads_folded")?,
            movs_forwarded: get("movs_forwarded")?,
            add_movs_fused: get("add_movs_fused")?,
        })
    }
}

/// Runs the postprocessor over a whole program.
pub fn postprocess_program(funcs: &mut [AsmFunc]) -> PeepholeStats {
    postprocess_program_traced(funcs, &TraceHandle::disabled())
}

/// [`postprocess_program`] with a trace: emits one
/// `("peephole", "function")` event per function whose code the
/// postprocessor changed, carrying the per-pattern rewrite counts and the
/// size delta.
pub fn postprocess_program_traced(funcs: &mut [AsmFunc], trace: &TraceHandle) -> PeepholeStats {
    let mut stats = PeepholeStats::default();
    for f in funcs {
        let size_before = f.size_bytes();
        let fs = postprocess(f);
        stats.merge(fs);
        if fs.total() > 0 {
            trace.emit(|| {
                Event::new("peephole", "function")
                    .field("func", f.name.as_str())
                    .field("loads_folded", fs.loads_folded)
                    .field("movs_forwarded", fs.movs_forwarded)
                    .field("add_movs_fused", fs.add_movs_fused)
                    .field("size_before", size_before)
                    .field("size_after", f.size_bytes())
            });
        }
    }
    stats
}

/// Runs the postprocessor over one function until no pattern applies.
pub fn postprocess(f: &mut AsmFunc) -> PeepholeStats {
    let mut stats = PeepholeStats::default();
    loop {
        let round = one_round(f);
        if round.total() == 0 {
            return stats;
        }
        stats.merge(round);
    }
}

/// Successor block indices of block `bi` (Bcc targets, Ba target, and the
/// fallthrough when the block does not end in `ba`/`ret`).
fn successors(f: &AsmFunc, bi: usize) -> Vec<usize> {
    let b = &f.blocks[bi];
    let mut out = Vec::new();
    for ins in &b.instrs {
        if let AsmInstr::Bcc { target, .. } = ins {
            out.push(*target as usize);
        }
    }
    match b.instrs.last() {
        Some(AsmInstr::Ba { target }) => out.push(*target as usize),
        Some(AsmInstr::Ret) => {}
        _ => {
            if bi + 1 < f.blocks.len() {
                out.push(bi + 1);
            }
        }
    }
    out.retain(|&s| s < f.blocks.len());
    out
}

/// Global register liveness over the assembly — the paper's "simple
/// global, intraprocedural analysis".
pub struct AsmLiveness {
    /// Registers live at each block entry.
    pub live_in: Vec<HashSet<Reg>>,
    live_out: Vec<HashSet<Reg>>,
}

impl AsmLiveness {
    /// Computes liveness for a function. `KEEP_LIVE` markers read both
    /// their value and base registers, so protected values stay live.
    pub fn compute(f: &AsmFunc) -> AsmLiveness {
        let nb = f.blocks.len();
        let mut live_in = vec![HashSet::new(); nb];
        let mut live_out = vec![HashSet::new(); nb];
        let mut changed = true;
        while changed {
            changed = false;
            for bi in (0..nb).rev() {
                let mut out: HashSet<Reg> = HashSet::new();
                for s in successors(f, bi) {
                    out.extend(live_in[s].iter().copied());
                }
                let mut cur = out.clone();
                for ins in f.blocks[bi].instrs.iter().rev() {
                    if let Some(d) = ins.writes() {
                        cur.remove(&d);
                    }
                    for r in ins.reads() {
                        cur.insert(r);
                    }
                }
                if out != live_out[bi] {
                    live_out[bi] = out;
                    changed = true;
                }
                if cur != live_in[bi] {
                    live_in[bi] = cur;
                    changed = true;
                }
            }
        }
        AsmLiveness { live_in, live_out }
    }

    /// Whether register `r` is live immediately *after* instruction `idx`
    /// of block `bi`.
    pub fn live_after(&self, f: &AsmFunc, bi: usize, idx: usize, r: Reg) -> bool {
        let b = &f.blocks[bi];
        let mut cur = self.live_out[bi].clone();
        for j in (idx + 1..b.instrs.len()).rev() {
            let ins = &b.instrs[j];
            if let Some(d) = ins.writes() {
                cur.remove(&d);
            }
            for x in ins.reads() {
                cur.insert(x);
            }
        }
        cur.contains(&r)
    }
}

fn one_round(f: &mut AsmFunc) -> PeepholeStats {
    let mut stats = PeepholeStats::default();
    for bi in 0..f.blocks.len() {
        let lv = AsmLiveness::compute(f);
        stats.merge(pattern1_fold_load(f, bi, &lv));
        let lv = AsmLiveness::compute(f);
        stats.merge(pattern3_fuse_add_mov(f, bi, &lv));
        let lv = AsmLiveness::compute(f);
        stats.merge(pattern2_forward_mov(f, bi, &lv));
    }
    stats
}

/// Whether any instruction in `instrs` writes `r`.
fn writes_reg(instrs: &[AsmInstr], r: Reg) -> bool {
    instrs.iter().any(|i| i.writes() == Some(r))
}

/// Whether any instruction in `instrs` reads `r`, ignoring `KEEP_LIVE`
/// *value* mentions (those are retargeted when a rewrite applies) but
/// counting marker *bases* (the paper's constraint).
fn reads_reg_strict(instrs: &[AsmInstr], r: Reg) -> bool {
    instrs.iter().any(|i| match i {
        AsmInstr::KeepLive { base, .. } => *base == Some(r),
        other => other.reads().contains(&r),
    })
}

/// Whether `r` is mentioned as a `KEEP_LIVE` base anywhere in `instrs`.
fn is_marker_base(instrs: &[AsmInstr], r: Reg) -> bool {
    instrs
        .iter()
        .any(|i| matches!(i, AsmInstr::KeepLive { base: Some(b), .. } if *b == r))
}

/// Pattern 1: `add x,y,z; …; ld/st [z+0]` → indexed access. Valid when the
/// value in `z` dies at the access (either the access overwrites `z` or
/// `z` is dead afterwards), nothing between reads `z` (marker values are
/// retargeted), `x`/`y` survive untouched, and `z` is not a marker base in
/// the region.
fn pattern1_fold_load(f: &mut AsmFunc, bi: usize, lv: &AsmLiveness) -> PeepholeStats {
    let mut stats = PeepholeStats::default();
    let mut i = 0;
    while i < f.blocks[bi].instrs.len() {
        let AsmInstr::Alu {
            op: crate::asm::AluOp::Add,
            rd: z,
            rs: x,
            op2,
        } = f.blocks[bi].instrs[i]
        else {
            i += 1;
            continue;
        };
        // Note z == x (or z == y) is *allowed*: deleting the add leaves the
        // old source value in the register, and the folded `ld [x+y]`
        // recombines it — the same value reaches memory. The safety checks
        // below (no reads of z in between, z dead after the access) make
        // this sound.
        // Find the consuming memory access.
        let mut consumer = None;
        {
            let b = &f.blocks[bi];
            for j in i + 1..b.instrs.len() {
                match &b.instrs[j] {
                    AsmInstr::Ld {
                        base,
                        off: RegImm::Imm(0),
                        ..
                    } if *base == z => {
                        consumer = Some(j);
                        break;
                    }
                    AsmInstr::St {
                        base,
                        off: RegImm::Imm(0),
                        rs,
                        ..
                    } if *base == z && *rs != z => {
                        consumer = Some(j);
                        break;
                    }
                    other => {
                        if other.writes() == Some(z) {
                            break;
                        }
                        if reads_reg_strict(std::slice::from_ref(other), z) {
                            break;
                        }
                    }
                }
            }
        }
        let Some(j) = consumer else {
            i += 1;
            continue;
        };
        let b = &f.blocks[bi];
        let between = &b.instrs[i + 1..j];
        // Safety constraints, per the paper's argument (1).
        let x_ok = !writes_reg(between, x);
        let y_ok = match op2 {
            RegImm::Reg(y) => !writes_reg(between, y),
            RegImm::Imm(_) => true,
        };
        let z_not_base = !is_marker_base(&b.instrs[i..=j], z);
        // The value in z must die at the access.
        let z_dies = b.instrs[j].writes() == Some(z) || !lv.live_after(f, bi, j, z);
        if !x_ok || !y_ok || !z_not_base || !z_dies {
            i += 1;
            continue;
        }
        // Apply: rewrite the access, retarget markers whose value is z to
        // the base x (their protected pointer is now represented by x+y),
        // and delete the add.
        let b = &mut f.blocks[bi];
        match &mut b.instrs[j] {
            AsmInstr::Ld { base, off, .. } | AsmInstr::St { base, off, .. } => {
                *base = x;
                *off = op2;
            }
            _ => unreachable!("consumer is a memory access"),
        }
        for mid in &mut b.instrs[i + 1..j] {
            if let AsmInstr::KeepLive { value, .. } = mid {
                if *value == z {
                    *value = x;
                }
            }
        }
        b.instrs.remove(i);
        stats.loads_folded += 1;
        return stats; // liveness is stale; the driver loops
    }
    stats
}

/// Pattern 3: `add x,y,z; mov z,w` → `add x,y,w` when the value in `z`
/// dies at the mov and `z` is not a marker base in between.
fn pattern3_fuse_add_mov(f: &mut AsmFunc, bi: usize, lv: &AsmLiveness) -> PeepholeStats {
    let mut stats = PeepholeStats::default();
    let mut i = 0;
    while i + 1 < f.blocks[bi].instrs.len() {
        let AsmInstr::Alu { op, rd: z, rs, op2 } = f.blocks[bi].instrs[i] else {
            i += 1;
            continue;
        };
        let AsmInstr::Mov {
            rd: w,
            src: RegImm::Reg(src),
        } = f.blocks[bi].instrs[i + 1]
        else {
            i += 1;
            continue;
        };
        let z_dies = !lv.live_after(f, bi, i + 1, z);
        if src != z
            || w == z
            || w == rs
            || op2 == RegImm::Reg(w)
            || !z_dies
            || is_marker_base(&f.blocks[bi].instrs[i..=i + 1], z)
        {
            i += 1;
            continue;
        }
        let b = &mut f.blocks[bi];
        b.instrs[i] = AsmInstr::Alu { op, rd: w, rs, op2 };
        b.instrs.remove(i + 1);
        stats.add_movs_fused += 1;
        return stats;
    }
    stats
}

/// Pattern 2: `mov x,z; …z…` → rewrite the uses of `z` to `x` while both
/// registers stay unmodified; delete the mov when the value in `z` dies
/// within the rewritten region.
fn pattern2_forward_mov(f: &mut AsmFunc, bi: usize, lv: &AsmLiveness) -> PeepholeStats {
    let mut stats = PeepholeStats::default();
    let mut i = 0;
    while i < f.blocks[bi].instrs.len() {
        let AsmInstr::Mov {
            rd: z,
            src: RegImm::Reg(x),
        } = f.blocks[bi].instrs[i]
        else {
            i += 1;
            continue;
        };
        if z == x || is_marker_base(&f.blocks[bi].instrs, z) {
            i += 1;
            continue;
        }
        // Scan forward: the region ends when x or z is redefined.
        let b = &f.blocks[bi];
        let mut end = b.instrs.len();
        for j in i + 1..b.instrs.len() {
            let ins = &b.instrs[j];
            if ins.writes() == Some(x) || ins.writes() == Some(z) {
                end = j;
                break;
            }
        }
        // z must be dead at the end of the region (either redefined there
        // or not live past it).
        let z_dead_after = if end < b.instrs.len() {
            b.instrs[end].writes() == Some(z)
                || !region_reads(&b.instrs[end..], z)
                    && !lv.live_after(f, bi, b.instrs.len() - 1, z)
        } else {
            !lv.live_after(f, bi, b.instrs.len() - 1, z)
        };
        let any_use = region_reads(&f.blocks[bi].instrs[i + 1..end], z);
        if !z_dead_after || !any_use {
            i += 1;
            continue;
        }
        let b = &mut f.blocks[bi];
        for j in i + 1..end {
            replace_reads(&mut b.instrs[j], z, x);
        }
        b.instrs.remove(i);
        stats.movs_forwarded += 1;
        return stats;
    }
    stats
}

fn region_reads(instrs: &[AsmInstr], r: Reg) -> bool {
    instrs.iter().any(|i| i.reads().contains(&r))
}

fn replace_reads(ins: &mut AsmInstr, from: Reg, to: Reg) {
    let fix = |r: &mut Reg| {
        if *r == from {
            *r = to;
        }
    };
    let fix_ri = |ri: &mut RegImm| {
        if let RegImm::Reg(r) = ri {
            if *r == from {
                *r = to;
            }
        }
    };
    match ins {
        AsmInstr::Alu { rs, op2, .. } => {
            fix(rs);
            fix_ri(op2);
        }
        AsmInstr::Mov { src, .. } => fix_ri(src),
        AsmInstr::SetImm { .. } => {}
        AsmInstr::Ld { base, off, .. } => {
            fix(base);
            fix_ri(off);
        }
        AsmInstr::St { rs, base, off, .. } => {
            fix(rs);
            fix(base);
            fix_ri(off);
        }
        AsmInstr::SetCc { a, b, .. } | AsmInstr::Bcc { a, b, .. } => {
            fix(a);
            fix_ri(b);
        }
        AsmInstr::Ba { .. } | AsmInstr::Ret => {}
        AsmInstr::Call { target, .. } => {
            if let crate::asm::AsmCallTarget::Indirect(r) = target {
                fix(r);
            }
        }
        AsmInstr::KeepLive { value, base } => {
            fix(value);
            if let Some(b) = base {
                fix(b);
            }
        }
        AsmInstr::CheckSame { value, base } => {
            fix(value);
            fix(base);
        }
        AsmInstr::BlockCopy { dst, src, .. } => {
            fix(dst);
            fix(src);
        }
    }
}

/// Checks that every `KEEP_LIVE` marker's base register set is unchanged
/// between two versions of a function — the postprocessor "cannot
/// invalidate KEEP_LIVE semantics".
pub fn keep_live_bases_preserved(before: &AsmFunc, after: &AsmFunc) -> bool {
    let collect = |f: &AsmFunc| -> Vec<Option<Reg>> {
        f.blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .filter_map(|i| match i {
                AsmInstr::KeepLive { base, .. } => Some(*base),
                _ => None,
            })
            .collect()
    };
    collect(before) == collect(after)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::{AluOp, AsmBlock};

    fn block(instrs: Vec<AsmInstr>) -> AsmFunc {
        AsmFunc {
            name: "t".into(),
            blocks: vec![AsmBlock { instrs }],
            spill_count: 0,
        }
    }

    fn add(z: u8, x: u8, y: RegImm) -> AsmInstr {
        AsmInstr::Alu {
            op: AluOp::Add,
            rd: Reg(z),
            rs: Reg(x),
            op2: y,
        }
    }

    fn ld(rd: u8, base: u8) -> AsmInstr {
        AsmInstr::Ld {
            rd: Reg(rd),
            base: Reg(base),
            off: RegImm::Imm(0),
            width: 8,
            signed: false,
        }
    }

    #[test]
    fn pattern1_folds_the_papers_sequence() {
        // add %o0,1,%g2 ; ! keep_live ; ldsb [%g2] → ldsb [%o0+1]
        let mut f = block(vec![
            add(2, 1, RegImm::Imm(1)),
            AsmInstr::KeepLive {
                value: Reg(2),
                base: Some(Reg(1)),
            },
            ld(3, 2),
            AsmInstr::Ret,
        ]);
        let stats = postprocess(&mut f);
        assert_eq!(stats.loads_folded, 1);
        let listing = f.listing();
        assert!(listing.contains("[%r1+1]"), "{listing}");
        assert!(listing.contains("keep_live"), "marker survives: {listing}");
    }

    #[test]
    fn pattern1_folds_with_register_reuse() {
        // Coalesced form: add r1,r2,r1 ; keep_live r1 ; ld [r1+0],r1 — the
        // value in r1 dies at the load; deleting the add leaves old r1,
        // and ld [r1+r2] recomputes the same address.
        let mut f = block(vec![
            add(1, 1, RegImm::Reg(Reg(2))),
            AsmInstr::KeepLive {
                value: Reg(1),
                base: Some(Reg(3)),
            },
            ld(1, 1),
            AsmInstr::Ret,
        ]);
        let stats = postprocess(&mut f);
        assert_eq!(stats.loads_folded, 1, "{}", f.listing());
        assert!(f.listing().contains("[%r1+%r2]"), "{}", f.listing());
        // Distinct registers fold too.
        let mut f = block(vec![
            add(4, 1, RegImm::Reg(Reg(2))),
            AsmInstr::KeepLive {
                value: Reg(4),
                base: Some(Reg(3)),
            },
            ld(4, 4),
            AsmInstr::Ret,
        ]);
        let stats = postprocess(&mut f);
        assert_eq!(stats.loads_folded, 1);
        assert!(f.listing().contains("[%r1+%r2]"), "{}", f.listing());
    }

    #[test]
    fn pattern1_refuses_protected_base() {
        // z is itself a KEEP_LIVE base: must not fold.
        let mut f = block(vec![
            add(2, 1, RegImm::Imm(1)),
            AsmInstr::KeepLive {
                value: Reg(4),
                base: Some(Reg(2)),
            },
            ld(3, 2),
            AsmInstr::Ret,
        ]);
        let before = f.clone();
        let stats = postprocess(&mut f);
        assert_eq!(stats.loads_folded, 0);
        assert_eq!(f, before);
    }

    #[test]
    fn pattern1_refuses_when_x_redefined() {
        let mut f = block(vec![
            add(2, 1, RegImm::Imm(1)),
            AsmInstr::SetImm {
                rd: Reg(1),
                value: 0,
            }, // clobbers x
            ld(3, 2),
            AsmInstr::Ret,
        ]);
        let stats = postprocess(&mut f);
        assert_eq!(stats.loads_folded, 0);
    }

    #[test]
    fn pattern1_refuses_when_z_live_after() {
        let mut f = block(vec![
            add(2, 1, RegImm::Imm(1)),
            ld(3, 2),
            AsmInstr::Mov {
                rd: Reg(5),
                src: RegImm::Reg(Reg(2)),
            }, // z read later
            AsmInstr::Ret,
        ]);
        let stats = postprocess(&mut f);
        assert_eq!(stats.loads_folded, 0);
    }

    #[test]
    fn pattern3_fuses_add_mov() {
        let mut f = block(vec![
            add(2, 1, RegImm::Reg(Reg(4))),
            AsmInstr::Mov {
                rd: Reg(5),
                src: RegImm::Reg(Reg(2)),
            },
            AsmInstr::St {
                rs: Reg(5),
                base: Reg(6),
                off: RegImm::Imm(0),
                width: 8,
            },
            AsmInstr::Ret,
        ]);
        let stats = postprocess(&mut f);
        assert!(stats.add_movs_fused >= 1);
        assert!(matches!(
            f.blocks[0].instrs[0],
            AsmInstr::Alu { rd: Reg(5), .. }
        ));
    }

    #[test]
    fn pattern2_forwards_copies() {
        let mut f = block(vec![
            AsmInstr::Mov {
                rd: Reg(2),
                src: RegImm::Reg(Reg(1)),
            },
            AsmInstr::Alu {
                op: AluOp::Add,
                rd: Reg(3),
                rs: Reg(2),
                op2: RegImm::Imm(4),
            },
            AsmInstr::Ret,
        ]);
        let stats = postprocess(&mut f);
        assert_eq!(stats.movs_forwarded, 1);
        assert!(matches!(
            f.blocks[0].instrs[0],
            AsmInstr::Alu { rs: Reg(1), .. }
        ));
    }

    #[test]
    fn pattern2_keeps_mov_when_x_clobbered() {
        let mut f = block(vec![
            AsmInstr::Mov {
                rd: Reg(2),
                src: RegImm::Reg(Reg(1)),
            },
            AsmInstr::SetImm {
                rd: Reg(1),
                value: 9,
            },
            AsmInstr::Alu {
                op: AluOp::Add,
                rd: Reg(3),
                rs: Reg(2),
                op2: RegImm::Imm(4),
            },
            AsmInstr::Ret,
        ]);
        let stats = postprocess(&mut f);
        assert_eq!(
            stats.movs_forwarded, 0,
            "z used after x changed: keep the mov"
        );
    }

    #[test]
    fn postprocess_reduces_size_and_preserves_markers() {
        let mut f = block(vec![
            add(2, 1, RegImm::Imm(8)),
            AsmInstr::KeepLive {
                value: Reg(2),
                base: Some(Reg(1)),
            },
            ld(3, 2),
            AsmInstr::Ret,
        ]);
        let before = f.clone();
        let before_size = f.size_bytes();
        postprocess(&mut f);
        assert!(f.size_bytes() < before_size);
        assert!(keep_live_bases_preserved(&before, &f));
    }

    #[test]
    fn peephole_stats_json_round_trips() {
        let stats = PeepholeStats {
            loads_folded: 3,
            movs_forwarded: 14,
            add_movs_fused: 1,
        };
        let text = stats.to_json();
        let back = PeepholeStats::from_json(&text).expect("valid json");
        assert_eq!(back, stats);
        // Shape: exactly the three counter fields, all numeric.
        let obj = gctrace::json::parse_object(&text).unwrap();
        assert_eq!(obj.len(), 3, "{text}");
        assert!(obj.values().all(|v| v.as_u64().is_some()), "{text}");
        assert!(PeepholeStats::from_json("{\"loads_folded\":1}").is_err());
    }

    #[test]
    fn traced_postprocess_reports_per_function_rewrites() {
        let mut f = block(vec![
            add(2, 1, RegImm::Imm(8)),
            AsmInstr::KeepLive {
                value: Reg(2),
                base: Some(Reg(1)),
            },
            ld(3, 2),
            AsmInstr::Ret,
        ]);
        let (trace, sink) = TraceHandle::memory();
        let stats = postprocess_program_traced(std::slice::from_mut(&mut f), &trace);
        assert_eq!(stats.loads_folded, 1);
        let events = sink.snapshot();
        assert_eq!(events.len(), 1, "one changed function, one event");
        let e = &events[0];
        assert_eq!((e.stage, e.kind), ("peephole", "function"));
        assert_eq!(e.get("func"), Some(&gctrace::Value::Str("t".into())));
        assert_eq!(e.get("loads_folded"), Some(&gctrace::Value::UInt(1)));
        let before = match e.get("size_before") {
            Some(gctrace::Value::UInt(v)) => *v,
            other => panic!("size_before missing: {other:?}"),
        };
        let after = match e.get("size_after") {
            Some(gctrace::Value::UInt(v)) => *v,
            other => panic!("size_after missing: {other:?}"),
        };
        assert!(after < before, "folding shrank the code");
        // Untouched functions stay silent.
        let mut quiet = block(vec![AsmInstr::Ret]);
        let (trace, sink) = TraceHandle::memory();
        postprocess_program_traced(std::slice::from_mut(&mut quiet), &trace);
        assert!(sink.is_empty());
    }

    #[test]
    fn liveness_respects_branches() {
        // r1 live into the branch target.
        let f = AsmFunc {
            name: "t".into(),
            blocks: vec![
                AsmBlock {
                    instrs: vec![
                        AsmInstr::SetImm {
                            rd: Reg(1),
                            value: 5,
                        },
                        AsmInstr::Bcc {
                            cond: crate::asm::Cond::Ne,
                            a: Reg(2),
                            b: RegImm::Imm(0),
                            target: 1,
                        },
                    ],
                },
                AsmBlock {
                    instrs: vec![
                        AsmInstr::Mov {
                            rd: Reg(3),
                            src: RegImm::Reg(Reg(1)),
                        },
                        AsmInstr::Ret,
                    ],
                },
            ],
            spill_count: 0,
        };
        let lv = AsmLiveness::compute(&f);
        assert!(lv.live_in[1].contains(&Reg(1)));
        assert!(lv.live_after(&f, 0, 0, Reg(1)));
    }
}

/// Def-before-use sanity check over a function's assembly: every register
/// read must be preceded by a write on every path (parameters and the
/// frame pointer are implicitly defined). Used by tests to prove the
/// postprocessor never manufactures reads of undefined registers.
pub fn defined_before_use(f: &AsmFunc, predefined: &[Reg]) -> bool {
    use std::collections::HashSet;
    // Forward dataflow: set of definitely-defined registers per block entry.
    let nb = f.blocks.len();
    let all: HashSet<Reg> = (0..=255u8).map(Reg).collect();
    let mut defined_in: Vec<HashSet<Reg>> = vec![all; nb];
    defined_in[0] = predefined.iter().copied().collect();
    let mut changed = true;
    while changed {
        changed = false;
        for bi in 0..nb {
            let mut cur = defined_in[bi].clone();
            for ins in &f.blocks[bi].instrs {
                if let Some(d) = ins.writes() {
                    cur.insert(d);
                }
            }
            for s in successors(f, bi) {
                let merged: HashSet<Reg> = defined_in[s].intersection(&cur).copied().collect();
                if merged != defined_in[s] {
                    defined_in[s] = merged;
                    changed = true;
                }
            }
        }
    }
    // Check every read.
    for (bi, entry) in defined_in.iter().enumerate() {
        let mut cur = entry.clone();
        for ins in &f.blocks[bi].instrs {
            for r in ins.reads() {
                if !cur.contains(&r) {
                    return false;
                }
            }
            if let Some(d) = ins.writes() {
                cur.insert(d);
            }
        }
    }
    true
}
