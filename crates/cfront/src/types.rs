//! The C-subset type representation and record (struct/union) layout.
//!
//! Sizes follow an LP64-style model: `char` = 1, `int`/`unsigned` = 4,
//! `long`/`unsigned long` = 8, pointers = 8. There is no floating point in
//! the subset (none of the paper's measured workload behaviour depends on
//! it; see DESIGN.md).

use std::fmt;

/// Index of a struct/union definition in a [`TypeTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RecordId(pub u32);

/// A C type in the subset.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Type {
    /// `void` — only valid behind a pointer or as a return type.
    Void,
    /// `char` (signed, 1 byte).
    Char,
    /// `int` (4 bytes, signed).
    Int,
    /// `unsigned int`.
    UInt,
    /// `long` (8 bytes, signed).
    Long,
    /// `unsigned long`.
    ULong,
    /// Pointer to a pointee type.
    Ptr(Box<Type>),
    /// Array with element type and optional length (`None` for `[]`).
    Array(Box<Type>, Option<u64>),
    /// Struct or union, by table index.
    Record(RecordId),
    /// Function type (only meaningful behind a pointer or as a declaration).
    Func(Box<FuncType>),
}

/// Signature portion of a function type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FuncType {
    /// Return type.
    pub ret: Type,
    /// Parameter types, after array-to-pointer adjustment.
    pub params: Vec<Type>,
    /// Whether the function is variadic (`...`).
    pub varargs: bool,
}

impl Type {
    /// Convenience constructor for a pointer to `self`.
    pub fn ptr_to(self) -> Type {
        Type::Ptr(Box::new(self))
    }

    /// Whether this is any pointer type (including decayed arrays are *not*
    /// pointers until decay happens).
    pub fn is_ptr(&self) -> bool {
        matches!(self, Type::Ptr(_))
    }

    /// Whether this is an integer type.
    pub fn is_integer(&self) -> bool {
        matches!(
            self,
            Type::Char | Type::Int | Type::UInt | Type::Long | Type::ULong
        )
    }

    /// Whether the type is an array.
    pub fn is_array(&self) -> bool {
        matches!(self, Type::Array(..))
    }

    /// Whether the integer type is unsigned.
    pub fn is_unsigned(&self) -> bool {
        matches!(self, Type::UInt | Type::ULong)
    }

    /// Pointee type for pointers, element type for arrays.
    pub fn pointee(&self) -> Option<&Type> {
        match self {
            Type::Ptr(inner) => Some(inner),
            Type::Array(inner, _) => Some(inner),
            _ => None,
        }
    }

    /// The type after C's usual rvalue conversions: arrays decay to
    /// pointers to their element type, functions to function pointers.
    pub fn decayed(&self) -> Type {
        match self {
            Type::Array(elem, _) => Type::Ptr(elem.clone()),
            Type::Func(_) => Type::Ptr(Box::new(self.clone())),
            other => other.clone(),
        }
    }

    /// Size in bytes; arrays of unknown length and incomplete records
    /// return `None`.
    pub fn size(&self, table: &TypeTable) -> Option<u64> {
        Some(match self {
            Type::Void => return None,
            Type::Char => 1,
            Type::Int | Type::UInt => 4,
            Type::Long | Type::ULong | Type::Ptr(_) => 8,
            Type::Array(elem, Some(n)) => elem.size(table)?.checked_mul(*n)?,
            Type::Array(_, None) => return None,
            Type::Record(id) => {
                let rec = table.record(*id);
                if !rec.complete {
                    return None;
                }
                rec.size
            }
            Type::Func(_) => return None,
        })
    }

    /// Alignment in bytes.
    pub fn align(&self, table: &TypeTable) -> u64 {
        match self {
            Type::Char => 1,
            Type::Int | Type::UInt => 4,
            Type::Long | Type::ULong | Type::Ptr(_) => 8,
            Type::Array(elem, _) => elem.align(table),
            Type::Record(id) => table.record(*id).align.max(1),
            Type::Void | Type::Func(_) => 1,
        }
    }

    /// Renders the type for diagnostics using record names from `table`.
    pub fn display<'a>(&'a self, table: &'a TypeTable) -> TypeDisplay<'a> {
        TypeDisplay { ty: self, table }
    }
}

/// Helper returned by [`Type::display`].
#[derive(Debug)]
pub struct TypeDisplay<'a> {
    ty: &'a Type,
    table: &'a TypeTable,
}

impl fmt::Display for TypeDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.ty {
            Type::Void => write!(f, "void"),
            Type::Char => write!(f, "char"),
            Type::Int => write!(f, "int"),
            Type::UInt => write!(f, "unsigned"),
            Type::Long => write!(f, "long"),
            Type::ULong => write!(f, "unsigned long"),
            Type::Ptr(inner) => write!(f, "{} *", inner.display(self.table)),
            Type::Array(inner, Some(n)) => {
                write!(f, "{} [{}]", inner.display(self.table), n)
            }
            Type::Array(inner, None) => write!(f, "{} []", inner.display(self.table)),
            Type::Record(id) => {
                let rec = self.table.record(*id);
                let kw = if rec.is_union { "union" } else { "struct" };
                match &rec.tag {
                    Some(tag) => write!(f, "{kw} {tag}"),
                    None => write!(f, "{kw} <anon#{}>", id.0),
                }
            }
            Type::Func(ft) => {
                write!(f, "{} (", ft.ret.display(self.table))?;
                for (i, p) in ft.params.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{}", p.display(self.table))?;
                }
                if ft.varargs {
                    if !ft.params.is_empty() {
                        write!(f, ", ")?;
                    }
                    write!(f, "...")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// One field of a struct or union.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Field name.
    pub name: String,
    /// Field type.
    pub ty: Type,
    /// Byte offset from the start of the record (0 for all union fields).
    pub offset: u64,
}

/// A struct or union definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordDef {
    /// Tag name, if the record was declared with one.
    pub tag: Option<String>,
    /// Whether this is a `union` rather than a `struct`.
    pub is_union: bool,
    /// Laid-out fields (empty while incomplete).
    pub fields: Vec<Field>,
    /// Total size in bytes including tail padding.
    pub size: u64,
    /// Alignment in bytes.
    pub align: u64,
    /// Whether the body has been seen.
    pub complete: bool,
}

impl RecordDef {
    /// Looks up a field by name.
    pub fn field(&self, name: &str) -> Option<&Field> {
        self.fields.iter().find(|f| f.name == name)
    }
}

/// Interning table for record definitions.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TypeTable {
    records: Vec<RecordDef>,
}

impl TypeTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a new (possibly incomplete) record and returns its id.
    pub fn add_record(&mut self, rec: RecordDef) -> RecordId {
        let id = RecordId(u32::try_from(self.records.len()).expect("record count fits u32"));
        self.records.push(rec);
        id
    }

    /// Immutable access to a record definition.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this table.
    pub fn record(&self, id: RecordId) -> &RecordDef {
        &self.records[id.0 as usize]
    }

    /// Mutable access to a record definition (used to complete forward
    /// declarations).
    pub fn record_mut(&mut self, id: RecordId) -> &mut RecordDef {
        &mut self.records[id.0 as usize]
    }

    /// Number of records defined.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether no records have been defined.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Lays out `fields` (names and types) as a struct or union body and
    /// completes record `id` with the result.
    pub fn complete_record(&mut self, id: RecordId, fields: Vec<(String, Type)>) {
        let is_union = self.record(id).is_union;
        let mut laid = Vec::with_capacity(fields.len());
        let mut offset: u64 = 0;
        let mut align: u64 = 1;
        let mut size: u64 = 0;
        for (name, ty) in fields {
            let fa = ty.align(self);
            let fs = ty.size(self).unwrap_or(0);
            align = align.max(fa);
            let field_offset = if is_union {
                0
            } else {
                offset = round_up(offset, fa);
                let o = offset;
                offset += fs;
                o
            };
            if is_union {
                size = size.max(fs);
            }
            laid.push(Field {
                name,
                ty,
                offset: field_offset,
            });
        }
        if !is_union {
            size = offset;
        }
        size = round_up(size.max(1), align);
        let rec = self.record_mut(id);
        rec.fields = laid;
        rec.size = size;
        rec.align = align;
        rec.complete = true;
    }
}

fn round_up(v: u64, align: u64) -> u64 {
    debug_assert!(align.is_power_of_two());
    (v + align - 1) & !(align - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_sizes() {
        let t = TypeTable::new();
        assert_eq!(Type::Char.size(&t), Some(1));
        assert_eq!(Type::Int.size(&t), Some(4));
        assert_eq!(Type::Long.size(&t), Some(8));
        assert_eq!(Type::Int.ptr_to().size(&t), Some(8));
        assert_eq!(Type::Void.size(&t), None);
    }

    #[test]
    fn array_size_multiplies() {
        let t = TypeTable::new();
        let a = Type::Array(Box::new(Type::Int), Some(10));
        assert_eq!(a.size(&t), Some(40));
        let unsized_a = Type::Array(Box::new(Type::Int), None);
        assert_eq!(unsized_a.size(&t), None);
    }

    #[test]
    fn struct_layout_pads_fields() {
        let mut t = TypeTable::new();
        let id = t.add_record(RecordDef {
            tag: Some("s".into()),
            is_union: false,
            fields: vec![],
            size: 0,
            align: 1,
            complete: false,
        });
        t.complete_record(
            id,
            vec![
                ("c".into(), Type::Char),
                ("p".into(), Type::Char.ptr_to()),
                ("i".into(), Type::Int),
            ],
        );
        let rec = t.record(id);
        assert_eq!(rec.field("c").unwrap().offset, 0);
        assert_eq!(rec.field("p").unwrap().offset, 8);
        assert_eq!(rec.field("i").unwrap().offset, 16);
        assert_eq!(rec.size, 24);
        assert_eq!(rec.align, 8);
    }

    #[test]
    fn union_layout_overlaps() {
        let mut t = TypeTable::new();
        let id = t.add_record(RecordDef {
            tag: None,
            is_union: true,
            fields: vec![],
            size: 0,
            align: 1,
            complete: false,
        });
        t.complete_record(
            id,
            vec![("i".into(), Type::Int), ("p".into(), Type::Void.ptr_to())],
        );
        let rec = t.record(id);
        assert_eq!(rec.field("i").unwrap().offset, 0);
        assert_eq!(rec.field("p").unwrap().offset, 0);
        assert_eq!(rec.size, 8);
    }

    #[test]
    fn decay_rules() {
        let arr = Type::Array(Box::new(Type::Char), Some(4));
        assert_eq!(arr.decayed(), Type::Char.ptr_to());
        assert_eq!(Type::Int.decayed(), Type::Int);
    }

    #[test]
    fn display_renders() {
        let t = TypeTable::new();
        assert_eq!(Type::Char.ptr_to().display(&t).to_string(), "char *");
    }
}
