//! Abstract syntax for the C subset, with byte spans and (post-sema) types.
//!
//! The tree deliberately includes two *annotation* expression forms that no
//! C parser ever produces — [`ExprKind::KeepLive`] and
//! [`ExprKind::CheckSame`] — because the paper's contribution is precisely
//! a pass that inserts them. Keeping them first-class makes the annotator,
//! the pretty-printer (which renders them back as C), and the lowering all
//! straightforward.

use crate::span::Span;
use crate::types::Type;

/// Unique id for AST nodes, used for side tables (resolutions, bases).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// Monotonic [`NodeId`] allocator shared by the parser and the annotator.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NodeIdGen {
    next: u32,
}

impl NodeIdGen {
    /// Creates a generator starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a fresh id.
    pub fn fresh(&mut self) -> NodeId {
        let id = NodeId(self.next);
        self.next += 1;
        id
    }
}

/// Arithmetic and logical binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Shl,
    Shr,
    Lt,
    Gt,
    Le,
    Ge,
    Eq,
    Ne,
    BitAnd,
    BitOr,
    BitXor,
    LogAnd,
    LogOr,
}

impl BinOp {
    /// Source spelling.
    pub fn as_str(self) -> &'static str {
        use BinOp::*;
        match self {
            Add => "+",
            Sub => "-",
            Mul => "*",
            Div => "/",
            Rem => "%",
            Shl => "<<",
            Shr => ">>",
            Lt => "<",
            Gt => ">",
            Le => "<=",
            Ge => ">=",
            Eq => "==",
            Ne => "!=",
            BitAnd => "&",
            BitOr => "|",
            BitXor => "^",
            LogAnd => "&&",
            LogOr => "||",
        }
    }

    /// Whether the operator yields a boolean (0/1) `int`.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Lt | BinOp::Gt | BinOp::Le | BinOp::Ge | BinOp::Eq | BinOp::Ne
        )
    }
}

/// Unary operators (dereference and address-of are separate nodes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum UnOp {
    /// Arithmetic negation `-`.
    Neg,
    /// Logical not `!`.
    Not,
    /// Bitwise complement `~`.
    BitNot,
    /// Unary plus `+` (no-op, kept for fidelity).
    Plus,
}

impl UnOp {
    /// Source spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            UnOp::Neg => "-",
            UnOp::Not => "!",
            UnOp::BitNot => "~",
            UnOp::Plus => "+",
        }
    }
}

/// An expression node.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// Unique node id.
    pub id: NodeId,
    /// Source extent (annotation-inserted nodes inherit their child's span).
    pub span: Span,
    /// Type, filled by semantic analysis (`None` before).
    pub ty: Option<Type>,
    /// Payload.
    pub kind: ExprKind,
}

impl Expr {
    /// Creates an untyped expression node.
    pub fn new(id: NodeId, span: Span, kind: ExprKind) -> Self {
        Expr {
            id,
            span,
            ty: None,
            kind,
        }
    }

    /// The semantic type; panics if sema has not run.
    ///
    /// # Panics
    ///
    /// Panics when called before semantic analysis.
    pub fn ty(&self) -> &Type {
        self.ty
            .as_ref()
            .expect("expression type queried before sema")
    }
}

/// Expression payloads.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// Integer (or char) literal.
    IntLit(i64),
    /// String literal; lowered to a static byte array.
    StrLit(String),
    /// Identifier reference (variable, function, or enum constant).
    Ident(String),
    /// Unary arithmetic/logic.
    Unary(UnOp, Box<Expr>),
    /// Pointer dereference `*e`.
    Deref(Box<Expr>),
    /// Address-of `&e`.
    AddrOf(Box<Expr>),
    /// Binary arithmetic/logic/comparison.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Assignment; `op` is `Some` for compound forms like `+=`.
    Assign {
        /// Compound operator, if any.
        op: Option<BinOp>,
        /// Assignment target (an lvalue).
        lhs: Box<Expr>,
        /// Value expression.
        rhs: Box<Expr>,
    },
    /// Pre-increment/-decrement; `inc` selects `++` vs `--`.
    IncDec {
        /// `true` for `++`.
        inc: bool,
        /// `true` for the prefix form.
        pre: bool,
        /// The lvalue operand.
        target: Box<Expr>,
    },
    /// Conditional `c ? t : f`.
    Cond(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Comma expression.
    Comma(Box<Expr>, Box<Expr>),
    /// Function call. The callee is an arbitrary expression (direct name or
    /// function pointer).
    Call(Box<Expr>, Vec<Expr>),
    /// Array subscription `a[i]`.
    Index(Box<Expr>, Box<Expr>),
    /// Member access `e.f` (`arrow == false`) or `e->f`.
    Member {
        /// Aggregate (or pointer-to-aggregate) expression.
        obj: Box<Expr>,
        /// Field name.
        field: String,
        /// Whether the `->` form was used.
        arrow: bool,
    },
    /// Cast `(ty) e`.
    Cast(Type, Box<Expr>),
    /// `sizeof(type)` — value computed at sema time.
    SizeofType(Type),
    /// `sizeof expr`.
    SizeofExpr(Box<Expr>),
    /// `KEEP_LIVE(value, base)` — inserted by the GC-safety annotator.
    /// Evaluates to `value` while forcing `base` to remain visible to the
    /// collector until the result itself is visible, and making the result
    /// opaque to the optimizer.
    KeepLive {
        /// The pointer-valued expression being protected.
        value: Box<Expr>,
        /// The base pointer to keep live (`None` renders as NIL/0, meaning
        /// only the opacity effect is wanted).
        base: Option<Box<Expr>>,
    },
    /// `GC_same_obj(value, base)` — inserted by the checking-mode
    /// annotator. At run time verifies both point into the same heap object
    /// and returns `value`; also has the full `KEEP_LIVE` effect.
    CheckSame {
        /// Derived pointer.
        value: Box<Expr>,
        /// Base pointer it must share an object with.
        base: Box<Expr>,
    },
}

/// A local variable declaration (one declarator).
#[derive(Debug, Clone, PartialEq)]
pub struct LocalDecl {
    /// Node id (resolution key).
    pub id: NodeId,
    /// Variable name.
    pub name: String,
    /// Declared type.
    pub ty: Type,
    /// Optional scalar initializer.
    pub init: Option<Expr>,
    /// Source extent of the declarator.
    pub span: Span,
}

/// Initializer for a global object.
#[derive(Debug, Clone, PartialEq)]
pub enum Init {
    /// Single expression (must be constant or a string literal).
    Scalar(Expr),
    /// Brace-enclosed list.
    List(Vec<Init>),
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Expression statement.
    Expr(Expr),
    /// Local declaration(s).
    Decl(Vec<LocalDecl>),
    /// Compound block.
    Block(Block),
    /// `if` with optional `else`.
    If(Expr, Box<Stmt>, Option<Box<Stmt>>),
    /// `while` loop.
    While(Expr, Box<Stmt>),
    /// `do … while` loop.
    DoWhile(Box<Stmt>, Expr),
    /// `for` loop.
    For {
        /// Init clause (expression or declarations).
        init: Option<Box<Stmt>>,
        /// Condition.
        cond: Option<Expr>,
        /// Step expression.
        step: Option<Expr>,
        /// Body.
        body: Box<Stmt>,
    },
    /// `switch` statement; `case`/`default` markers appear in the body.
    Switch(Expr, Box<Stmt>),
    /// `case N:` marker (must appear directly inside a switch body block).
    Case(i64),
    /// `default:` marker.
    Default,
    /// `break;`
    Break,
    /// `continue;`
    Continue,
    /// `return` with optional value.
    Return(Option<Expr>),
    /// Empty statement `;`.
    Empty,
}

/// A `{ … }` block.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Block {
    /// Statements in order.
    pub stmts: Vec<Stmt>,
    /// Source extent including braces.
    pub span: Span,
}

/// A function parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Node id (resolution key).
    pub id: NodeId,
    /// Parameter name (empty for unnamed prototype params).
    pub name: String,
    /// Adjusted type (arrays decayed to pointers).
    pub ty: Type,
    /// Span of the declarator.
    pub span: Span,
}

/// A function definition or prototype.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncDef {
    /// Function name.
    pub name: String,
    /// Return type.
    pub ret: Type,
    /// Parameters.
    pub params: Vec<Param>,
    /// Whether variadic.
    pub varargs: bool,
    /// Body; `None` for a prototype.
    pub body: Option<Block>,
    /// Span of the whole definition.
    pub span: Span,
}

/// A global variable.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalDecl {
    /// Node id.
    pub id: NodeId,
    /// Name.
    pub name: String,
    /// Type.
    pub ty: Type,
    /// Optional initializer.
    pub init: Option<Init>,
    /// Span of the declarator.
    pub span: Span,
}

/// A whole translation unit.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Record (struct/union) definitions.
    pub types: crate::types::TypeTable,
    /// Global variables, in declaration order.
    pub globals: Vec<GlobalDecl>,
    /// Functions (definitions and prototypes), in declaration order.
    pub funcs: Vec<FuncDef>,
    /// Enum constants gathered at parse time.
    pub enum_consts: Vec<(String, i64)>,
    /// Node-id allocator (annotators continue from here).
    pub node_ids: NodeIdGen,
}

impl Program {
    /// Finds a function definition by name.
    pub fn func(&self, name: &str) -> Option<&FuncDef> {
        // Prefer a definition over a prototype.
        self.funcs
            .iter()
            .find(|f| f.name == name && f.body.is_some())
            .or_else(|| self.funcs.iter().find(|f| f.name == name))
    }

    /// Iterates over function *definitions* (those with bodies).
    pub fn definitions(&self) -> impl Iterator<Item = &FuncDef> {
        self.funcs.iter().filter(|f| f.body.is_some())
    }
}

/// Walks every expression in a statement tree, depth-first, visiting
/// children before parents.
pub fn visit_exprs<'a>(stmt: &'a Stmt, f: &mut dyn FnMut(&'a Expr)) {
    match stmt {
        Stmt::Expr(e) => visit_expr(e, f),
        Stmt::Decl(decls) => {
            for d in decls {
                if let Some(init) = &d.init {
                    visit_expr(init, f);
                }
            }
        }
        Stmt::Block(b) => {
            for s in &b.stmts {
                visit_exprs(s, f);
            }
        }
        Stmt::If(c, t, e) => {
            visit_expr(c, f);
            visit_exprs(t, f);
            if let Some(e) = e {
                visit_exprs(e, f);
            }
        }
        Stmt::While(c, b) => {
            visit_expr(c, f);
            visit_exprs(b, f);
        }
        Stmt::DoWhile(b, c) => {
            visit_exprs(b, f);
            visit_expr(c, f);
        }
        Stmt::For {
            init,
            cond,
            step,
            body,
        } => {
            if let Some(i) = init {
                visit_exprs(i, f);
            }
            if let Some(c) = cond {
                visit_expr(c, f);
            }
            if let Some(s) = step {
                visit_expr(s, f);
            }
            visit_exprs(body, f);
        }
        Stmt::Switch(c, b) => {
            visit_expr(c, f);
            visit_exprs(b, f);
        }
        Stmt::Return(Some(e)) => visit_expr(e, f),
        Stmt::Case(_)
        | Stmt::Default
        | Stmt::Break
        | Stmt::Continue
        | Stmt::Return(None)
        | Stmt::Empty => {}
    }
}

/// Depth-first expression walk (children first).
pub fn visit_expr<'a>(expr: &'a Expr, f: &mut dyn FnMut(&'a Expr)) {
    match &expr.kind {
        ExprKind::IntLit(_)
        | ExprKind::StrLit(_)
        | ExprKind::Ident(_)
        | ExprKind::SizeofType(_) => {}
        ExprKind::Unary(_, e)
        | ExprKind::Deref(e)
        | ExprKind::AddrOf(e)
        | ExprKind::Cast(_, e)
        | ExprKind::SizeofExpr(e) => visit_expr(e, f),
        ExprKind::Binary(_, l, r) | ExprKind::Comma(l, r) => {
            visit_expr(l, f);
            visit_expr(r, f);
        }
        ExprKind::Assign { lhs, rhs, .. } => {
            visit_expr(lhs, f);
            visit_expr(rhs, f);
        }
        ExprKind::IncDec { target, .. } => visit_expr(target, f),
        ExprKind::Cond(c, t, e) => {
            visit_expr(c, f);
            visit_expr(t, f);
            visit_expr(e, f);
        }
        ExprKind::Call(callee, args) => {
            visit_expr(callee, f);
            for a in args {
                visit_expr(a, f);
            }
        }
        ExprKind::Index(a, i) => {
            visit_expr(a, f);
            visit_expr(i, f);
        }
        ExprKind::Member { obj, .. } => visit_expr(obj, f),
        ExprKind::KeepLive { value, base } => {
            visit_expr(value, f);
            if let Some(b) = base {
                visit_expr(b, f);
            }
        }
        ExprKind::CheckSame { value, base } => {
            visit_expr(value, f);
            visit_expr(base, f);
        }
    }
    f(expr);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(gen: &mut NodeIdGen, v: i64) -> Expr {
        Expr::new(gen.fresh(), Span::point(0), ExprKind::IntLit(v))
    }

    #[test]
    fn node_id_gen_is_monotonic() {
        let mut g = NodeIdGen::new();
        let a = g.fresh();
        let b = g.fresh();
        assert!(a < b);
    }

    #[test]
    fn visit_expr_is_postorder() {
        let mut g = NodeIdGen::new();
        let e = Expr::new(
            g.fresh(),
            Span::point(0),
            ExprKind::Binary(
                BinOp::Add,
                Box::new(lit(&mut g, 1)),
                Box::new(lit(&mut g, 2)),
            ),
        );
        let mut seen = Vec::new();
        visit_expr(&e, &mut |x| seen.push(x.id));
        assert_eq!(seen.len(), 3);
        assert_eq!(seen[2], e.id, "parent visited last");
    }

    #[test]
    fn visit_exprs_covers_for_loop() {
        let mut g = NodeIdGen::new();
        let s = Stmt::For {
            init: Some(Box::new(Stmt::Expr(lit(&mut g, 0)))),
            cond: Some(lit(&mut g, 1)),
            step: Some(lit(&mut g, 2)),
            body: Box::new(Stmt::Expr(lit(&mut g, 3))),
        };
        let mut n = 0;
        visit_exprs(&s, &mut |_| n += 1);
        assert_eq!(n, 4);
    }

    #[test]
    fn binop_spellings() {
        assert_eq!(BinOp::Shl.as_str(), "<<");
        assert!(BinOp::Le.is_comparison());
        assert!(!BinOp::Add.is_comparison());
    }
}
