//! Source edit list: the paper's preprocessor mechanism.
//!
//! "In the process it generates a list of insertions and deletions, sorted
//! by character position in the original source string. After parsing is
//! complete, the insertions and deletions are applied to the original
//! source." This module is exactly that data structure.

use std::fmt;

/// One edit against the original source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Edit {
    /// Byte position in the *original* source where the edit applies.
    pub pos: usize,
    /// Number of original bytes deleted starting at `pos`.
    pub delete: usize,
    /// Text inserted at `pos` (after the deletion).
    pub insert: String,
}

/// An ordered collection of edits applied in one pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EditList {
    edits: Vec<Edit>,
}

/// Error returned when edits overlap or run past the end of the source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EditError {
    /// Explanation.
    pub message: String,
}

impl fmt::Display for EditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "edit error: {}", self.message)
    }
}

impl std::error::Error for EditError {}

impl EditList {
    /// Creates an empty list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an insertion of `text` at byte `pos`.
    pub fn insert(&mut self, pos: usize, text: impl Into<String>) {
        self.edits.push(Edit {
            pos,
            delete: 0,
            insert: text.into(),
        });
    }

    /// Records a deletion of `len` bytes at `pos`.
    pub fn delete(&mut self, pos: usize, len: usize) {
        self.edits.push(Edit {
            pos,
            delete: len,
            insert: String::new(),
        });
    }

    /// Records a replacement of `len` bytes at `pos` by `text`.
    pub fn replace(&mut self, pos: usize, len: usize, text: impl Into<String>) {
        self.edits.push(Edit {
            pos,
            delete: len,
            insert: text.into(),
        });
    }

    /// Number of recorded edits.
    pub fn len(&self) -> usize {
        self.edits.len()
    }

    /// Whether no edits are recorded.
    pub fn is_empty(&self) -> bool {
        self.edits.is_empty()
    }

    /// Iterates over the edits in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Edit> {
        self.edits.iter()
    }

    /// Applies all edits to `source`, producing the transformed text.
    ///
    /// Edits are sorted by position (stable, so multiple insertions at the
    /// same position keep their recording order — the outermost wrapper
    /// must be recorded first for prefix text and last for suffix text,
    /// which is how the annotator records them).
    ///
    /// # Errors
    ///
    /// Returns [`EditError`] if deletions overlap or extend past the end of
    /// the source.
    pub fn apply(&self, source: &str) -> Result<String, EditError> {
        let mut sorted: Vec<&Edit> = self.edits.iter().collect();
        sorted.sort_by_key(|e| e.pos);
        let mut out = String::with_capacity(source.len() + 64);
        let mut cursor = 0usize;
        for e in sorted {
            if e.pos < cursor {
                return Err(EditError {
                    message: format!(
                        "overlapping edits: position {} already consumed (cursor {})",
                        e.pos, cursor
                    ),
                });
            }
            if e.pos + e.delete > source.len() {
                return Err(EditError {
                    message: format!(
                        "edit at {} deletes {} bytes past end of source (len {})",
                        e.pos,
                        e.delete,
                        source.len()
                    ),
                });
            }
            out.push_str(&source[cursor..e.pos]);
            out.push_str(&e.insert);
            cursor = e.pos + e.delete;
        }
        out.push_str(&source[cursor..]);
        Ok(out)
    }
}

impl Extend<Edit> for EditList {
    fn extend<T: IntoIterator<Item = Edit>>(&mut self, iter: T) {
        self.edits.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_only() {
        let mut el = EditList::new();
        el.insert(3, "XY");
        assert_eq!(el.apply("abcdef").unwrap(), "abcXYdef");
    }

    #[test]
    fn delete_and_replace() {
        let mut el = EditList::new();
        el.delete(1, 2);
        el.replace(4, 1, "Z");
        assert_eq!(el.apply("abcdef").unwrap(), "adZf");
    }

    #[test]
    fn stable_order_at_same_position() {
        // Wrapping `e` as KEEP_LIVE(e, b): record prefix then suffix at the
        // expression bounds; nested wrappers at the same start keep order.
        let mut el = EditList::new();
        el.insert(0, "KEEP_LIVE(");
        el.insert(0, "(");
        el.insert(1, ", b)");
        assert_eq!(el.apply("e").unwrap(), "KEEP_LIVE((e, b)");
    }

    #[test]
    fn unsorted_recording_is_fine() {
        let mut el = EditList::new();
        el.insert(4, "B");
        el.insert(2, "A");
        assert_eq!(el.apply("wxyz").unwrap(), "wxAyzB");
    }

    #[test]
    fn overlap_is_error() {
        let mut el = EditList::new();
        el.delete(0, 3);
        el.delete(1, 1);
        assert!(el.apply("abcdef").is_err());
    }

    #[test]
    fn out_of_range_is_error() {
        let mut el = EditList::new();
        el.delete(4, 10);
        assert!(el.apply("abcdef").is_err());
    }

    #[test]
    fn empty_list_is_identity() {
        let el = EditList::new();
        assert_eq!(el.apply("abc").unwrap(), "abc");
        assert!(el.is_empty());
    }
}
