//! Structural normalization for AST comparison.
//!
//! [`Expr`] equality includes node ids, spans, and sema types, so two
//! parses of equivalent source never compare equal directly. The fuzzer's
//! minimizer and the pretty-printer round-trip property both need a purely
//! structural comparison: `parse(pretty(parse(src)))` must equal
//! `parse(src)` once positions and ids are erased.

use crate::ast::*;
use crate::span::Span;

/// Returns a copy of `prog` with every node id, span, and sema type reset
/// to a fixed value, so [`Program`] equality becomes structural.
pub fn normalize_program(prog: &Program) -> Program {
    let mut p = prog.clone();
    p.node_ids = NodeIdGen::new();
    for g in &mut p.globals {
        g.id = NodeId(0);
        g.span = Span::point(0);
        if let Some(init) = &mut g.init {
            strip_init(init);
        }
    }
    for f in &mut p.funcs {
        f.span = Span::point(0);
        for param in &mut f.params {
            param.id = NodeId(0);
            param.span = Span::point(0);
        }
        if let Some(body) = &mut f.body {
            strip_block(body);
        }
    }
    p
}

/// Returns a copy of `e` with ids, spans, and types reset (see
/// [`normalize_program`]).
pub fn normalize_expr(e: &Expr) -> Expr {
    let mut e = e.clone();
    strip_expr(&mut e);
    e
}

fn strip_block(b: &mut Block) {
    b.span = Span::point(0);
    for s in &mut b.stmts {
        strip_stmt(s);
    }
}

fn strip_stmt(s: &mut Stmt) {
    match s {
        Stmt::Expr(e) => strip_expr(e),
        Stmt::Decl(decls) => {
            for d in decls {
                d.id = NodeId(0);
                d.span = Span::point(0);
                if let Some(init) = &mut d.init {
                    strip_expr(init);
                }
            }
        }
        Stmt::Block(b) => strip_block(b),
        Stmt::If(c, t, e) => {
            strip_expr(c);
            strip_stmt(t);
            if let Some(e) = e {
                strip_stmt(e);
            }
        }
        Stmt::While(c, b) => {
            strip_expr(c);
            strip_stmt(b);
        }
        Stmt::DoWhile(b, c) => {
            strip_stmt(b);
            strip_expr(c);
        }
        Stmt::For {
            init,
            cond,
            step,
            body,
        } => {
            if let Some(i) = init {
                strip_stmt(i);
            }
            if let Some(c) = cond {
                strip_expr(c);
            }
            if let Some(st) = step {
                strip_expr(st);
            }
            strip_stmt(body);
        }
        Stmt::Switch(c, b) => {
            strip_expr(c);
            strip_stmt(b);
        }
        Stmt::Return(Some(e)) => strip_expr(e),
        Stmt::Case(_)
        | Stmt::Default
        | Stmt::Break
        | Stmt::Continue
        | Stmt::Return(None)
        | Stmt::Empty => {}
    }
}

fn strip_init(init: &mut Init) {
    match init {
        Init::Scalar(e) => strip_expr(e),
        Init::List(items) => {
            for it in items {
                strip_init(it);
            }
        }
    }
}

fn strip_expr(e: &mut Expr) {
    e.id = NodeId(0);
    e.span = Span::point(0);
    e.ty = None;
    match &mut e.kind {
        ExprKind::IntLit(_)
        | ExprKind::StrLit(_)
        | ExprKind::Ident(_)
        | ExprKind::SizeofType(_) => {}
        ExprKind::Unary(_, inner)
        | ExprKind::Deref(inner)
        | ExprKind::AddrOf(inner)
        | ExprKind::Cast(_, inner)
        | ExprKind::SizeofExpr(inner)
        | ExprKind::IncDec { target: inner, .. }
        | ExprKind::Member { obj: inner, .. } => strip_expr(inner),
        ExprKind::Binary(_, l, r)
        | ExprKind::Comma(l, r)
        | ExprKind::Assign { lhs: l, rhs: r, .. }
        | ExprKind::Index(l, r)
        | ExprKind::CheckSame { value: l, base: r } => {
            strip_expr(l);
            strip_expr(r);
        }
        ExprKind::Cond(c, t, f) => {
            strip_expr(c);
            strip_expr(t);
            strip_expr(f);
        }
        ExprKind::Call(callee, args) => {
            strip_expr(callee);
            for a in args {
                strip_expr(a);
            }
        }
        ExprKind::KeepLive { value, base } => {
            strip_expr(value);
            if let Some(b) = base {
                strip_expr(b);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn two_parses_of_equivalent_source_normalize_equal() {
        let a = parse("int f(int x) { return x + 1; }").unwrap();
        // Different whitespace → different spans, same structure.
        let b = parse("int f( int x )\n{\n    return x + 1;\n}").unwrap();
        assert_ne!(a, b, "raw parses carry positions");
        assert_eq!(normalize_program(&a), normalize_program(&b));
    }

    #[test]
    fn structural_differences_survive_normalization() {
        let a = parse("int f(void) { return 1; }").unwrap();
        let b = parse("int f(void) { return 2; }").unwrap();
        assert_ne!(normalize_program(&a), normalize_program(&b));
    }
}
