//! Byte-offset spans into the original source text.
//!
//! The paper's preprocessor records "a list of insertions and deletions,
//! sorted by character position in the original source string"; spans are
//! the character positions that make that possible.

use std::fmt;

/// A half-open byte range `[start, end)` into the source string.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
}

impl Span {
    /// Creates a span covering `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if `start > end`.
    pub fn new(start: usize, end: usize) -> Self {
        assert!(start <= end, "span start {start} exceeds end {end}");
        Span { start, end }
    }

    /// A zero-width span at `pos`.
    pub fn point(pos: usize) -> Self {
        Span {
            start: pos,
            end: pos,
        }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn merge(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// Number of bytes covered.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the span covers zero bytes.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// Computes 1-based (line, column) for a byte offset, for diagnostics.
pub fn line_col(source: &str, pos: usize) -> (usize, usize) {
    let mut line = 1;
    let mut col = 1;
    for (i, ch) in source.char_indices() {
        if i >= pos {
            break;
        }
        if ch == '\n' {
            line += 1;
            col = 1;
        } else {
            col += 1;
        }
    }
    (line, col)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_covers_both() {
        let a = Span::new(3, 7);
        let b = Span::new(5, 12);
        assert_eq!(a.merge(b), Span::new(3, 12));
        assert_eq!(b.merge(a), Span::new(3, 12));
    }

    #[test]
    fn point_is_empty() {
        assert!(Span::point(4).is_empty());
        assert_eq!(Span::point(4).len(), 0);
    }

    #[test]
    fn line_col_basic() {
        let src = "ab\ncd\nef";
        assert_eq!(line_col(src, 0), (1, 1));
        assert_eq!(line_col(src, 3), (2, 1));
        assert_eq!(line_col(src, 7), (3, 2));
    }

    #[test]
    #[should_panic(expected = "span start")]
    fn invalid_span_panics() {
        let _ = Span::new(5, 3);
    }
}
