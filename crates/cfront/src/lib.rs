//! # cfront — ANSI-C-subset frontend
//!
//! The frontend substrate for the reproduction of Boehm's *Simple
//! Garbage-Collector-Safety* (PLDI 1996). It provides everything the
//! paper's C-to-C preprocessor needed from its (gcc-derived) grammar and
//! scanner:
//!
//! * a [`lexer`] and recursive-descent [`parser`] for a C89 subset covering
//!   every construct the annotation algorithm's rules mention;
//! * an [`ast`] in which the paper's annotation primitives (`KEEP_LIVE`,
//!   `GC_same_obj`) are first-class expression forms;
//! * [`types`] with LP64-style layout and struct/union records;
//! * [`sema`]: name resolution, type checking, address-taken analysis, and
//!   the pointer-hygiene warnings of the paper's "Source Checking" section;
//! * an [`edit`] list ("insertions and deletions, sorted by character
//!   position") for source-to-source output, plus a [`pretty`] printer.
//!
//! ## Example
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut prog = cfront::parse("int inc(int x) { return x + 1; }")?;
//! let sema = cfront::analyze(&mut prog)?;
//! assert!(sema.warnings.is_empty());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod edit;
pub mod error;
pub mod hash;
pub mod lexer;
pub mod normalize;
pub mod parser;
pub mod pretty;
pub mod sema;
pub mod span;
pub mod types;

pub use ast::{Block, Expr, ExprKind, FuncDef, NodeId, Program, Stmt};
pub use edit::EditList;
pub use error::{FrontError, FrontResult};
pub use hash::{function_hash, program_hash, program_hashes, ProgramHashes};
pub use normalize::{normalize_expr, normalize_program};
pub use parser::{parse, parse_expr};
pub use sema::{analyze, Builtin, Resolution, SemaInfo, VarId};
pub use span::Span;
pub use types::{Type, TypeTable};
