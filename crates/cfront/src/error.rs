//! Frontend error type shared by the lexer, parser, and semantic analysis.

use crate::span::{line_col, Span};
use std::error::Error;
use std::fmt;

/// Which frontend phase produced the error.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Tokenisation.
    Lex,
    /// Parsing.
    Parse,
    /// Type checking / name resolution.
    Sema,
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Phase::Lex => write!(f, "lex"),
            Phase::Parse => write!(f, "parse"),
            Phase::Sema => write!(f, "sema"),
        }
    }
}

/// An error produced while processing C source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrontError {
    /// Producing phase.
    pub phase: Phase,
    /// Human-readable message (lowercase, no trailing punctuation).
    pub message: String,
    /// Source location of the problem.
    pub span: Span,
}

impl FrontError {
    /// Creates a new error.
    pub fn new(phase: Phase, message: impl Into<String>, span: Span) -> Self {
        FrontError {
            phase,
            message: message.into(),
            span,
        }
    }

    /// Renders the error with line/column information resolved against `source`.
    pub fn render(&self, source: &str) -> String {
        let (line, col) = line_col(source, self.span.start);
        format!("{}:{}: {} error: {}", line, col, self.phase, self.message)
    }
}

impl fmt::Display for FrontError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} error at {}: {}", self.phase, self.span, self.message)
    }
}

impl Error for FrontError {}

/// Result alias for frontend operations.
pub type FrontResult<T> = Result<T, FrontError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_resolves_line_col() {
        let err = FrontError::new(Phase::Parse, "expected ';'", Span::new(4, 5));
        let rendered = err.render("int\nx y");
        assert_eq!(rendered, "2:1: parse error: expected ';'");
    }

    #[test]
    fn display_is_nonempty() {
        let err = FrontError::new(Phase::Lex, "bad char", Span::point(0));
        assert!(!err.to_string().is_empty());
    }
}
