//! Name resolution and type checking.
//!
//! Fills in [`Expr::ty`] on every expression, resolves identifiers to
//! locals/globals/functions/builtins/enum constants, assigns stable
//! [`VarId`]s per function, computes address-taken flags, and collects the
//! pointer-hygiene warnings the paper's preprocessor reports (integer
//! values converted to pointers, assumption (1) of the Source Checking
//! section).
//!
//! Sema is idempotent: the GC-safety annotator inserts new nodes and then
//! simply re-runs it.

use crate::ast::*;
use crate::error::{FrontError, FrontResult, Phase};
use crate::span::Span;
use crate::types::{FuncType, Type, TypeTable};
use std::collections::HashMap;

/// Per-function variable index (parameters first, then locals, in
/// declaration order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub u32);

/// Built-in runtime functions known to the VM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Builtin {
    /// `void *malloc(long)` — redirected to the collecting allocator, per
    /// the paper's problem statement.
    Malloc,
    /// `void *calloc(long, long)` — collecting allocator, zeroed.
    Calloc,
    /// `void *realloc(void *, long)`.
    Realloc,
    /// `void free(void *)` — a no-op under the collector ("remove all calls
    /// to free").
    Free,
    /// `long strlen(char *)`.
    Strlen,
    /// `int strcmp(char *, char *)`.
    Strcmp,
    /// `int strncmp(char *, char *, long)`.
    Strncmp,
    /// `char *strcpy(char *, char *)`.
    Strcpy,
    /// `void *memcpy(void *, void *, long)`.
    Memcpy,
    /// `void *memset(void *, int, long)`.
    Memset,
    /// `int memcmp(void *, void *, long)`.
    Memcmp,
    /// `int getchar(void)` — reads the harness-provided input, -1 at EOF.
    Getchar,
    /// `void putchar(int)`.
    Putchar,
    /// `void putstr(char *)` — writes a NUL-terminated string.
    Putstr,
    /// `void putint(long)` — writes a decimal integer.
    Putint,
    /// `void exit(int)`.
    Exit,
    /// `void abort(void)`.
    Abort,
    /// `void gc_collect(void)` — forces a collection (test hook).
    GcCollect,
    /// `long gc_heap_size(void)` — current live heap bytes (test hook).
    GcHeapSize,
    /// `void *GC_same_obj(void *, void *)` — checking-mode primitive:
    /// verifies both arguments point into the same heap object and returns
    /// the first.
    GcSameObj,
    /// `void *GC_pre_incr(void **, long)` — checked pre-increment.
    GcPreIncr,
    /// `void *GC_post_incr(void **, long)` — checked post-increment.
    GcPostIncr,
    /// `void *GC_base(void *)` — object base lookup (NULL if not heap).
    GcBase,
    /// `void *GC_keep_live(void *, void *)` — the paper's naive
    /// `KEEP_LIVE` implementation: "a call to an external function whose
    /// implementation is unavailable to the compiler for analysis, but
    /// which actually just returns its first argument". Terribly
    /// inefficient by design; used for the implementation-strategy
    /// ablation.
    KeepLiveFn,
}

impl Builtin {
    /// All builtins with their C-level names.
    pub const ALL: &'static [(&'static str, Builtin)] = &[
        ("malloc", Builtin::Malloc),
        ("calloc", Builtin::Calloc),
        ("realloc", Builtin::Realloc),
        ("free", Builtin::Free),
        ("strlen", Builtin::Strlen),
        ("strcmp", Builtin::Strcmp),
        ("strncmp", Builtin::Strncmp),
        ("strcpy", Builtin::Strcpy),
        ("memcpy", Builtin::Memcpy),
        ("memset", Builtin::Memset),
        ("memcmp", Builtin::Memcmp),
        ("getchar", Builtin::Getchar),
        ("putchar", Builtin::Putchar),
        ("putstr", Builtin::Putstr),
        ("putint", Builtin::Putint),
        ("exit", Builtin::Exit),
        ("abort", Builtin::Abort),
        ("gc_collect", Builtin::GcCollect),
        ("gc_heap_size", Builtin::GcHeapSize),
        ("GC_same_obj", Builtin::GcSameObj),
        ("GC_pre_incr", Builtin::GcPreIncr),
        ("GC_post_incr", Builtin::GcPostIncr),
        ("GC_base", Builtin::GcBase),
        ("GC_keep_live", Builtin::KeepLiveFn),
    ];

    /// Looks up a builtin by its C name.
    pub fn by_name(name: &str) -> Option<Builtin> {
        Self::ALL.iter().find(|(n, _)| *n == name).map(|(_, b)| *b)
    }

    /// The C-level function type of the builtin.
    pub fn func_type(self) -> FuncType {
        use Builtin::*;
        fn vptr() -> Type {
            Type::Void.ptr_to()
        }
        fn cptr() -> Type {
            Type::Char.ptr_to()
        }
        match self {
            Malloc => FuncType {
                ret: vptr(),
                params: vec![Type::Long],
                varargs: false,
            },
            Calloc => FuncType {
                ret: vptr(),
                params: vec![Type::Long, Type::Long],
                varargs: false,
            },
            Realloc => FuncType {
                ret: vptr(),
                params: vec![vptr(), Type::Long],
                varargs: false,
            },
            Free => FuncType {
                ret: Type::Void,
                params: vec![vptr()],
                varargs: false,
            },
            Strlen => FuncType {
                ret: Type::Long,
                params: vec![cptr()],
                varargs: false,
            },
            Strcmp => FuncType {
                ret: Type::Int,
                params: vec![cptr(), cptr()],
                varargs: false,
            },
            Strncmp => FuncType {
                ret: Type::Int,
                params: vec![cptr(), cptr(), Type::Long],
                varargs: false,
            },
            Strcpy => FuncType {
                ret: cptr(),
                params: vec![cptr(), cptr()],
                varargs: false,
            },
            Memcpy => FuncType {
                ret: vptr(),
                params: vec![vptr(), vptr(), Type::Long],
                varargs: false,
            },
            Memset => FuncType {
                ret: vptr(),
                params: vec![vptr(), Type::Int, Type::Long],
                varargs: false,
            },
            Memcmp => FuncType {
                ret: Type::Int,
                params: vec![vptr(), vptr(), Type::Long],
                varargs: false,
            },
            Getchar => FuncType {
                ret: Type::Int,
                params: vec![],
                varargs: false,
            },
            Putchar => FuncType {
                ret: Type::Void,
                params: vec![Type::Int],
                varargs: false,
            },
            Putstr => FuncType {
                ret: Type::Void,
                params: vec![cptr()],
                varargs: false,
            },
            Putint => FuncType {
                ret: Type::Void,
                params: vec![Type::Long],
                varargs: false,
            },
            Exit => FuncType {
                ret: Type::Void,
                params: vec![Type::Int],
                varargs: false,
            },
            Abort => FuncType {
                ret: Type::Void,
                params: vec![],
                varargs: false,
            },
            GcCollect => FuncType {
                ret: Type::Void,
                params: vec![],
                varargs: false,
            },
            GcHeapSize => FuncType {
                ret: Type::Long,
                params: vec![],
                varargs: false,
            },
            GcSameObj => FuncType {
                ret: vptr(),
                params: vec![vptr(), vptr()],
                varargs: false,
            },
            GcPreIncr => FuncType {
                ret: vptr(),
                params: vec![vptr().ptr_to(), Type::Long],
                varargs: false,
            },
            GcPostIncr => FuncType {
                ret: vptr(),
                params: vec![vptr().ptr_to(), Type::Long],
                varargs: false,
            },
            GcBase => FuncType {
                ret: vptr(),
                params: vec![vptr()],
                varargs: false,
            },
            KeepLiveFn => FuncType {
                ret: vptr(),
                params: vec![vptr(), vptr()],
                varargs: false,
            },
        }
    }
}

/// What an identifier refers to.
#[derive(Debug, Clone, PartialEq)]
pub enum Resolution {
    /// Local variable or parameter of the enclosing function.
    Local(VarId),
    /// Global variable, by index into [`Program::globals`].
    Global(usize),
    /// User-defined function, by name.
    Func(String),
    /// Runtime builtin.
    Builtin(Builtin),
    /// Enum constant value.
    EnumConst(i64),
}

/// Information about one variable slot of a function.
#[derive(Debug, Clone, PartialEq)]
pub struct VarInfo {
    /// Source name.
    pub name: String,
    /// Declared type.
    pub ty: Type,
    /// Whether the slot is a parameter.
    pub is_param: bool,
    /// Whether `&x` occurs anywhere (forces a memory home).
    pub addr_taken: bool,
}

/// Per-function sema results.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FuncInfo {
    /// All variable slots, parameters first.
    pub vars: Vec<VarInfo>,
}

impl FuncInfo {
    /// Variable metadata by id.
    pub fn var(&self, id: VarId) -> &VarInfo {
        &self.vars[id.0 as usize]
    }
}

/// A non-fatal diagnostic (the paper's preprocessor "issues warnings").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Warning {
    /// Location.
    pub span: Span,
    /// Message.
    pub message: String,
}

/// Whole-program sema results.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SemaInfo {
    /// Identifier resolutions keyed by the `Ident` node id.
    pub res: HashMap<NodeId, Resolution>,
    /// Per-function info keyed by function name.
    pub funcs: HashMap<String, FuncInfo>,
    /// Pointer-hygiene warnings.
    pub warnings: Vec<Warning>,
}

/// Runs semantic analysis over `prog`, filling expression types in place.
///
/// # Errors
///
/// Returns the first type or name-resolution error.
pub fn analyze(prog: &mut Program) -> FrontResult<SemaInfo> {
    let mut info = SemaInfo::default();
    let mut globals_by_name: HashMap<String, (usize, Type)> = HashMap::new();
    for (i, g) in prog.globals.iter().enumerate() {
        globals_by_name.insert(g.name.clone(), (i, g.ty.clone()));
    }
    let mut func_sigs: HashMap<String, FuncType> = HashMap::new();
    for f in &prog.funcs {
        func_sigs.insert(
            f.name.clone(),
            FuncType {
                ret: f.ret.clone(),
                params: f.params.iter().map(|p| p.ty.decayed()).collect(),
                varargs: f.varargs,
            },
        );
    }
    let enum_consts: HashMap<String, i64> = prog.enum_consts.iter().cloned().collect();

    // Check global initializers (must type-check as expressions).
    let types = prog.types.clone();
    let mut globals = std::mem::take(&mut prog.globals);
    for g in &mut globals {
        if let Some(init) = &mut g.init {
            let mut cx = Ctx {
                types: &types,
                globals_by_name: &globals_by_name,
                func_sigs: &func_sigs,
                enum_consts: &enum_consts,
                info: &mut info,
                scopes: vec![HashMap::new()],
                vars: Vec::new(),
                ret: Type::Void,
            };
            cx.check_init(init, &g.ty)?;
        }
    }
    prog.globals = globals;

    let mut funcs = std::mem::take(&mut prog.funcs);
    for f in &mut funcs {
        let Some(body) = &mut f.body else { continue };
        let mut cx = Ctx {
            types: &types,
            globals_by_name: &globals_by_name,
            func_sigs: &func_sigs,
            enum_consts: &enum_consts,
            info: &mut info,
            scopes: vec![HashMap::new()],
            vars: Vec::new(),
            ret: f.ret.clone(),
        };
        for p in &f.params {
            let id = cx.declare(&p.name, p.ty.decayed(), true);
            // Parameters are resolvable through their decl node too.
            cx.info.res.insert(p.id, Resolution::Local(id));
        }
        cx.block(body)?;
        let vars = cx.vars;
        info.funcs.insert(f.name.clone(), FuncInfo { vars });
    }
    prog.funcs = funcs;
    Ok(info)
}

struct Ctx<'a> {
    types: &'a TypeTable,
    globals_by_name: &'a HashMap<String, (usize, Type)>,
    func_sigs: &'a HashMap<String, FuncType>,
    enum_consts: &'a HashMap<String, i64>,
    info: &'a mut SemaInfo,
    scopes: Vec<HashMap<String, VarId>>,
    vars: Vec<VarInfo>,
    ret: Type,
}

impl<'a> Ctx<'a> {
    fn err(&self, span: Span, msg: impl Into<String>) -> FrontError {
        FrontError::new(Phase::Sema, msg, span)
    }

    fn warn(&mut self, span: Span, msg: impl Into<String>) {
        self.info.warnings.push(Warning {
            span,
            message: msg.into(),
        });
    }

    fn declare(&mut self, name: &str, ty: Type, is_param: bool) -> VarId {
        let id = VarId(u32::try_from(self.vars.len()).expect("var count fits u32"));
        self.vars.push(VarInfo {
            name: name.to_string(),
            ty,
            is_param,
            addr_taken: false,
        });
        self.scopes
            .last_mut()
            .expect("scope stack never empty")
            .insert(name.to_string(), id);
        id
    }

    fn lookup(&self, name: &str) -> Option<VarId> {
        for scope in self.scopes.iter().rev() {
            if let Some(&id) = scope.get(name) {
                return Some(id);
            }
        }
        None
    }

    fn check_init(&mut self, init: &mut Init, _target: &Type) -> FrontResult<()> {
        match init {
            Init::Scalar(e) => {
                self.expr(e)?;
                Ok(())
            }
            Init::List(items) => {
                for item in items {
                    self.check_init(item, _target)?;
                }
                Ok(())
            }
        }
    }

    fn block(&mut self, b: &mut Block) -> FrontResult<()> {
        self.scopes.push(HashMap::new());
        for s in &mut b.stmts {
            self.stmt(s)?;
        }
        self.scopes.pop();
        Ok(())
    }

    fn stmt(&mut self, s: &mut Stmt) -> FrontResult<()> {
        match s {
            Stmt::Expr(e) => {
                self.expr(e)?;
            }
            Stmt::Decl(decls) => {
                for d in decls {
                    if let Some(init) = &mut d.init {
                        self.expr(init)?;
                    }
                    let id = self.declare(&d.name, d.ty.clone(), false);
                    self.info.res.insert(d.id, Resolution::Local(id));
                }
            }
            Stmt::Block(b) => self.block(b)?,
            Stmt::If(c, t, e) => {
                self.expr(c)?;
                self.stmt(t)?;
                if let Some(e) = e {
                    self.stmt(e)?;
                }
            }
            Stmt::While(c, b) => {
                self.expr(c)?;
                self.stmt(b)?;
            }
            Stmt::DoWhile(b, c) => {
                self.stmt(b)?;
                self.expr(c)?;
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                self.scopes.push(HashMap::new());
                if let Some(i) = init {
                    self.stmt(i)?;
                }
                if let Some(c) = cond {
                    self.expr(c)?;
                }
                if let Some(st) = step {
                    self.expr(st)?;
                }
                self.stmt(body)?;
                self.scopes.pop();
            }
            Stmt::Switch(c, b) => {
                self.expr(c)?;
                self.stmt(b)?;
            }
            Stmt::Return(Some(e)) => {
                self.expr(e)?;
                if self.ret == Type::Void {
                    return Err(self.err(e.span, "returning a value from a void function"));
                }
            }
            Stmt::Case(_)
            | Stmt::Default
            | Stmt::Break
            | Stmt::Continue
            | Stmt::Return(None)
            | Stmt::Empty => {}
        }
        Ok(())
    }

    /// Checks an lvalue path and returns its (non-decayed) type.
    fn lvalue(&mut self, e: &mut Expr) -> FrontResult<Type> {
        let ty = self.expr(e)?;
        match &e.kind {
            ExprKind::Ident(_)
            | ExprKind::Deref(_)
            | ExprKind::Index(..)
            | ExprKind::Member { .. } => Ok(ty),
            _ => Err(self.err(e.span, "expression is not an lvalue")),
        }
    }

    /// Marks address-taken when `&` is applied to a path rooted at a local.
    fn mark_addr_taken(&mut self, e: &Expr) {
        if let ExprKind::Ident(_) = &e.kind {
            if let Some(Resolution::Local(id)) = self.info.res.get(&e.id) {
                self.vars[id.0 as usize].addr_taken = true;
            }
        }
        // For Member/Index the base variable is an aggregate and therefore
        // already lives in memory; nothing to mark.
    }

    fn arith_common(a: &Type, b: &Type) -> Type {
        // Usual arithmetic conversions, restricted to the subset's ranks.
        fn rank(t: &Type) -> u8 {
            match t {
                Type::Char => 0,
                Type::Int => 1,
                Type::UInt => 2,
                Type::Long => 3,
                Type::ULong => 4,
                _ => 1,
            }
        }
        let (hi, _lo) = if rank(a) >= rank(b) { (a, b) } else { (b, a) };
        match hi {
            Type::Char => Type::Int, // promotion
            other => other.clone(),
        }
    }

    fn expr(&mut self, e: &mut Expr) -> FrontResult<Type> {
        let span = e.span;
        let ty = match &mut e.kind {
            ExprKind::IntLit(_) => Type::Int,
            ExprKind::StrLit(s) => Type::Array(Box::new(Type::Char), Some(s.len() as u64 + 1)),
            ExprKind::Ident(name) => {
                let name = name.clone();
                if let Some(id) = self.lookup(&name) {
                    self.info.res.insert(e.id, Resolution::Local(id));
                    self.vars[id.0 as usize].ty.clone()
                } else if let Some((gi, gty)) = self.globals_by_name.get(&name) {
                    self.info.res.insert(e.id, Resolution::Global(*gi));
                    gty.clone()
                } else if let Some(sig) = self.func_sigs.get(&name) {
                    self.info.res.insert(e.id, Resolution::Func(name.clone()));
                    Type::Func(Box::new(sig.clone()))
                } else if let Some(b) = Builtin::by_name(&name) {
                    self.info.res.insert(e.id, Resolution::Builtin(b));
                    Type::Func(Box::new(b.func_type()))
                } else if let Some(&v) = self.enum_consts.get(&name) {
                    self.info.res.insert(e.id, Resolution::EnumConst(v));
                    Type::Int
                } else {
                    return Err(self.err(span, format!("use of undeclared identifier '{name}'")));
                }
            }
            ExprKind::Unary(op, inner) => {
                let t = self.expr(inner)?.decayed();
                match op {
                    UnOp::Not => Type::Int,
                    _ => {
                        if !t.is_integer() {
                            return Err(self.err(span, "arithmetic on non-integer"));
                        }
                        Self::arith_common(&t, &Type::Int)
                    }
                }
            }
            ExprKind::Deref(inner) => {
                let t = self.expr(inner)?.decayed();
                match t {
                    Type::Ptr(p) => match *p {
                        Type::Void => return Err(self.err(span, "dereference of void pointer")),
                        other => other,
                    },
                    _ => return Err(self.err(span, "dereference of non-pointer")),
                }
            }
            ExprKind::AddrOf(inner) => {
                let t = self.lvalue(inner)?;
                self.mark_addr_taken(inner);
                t.ptr_to()
            }
            ExprKind::Binary(op, l, r) => {
                let op = *op;
                let lt = self.expr(l)?.decayed();
                let rt = self.expr(r)?.decayed();
                match op {
                    BinOp::Add => match (&lt, &rt) {
                        (Type::Ptr(_), t) if t.is_integer() => lt,
                        (t, Type::Ptr(_)) if t.is_integer() => rt,
                        (a, b) if a.is_integer() && b.is_integer() => Self::arith_common(a, b),
                        _ => return Err(self.err(span, "invalid operands to '+'")),
                    },
                    BinOp::Sub => match (&lt, &rt) {
                        (Type::Ptr(_), t) if t.is_integer() => lt,
                        (Type::Ptr(_), Type::Ptr(_)) => Type::Long,
                        (a, b) if a.is_integer() && b.is_integer() => Self::arith_common(a, b),
                        _ => return Err(self.err(span, "invalid operands to '-'")),
                    },
                    _ if op.is_comparison() => Type::Int,
                    BinOp::LogAnd | BinOp::LogOr => Type::Int,
                    _ => {
                        if !lt.is_integer() || !rt.is_integer() {
                            return Err(
                                self.err(span, format!("invalid operands to '{}'", op.as_str()))
                            );
                        }
                        Self::arith_common(&lt, &rt)
                    }
                }
            }
            ExprKind::Assign { op, lhs, rhs } => {
                let op = *op;
                let lt = self.lvalue(lhs)?;
                let rt = self.expr(rhs)?.decayed();
                let lt_val = lt.decayed();
                if let Some(op) = op {
                    // Compound: lhs must be scalar; ptr += int allowed.
                    match (&lt_val, op) {
                        (Type::Ptr(_), BinOp::Add | BinOp::Sub) if rt.is_integer() => {}
                        (a, _) if a.is_integer() && rt.is_integer() => {}
                        _ => return Err(self.err(span, "invalid compound assignment operands")),
                    }
                } else {
                    self.check_assignable(&lt, &rt, span, rhs);
                }
                lt_val
            }
            ExprKind::IncDec { target, .. } => {
                let t = self.lvalue(target)?.decayed();
                if !t.is_integer() && !t.is_ptr() {
                    return Err(self.err(span, "++/-- on non-scalar"));
                }
                t
            }
            ExprKind::Cond(c, t, f) => {
                self.expr(c)?;
                let tt = self.expr(t)?.decayed();
                let ft = self.expr(f)?.decayed();
                match (&tt, &ft) {
                    (Type::Ptr(_), _) => tt,
                    (_, Type::Ptr(_)) => ft,
                    _ => Self::arith_common(&tt, &ft),
                }
            }
            ExprKind::Comma(l, r) => {
                self.expr(l)?;
                self.expr(r)?.decayed()
            }
            ExprKind::Call(callee, args) => {
                let ct = self.expr(callee)?;
                let sig = match &ct {
                    Type::Func(ft) => (**ft).clone(),
                    Type::Ptr(inner) => match inner.as_ref() {
                        Type::Func(ft) => (**ft).clone(),
                        _ => return Err(self.err(span, "call of non-function pointer")),
                    },
                    _ => return Err(self.err(span, "call of non-function")),
                };
                if args.len() < sig.params.len() || (!sig.varargs && args.len() > sig.params.len())
                {
                    return Err(self.err(
                        span,
                        format!(
                            "wrong number of arguments: expected {}{}, got {}",
                            sig.params.len(),
                            if sig.varargs { "+" } else { "" },
                            args.len()
                        ),
                    ));
                }
                for a in args.iter_mut() {
                    self.expr(a)?;
                }
                // The paper's Source Checking assumption (2): pointers can
                // be hidden "with a call to memcpy or memmove with
                // arguments whose types don't match. Thus this should be
                // easily checkable" — so we check it.
                if let ExprKind::Ident(_) = &callee.kind {
                    if let Some(Resolution::Builtin(Builtin::Memcpy)) =
                        self.info.res.get(&callee.id)
                    {
                        if args.len() >= 2 {
                            let dst_t = args[0].ty.as_ref().map(Type::decayed);
                            let src_t = args[1].ty.as_ref().map(Type::decayed);
                            if let (Some(Type::Ptr(d)), Some(Type::Ptr(s))) = (dst_t, src_t) {
                                let transparent = |t: &Type| matches!(t, Type::Void | Type::Char);
                                if !transparent(&d) && !transparent(&s) && *d != *s {
                                    self.warn(
                                        span,
                                        "memcpy between differently typed objects may hide pointers from the collector",
                                    );
                                }
                            }
                        }
                    }
                }
                sig.ret
            }
            ExprKind::Index(arr, idx) => {
                let at = self.expr(arr)?.decayed();
                let it = self.expr(idx)?.decayed();
                if !it.is_integer() {
                    return Err(self.err(span, "array subscript is not an integer"));
                }
                match at {
                    Type::Ptr(p) => *p,
                    _ => return Err(self.err(span, "subscripted value is not a pointer")),
                }
            }
            ExprKind::Member { obj, field, arrow } => {
                let arrow = *arrow;
                let field = field.clone();
                let ot = self.expr(obj)?;
                let rec_ty = if arrow {
                    match ot.decayed() {
                        Type::Ptr(inner) => *inner,
                        _ => return Err(self.err(span, "'->' on non-pointer")),
                    }
                } else {
                    ot
                };
                let Type::Record(id) = rec_ty else {
                    return Err(self.err(span, "member access on non-struct"));
                };
                let rec = self.types.record(id);
                match rec.field(&field) {
                    Some(f) => f.ty.clone(),
                    None => return Err(self.err(span, format!("no field named '{field}'"))),
                }
            }
            ExprKind::Cast(ty, inner) => {
                let ty = ty.clone();
                let from = self.expr(inner)?.decayed();
                if ty.is_ptr() && from.is_integer() && !matches!(inner.kind, ExprKind::IntLit(0)) {
                    self.warn(
                        span,
                        "integer value converted to pointer (may hide a pointer from the collector)"
                            .to_string(),
                    );
                }
                ty
            }
            ExprKind::SizeofType(ty) => {
                let _ = ty
                    .size(self.types)
                    .ok_or_else(|| self.err(span, "sizeof applied to incomplete type"))?;
                Type::Long
            }
            ExprKind::SizeofExpr(inner) => {
                let t = self.expr(inner)?;
                let _ = t
                    .size(self.types)
                    .ok_or_else(|| self.err(span, "sizeof applied to incomplete type"))?;
                Type::Long
            }
            ExprKind::KeepLive { value, base } => {
                let vt = self.expr(value)?.decayed();
                if let Some(b) = base {
                    self.expr(b)?;
                }
                vt
            }
            ExprKind::CheckSame { value, base } => {
                let vt = self.expr(value)?.decayed();
                self.expr(base)?;
                vt
            }
        };
        e.ty = Some(ty.clone());
        Ok(ty)
    }

    fn check_assignable(&mut self, lhs: &Type, rhs: &Type, span: Span, rhs_expr: &Expr) {
        let l = lhs.decayed();
        if l.is_ptr() && rhs.is_integer() {
            // `p = 0` is the null constant; anything else is the hazard the
            // paper's checker warns about.
            if !matches!(rhs_expr.kind, ExprKind::IntLit(0)) {
                self.warn(
                    span,
                    "integer assigned to pointer without a cast".to_string(),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn analyze_src(src: &str) -> (crate::ast::Program, SemaInfo) {
        let mut p = parse(src).expect("parses");
        let info = analyze(&mut p).expect("analyzes");
        (p, info)
    }

    fn analyze_err(src: &str) -> FrontError {
        let mut p = parse(src).expect("parses");
        analyze(&mut p).expect_err("must fail sema")
    }

    #[test]
    fn resolves_params_and_locals() {
        let (_, info) = analyze_src("int f(int a) { int b = a + 1; return b; }");
        let fi = &info.funcs["f"];
        assert_eq!(fi.vars.len(), 2);
        assert!(fi.vars[0].is_param);
        assert_eq!(fi.vars[0].name, "a");
        assert!(!fi.vars[1].is_param);
        assert_eq!(fi.vars[1].name, "b");
    }

    #[test]
    fn shadowing_in_nested_scopes() {
        let (_, info) = analyze_src("int f(void) { int x = 1; { int x = 2; x++; } return x; }");
        let fi = &info.funcs["f"];
        assert_eq!(fi.vars.iter().filter(|v| v.name == "x").count(), 2);
    }

    #[test]
    fn addr_taken_is_computed() {
        let (_, info) = analyze_src(
            "long g(long *); long f(void) { long v = 3; long w = 4; g(&v); return v + w; }",
        );
        let fi = &info.funcs["f"];
        let v = fi.vars.iter().find(|x| x.name == "v").expect("v");
        let w = fi.vars.iter().find(|x| x.name == "w").expect("w");
        assert!(v.addr_taken);
        assert!(!w.addr_taken);
    }

    #[test]
    fn pointer_arithmetic_types() {
        let (p, _) = analyze_src("char *f(char *p, long i) { return p + i; }");
        let f = p.func("f").expect("f");
        let crate::ast::Stmt::Return(Some(e)) = &f.body.as_ref().unwrap().stmts[0] else {
            panic!()
        };
        assert_eq!(*e.ty(), Type::Char.ptr_to());
    }

    #[test]
    fn ptr_minus_ptr_is_long() {
        let (p, _) = analyze_src("long f(char *a, char *b) { return a - b; }");
        let f = p.func("f").expect("f");
        let crate::ast::Stmt::Return(Some(e)) = &f.body.as_ref().unwrap().stmts[0] else {
            panic!()
        };
        assert_eq!(*e.ty(), Type::Long);
    }

    #[test]
    fn array_decays_in_arithmetic() {
        let (p, _) = analyze_src("char f(void) { char buf[8]; return *(buf + 2); }");
        assert!(p.func("f").is_some());
    }

    #[test]
    fn builtins_resolve() {
        let (_, info) = analyze_src("int main(void) { return (int) strlen(\"x\"); }");
        assert!(info
            .res
            .values()
            .any(|r| matches!(r, Resolution::Builtin(Builtin::Strlen))));
    }

    #[test]
    fn enum_constants_resolve() {
        let (_, info) = analyze_src("enum { N = 5 }; int main(void) { return N; }");
        assert!(info
            .res
            .values()
            .any(|r| matches!(r, Resolution::EnumConst(5))));
    }

    #[test]
    fn undeclared_identifier_is_an_error() {
        let e = analyze_err("int main(void) { return nope; }");
        assert!(e.message.contains("undeclared"));
    }

    #[test]
    fn dereferencing_non_pointer_is_an_error() {
        let e = analyze_err("int main(void) { int x = 3; return *x; }");
        assert!(e.message.contains("dereference"));
    }

    #[test]
    fn wrong_arity_is_an_error() {
        let e = analyze_err("int f(int a) { return a; } int main(void) { return f(1, 2); }");
        assert!(e.message.contains("arguments"));
    }

    #[test]
    fn missing_field_is_an_error() {
        let e =
            analyze_err("struct s { int a; }; int main(void) { struct s x; x.a = 1; return x.b; }");
        assert!(e.message.contains("no field"));
    }

    #[test]
    fn assigning_to_rvalue_is_an_error() {
        let e = analyze_err("int main(void) { 3 = 4; return 0; }");
        assert!(e.message.contains("lvalue"));
    }

    #[test]
    fn int_to_pointer_cast_warns() {
        let (_, info) = analyze_src("int main(void) { char *p = (char *) 42; return p != 0; }");
        assert_eq!(info.warnings.len(), 1);
        assert!(info.warnings[0].message.contains("converted to pointer"));
    }

    #[test]
    fn null_constant_does_not_warn() {
        let (_, info) = analyze_src("int main(void) { char *p = 0; return p == 0; }");
        assert!(info.warnings.is_empty());
    }

    #[test]
    fn integer_assignment_to_pointer_warns() {
        let (_, info) = analyze_src("int main(void) { char *p; int x = 5; p = x; return 0; }");
        assert!(!info.warnings.is_empty());
    }

    #[test]
    fn sema_is_idempotent() {
        let src = "struct n { int v; struct n *next; };\n\
                   int f(struct n *x) { return x->next->v; }";
        let mut p = parse(src).expect("parses");
        let first = analyze(&mut p).expect("first run");
        let second = analyze(&mut p).expect("second run");
        assert_eq!(first.funcs["f"].vars, second.funcs["f"].vars);
    }

    #[test]
    fn arithmetic_promotions() {
        let (p, _) =
            analyze_src("long f(char c, int i, unsigned u, long l) { return c + i + u + l; }");
        let f = p.func("f").expect("f");
        let crate::ast::Stmt::Return(Some(e)) = &f.body.as_ref().unwrap().stmts[0] else {
            panic!()
        };
        assert_eq!(*e.ty(), Type::Long, "widest operand wins");
    }

    #[test]
    fn function_pointer_call_types() {
        let (p, _) = analyze_src(
            "int add(int a, int b) { return a + b; }\n\
             int main(void) { int (*f)(int, int) = add; return f(2, 3); }",
        );
        assert!(p.func("main").is_some());
    }

    #[test]
    fn memcpy_type_mismatch_warns() {
        let (_, info) = analyze_src(
            "struct a { long x; }; struct b { char y[8]; };\n\
             void f(struct a *p, struct b *q) { memcpy(p, q, 8); }",
        );
        assert!(
            info.warnings.iter().any(|w| w.message.contains("memcpy")),
            "warnings: {:?}",
            info.warnings
        );
    }

    #[test]
    fn memcpy_via_char_or_void_does_not_warn() {
        let (_, info) = analyze_src(
            "struct a { long x; };\n\
             void f(struct a *p, struct a *q) {\n\
                 memcpy(p, q, 8);\n\
                 memcpy((void *) p, (char *) q, 8);\n\
             }",
        );
        assert!(info.warnings.is_empty(), "warnings: {:?}", info.warnings);
    }

    #[test]
    fn void_function_returning_value_is_an_error() {
        let e = analyze_err("void f(void) { return 3; }");
        assert!(e.message.contains("void"));
    }
}
