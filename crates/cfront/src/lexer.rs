//! Hand-written lexer for the ANSI C subset.
//!
//! Produces a token stream with byte spans. Comments (`/* */` and `//`) and
//! whitespace are skipped but their extents remain recoverable through the
//! spans of neighbouring tokens, which is what the source-to-source edit
//! list needs.

use crate::error::{FrontError, FrontResult, Phase};
use crate::span::Span;
use std::fmt;

/// Lexical token kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Integer literal (value already folded; `char` literals also become this).
    IntLit(i64),
    /// String literal (escape sequences resolved).
    StrLit(String),
    /// Identifier or keyword candidate.
    Ident(String),
    /// Keyword.
    Kw(Kw),
    /// Punctuation / operator.
    Punct(Punct),
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::IntLit(v) => write!(f, "{v}"),
            Tok::StrLit(s) => write!(f, "{s:?}"),
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::Kw(k) => write!(f, "{k:?}"),
            Tok::Punct(p) => write!(f, "{}", p.as_str()),
            Tok::Eof => write!(f, "<eof>"),
        }
    }
}

/// C keywords recognised by the subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Kw {
    Void,
    Char,
    Int,
    Long,
    Unsigned,
    Signed,
    Short,
    Struct,
    Union,
    Enum,
    Typedef,
    If,
    Else,
    While,
    Do,
    For,
    Switch,
    Case,
    Default,
    Break,
    Continue,
    Return,
    Sizeof,
    Static,
    Extern,
    Const,
    Register,
    Volatile,
    Auto,
}

fn keyword(word: &str) -> Option<Kw> {
    Some(match word {
        "void" => Kw::Void,
        "char" => Kw::Char,
        "int" => Kw::Int,
        "long" => Kw::Long,
        "unsigned" => Kw::Unsigned,
        "signed" => Kw::Signed,
        "short" => Kw::Short,
        "struct" => Kw::Struct,
        "union" => Kw::Union,
        "enum" => Kw::Enum,
        "typedef" => Kw::Typedef,
        "if" => Kw::If,
        "else" => Kw::Else,
        "while" => Kw::While,
        "do" => Kw::Do,
        "for" => Kw::For,
        "switch" => Kw::Switch,
        "case" => Kw::Case,
        "default" => Kw::Default,
        "break" => Kw::Break,
        "continue" => Kw::Continue,
        "return" => Kw::Return,
        "sizeof" => Kw::Sizeof,
        "static" => Kw::Static,
        "extern" => Kw::Extern,
        "const" => Kw::Const,
        "register" => Kw::Register,
        "volatile" => Kw::Volatile,
        "auto" => Kw::Auto,
        _ => return None,
    })
}

/// Punctuation and operator tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Punct {
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semi,
    Comma,
    Dot,
    Arrow,
    Ellipsis,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    PlusPlus,
    MinusMinus,
    Amp,
    Pipe,
    Caret,
    Tilde,
    Bang,
    Shl,
    Shr,
    Lt,
    Gt,
    Le,
    Ge,
    EqEq,
    NotEq,
    AmpAmp,
    PipePipe,
    Question,
    Colon,
    Assign,
    PlusEq,
    MinusEq,
    StarEq,
    SlashEq,
    PercentEq,
    AmpEq,
    PipeEq,
    CaretEq,
    ShlEq,
    ShrEq,
}

impl Punct {
    /// The literal source spelling of the token.
    pub fn as_str(self) -> &'static str {
        use Punct::*;
        match self {
            LParen => "(",
            RParen => ")",
            LBrace => "{",
            RBrace => "}",
            LBracket => "[",
            RBracket => "]",
            Semi => ";",
            Comma => ",",
            Dot => ".",
            Arrow => "->",
            Ellipsis => "...",
            Plus => "+",
            Minus => "-",
            Star => "*",
            Slash => "/",
            Percent => "%",
            PlusPlus => "++",
            MinusMinus => "--",
            Amp => "&",
            Pipe => "|",
            Caret => "^",
            Tilde => "~",
            Bang => "!",
            Shl => "<<",
            Shr => ">>",
            Lt => "<",
            Gt => ">",
            Le => "<=",
            Ge => ">=",
            EqEq => "==",
            NotEq => "!=",
            AmpAmp => "&&",
            PipePipe => "||",
            Question => "?",
            Colon => ":",
            Assign => "=",
            PlusEq => "+=",
            MinusEq => "-=",
            StarEq => "*=",
            SlashEq => "/=",
            PercentEq => "%=",
            AmpEq => "&=",
            PipeEq => "|=",
            CaretEq => "^=",
            ShlEq => "<<=",
            ShrEq => ">>=",
        }
    }
}

/// A token together with its source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token payload.
    pub tok: Tok,
    /// Byte extent in the original source.
    pub span: Span,
}

/// Tokenises `source` into a vector ending with a single [`Tok::Eof`].
///
/// # Errors
///
/// Returns a [`FrontError`] for unterminated comments/strings, malformed
/// numeric or character literals, and characters outside the language.
pub fn lex(source: &str) -> FrontResult<Vec<Token>> {
    Lexer {
        src: source.as_bytes(),
        pos: 0,
        toks: Vec::new(),
    }
    .run(source)
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    toks: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn run(mut self, source: &str) -> FrontResult<Vec<Token>> {
        loop {
            self.skip_trivia()?;
            let start = self.pos;
            let Some(&c) = self.src.get(self.pos) else {
                self.toks.push(Token {
                    tok: Tok::Eof,
                    span: Span::point(self.pos),
                });
                return Ok(self.toks);
            };
            let tok = match c {
                b'0'..=b'9' => self.number()?,
                b'\'' => self.char_lit()?,
                b'"' => self.string_lit()?,
                b'a'..=b'z' | b'A'..=b'Z' | b'_' => self.ident(),
                _ => self.punct(source)?,
            };
            self.toks.push(Token {
                tok,
                span: Span::new(start, self.pos),
            });
        }
    }

    fn err(&self, msg: impl Into<String>, start: usize) -> FrontError {
        FrontError::new(
            Phase::Lex,
            msg,
            Span::new(start, self.pos.min(self.src.len())),
        )
    }

    fn skip_trivia(&mut self) -> FrontResult<()> {
        loop {
            match self.src.get(self.pos) {
                Some(b' ' | b'\t' | b'\r' | b'\n') => self.pos += 1,
                Some(b'/') if self.src.get(self.pos + 1) == Some(&b'/') => {
                    while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
                        self.pos += 1;
                    }
                }
                Some(b'/') if self.src.get(self.pos + 1) == Some(&b'*') => {
                    let start = self.pos;
                    self.pos += 2;
                    loop {
                        if self.pos + 1 >= self.src.len() {
                            return Err(self.err("unterminated block comment", start));
                        }
                        if self.src[self.pos] == b'*' && self.src[self.pos + 1] == b'/' {
                            self.pos += 2;
                            break;
                        }
                        self.pos += 1;
                    }
                }
                // `#` directives are not part of the subset; treat a whole
                // line starting with '#' as trivia so pre-expanded sources
                // with #line markers still lex.
                Some(b'#') => {
                    while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
                        self.pos += 1;
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn number(&mut self) -> FrontResult<Tok> {
        let start = self.pos;
        let mut value: i64 = 0;
        if self.src[self.pos] == b'0' && matches!(self.src.get(self.pos + 1), Some(b'x' | b'X')) {
            self.pos += 2;
            let digits_start = self.pos;
            while let Some(&c) = self.src.get(self.pos) {
                let d = match c {
                    b'0'..=b'9' => (c - b'0') as i64,
                    b'a'..=b'f' => (c - b'a' + 10) as i64,
                    b'A'..=b'F' => (c - b'A' + 10) as i64,
                    _ => break,
                };
                value = value.wrapping_mul(16).wrapping_add(d);
                self.pos += 1;
            }
            if self.pos == digits_start {
                return Err(self.err("hex literal with no digits", start));
            }
        } else {
            while let Some(&c) = self.src.get(self.pos) {
                if !c.is_ascii_digit() {
                    break;
                }
                value = value.wrapping_mul(10).wrapping_add((c - b'0') as i64);
                self.pos += 1;
            }
        }
        // Swallow integer suffixes.
        while matches!(self.src.get(self.pos), Some(b'u' | b'U' | b'l' | b'L')) {
            self.pos += 1;
        }
        if matches!(self.src.get(self.pos), Some(b'.' | b'e' | b'E')) {
            return Err(self.err("floating-point literals are not supported", start));
        }
        Ok(Tok::IntLit(value))
    }

    fn escape(&mut self, start: usize) -> FrontResult<u8> {
        let Some(&c) = self.src.get(self.pos) else {
            return Err(self.err("unterminated escape sequence", start));
        };
        self.pos += 1;
        Ok(match c {
            b'n' => b'\n',
            b't' => b'\t',
            b'r' => b'\r',
            b'0' => 0,
            b'\\' => b'\\',
            b'\'' => b'\'',
            b'"' => b'"',
            b'a' => 7,
            b'b' => 8,
            b'f' => 12,
            b'v' => 11,
            _ => return Err(self.err(format!("unknown escape '\\{}'", c as char), start)),
        })
    }

    fn char_lit(&mut self) -> FrontResult<Tok> {
        let start = self.pos;
        self.pos += 1; // opening quote
        let Some(&c) = self.src.get(self.pos) else {
            return Err(self.err("unterminated character literal", start));
        };
        let value = if c == b'\\' {
            self.pos += 1;
            self.escape(start)?
        } else {
            self.pos += 1;
            c
        };
        if self.src.get(self.pos) != Some(&b'\'') {
            return Err(self.err("unterminated character literal", start));
        }
        self.pos += 1;
        Ok(Tok::IntLit(value as i64))
    }

    fn string_lit(&mut self) -> FrontResult<Tok> {
        let start = self.pos;
        let mut out = String::new();
        loop {
            // Adjacent string literals concatenate, per C.
            if self.src.get(self.pos) != Some(&b'"') {
                break;
            }
            self.pos += 1;
            loop {
                let Some(&c) = self.src.get(self.pos) else {
                    return Err(self.err("unterminated string literal", start));
                };
                match c {
                    b'"' => {
                        self.pos += 1;
                        break;
                    }
                    b'\\' => {
                        self.pos += 1;
                        let b = self.escape(start)?;
                        out.push(b as char);
                    }
                    b'\n' => return Err(self.err("newline in string literal", start)),
                    _ => {
                        out.push(c as char);
                        self.pos += 1;
                    }
                }
            }
            // Skip whitespace between adjacent literals only (not comments,
            // to keep the span contiguous enough for editing).
            let save = self.pos;
            while matches!(self.src.get(self.pos), Some(b' ' | b'\t' | b'\r' | b'\n')) {
                self.pos += 1;
            }
            if self.src.get(self.pos) != Some(&b'"') {
                self.pos = save;
                break;
            }
        }
        Ok(Tok::StrLit(out))
    }

    fn ident(&mut self) -> Tok {
        let start = self.pos;
        while let Some(&c) = self.src.get(self.pos) {
            if c.is_ascii_alphanumeric() || c == b'_' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let word = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii ident");
        match keyword(word) {
            Some(kw) => Tok::Kw(kw),
            None => Tok::Ident(word.to_string()),
        }
    }

    fn punct(&mut self, _source: &str) -> FrontResult<Tok> {
        use Punct::*;
        let start = self.pos;
        let rest = &self.src[self.pos..];
        let table: &[(&[u8], Punct)] = &[
            (b"...", Ellipsis),
            (b"<<=", ShlEq),
            (b">>=", ShrEq),
            (b"->", Arrow),
            (b"++", PlusPlus),
            (b"--", MinusMinus),
            (b"<<", Shl),
            (b">>", Shr),
            (b"<=", Le),
            (b">=", Ge),
            (b"==", EqEq),
            (b"!=", NotEq),
            (b"&&", AmpAmp),
            (b"||", PipePipe),
            (b"+=", PlusEq),
            (b"-=", MinusEq),
            (b"*=", StarEq),
            (b"/=", SlashEq),
            (b"%=", PercentEq),
            (b"&=", AmpEq),
            (b"|=", PipeEq),
            (b"^=", CaretEq),
            (b"(", LParen),
            (b")", RParen),
            (b"{", LBrace),
            (b"}", RBrace),
            (b"[", LBracket),
            (b"]", RBracket),
            (b";", Semi),
            (b",", Comma),
            (b".", Dot),
            (b"+", Plus),
            (b"-", Minus),
            (b"*", Star),
            (b"/", Slash),
            (b"%", Percent),
            (b"&", Amp),
            (b"|", Pipe),
            (b"^", Caret),
            (b"~", Tilde),
            (b"!", Bang),
            (b"<", Lt),
            (b">", Gt),
            (b"?", Question),
            (b":", Colon),
            (b"=", Assign),
        ];
        for (pat, punct) in table {
            if rest.starts_with(pat) {
                self.pos += pat.len();
                return Ok(Tok::Punct(*punct));
            }
        }
        self.pos += 1;
        Err(self.err(
            format!("unexpected character '{}'", self.src[start] as char),
            start,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn lexes_simple_declaration() {
        assert_eq!(
            kinds("int x = 42;"),
            vec![
                Tok::Kw(Kw::Int),
                Tok::Ident("x".into()),
                Tok::Punct(Punct::Assign),
                Tok::IntLit(42),
                Tok::Punct(Punct::Semi),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn maximal_munch_for_operators() {
        assert_eq!(
            kinds("a+++b"),
            vec![
                Tok::Ident("a".into()),
                Tok::Punct(Punct::PlusPlus),
                Tok::Punct(Punct::Plus),
                Tok::Ident("b".into()),
                Tok::Eof
            ]
        );
        assert_eq!(kinds("x<<=1")[1], Tok::Punct(Punct::ShlEq));
        assert_eq!(kinds("p->f")[1], Tok::Punct(Punct::Arrow));
    }

    #[test]
    fn hex_and_suffixes() {
        assert_eq!(kinds("0x1fUL")[0], Tok::IntLit(0x1f));
        assert_eq!(kinds("10L")[0], Tok::IntLit(10));
    }

    #[test]
    fn char_literals_and_escapes() {
        assert_eq!(kinds("'a'")[0], Tok::IntLit(97));
        assert_eq!(kinds("'\\n'")[0], Tok::IntLit(10));
        assert_eq!(kinds("'\\0'")[0], Tok::IntLit(0));
    }

    #[test]
    fn string_concatenation() {
        assert_eq!(kinds("\"ab\" \"cd\"")[0], Tok::StrLit("abcd".into()));
    }

    #[test]
    fn comments_are_trivia() {
        assert_eq!(
            kinds("a /* mid */ b // tail\nc"),
            vec![
                Tok::Ident("a".into()),
                Tok::Ident("b".into()),
                Tok::Ident("c".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn hash_lines_skipped() {
        assert_eq!(
            kinds("#include <stdio.h>\nint"),
            vec![Tok::Kw(Kw::Int), Tok::Eof]
        );
    }

    #[test]
    fn spans_cover_tokens() {
        let toks = lex("ab + cd").unwrap();
        assert_eq!(toks[0].span, Span::new(0, 2));
        assert_eq!(toks[1].span, Span::new(3, 4));
        assert_eq!(toks[2].span, Span::new(5, 7));
    }

    #[test]
    fn unterminated_comment_errors() {
        assert!(lex("/* never ends").is_err());
    }

    #[test]
    fn float_literal_rejected() {
        assert!(lex("1.5").is_err());
    }

    #[test]
    fn keywords_recognised() {
        assert_eq!(kinds("while")[0], Tok::Kw(Kw::While));
        assert_eq!(kinds("whilex")[0], Tok::Ident("whilex".into()));
    }
}
