//! Pretty-printer: renders the (possibly annotated) AST back to C source.
//!
//! `KEEP_LIVE` and `GC_same_obj` annotation nodes render as the calls the
//! paper's preprocessor emits, so the output of the annotator is itself
//! valid input for an ordinary C compiler given the runtime declarations.

use crate::ast::*;
use crate::types::{Type, TypeTable};
use std::fmt::Write;

/// Renders a whole program.
pub fn program_to_c(prog: &Program) -> String {
    let mut p = Printer {
        types: &prog.types,
        out: String::new(),
        indent: 0,
    };
    for (name, value) in &prog.enum_consts {
        let _ = writeln!(p.out, "enum {{ {name} = {value} }};");
    }
    // Emit record definitions: forward tags first (so self/mutual pointers
    // resolve), then bodies.
    for i in 0..prog.types.len() {
        let rec = prog.types.record(crate::types::RecordId(i as u32));
        if let Some(tag) = &rec.tag {
            let kw = if rec.is_union { "union" } else { "struct" };
            let _ = writeln!(p.out, "{kw} {tag};");
        }
    }
    for i in 0..prog.types.len() {
        let rec = prog.types.record(crate::types::RecordId(i as u32));
        if !rec.complete {
            continue;
        }
        let Some(tag) = &rec.tag else { continue };
        let kw = if rec.is_union { "union" } else { "struct" };
        let _ = writeln!(p.out, "{kw} {tag} {{");
        for f in &rec.fields {
            let _ = writeln!(p.out, "    {};", render_decl(&f.ty, &f.name, &prog.types));
        }
        p.out.push_str("};\n");
    }
    for g in &prog.globals {
        p.global(g);
    }
    for f in &prog.funcs {
        p.func(f);
    }
    p.out
}

/// Renders a single expression.
pub fn expr_to_c(e: &Expr, types: &TypeTable) -> String {
    let mut p = Printer {
        types,
        out: String::new(),
        indent: 0,
    };
    p.expr(e, 0);
    p.out
}

/// Renders a statement (used in tests).
pub fn stmt_to_c(s: &Stmt, types: &TypeTable) -> String {
    let mut p = Printer {
        types,
        out: String::new(),
        indent: 0,
    };
    p.stmt(s);
    p.out
}

struct Printer<'a> {
    types: &'a TypeTable,
    out: String,
    indent: usize,
}

impl Printer<'_> {
    fn pad(&mut self) {
        for _ in 0..self.indent {
            self.out.push_str("    ");
        }
    }

    /// Renders `ty declarator-name`, C-style (arrays/functions on the right).
    fn decl(&mut self, ty: &Type, name: &str) {
        let rendered = render_decl(ty, name, self.types);
        self.out.push_str(&rendered);
    }

    /// Prints declarators that share one base-type spelling as a single
    /// declaration: `base d1 = e1, d2, …` (no trailing `;`).
    fn decl_run(&mut self, decls: &[LocalDecl]) {
        for (i, d) in decls.iter().enumerate() {
            let (base, declarator) = render_decl_parts(&d.ty, &d.name, self.types);
            if i == 0 {
                self.out.push_str(&base);
                self.out.push(' ');
            } else {
                self.out.push_str(", ");
            }
            self.out.push_str(&declarator);
            if let Some(init) = &d.init {
                self.out.push_str(" = ");
                self.expr(init, 2);
            }
        }
    }

    fn global(&mut self, g: &GlobalDecl) {
        self.decl(&g.ty, &g.name);
        if let Some(init) = &g.init {
            self.out.push_str(" = ");
            self.init(init);
        }
        self.out.push_str(";\n");
    }

    fn init(&mut self, init: &Init) {
        match init {
            Init::Scalar(e) => self.expr(e, 2),
            Init::List(items) => {
                self.out.push('{');
                for (i, it) in items.iter().enumerate() {
                    if i > 0 {
                        self.out.push_str(", ");
                    }
                    self.init(it);
                }
                self.out.push('}');
            }
        }
    }

    fn func(&mut self, f: &FuncDef) {
        let ret = render_decl(&f.ret, "", self.types);
        let _ = write!(self.out, "{} {}(", ret.trim_end(), f.name);
        if f.params.is_empty() && !f.varargs {
            self.out.push_str("void");
        }
        for (i, p) in f.params.iter().enumerate() {
            if i > 0 {
                self.out.push_str(", ");
            }
            let name = if p.name.is_empty() {
                String::new()
            } else {
                p.name.clone()
            };
            let rendered = render_decl(&p.ty, &name, self.types);
            self.out.push_str(rendered.trim_end());
        }
        if f.varargs {
            self.out.push_str(", ...");
        }
        self.out.push(')');
        match &f.body {
            Some(b) => {
                self.out.push(' ');
                self.block(b);
                self.out.push('\n');
            }
            None => self.out.push_str(";\n"),
        }
    }

    fn block(&mut self, b: &Block) {
        self.out.push_str("{\n");
        self.indent += 1;
        for s in &b.stmts {
            self.stmt(s);
        }
        self.indent -= 1;
        self.pad();
        self.out.push('}');
    }

    fn stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Expr(e) => {
                self.pad();
                self.expr(e, 0);
                self.out.push_str(";\n");
            }
            Stmt::Decl(decls) => {
                // One parsed declaration statement keeps its declarators in
                // one `Stmt::Decl`; print them back as one statement
                // (`long i = 0, *p;`) so the round-trip preserves the
                // grouping. Runs of differing base spellings (only possible
                // in hand-built trees) fall into separate statements.
                let mut i = 0;
                while i < decls.len() {
                    let (base, _) = render_decl_parts(&decls[i].ty, &decls[i].name, self.types);
                    let run = decls[i..]
                        .iter()
                        .take_while(|d| render_decl_parts(&d.ty, &d.name, self.types).0 == base)
                        .count();
                    self.pad();
                    self.decl_run(&decls[i..i + run]);
                    self.out.push_str(";\n");
                    i += run;
                }
            }
            Stmt::Block(b) => {
                self.pad();
                self.block(b);
                self.out.push('\n');
            }
            Stmt::If(c, t, e) => {
                self.pad();
                self.out.push_str("if (");
                self.expr(c, 0);
                if e.is_some() && swallows_else(t) {
                    // Dangling else: an unbraced then-branch ending in an
                    // else-less `if` would capture our `else` on reparse.
                    self.out.push_str(") {\n");
                    self.indent += 1;
                    self.stmt(t);
                    self.indent -= 1;
                    self.pad();
                    self.out.push_str("}\n");
                } else {
                    self.out.push_str(")\n");
                    self.indented(t);
                }
                if let Some(e) = e {
                    self.pad();
                    self.out.push_str("else\n");
                    self.indented(e);
                }
            }
            Stmt::While(c, b) => {
                self.pad();
                self.out.push_str("while (");
                self.expr(c, 0);
                self.out.push_str(")\n");
                self.indented(b);
            }
            Stmt::DoWhile(b, c) => {
                self.pad();
                self.out.push_str("do\n");
                self.indented(b);
                self.pad();
                self.out.push_str("while (");
                self.expr(c, 0);
                self.out.push_str(");\n");
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                self.pad();
                self.out.push_str("for (");
                match init.as_deref() {
                    Some(Stmt::Expr(e)) => {
                        self.expr(e, 0);
                        self.out.push_str("; ");
                    }
                    Some(Stmt::Decl(decls)) => {
                        // A for-init is a single declaration: the base type
                        // is spelled once, declarators follow comma-separated.
                        self.decl_run(decls);
                        self.out.push_str("; ");
                    }
                    _ => self.out.push_str("; "),
                }
                if let Some(c) = cond {
                    self.expr(c, 0);
                }
                self.out.push_str("; ");
                if let Some(st) = step {
                    self.expr(st, 0);
                }
                self.out.push_str(")\n");
                self.indented(body);
            }
            Stmt::Switch(c, b) => {
                self.pad();
                self.out.push_str("switch (");
                self.expr(c, 0);
                self.out.push_str(")\n");
                self.indented(b);
            }
            Stmt::Case(v) => {
                self.pad();
                let _ = writeln!(self.out, "case {v}:");
            }
            Stmt::Default => {
                self.pad();
                self.out.push_str("default:\n");
            }
            Stmt::Break => {
                self.pad();
                self.out.push_str("break;\n");
            }
            Stmt::Continue => {
                self.pad();
                self.out.push_str("continue;\n");
            }
            Stmt::Return(None) => {
                self.pad();
                self.out.push_str("return;\n");
            }
            Stmt::Return(Some(e)) => {
                self.pad();
                self.out.push_str("return ");
                self.expr(e, 0);
                self.out.push_str(";\n");
            }
            Stmt::Empty => {
                self.pad();
                self.out.push_str(";\n");
            }
        }
    }

    fn indented(&mut self, s: &Stmt) {
        if matches!(s, Stmt::Block(_)) {
            self.stmt(s);
        } else {
            self.indent += 1;
            self.stmt(s);
            self.indent -= 1;
        }
    }

    /// Prints `e` parenthesised if its precedence is below `min_prec`.
    /// Precedence scale: 0 comma, 1 assignment, 2 conditional, 3.. binary,
    /// 14 unary, 15 postfix/primary.
    fn expr(&mut self, e: &Expr, min_prec: u8) {
        let prec = expr_prec(e);
        if prec < min_prec {
            self.out.push('(');
        }
        match &e.kind {
            ExprKind::IntLit(v) => {
                let _ = write!(self.out, "{v}");
            }
            ExprKind::StrLit(s) => {
                self.out.push('"');
                for ch in s.chars() {
                    match ch {
                        '\n' => self.out.push_str("\\n"),
                        '\t' => self.out.push_str("\\t"),
                        '\r' => self.out.push_str("\\r"),
                        '"' => self.out.push_str("\\\""),
                        '\\' => self.out.push_str("\\\\"),
                        '\0' => self.out.push_str("\\0"),
                        // The lexer's remaining named escapes: without
                        // these, \a \b \f \v round-tripped as raw control
                        // bytes.
                        '\x07' => self.out.push_str("\\a"),
                        '\x08' => self.out.push_str("\\b"),
                        '\x0C' => self.out.push_str("\\f"),
                        '\x0B' => self.out.push_str("\\v"),
                        c => self.out.push(c),
                    }
                }
                self.out.push('"');
            }
            ExprKind::Ident(name) => self.out.push_str(name),
            ExprKind::Unary(op, inner) => {
                self.out.push_str(op.as_str());
                // Guard token gluing: `- -x` / `+ +x` (sign pairs), `- --x`
                // / `+ ++x` (prefix steps), and `- -5` (a directly-built
                // negative literal) would otherwise lex as `--` / `++`.
                let glues = match op {
                    UnOp::Neg => match &inner.kind {
                        ExprKind::Unary(UnOp::Neg | UnOp::Plus, _) => true,
                        ExprKind::IncDec {
                            pre: true,
                            inc: false,
                            ..
                        } => true,
                        ExprKind::IntLit(v) => *v < 0,
                        _ => false,
                    },
                    UnOp::Plus => matches!(
                        inner.kind,
                        ExprKind::Unary(UnOp::Neg | UnOp::Plus, _)
                            | ExprKind::IncDec {
                                pre: true,
                                inc: true,
                                ..
                            }
                    ),
                    _ => false,
                };
                if glues {
                    self.out.push(' ');
                }
                self.expr(inner, 14);
            }
            ExprKind::Deref(inner) => {
                self.out.push('*');
                self.expr(inner, 14);
            }
            ExprKind::AddrOf(inner) => {
                self.out.push('&');
                // `&&` would lex as logical-and.
                if matches!(inner.kind, ExprKind::AddrOf(_)) {
                    self.out.push(' ');
                }
                self.expr(inner, 14);
            }
            ExprKind::Binary(op, l, r) => {
                let p = bin_prec(*op);
                self.expr(l, p);
                let _ = write!(self.out, " {} ", op.as_str());
                self.expr(r, p + 1);
            }
            ExprKind::Assign { op, lhs, rhs } => {
                self.expr(lhs, 14);
                match op {
                    Some(op) => {
                        let _ = write!(self.out, " {}= ", op.as_str());
                    }
                    None => self.out.push_str(" = "),
                }
                self.expr(rhs, 1);
            }
            ExprKind::IncDec { inc, pre, target } => {
                let tok = if *inc { "++" } else { "--" };
                if *pre {
                    self.out.push_str(tok);
                    self.expr(target, 14);
                } else {
                    self.expr(target, 15);
                    self.out.push_str(tok);
                }
            }
            ExprKind::Cond(c, t, f) => {
                self.expr(c, 3);
                self.out.push_str(" ? ");
                self.expr(t, 0);
                self.out.push_str(" : ");
                self.expr(f, 2);
            }
            ExprKind::Comma(l, r) => {
                self.expr(l, 0);
                self.out.push_str(", ");
                self.expr(r, 1);
            }
            ExprKind::Call(callee, args) => {
                self.expr(callee, 15);
                self.out.push('(');
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        self.out.push_str(", ");
                    }
                    self.expr(a, 1);
                }
                self.out.push(')');
            }
            ExprKind::Index(a, i) => {
                self.expr(a, 15);
                self.out.push('[');
                self.expr(i, 0);
                self.out.push(']');
            }
            ExprKind::Member { obj, field, arrow } => {
                // `587.x` would lex as a floating-point literal: a dot
                // directly after an integer literal needs parentheses.
                let min = if !arrow && matches!(obj.kind, ExprKind::IntLit(_)) {
                    16
                } else {
                    15
                };
                self.expr(obj, min);
                self.out.push_str(if *arrow { "->" } else { "." });
                self.out.push_str(field);
            }
            ExprKind::Cast(ty, inner) => {
                let _ = write!(self.out, "({})", render_decl(ty, "", self.types).trim_end());
                self.expr(inner, 14);
            }
            ExprKind::SizeofType(ty) => {
                let _ = write!(
                    self.out,
                    "sizeof({})",
                    render_decl(ty, "", self.types).trim_end()
                );
            }
            ExprKind::SizeofExpr(inner) => {
                self.out.push_str("sizeof ");
                // `sizeof (int)x` lexes as sizeof(type) followed by a stray
                // token; a cast operand needs explicit parentheses.
                let min = if matches!(inner.kind, ExprKind::Cast(..)) {
                    15
                } else {
                    14
                };
                self.expr(inner, min);
            }
            ExprKind::KeepLive { value, base } => {
                self.out.push_str("KEEP_LIVE(");
                self.expr(value, 1);
                self.out.push_str(", ");
                match base {
                    Some(b) => self.expr(b, 1),
                    None => self.out.push('0'),
                }
                self.out.push(')');
            }
            ExprKind::CheckSame { value, base } => {
                self.out.push_str("GC_same_obj(");
                self.expr(value, 1);
                self.out.push_str(", ");
                self.expr(base, 1);
                self.out.push(')');
            }
        }
        if prec < min_prec {
            self.out.push(')');
        }
    }
}

/// Whether `s`, printed unbraced directly before an `else`, would end in
/// an else-less `if` that captures it (the dangling-else ambiguity).
fn swallows_else(s: &Stmt) -> bool {
    match s {
        Stmt::If(_, _, None) => true,
        Stmt::If(_, _, Some(e)) => swallows_else(e),
        Stmt::While(_, b) | Stmt::Switch(_, b) => swallows_else(b),
        Stmt::For { body, .. } => swallows_else(body),
        _ => false,
    }
}

fn expr_prec(e: &Expr) -> u8 {
    match &e.kind {
        ExprKind::Comma(..) => 0,
        ExprKind::Assign { .. } => 1,
        ExprKind::Cond(..) => 2,
        ExprKind::Binary(op, ..) => bin_prec(*op),
        ExprKind::Unary(..)
        | ExprKind::Deref(..)
        | ExprKind::AddrOf(..)
        | ExprKind::Cast(..)
        | ExprKind::SizeofExpr(..)
        // `sizeof(type)` is a unary expression: a postfix operator glued
        // onto it (`sizeof(int).x`) re-lexes as sizeof-of-type followed by
        // a stray token, so it must parenthesize in postfix contexts.
        | ExprKind::SizeofType(..)
        | ExprKind::IncDec { pre: true, .. } => 14,
        _ => 15,
    }
}

fn bin_prec(op: BinOp) -> u8 {
    use BinOp::*;
    match op {
        LogOr => 4,
        LogAnd => 5,
        BitOr => 6,
        BitXor => 7,
        BitAnd => 8,
        Eq | Ne => 9,
        Lt | Gt | Le | Ge => 10,
        Shl | Shr => 11,
        Add | Sub => 12,
        Mul | Div | Rem => 13,
    }
}

/// Renders a C declaration of `name` with type `ty` (no trailing `;`).
pub fn render_decl(ty: &Type, name: &str, types: &TypeTable) -> String {
    let (base, decl) = render_decl_parts(ty, name, types);
    if decl.is_empty() {
        base
    } else {
        format!("{base} {decl}")
    }
}

/// Splits a declaration into its base-type spelling and the declarator
/// (`long *v[4]` → `("long", "*v[4]")`), so several declarators sharing one
/// base can be printed as a single comma-separated declaration.
pub fn render_decl_parts(ty: &Type, name: &str, types: &TypeTable) -> (String, String) {
    // Classic inside-out rendering.
    fn inner(ty: &Type, acc: String, types: &TypeTable) -> (String, String) {
        match ty {
            Type::Ptr(p) => {
                let needs_paren = matches!(p.as_ref(), Type::Array(..) | Type::Func(_));
                let acc = if needs_paren {
                    format!("(*{acc})")
                } else {
                    format!("*{acc}")
                };
                inner(p, acc, types)
            }
            Type::Array(elem, n) => {
                let dim = match n {
                    Some(n) => format!("[{n}]"),
                    None => "[]".to_string(),
                };
                inner(elem, format!("{acc}{dim}"), types)
            }
            Type::Func(ft) => {
                let mut params = String::new();
                if ft.params.is_empty() && !ft.varargs {
                    params.push_str("void");
                }
                for (i, p) in ft.params.iter().enumerate() {
                    if i > 0 {
                        params.push_str(", ");
                    }
                    params.push_str(render_decl(p, "", types).trim_end());
                }
                if ft.varargs {
                    if !ft.params.is_empty() {
                        params.push_str(", ");
                    }
                    params.push_str("...");
                }
                inner(&ft.ret, format!("{acc}({params})"), types)
            }
            base => (base.display(types).to_string(), acc),
        }
    }
    inner(ty, name.to_string(), types)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse, parse_expr};

    fn roundtrip_expr(src: &str) -> String {
        let e = parse_expr(src).unwrap();
        expr_to_c(&e, &TypeTable::new())
    }

    #[test]
    fn renders_precedence_correctly() {
        assert_eq!(roundtrip_expr("(a + b) * c"), "(a + b) * c");
        assert_eq!(roundtrip_expr("a + b * c"), "a + b * c");
        assert_eq!(roundtrip_expr("*p++"), "*p++");
        assert_eq!(roundtrip_expr("(*p).f"), "(*p).f");
    }

    #[test]
    fn renders_decl_shapes() {
        let t = TypeTable::new();
        assert_eq!(render_decl(&Type::Int, "x", &t), "int x");
        assert_eq!(render_decl(&Type::Char.ptr_to(), "p", &t), "char *p");
        assert_eq!(
            render_decl(&Type::Array(Box::new(Type::Int.ptr_to()), Some(4)), "v", &t),
            "int *v[4]"
        );
        let fp = Type::Func(Box::new(crate::types::FuncType {
            ret: Type::Int,
            params: vec![Type::Char.ptr_to()],
            varargs: false,
        }))
        .ptr_to();
        assert_eq!(render_decl(&fp, "handler", &t), "int (*handler)(char *)");
    }

    #[test]
    fn program_roundtrips_through_parser() {
        let src = "struct node { int v; struct node *next; };\n\
                   int sum(struct node *n) { int s = 0; while (n) { s += n->v; n = n->next; } return s; }";
        let prog = parse(src).unwrap();
        let printed = program_to_c(&prog);
        // The printed output must itself parse.
        let reparsed = parse(&printed);
        assert!(reparsed.is_ok(), "reparse failed for:\n{printed}");
    }

    #[test]
    fn string_escapes_roundtrip() {
        assert_eq!(roundtrip_expr("\"a\\nb\\\"c\""), "\"a\\nb\\\"c\"");
    }
}
