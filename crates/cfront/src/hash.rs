//! Structural (content) hashing over normalized ASTs.
//!
//! The compilation cache keys every pipeline stage on the *structure* of
//! its input program, so two sources that differ only in whitespace,
//! comments, or other formatting share one key. The hash walks exactly
//! the shape that [`crate::normalize`] canonicalizes: node ids, spans,
//! and sema-filled types are excluded; everything semantic — literals,
//! identifier names, operator choice, declaration order, record layout —
//! is included. `hash(p) == hash(normalize_program(p))` by construction
//! (pinned by a test below), without paying for the clone `normalize`
//! performs.
//!
//! The hash is a deterministic 64-bit FNV-1a over a tagged pre-order
//! serialization: every enum variant contributes a distinct tag byte and
//! every list its length, so `{1; 2;}` and `{12;}` cannot collide by
//! concatenation. 64 bits is plenty for an in-process memoization table
//! (the fuzz suite property-tests the corpus for collisions); the cache
//! additionally stores whole artifacts, never just hashes, so an
//! astronomically unlikely collision would at worst share an artifact
//! between programs the equality-checked key deemed identical.

use crate::ast::{Block, Expr, ExprKind, FuncDef, GlobalDecl, Init, Param, Program, Stmt};
use crate::types::{Type, TypeTable};
use std::hash::Hash;

/// Per-function and whole-program structural hashes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgramHashes {
    /// The whole-program hash: types, globals, enum constants, and every
    /// function, in declaration order. This is the sound memoization key
    /// — function bodies are compiled against the program's record
    /// layouts and globals, so per-function hashes alone are not.
    pub whole: u64,
    /// `(name, hash)` per function, in declaration order. Function hashes
    /// cover the signature and body but reference record types by table
    /// index, so they are only comparable between programs whose type
    /// tables agree (which the whole-program hash certifies).
    pub funcs: Vec<(String, u64)>,
}

/// Hashes a whole program structurally (spans/ids/types excluded).
pub fn program_hash(p: &Program) -> u64 {
    program_hashes(p).whole
}

/// Computes the whole-program hash plus per-function hashes in one walk.
pub fn program_hashes(p: &Program) -> ProgramHashes {
    let mut funcs = Vec::with_capacity(p.funcs.len());
    let mut w = StructHasher::new();
    w.tag(b'P');
    hash_type_table(&mut w, &p.types);
    w.len(p.enum_consts.len());
    for (name, v) in &p.enum_consts {
        w.str(name);
        w.i64(*v);
    }
    w.len(p.globals.len());
    for g in &p.globals {
        hash_global(&mut w, g);
    }
    w.len(p.funcs.len());
    for f in &p.funcs {
        let fh = function_hash(f);
        funcs.push((f.name.clone(), fh));
        w.u64(fh);
    }
    ProgramHashes {
        whole: w.finish(),
        funcs,
    }
}

/// Hashes one function definition or prototype structurally.
pub fn function_hash(f: &FuncDef) -> u64 {
    let mut w = StructHasher::new();
    w.tag(b'F');
    w.str(&f.name);
    w.ty(&f.ret);
    w.len(f.params.len());
    for p in &f.params {
        hash_param(&mut w, p);
    }
    w.bool(f.varargs);
    match &f.body {
        Some(b) => {
            w.tag(1);
            hash_block(&mut w, b);
        }
        None => w.tag(0),
    }
    w.finish()
}

struct StructHasher {
    h: gccache_fnv::Fnv1a,
}

// A tiny inlined FNV-1a so cfront stays dependency-free (gccache depends
// on nothing, but cfront is the bottom of the crate graph and should not
// grow edges for 10 lines of arithmetic).
mod gccache_fnv {
    pub struct Fnv1a(pub u64);
    impl Fnv1a {
        pub fn new() -> Self {
            Fnv1a(0xcbf2_9ce4_8422_2325)
        }
        pub fn write(&mut self, bytes: &[u8]) {
            for &b in bytes {
                self.0 ^= u64::from(b);
                self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
    }
    impl std::hash::Hasher for Fnv1a {
        fn finish(&self) -> u64 {
            self.0
        }
        fn write(&mut self, bytes: &[u8]) {
            Fnv1a::write(self, bytes);
        }
    }
}

impl StructHasher {
    fn new() -> Self {
        StructHasher {
            h: gccache_fnv::Fnv1a::new(),
        }
    }

    fn tag(&mut self, t: u8) {
        self.h.write(&[t]);
    }

    fn u64(&mut self, v: u64) {
        self.h.write(&v.to_le_bytes());
    }

    fn i64(&mut self, v: i64) {
        self.h.write(&v.to_le_bytes());
    }

    fn len(&mut self, n: usize) {
        self.u64(n as u64);
    }

    fn bool(&mut self, b: bool) {
        self.tag(u8::from(b));
    }

    fn str(&mut self, s: &str) {
        self.len(s.len());
        self.h.write(s.as_bytes());
    }

    fn ty(&mut self, t: &Type) {
        // `Type` derives `Hash` (ids and spans never appear inside it),
        // so the derived walk is exactly the structural one.
        t.hash(&mut self.h);
    }

    fn finish(&self) -> u64 {
        use std::hash::Hasher as _;
        self.h.finish()
    }
}

fn hash_type_table(w: &mut StructHasher, t: &TypeTable) {
    w.len(t.len());
    for i in 0..t.len() {
        let r = t.record(crate::types::RecordId(i as u32));
        match &r.tag {
            Some(tag) => {
                w.tag(1);
                w.str(tag);
            }
            None => w.tag(0),
        }
        w.bool(r.is_union);
        w.bool(r.complete);
        w.u64(r.size);
        w.u64(r.align);
        w.len(r.fields.len());
        for f in &r.fields {
            w.str(&f.name);
            w.ty(&f.ty);
            w.u64(f.offset);
        }
    }
}

fn hash_param(w: &mut StructHasher, p: &Param) {
    w.str(&p.name);
    w.ty(&p.ty);
}

fn hash_global(w: &mut StructHasher, g: &GlobalDecl) {
    w.tag(b'G');
    w.str(&g.name);
    w.ty(&g.ty);
    match &g.init {
        Some(i) => {
            w.tag(1);
            hash_init(w, i);
        }
        None => w.tag(0),
    }
}

fn hash_init(w: &mut StructHasher, i: &Init) {
    match i {
        Init::Scalar(e) => {
            w.tag(1);
            hash_expr(w, e);
        }
        Init::List(items) => {
            w.tag(2);
            w.len(items.len());
            for it in items {
                hash_init(w, it);
            }
        }
    }
}

fn hash_block(w: &mut StructHasher, b: &Block) {
    w.len(b.stmts.len());
    for s in &b.stmts {
        hash_stmt(w, s);
    }
}

fn hash_stmt(w: &mut StructHasher, s: &Stmt) {
    match s {
        Stmt::Expr(e) => {
            w.tag(1);
            hash_expr(w, e);
        }
        Stmt::Decl(decls) => {
            w.tag(2);
            w.len(decls.len());
            for d in decls {
                w.str(&d.name);
                w.ty(&d.ty);
                match &d.init {
                    Some(e) => {
                        w.tag(1);
                        hash_expr(w, e);
                    }
                    None => w.tag(0),
                }
            }
        }
        Stmt::Block(b) => {
            w.tag(3);
            hash_block(w, b);
        }
        Stmt::If(c, t, e) => {
            w.tag(4);
            hash_expr(w, c);
            hash_stmt(w, t);
            match e {
                Some(e) => {
                    w.tag(1);
                    hash_stmt(w, e);
                }
                None => w.tag(0),
            }
        }
        Stmt::While(c, b) => {
            w.tag(5);
            hash_expr(w, c);
            hash_stmt(w, b);
        }
        Stmt::DoWhile(b, c) => {
            w.tag(6);
            hash_stmt(w, b);
            hash_expr(w, c);
        }
        Stmt::For {
            init,
            cond,
            step,
            body,
        } => {
            w.tag(7);
            match init {
                Some(i) => {
                    w.tag(1);
                    hash_stmt(w, i);
                }
                None => w.tag(0),
            }
            match cond {
                Some(c) => {
                    w.tag(1);
                    hash_expr(w, c);
                }
                None => w.tag(0),
            }
            match step {
                Some(s) => {
                    w.tag(1);
                    hash_expr(w, s);
                }
                None => w.tag(0),
            }
            hash_stmt(w, body);
        }
        Stmt::Switch(c, b) => {
            w.tag(8);
            hash_expr(w, c);
            hash_stmt(w, b);
        }
        Stmt::Case(v) => {
            w.tag(9);
            w.i64(*v);
        }
        Stmt::Default => w.tag(10),
        Stmt::Break => w.tag(11),
        Stmt::Continue => w.tag(12),
        Stmt::Return(e) => {
            w.tag(13);
            match e {
                Some(e) => {
                    w.tag(1);
                    hash_expr(w, e);
                }
                None => w.tag(0),
            }
        }
        Stmt::Empty => w.tag(14),
    }
}

fn hash_expr(w: &mut StructHasher, e: &Expr) {
    // id, span, and ty are deliberately not written: the hash must agree
    // for any two programs `normalize_program` maps to the same tree.
    match &e.kind {
        ExprKind::IntLit(v) => {
            w.tag(1);
            w.i64(*v);
        }
        ExprKind::StrLit(s) => {
            w.tag(2);
            w.str(s);
        }
        ExprKind::Ident(name) => {
            w.tag(3);
            w.str(name);
        }
        ExprKind::Unary(op, x) => {
            w.tag(4);
            op.hash(&mut w.h);
            hash_expr(w, x);
        }
        ExprKind::Deref(x) => {
            w.tag(5);
            hash_expr(w, x);
        }
        ExprKind::AddrOf(x) => {
            w.tag(6);
            hash_expr(w, x);
        }
        ExprKind::Binary(op, l, r) => {
            w.tag(7);
            op.hash(&mut w.h);
            hash_expr(w, l);
            hash_expr(w, r);
        }
        ExprKind::Assign { op, lhs, rhs } => {
            w.tag(8);
            match op {
                Some(op) => {
                    w.tag(1);
                    op.hash(&mut w.h);
                }
                None => w.tag(0),
            }
            hash_expr(w, lhs);
            hash_expr(w, rhs);
        }
        ExprKind::IncDec { inc, pre, target } => {
            w.tag(9);
            w.bool(*inc);
            w.bool(*pre);
            hash_expr(w, target);
        }
        ExprKind::Cond(c, t, f) => {
            w.tag(10);
            hash_expr(w, c);
            hash_expr(w, t);
            hash_expr(w, f);
        }
        ExprKind::Comma(l, r) => {
            w.tag(11);
            hash_expr(w, l);
            hash_expr(w, r);
        }
        ExprKind::Call(callee, args) => {
            w.tag(12);
            hash_expr(w, callee);
            w.len(args.len());
            for a in args {
                hash_expr(w, a);
            }
        }
        ExprKind::Index(a, i) => {
            w.tag(13);
            hash_expr(w, a);
            hash_expr(w, i);
        }
        ExprKind::Member { obj, field, arrow } => {
            w.tag(14);
            hash_expr(w, obj);
            w.str(field);
            w.bool(*arrow);
        }
        ExprKind::Cast(ty, x) => {
            w.tag(15);
            w.ty(ty);
            hash_expr(w, x);
        }
        ExprKind::SizeofType(ty) => {
            w.tag(16);
            w.ty(ty);
        }
        ExprKind::SizeofExpr(x) => {
            w.tag(17);
            hash_expr(w, x);
        }
        ExprKind::KeepLive { value, base } => {
            w.tag(18);
            hash_expr(w, value);
            match base {
                Some(b) => {
                    w.tag(1);
                    hash_expr(w, b);
                }
                None => w.tag(0),
            }
        }
        ExprKind::CheckSame { value, base } => {
            w.tag(19);
            hash_expr(w, value);
            hash_expr(w, base);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::normalize::normalize_program;
    use crate::parse;

    const SRC: &str = r#"
        struct node { long v; struct node *next; };
        int COUNT = 3;
        int sum(struct node *n) {
            int s = 0;
            while (n) { s += (int) n->v; n = n->next; }
            return s;
        }
        int main(void) {
            struct node *head = 0;
            long i;
            for (i = 0; i < COUNT; i++) {
                struct node *c = (struct node *) malloc(sizeof(struct node));
                c->v = i; c->next = head; head = c;
            }
            return sum(head);
        }
    "#;

    #[test]
    fn whitespace_and_comments_do_not_change_the_hash() {
        let a = parse(SRC).unwrap();
        let squeezed: String = SRC
            .lines()
            .map(str::trim)
            .collect::<Vec<_>>()
            .join("\n/* reformatted */\n");
        let b = parse(&squeezed).unwrap();
        assert_eq!(program_hash(&a), program_hash(&b));
        assert_eq!(program_hashes(&a).funcs, program_hashes(&b).funcs);
    }

    #[test]
    fn hash_agrees_with_the_normalized_tree() {
        let mut p = parse(SRC).unwrap();
        let h_parsed = program_hash(&p);
        let normalized = normalize_program(&p);
        assert_eq!(h_parsed, program_hash(&normalized));
        // Sema fills `ty` in place; the hash must not see it.
        crate::analyze(&mut p).unwrap();
        assert_eq!(h_parsed, program_hash(&p));
    }

    #[test]
    fn semantic_edits_change_the_hash() {
        let a = parse(SRC).unwrap();
        for (what, edited) in [
            ("literal", SRC.replace("i < COUNT", "i <= COUNT")),
            ("identifier", SRC.replace("head = c;", "head = head;")),
            (
                "field order",
                SRC.replace("long v; struct node *next;", "struct node *next; long v;"),
            ),
            (
                "global init",
                SRC.replace("int COUNT = 3;", "int COUNT = 4;"),
            ),
        ] {
            let b = parse(&edited).unwrap();
            assert_ne!(program_hash(&a), program_hash(&b), "{what}");
        }
    }

    #[test]
    fn per_function_hashes_isolate_the_changed_function() {
        let a = program_hashes(&parse(SRC).unwrap());
        let edited = SRC.replace("return sum(head);", "return sum(head) + 1;");
        let b = program_hashes(&parse(&edited).unwrap());
        assert_ne!(a.whole, b.whole);
        let diff: Vec<&str> = a
            .funcs
            .iter()
            .zip(&b.funcs)
            .filter(|((_, ha), (_, hb))| ha != hb)
            .map(|((name, _), _)| name.as_str())
            .collect();
        assert_eq!(diff, vec!["main"], "only main changed");
    }

    #[test]
    fn pretty_print_round_trip_is_hash_invariant() {
        let p = parse(SRC).unwrap();
        let printed = crate::pretty::program_to_c(&p);
        let again = parse(&printed).unwrap_or_else(|e| panic!("{}", e.render(&printed)));
        assert_eq!(program_hash(&p), program_hash(&again));
    }
}
