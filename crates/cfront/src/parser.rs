//! Recursive-descent parser for the ANSI C subset.
//!
//! Mirrors the paper's setup ("the yacc/bison grammar and scanner were
//! derived from their gcc equivalents") in spirit: a conventional C grammar
//! restricted to the constructs the annotator's rules talk about. Typedef
//! names and struct tags are resolved during the parse, as C requires.

use crate::ast::*;
use crate::error::{FrontError, FrontResult, Phase};
use crate::lexer::{lex, Kw, Punct, Tok, Token};
use crate::span::Span;
use crate::types::{FuncType, RecordDef, RecordId, Type, TypeTable};
use std::collections::HashMap;

/// Parses a full translation unit.
///
/// # Errors
///
/// Returns the first lexical or syntactic error encountered.
pub fn parse(source: &str) -> FrontResult<Program> {
    let tokens = lex(source)?;
    Parser::new(tokens).translation_unit()
}

/// Parses a single expression (used by tests and tools).
///
/// # Errors
///
/// Returns an error if the input is not exactly one expression.
pub fn parse_expr(source: &str) -> FrontResult<Expr> {
    let tokens = lex(source)?;
    let mut p = Parser::new(tokens);
    let e = p.expr()?;
    p.expect_eof()?;
    Ok(e)
}

/// (parameter types, parameter names with spans, varargs flag).
type ParamList = (Vec<Type>, Vec<(String, Span)>, bool);

struct Parser {
    toks: Vec<Token>,
    pos: usize,
    types: TypeTable,
    typedefs: HashMap<String, Type>,
    tags: HashMap<String, RecordId>,
    enum_consts: Vec<(String, i64)>,
    enum_lookup: HashMap<String, i64>,
    ids: NodeIdGen,
}

impl Parser {
    fn new(toks: Vec<Token>) -> Self {
        Parser {
            toks,
            pos: 0,
            types: TypeTable::new(),
            typedefs: HashMap::new(),
            tags: HashMap::new(),
            enum_consts: Vec::new(),
            enum_lookup: HashMap::new(),
            ids: NodeIdGen::new(),
        }
    }

    // ----- token helpers -------------------------------------------------

    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn peek2(&self) -> &Tok {
        let i = (self.pos + 1).min(self.toks.len() - 1);
        &self.toks[i].tok
    }

    fn span(&self) -> Span {
        self.toks[self.pos].span
    }

    fn prev_span(&self) -> Span {
        self.toks[self.pos.saturating_sub(1)].span
    }

    fn bump(&mut self) -> Token {
        let t = self.toks[self.pos].clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn eat_punct(&mut self, p: Punct) -> bool {
        if *self.peek() == Tok::Punct(p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, k: Kw) -> bool {
        if *self.peek() == Tok::Kw(k) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: Punct) -> FrontResult<Span> {
        if *self.peek() == Tok::Punct(p) {
            Ok(self.bump().span)
        } else {
            Err(self.error(format!(
                "expected '{}', found '{}'",
                p.as_str(),
                self.peek()
            )))
        }
    }

    fn expect_ident(&mut self) -> FrontResult<(String, Span)> {
        match self.peek().clone() {
            Tok::Ident(name) => {
                let span = self.bump().span;
                Ok((name, span))
            }
            other => Err(self.error(format!("expected identifier, found '{other}'"))),
        }
    }

    fn expect_eof(&mut self) -> FrontResult<()> {
        if *self.peek() == Tok::Eof {
            Ok(())
        } else {
            Err(self.error(format!("expected end of input, found '{}'", self.peek())))
        }
    }

    fn error(&self, msg: impl Into<String>) -> FrontError {
        FrontError::new(Phase::Parse, msg, self.span())
    }

    fn mk(&mut self, span: Span, kind: ExprKind) -> Expr {
        Expr::new(self.ids.fresh(), span, kind)
    }

    // ----- types ----------------------------------------------------------

    /// Whether the current token can begin a declaration.
    fn at_type_start(&self) -> bool {
        match self.peek() {
            Tok::Kw(
                Kw::Void
                | Kw::Char
                | Kw::Int
                | Kw::Long
                | Kw::Unsigned
                | Kw::Signed
                | Kw::Short
                | Kw::Struct
                | Kw::Union
                | Kw::Enum
                | Kw::Typedef
                | Kw::Static
                | Kw::Extern
                | Kw::Const
                | Kw::Register
                | Kw::Volatile
                | Kw::Auto,
            ) => true,
            Tok::Ident(name) => self.typedefs.contains_key(name),
            _ => false,
        }
    }

    /// Parses declaration specifiers; returns the base type plus whether
    /// `typedef` appeared.
    fn decl_specs(&mut self) -> FrontResult<(Type, bool)> {
        let mut is_typedef = false;
        let mut base: Option<Type> = None;
        let mut unsigned = false;
        let mut signed = false;
        let mut long_count = 0u8;
        let mut saw_int_kw = false;
        loop {
            match self.peek().clone() {
                Tok::Kw(Kw::Typedef) => {
                    self.bump();
                    is_typedef = true;
                }
                Tok::Kw(
                    Kw::Static | Kw::Extern | Kw::Const | Kw::Register | Kw::Volatile | Kw::Auto,
                ) => {
                    self.bump();
                }
                Tok::Kw(Kw::Void) => {
                    self.bump();
                    base = Some(Type::Void);
                }
                Tok::Kw(Kw::Char) => {
                    self.bump();
                    base = Some(Type::Char);
                }
                Tok::Kw(Kw::Int) => {
                    self.bump();
                    saw_int_kw = true;
                }
                Tok::Kw(Kw::Short) => {
                    self.bump();
                    // `short` is mapped to `int` in this subset.
                    saw_int_kw = true;
                }
                Tok::Kw(Kw::Long) => {
                    self.bump();
                    long_count += 1;
                }
                Tok::Kw(Kw::Unsigned) => {
                    self.bump();
                    unsigned = true;
                }
                Tok::Kw(Kw::Signed) => {
                    self.bump();
                    signed = true;
                }
                Tok::Kw(Kw::Struct) | Tok::Kw(Kw::Union) => {
                    let is_union = matches!(self.peek(), Tok::Kw(Kw::Union));
                    self.bump();
                    base = Some(self.struct_or_union(is_union)?);
                }
                Tok::Kw(Kw::Enum) => {
                    self.bump();
                    self.enum_spec()?;
                    base = Some(Type::Int);
                }
                Tok::Ident(name)
                    if base.is_none()
                        && !unsigned
                        && !signed
                        && long_count == 0
                        && !saw_int_kw
                        && self.typedefs.contains_key(&name) =>
                {
                    self.bump();
                    base = Some(self.typedefs[&name].clone());
                }
                _ => break,
            }
        }
        let ty = match base {
            Some(t) => {
                if unsigned || long_count > 0 {
                    return Err(self.error("conflicting type specifiers"));
                }
                t
            }
            None => {
                if long_count > 0 {
                    if unsigned {
                        Type::ULong
                    } else {
                        Type::Long
                    }
                } else if unsigned {
                    Type::UInt
                } else if saw_int_kw || signed {
                    Type::Int
                } else {
                    return Err(self.error("expected type specifier"));
                }
            }
        };
        Ok((ty, is_typedef))
    }

    fn struct_or_union(&mut self, is_union: bool) -> FrontResult<Type> {
        let tag = match self.peek().clone() {
            Tok::Ident(name) => {
                self.bump();
                Some(name)
            }
            _ => None,
        };
        let id = match &tag {
            Some(name) => {
                if let Some(&id) = self.tags.get(name) {
                    id
                } else {
                    let id = self.types.add_record(RecordDef {
                        tag: tag.clone(),
                        is_union,
                        fields: vec![],
                        size: 0,
                        align: 1,
                        complete: false,
                    });
                    self.tags.insert(name.clone(), id);
                    id
                }
            }
            None => self.types.add_record(RecordDef {
                tag: None,
                is_union,
                fields: vec![],
                size: 0,
                align: 1,
                complete: false,
            }),
        };
        if self.eat_punct(Punct::LBrace) {
            if self.types.record(id).complete {
                return Err(self.error(format!(
                    "redefinition of {} '{}'",
                    if is_union { "union" } else { "struct" },
                    tag.as_deref().unwrap_or("<anon>")
                )));
            }
            let mut fields = Vec::new();
            while !self.eat_punct(Punct::RBrace) {
                let (base, td) = self.decl_specs()?;
                if td {
                    return Err(self.error("typedef not allowed inside struct body"));
                }
                loop {
                    let (name, ty, _span) = self.declarator(base.clone())?;
                    if name.is_empty() {
                        return Err(self.error("struct field must be named"));
                    }
                    fields.push((name, ty));
                    if !self.eat_punct(Punct::Comma) {
                        break;
                    }
                }
                self.expect_punct(Punct::Semi)?;
            }
            self.types.complete_record(id, fields);
        }
        Ok(Type::Record(id))
    }

    fn enum_spec(&mut self) -> FrontResult<()> {
        // Optional tag (not recorded separately; enums are just ints).
        if let Tok::Ident(_) = self.peek() {
            self.bump();
        }
        if self.eat_punct(Punct::LBrace) {
            let mut next: i64 = 0;
            loop {
                if self.eat_punct(Punct::RBrace) {
                    break;
                }
                let (name, _) = self.expect_ident()?;
                if self.eat_punct(Punct::Assign) {
                    let e = self.conditional()?;
                    next = self.eval_const(&e)?;
                }
                self.enum_consts.push((name.clone(), next));
                self.enum_lookup.insert(name, next);
                next += 1;
                if !self.eat_punct(Punct::Comma) {
                    self.expect_punct(Punct::RBrace)?;
                    break;
                }
            }
        }
        Ok(())
    }

    /// Parses a declarator against `base`, returning (name, type, span).
    /// An abstract declarator yields an empty name.
    fn declarator(&mut self, base: Type) -> FrontResult<(String, Type, Span)> {
        let start = self.span();
        let mut ty = base;
        while self.eat_punct(Punct::Star) {
            // const/volatile after '*'
            while self.eat_kw(Kw::Const) || self.eat_kw(Kw::Volatile) {}
            ty = ty.ptr_to();
        }
        // Direct declarator: either a name, a parenthesised declarator, or
        // nothing (abstract).
        enum Direct {
            Name(String),
            Paren(usize, usize), // token range of the inner declarator
            Abstract,
        }
        let direct = match self.peek().clone() {
            Tok::Ident(name) => {
                self.bump();
                Direct::Name(name)
            }
            Tok::Punct(Punct::LParen) if self.paren_is_declarator() => {
                self.bump();
                let inner_start = self.pos;
                self.skip_declarator_tokens()?;
                let inner_end = self.pos;
                self.expect_punct(Punct::RParen)?;
                Direct::Paren(inner_start, inner_end)
            }
            _ => Direct::Abstract,
        };
        // Suffixes bind tighter than the pointer prefix.
        ty = self.declarator_suffixes(ty)?;
        let (name, ty) = match direct {
            Direct::Name(n) => (n, ty),
            Direct::Abstract => (String::new(), ty),
            Direct::Paren(s, e) => {
                // Re-parse the inner declarator with the suffix-applied type
                // as its base (classic C inside-out rule).
                let save = self.pos;
                self.pos = s;
                let saved_end = e;
                let (name, inner_ty, _) = self.declarator(ty)?;
                if self.pos != saved_end {
                    return Err(self.error("malformed parenthesised declarator"));
                }
                self.pos = save;
                (name, inner_ty)
            }
        };
        Ok((name, ty, start.merge(self.prev_span())))
    }

    /// Distinguishes `(*f)(…)` declarators from parameter lists.
    fn paren_is_declarator(&self) -> bool {
        matches!(self.peek2(), Tok::Punct(Punct::Star))
    }

    /// Skips the tokens of a parenthesised inner declarator, balancing
    /// parens/brackets, stopping at the matching `)`.
    fn skip_declarator_tokens(&mut self) -> FrontResult<()> {
        let mut depth = 0usize;
        loop {
            match self.peek() {
                Tok::Punct(Punct::LParen | Punct::LBracket) => {
                    depth += 1;
                    self.bump();
                }
                Tok::Punct(Punct::RParen | Punct::RBracket) if depth > 0 => {
                    depth -= 1;
                    self.bump();
                }
                Tok::Punct(Punct::RParen) => return Ok(()),
                Tok::Eof => return Err(self.error("unterminated declarator")),
                _ => {
                    self.bump();
                }
            }
        }
    }

    fn declarator_suffixes(&mut self, mut ty: Type) -> FrontResult<Type> {
        // Collect suffixes then apply them inside-out (rightmost binds last).
        enum Suffix {
            Array(Option<u64>),
            Func(Vec<Type>, Vec<(String, Span)>, bool),
        }
        let mut suffixes = Vec::new();
        loop {
            if self.eat_punct(Punct::LBracket) {
                if self.eat_punct(Punct::RBracket) {
                    suffixes.push(Suffix::Array(None));
                } else {
                    let e = self.conditional()?;
                    let n = self.eval_const(&e)?;
                    if n < 0 {
                        return Err(self.error("negative array size"));
                    }
                    self.expect_punct(Punct::RBracket)?;
                    suffixes.push(Suffix::Array(Some(n as u64)));
                }
            } else if *self.peek() == Tok::Punct(Punct::LParen) {
                self.bump();
                let (ptypes, pnames, varargs) = self.param_list()?;
                suffixes.push(Suffix::Func(ptypes, pnames, varargs));
            } else {
                break;
            }
        }
        for suffix in suffixes.into_iter().rev() {
            ty = match suffix {
                Suffix::Array(n) => Type::Array(Box::new(ty), n),
                Suffix::Func(params, _names, varargs) => Type::Func(Box::new(FuncType {
                    ret: ty,
                    params,
                    varargs,
                })),
            };
        }
        Ok(ty)
    }

    /// Parses a parameter list after `(`; consumes the closing `)`.
    fn param_list(&mut self) -> FrontResult<ParamList> {
        let mut types = Vec::new();
        let mut names = Vec::new();
        let mut varargs = false;
        if self.eat_punct(Punct::RParen) {
            return Ok((types, names, varargs));
        }
        // `(void)`
        if *self.peek() == Tok::Kw(Kw::Void) && *self.peek2() == Tok::Punct(Punct::RParen) {
            self.bump();
            self.bump();
            return Ok((types, names, varargs));
        }
        loop {
            if self.eat_punct(Punct::Ellipsis) {
                varargs = true;
                break;
            }
            let (base, td) = self.decl_specs()?;
            if td {
                return Err(self.error("typedef not allowed in parameter list"));
            }
            let (name, ty, span) = self.declarator(base)?;
            types.push(ty.decayed());
            names.push((name, span));
            if !self.eat_punct(Punct::Comma) {
                break;
            }
        }
        self.expect_punct(Punct::RParen)?;
        Ok((types, names, varargs))
    }

    // ----- constant evaluation ---------------------------------------------

    fn eval_const(&self, e: &Expr) -> FrontResult<i64> {
        match &e.kind {
            ExprKind::IntLit(v) => Ok(*v),
            ExprKind::Ident(name) => {
                self.enum_lookup.get(name).copied().ok_or_else(|| {
                    FrontError::new(Phase::Parse, "not a constant expression", e.span)
                })
            }
            ExprKind::Unary(UnOp::Neg, inner) => Ok(self.eval_const(inner)?.wrapping_neg()),
            ExprKind::Unary(UnOp::BitNot, inner) => Ok(!self.eval_const(inner)?),
            ExprKind::Unary(UnOp::Plus, inner) => self.eval_const(inner),
            ExprKind::Unary(UnOp::Not, inner) => Ok((self.eval_const(inner)? == 0) as i64),
            ExprKind::Binary(op, l, r) => {
                let a = self.eval_const(l)?;
                let b = self.eval_const(r)?;
                Ok(match op {
                    BinOp::Add => a.wrapping_add(b),
                    BinOp::Sub => a.wrapping_sub(b),
                    BinOp::Mul => a.wrapping_mul(b),
                    BinOp::Div if b != 0 => a.wrapping_div(b),
                    BinOp::Rem if b != 0 => a.wrapping_rem(b),
                    BinOp::Div | BinOp::Rem => {
                        return Err(FrontError::new(
                            Phase::Parse,
                            "division by zero in constant expression",
                            e.span,
                        ))
                    }
                    BinOp::Shl => a.wrapping_shl(b as u32),
                    BinOp::Shr => a.wrapping_shr(b as u32),
                    BinOp::BitAnd => a & b,
                    BinOp::BitOr => a | b,
                    BinOp::BitXor => a ^ b,
                    BinOp::Lt => (a < b) as i64,
                    BinOp::Gt => (a > b) as i64,
                    BinOp::Le => (a <= b) as i64,
                    BinOp::Ge => (a >= b) as i64,
                    BinOp::Eq => (a == b) as i64,
                    BinOp::Ne => (a != b) as i64,
                    BinOp::LogAnd => ((a != 0) && (b != 0)) as i64,
                    BinOp::LogOr => ((a != 0) || (b != 0)) as i64,
                })
            }
            ExprKind::SizeofType(ty) => ty
                .size(&self.types)
                .map(|s| s as i64)
                .ok_or_else(|| FrontError::new(Phase::Parse, "sizeof incomplete type", e.span)),
            ExprKind::Cast(_, inner) => self.eval_const(inner),
            ExprKind::Cond(c, t, f) => {
                if self.eval_const(c)? != 0 {
                    self.eval_const(t)
                } else {
                    self.eval_const(f)
                }
            }
            _ => Err(FrontError::new(
                Phase::Parse,
                "not a constant expression",
                e.span,
            )),
        }
    }

    // ----- translation unit ------------------------------------------------

    fn translation_unit(mut self) -> FrontResult<Program> {
        let mut globals = Vec::new();
        let mut funcs = Vec::new();
        while *self.peek() != Tok::Eof {
            self.external_decl(&mut globals, &mut funcs)?;
        }
        Ok(Program {
            types: self.types,
            globals,
            funcs,
            enum_consts: self.enum_consts,
            node_ids: self.ids,
        })
    }

    fn external_decl(
        &mut self,
        globals: &mut Vec<GlobalDecl>,
        funcs: &mut Vec<FuncDef>,
    ) -> FrontResult<()> {
        let start = self.span();
        let (base, is_typedef) = self.decl_specs()?;
        // `struct S { … };` alone.
        if self.eat_punct(Punct::Semi) {
            return Ok(());
        }
        let mut first = true;
        loop {
            let decl_start = self.span();
            // For function definitions we need parameter names, so we parse
            // the declarator and, when it is a function followed by `{`,
            // re-extract the parameter names by re-parsing the suffix.
            let save = self.pos;
            let (name, ty, dspan) = self.declarator(base.clone())?;
            if name.is_empty() {
                return Err(self.error("declaration requires a name"));
            }
            if is_typedef {
                self.typedefs.insert(name.clone(), ty.clone());
            } else if let Type::Func(ft) = &ty {
                if first && *self.peek() == Tok::Punct(Punct::LBrace) {
                    // Function definition — recover parameter names.
                    let params = self.reparse_param_names(save, ft)?;
                    let body = self.block()?;
                    let span = start.merge(body.span);
                    funcs.push(FuncDef {
                        name,
                        ret: ft.ret.clone(),
                        params,
                        varargs: ft.varargs,
                        body: Some(body),
                        span,
                    });
                    return Ok(());
                }
                // Prototype.
                let params = ft
                    .params
                    .iter()
                    .map(|t| Param {
                        id: self.ids.fresh(),
                        name: String::new(),
                        ty: t.clone(),
                        span: dspan,
                    })
                    .collect();
                funcs.push(FuncDef {
                    name,
                    ret: ft.ret.clone(),
                    params,
                    varargs: ft.varargs,
                    body: None,
                    span: start.merge(dspan),
                });
            } else {
                let init = if self.eat_punct(Punct::Assign) {
                    Some(self.initializer()?)
                } else {
                    None
                };
                globals.push(GlobalDecl {
                    id: self.ids.fresh(),
                    name,
                    ty,
                    init,
                    span: decl_start.merge(self.prev_span()),
                });
            }
            first = false;
            if !self.eat_punct(Punct::Comma) {
                break;
            }
        }
        self.expect_punct(Punct::Semi)?;
        Ok(())
    }

    /// Re-parses a function declarator starting at token index `save` to
    /// recover parameter names (the type-only pass discards them).
    fn reparse_param_names(&mut self, save: usize, ft: &FuncType) -> FrontResult<Vec<Param>> {
        let cur = self.pos;
        self.pos = save;
        // Walk to the parameter list: skip stars and the function name.
        while self.eat_punct(Punct::Star) {}
        let _ = self.expect_ident()?;
        self.expect_punct(Punct::LParen)?;
        let (_types, names, _varargs) = self.param_list()?;
        self.pos = cur;
        if names.len() != ft.params.len() {
            return Err(self.error("internal: parameter name recovery mismatch"));
        }
        Ok(names
            .into_iter()
            .zip(ft.params.iter())
            .map(|((name, span), ty)| Param {
                id: self.ids.fresh(),
                name,
                ty: ty.clone(),
                span,
            })
            .collect())
    }

    fn initializer(&mut self) -> FrontResult<Init> {
        if self.eat_punct(Punct::LBrace) {
            let mut items = Vec::new();
            loop {
                if self.eat_punct(Punct::RBrace) {
                    break;
                }
                items.push(self.initializer()?);
                if !self.eat_punct(Punct::Comma) {
                    self.expect_punct(Punct::RBrace)?;
                    break;
                }
            }
            Ok(Init::List(items))
        } else {
            Ok(Init::Scalar(self.assignment()?))
        }
    }

    // ----- statements -------------------------------------------------------

    fn block(&mut self) -> FrontResult<Block> {
        let start = self.expect_punct(Punct::LBrace)?;
        let mut stmts = Vec::new();
        loop {
            if *self.peek() == Tok::Punct(Punct::RBrace) {
                let end = self.bump().span;
                return Ok(Block {
                    stmts,
                    span: start.merge(end),
                });
            }
            if *self.peek() == Tok::Eof {
                return Err(self.error("unterminated block"));
            }
            stmts.push(self.stmt()?);
        }
    }

    fn stmt(&mut self) -> FrontResult<Stmt> {
        match self.peek().clone() {
            Tok::Punct(Punct::LBrace) => Ok(Stmt::Block(self.block()?)),
            Tok::Punct(Punct::Semi) => {
                self.bump();
                Ok(Stmt::Empty)
            }
            Tok::Kw(Kw::If) => {
                self.bump();
                self.expect_punct(Punct::LParen)?;
                let cond = self.expr()?;
                self.expect_punct(Punct::RParen)?;
                let then = Box::new(self.stmt()?);
                let els = if self.eat_kw(Kw::Else) {
                    Some(Box::new(self.stmt()?))
                } else {
                    None
                };
                Ok(Stmt::If(cond, then, els))
            }
            Tok::Kw(Kw::While) => {
                self.bump();
                self.expect_punct(Punct::LParen)?;
                let cond = self.expr()?;
                self.expect_punct(Punct::RParen)?;
                Ok(Stmt::While(cond, Box::new(self.stmt()?)))
            }
            Tok::Kw(Kw::Do) => {
                self.bump();
                let body = Box::new(self.stmt()?);
                if !self.eat_kw(Kw::While) {
                    return Err(self.error("expected 'while' after do body"));
                }
                self.expect_punct(Punct::LParen)?;
                let cond = self.expr()?;
                self.expect_punct(Punct::RParen)?;
                self.expect_punct(Punct::Semi)?;
                Ok(Stmt::DoWhile(body, cond))
            }
            Tok::Kw(Kw::For) => {
                self.bump();
                self.expect_punct(Punct::LParen)?;
                let init = if self.eat_punct(Punct::Semi) {
                    None
                } else if self.at_type_start() {
                    let d = self.local_decl()?;
                    Some(Box::new(d))
                } else {
                    let e = self.expr()?;
                    self.expect_punct(Punct::Semi)?;
                    Some(Box::new(Stmt::Expr(e)))
                };
                let cond = if *self.peek() == Tok::Punct(Punct::Semi) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect_punct(Punct::Semi)?;
                let step = if *self.peek() == Tok::Punct(Punct::RParen) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect_punct(Punct::RParen)?;
                Ok(Stmt::For {
                    init,
                    cond,
                    step,
                    body: Box::new(self.stmt()?),
                })
            }
            Tok::Kw(Kw::Switch) => {
                self.bump();
                self.expect_punct(Punct::LParen)?;
                let scrutinee = self.expr()?;
                self.expect_punct(Punct::RParen)?;
                Ok(Stmt::Switch(scrutinee, Box::new(self.stmt()?)))
            }
            Tok::Kw(Kw::Case) => {
                self.bump();
                let e = self.conditional()?;
                let v = self.eval_const(&e)?;
                self.expect_punct(Punct::Colon)?;
                Ok(Stmt::Case(v))
            }
            Tok::Kw(Kw::Default) => {
                self.bump();
                self.expect_punct(Punct::Colon)?;
                Ok(Stmt::Default)
            }
            Tok::Kw(Kw::Break) => {
                self.bump();
                self.expect_punct(Punct::Semi)?;
                Ok(Stmt::Break)
            }
            Tok::Kw(Kw::Continue) => {
                self.bump();
                self.expect_punct(Punct::Semi)?;
                Ok(Stmt::Continue)
            }
            Tok::Kw(Kw::Return) => {
                self.bump();
                if self.eat_punct(Punct::Semi) {
                    Ok(Stmt::Return(None))
                } else {
                    let e = self.expr()?;
                    self.expect_punct(Punct::Semi)?;
                    Ok(Stmt::Return(Some(e)))
                }
            }
            _ if self.at_type_start() => self.local_decl(),
            _ => {
                let e = self.expr()?;
                self.expect_punct(Punct::Semi)?;
                Ok(Stmt::Expr(e))
            }
        }
    }

    /// Parses `type declarator (= init)? (, declarator (= init)?)* ;`.
    fn local_decl(&mut self) -> FrontResult<Stmt> {
        let (base, is_typedef) = self.decl_specs()?;
        if is_typedef {
            return Err(self.error("typedef at block scope is not supported"));
        }
        if self.eat_punct(Punct::Semi) {
            // Bare struct declaration.
            return Ok(Stmt::Empty);
        }
        let mut decls = Vec::new();
        loop {
            let start = self.span();
            let (name, ty, _) = self.declarator(base.clone())?;
            if name.is_empty() {
                return Err(self.error("local declaration requires a name"));
            }
            let init = if self.eat_punct(Punct::Assign) {
                Some(self.assignment()?)
            } else {
                None
            };
            decls.push(LocalDecl {
                id: self.ids.fresh(),
                name,
                ty,
                init,
                span: start.merge(self.prev_span()),
            });
            if !self.eat_punct(Punct::Comma) {
                break;
            }
        }
        self.expect_punct(Punct::Semi)?;
        Ok(Stmt::Decl(decls))
    }

    // ----- expressions (precedence climbing) --------------------------------

    /// Full expression including the comma operator.
    pub(crate) fn expr(&mut self) -> FrontResult<Expr> {
        let mut e = self.assignment()?;
        while self.eat_punct(Punct::Comma) {
            let rhs = self.assignment()?;
            let span = e.span.merge(rhs.span);
            e = self.mk(span, ExprKind::Comma(Box::new(e), Box::new(rhs)));
        }
        Ok(e)
    }

    fn assignment(&mut self) -> FrontResult<Expr> {
        let lhs = self.conditional()?;
        let op = match self.peek() {
            Tok::Punct(Punct::Assign) => Some(None),
            Tok::Punct(Punct::PlusEq) => Some(Some(BinOp::Add)),
            Tok::Punct(Punct::MinusEq) => Some(Some(BinOp::Sub)),
            Tok::Punct(Punct::StarEq) => Some(Some(BinOp::Mul)),
            Tok::Punct(Punct::SlashEq) => Some(Some(BinOp::Div)),
            Tok::Punct(Punct::PercentEq) => Some(Some(BinOp::Rem)),
            Tok::Punct(Punct::AmpEq) => Some(Some(BinOp::BitAnd)),
            Tok::Punct(Punct::PipeEq) => Some(Some(BinOp::BitOr)),
            Tok::Punct(Punct::CaretEq) => Some(Some(BinOp::BitXor)),
            Tok::Punct(Punct::ShlEq) => Some(Some(BinOp::Shl)),
            Tok::Punct(Punct::ShrEq) => Some(Some(BinOp::Shr)),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let rhs = self.assignment()?;
            let span = lhs.span.merge(rhs.span);
            Ok(self.mk(
                span,
                ExprKind::Assign {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
            ))
        } else {
            Ok(lhs)
        }
    }

    fn conditional(&mut self) -> FrontResult<Expr> {
        let cond = self.binary(0)?;
        if self.eat_punct(Punct::Question) {
            let then = self.expr()?;
            self.expect_punct(Punct::Colon)?;
            let els = self.conditional()?;
            let span = cond.span.merge(els.span);
            Ok(self.mk(
                span,
                ExprKind::Cond(Box::new(cond), Box::new(then), Box::new(els)),
            ))
        } else {
            Ok(cond)
        }
    }

    fn binop_at(&self) -> Option<(BinOp, u8)> {
        let (op, prec) = match self.peek() {
            Tok::Punct(Punct::PipePipe) => (BinOp::LogOr, 1),
            Tok::Punct(Punct::AmpAmp) => (BinOp::LogAnd, 2),
            Tok::Punct(Punct::Pipe) => (BinOp::BitOr, 3),
            Tok::Punct(Punct::Caret) => (BinOp::BitXor, 4),
            Tok::Punct(Punct::Amp) => (BinOp::BitAnd, 5),
            Tok::Punct(Punct::EqEq) => (BinOp::Eq, 6),
            Tok::Punct(Punct::NotEq) => (BinOp::Ne, 6),
            Tok::Punct(Punct::Lt) => (BinOp::Lt, 7),
            Tok::Punct(Punct::Gt) => (BinOp::Gt, 7),
            Tok::Punct(Punct::Le) => (BinOp::Le, 7),
            Tok::Punct(Punct::Ge) => (BinOp::Ge, 7),
            Tok::Punct(Punct::Shl) => (BinOp::Shl, 8),
            Tok::Punct(Punct::Shr) => (BinOp::Shr, 8),
            Tok::Punct(Punct::Plus) => (BinOp::Add, 9),
            Tok::Punct(Punct::Minus) => (BinOp::Sub, 9),
            Tok::Punct(Punct::Star) => (BinOp::Mul, 10),
            Tok::Punct(Punct::Slash) => (BinOp::Div, 10),
            Tok::Punct(Punct::Percent) => (BinOp::Rem, 10),
            _ => return None,
        };
        Some((op, prec))
    }

    fn binary(&mut self, min_prec: u8) -> FrontResult<Expr> {
        let mut lhs = self.unary()?;
        while let Some((op, prec)) = self.binop_at() {
            if prec < min_prec.max(1) {
                break;
            }
            self.bump();
            let rhs = self.binary(prec + 1)?;
            let span = lhs.span.merge(rhs.span);
            lhs = self.mk(span, ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)));
        }
        Ok(lhs)
    }

    /// Whether a `(` at the current position begins a cast.
    fn paren_is_cast(&self) -> bool {
        debug_assert_eq!(*self.peek(), Tok::Punct(Punct::LParen));
        match self.peek2() {
            Tok::Kw(
                Kw::Void
                | Kw::Char
                | Kw::Int
                | Kw::Long
                | Kw::Unsigned
                | Kw::Signed
                | Kw::Short
                | Kw::Struct
                | Kw::Union
                | Kw::Enum
                | Kw::Const,
            ) => true,
            Tok::Ident(name) => self.typedefs.contains_key(name),
            _ => false,
        }
    }

    fn type_name(&mut self) -> FrontResult<Type> {
        let (base, _) = self.decl_specs()?;
        let (name, ty, _) = self.declarator(base)?;
        if !name.is_empty() {
            return Err(self.error("type name must be abstract"));
        }
        Ok(ty)
    }

    fn unary(&mut self) -> FrontResult<Expr> {
        let start = self.span();
        match self.peek().clone() {
            Tok::Punct(Punct::Plus) => {
                self.bump();
                let e = self.unary()?;
                let span = start.merge(e.span);
                Ok(self.mk(span, ExprKind::Unary(UnOp::Plus, Box::new(e))))
            }
            Tok::Punct(Punct::Minus) => {
                self.bump();
                let e = self.unary()?;
                let span = start.merge(e.span);
                Ok(self.mk(span, ExprKind::Unary(UnOp::Neg, Box::new(e))))
            }
            Tok::Punct(Punct::Bang) => {
                self.bump();
                let e = self.unary()?;
                let span = start.merge(e.span);
                Ok(self.mk(span, ExprKind::Unary(UnOp::Not, Box::new(e))))
            }
            Tok::Punct(Punct::Tilde) => {
                self.bump();
                let e = self.unary()?;
                let span = start.merge(e.span);
                Ok(self.mk(span, ExprKind::Unary(UnOp::BitNot, Box::new(e))))
            }
            Tok::Punct(Punct::Star) => {
                self.bump();
                let e = self.unary()?;
                let span = start.merge(e.span);
                Ok(self.mk(span, ExprKind::Deref(Box::new(e))))
            }
            Tok::Punct(Punct::Amp) => {
                self.bump();
                let e = self.unary()?;
                let span = start.merge(e.span);
                Ok(self.mk(span, ExprKind::AddrOf(Box::new(e))))
            }
            Tok::Punct(Punct::PlusPlus) => {
                self.bump();
                let e = self.unary()?;
                let span = start.merge(e.span);
                Ok(self.mk(
                    span,
                    ExprKind::IncDec {
                        inc: true,
                        pre: true,
                        target: Box::new(e),
                    },
                ))
            }
            Tok::Punct(Punct::MinusMinus) => {
                self.bump();
                let e = self.unary()?;
                let span = start.merge(e.span);
                Ok(self.mk(
                    span,
                    ExprKind::IncDec {
                        inc: false,
                        pre: true,
                        target: Box::new(e),
                    },
                ))
            }
            Tok::Kw(Kw::Sizeof) => {
                self.bump();
                if *self.peek() == Tok::Punct(Punct::LParen) && self.paren_is_cast() {
                    self.bump();
                    let ty = self.type_name()?;
                    let end = self.expect_punct(Punct::RParen)?;
                    Ok(self.mk(start.merge(end), ExprKind::SizeofType(ty)))
                } else {
                    let e = self.unary()?;
                    let span = start.merge(e.span);
                    Ok(self.mk(span, ExprKind::SizeofExpr(Box::new(e))))
                }
            }
            Tok::Punct(Punct::LParen) if self.paren_is_cast() => {
                self.bump();
                let ty = self.type_name()?;
                self.expect_punct(Punct::RParen)?;
                let e = self.unary()?;
                let span = start.merge(e.span);
                Ok(self.mk(span, ExprKind::Cast(ty, Box::new(e))))
            }
            _ => self.postfix(),
        }
    }

    fn postfix(&mut self) -> FrontResult<Expr> {
        let mut e = self.primary()?;
        loop {
            match self.peek().clone() {
                Tok::Punct(Punct::LBracket) => {
                    self.bump();
                    let idx = self.expr()?;
                    let end = self.expect_punct(Punct::RBracket)?;
                    let span = e.span.merge(end);
                    e = self.mk(span, ExprKind::Index(Box::new(e), Box::new(idx)));
                }
                Tok::Punct(Punct::LParen) => {
                    self.bump();
                    let mut args = Vec::new();
                    if !self.eat_punct(Punct::RParen) {
                        loop {
                            args.push(self.assignment()?);
                            if !self.eat_punct(Punct::Comma) {
                                break;
                            }
                        }
                        self.expect_punct(Punct::RParen)?;
                    }
                    let span = e.span.merge(self.prev_span());
                    e = self.mk(span, ExprKind::Call(Box::new(e), args));
                }
                Tok::Punct(Punct::Dot) => {
                    self.bump();
                    let (field, fspan) = self.expect_ident()?;
                    let span = e.span.merge(fspan);
                    e = self.mk(
                        span,
                        ExprKind::Member {
                            obj: Box::new(e),
                            field,
                            arrow: false,
                        },
                    );
                }
                Tok::Punct(Punct::Arrow) => {
                    self.bump();
                    let (field, fspan) = self.expect_ident()?;
                    let span = e.span.merge(fspan);
                    e = self.mk(
                        span,
                        ExprKind::Member {
                            obj: Box::new(e),
                            field,
                            arrow: true,
                        },
                    );
                }
                Tok::Punct(Punct::PlusPlus) => {
                    let end = self.bump().span;
                    let span = e.span.merge(end);
                    e = self.mk(
                        span,
                        ExprKind::IncDec {
                            inc: true,
                            pre: false,
                            target: Box::new(e),
                        },
                    );
                }
                Tok::Punct(Punct::MinusMinus) => {
                    let end = self.bump().span;
                    let span = e.span.merge(end);
                    e = self.mk(
                        span,
                        ExprKind::IncDec {
                            inc: false,
                            pre: false,
                            target: Box::new(e),
                        },
                    );
                }
                _ => return Ok(e),
            }
        }
    }

    fn primary(&mut self) -> FrontResult<Expr> {
        let start = self.span();
        match self.peek().clone() {
            Tok::IntLit(v) => {
                self.bump();
                Ok(self.mk(start, ExprKind::IntLit(v)))
            }
            Tok::StrLit(s) => {
                self.bump();
                Ok(self.mk(start, ExprKind::StrLit(s)))
            }
            Tok::Ident(name) => {
                self.bump();
                Ok(self.mk(start, ExprKind::Ident(name)))
            }
            Tok::Punct(Punct::LParen) => {
                self.bump();
                let e = self.expr()?;
                self.expect_punct(Punct::RParen)?;
                Ok(e)
            }
            other => Err(self.error(format!("expected expression, found '{other}'"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_function() {
        let prog = parse("int add(int a, int b) { return a + b; }").unwrap();
        assert_eq!(prog.funcs.len(), 1);
        let f = &prog.funcs[0];
        assert_eq!(f.name, "add");
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.params[0].name, "a");
        assert!(f.body.is_some());
    }

    #[test]
    fn parses_pointer_declarators() {
        let prog = parse("char **argv; int *p[4];").unwrap();
        assert_eq!(prog.globals.len(), 2);
        assert_eq!(prog.globals[0].ty, Type::Char.ptr_to().ptr_to());
        assert_eq!(
            prog.globals[1].ty,
            Type::Array(Box::new(Type::Int.ptr_to()), Some(4))
        );
    }

    #[test]
    fn parses_function_pointer_declarator() {
        let prog = parse("int (*handler)(int, char *);").unwrap();
        match &prog.globals[0].ty {
            Type::Ptr(inner) => match inner.as_ref() {
                Type::Func(ft) => {
                    assert_eq!(ft.ret, Type::Int);
                    assert_eq!(ft.params.len(), 2);
                }
                other => panic!("expected func, got {other:?}"),
            },
            other => panic!("expected pointer, got {other:?}"),
        }
    }

    #[test]
    fn parses_struct_with_self_pointer() {
        let prog =
            parse("struct node { int value; struct node *next; }; struct node *head;").unwrap();
        let Type::Ptr(inner) = &prog.globals[0].ty else {
            panic!()
        };
        let Type::Record(id) = inner.as_ref() else {
            panic!()
        };
        let rec = prog.types.record(*id);
        assert!(rec.complete);
        assert_eq!(rec.fields.len(), 2);
        assert_eq!(rec.field("next").unwrap().offset, 8);
    }

    #[test]
    fn parses_typedef() {
        let prog = parse("typedef struct cord { int len; } cord; cord *c;").unwrap();
        assert!(matches!(&prog.globals[0].ty, Type::Ptr(_)));
    }

    #[test]
    fn parses_enum_constants() {
        let prog = parse("enum { A, B = 10, C }; int x[C];").unwrap();
        assert_eq!(
            prog.enum_consts,
            vec![
                ("A".to_string(), 0),
                ("B".to_string(), 10),
                ("C".to_string(), 11)
            ]
        );
        assert_eq!(
            prog.globals[0].ty,
            Type::Array(Box::new(Type::Int), Some(11))
        );
    }

    #[test]
    fn parses_control_flow() {
        let prog = parse(
            "int f(int n) {\n\
               int s = 0;\n\
               for (;;) { if (n <= 0) break; s += n--; }\n\
               while (s > 100) s /= 2;\n\
               do s++; while (s % 2);\n\
               switch (s) { case 1: return 1; default: break; }\n\
               return s;\n\
             }",
        )
        .unwrap();
        assert_eq!(prog.funcs.len(), 1);
    }

    #[test]
    fn expression_precedence() {
        let e = parse_expr("1 + 2 * 3").unwrap();
        let ExprKind::Binary(BinOp::Add, _, rhs) = &e.kind else {
            panic!()
        };
        assert!(matches!(rhs.kind, ExprKind::Binary(BinOp::Mul, _, _)));
    }

    #[test]
    fn assignment_is_right_associative() {
        let e = parse_expr("a = b = c").unwrap();
        let ExprKind::Assign { rhs, .. } = &e.kind else {
            panic!()
        };
        assert!(matches!(rhs.kind, ExprKind::Assign { .. }));
    }

    #[test]
    fn cast_vs_paren() {
        let e = parse_expr("(int)x").unwrap();
        assert!(matches!(e.kind, ExprKind::Cast(Type::Int, _)));
        let e = parse_expr("(x)").unwrap();
        assert!(matches!(e.kind, ExprKind::Ident(_)));
    }

    #[test]
    fn sizeof_forms() {
        let e = parse_expr("sizeof(char *)").unwrap();
        assert!(matches!(e.kind, ExprKind::SizeofType(Type::Ptr(_))));
        let e = parse_expr("sizeof x").unwrap();
        assert!(matches!(e.kind, ExprKind::SizeofExpr(_)));
    }

    #[test]
    fn string_copy_loop_parses() {
        // The paper's canonical example.
        let prog = parse(
            "void copy(char *s, char *t) { char *p; char *q; p = s; q = t; while (*p++ = *q++); }",
        )
        .unwrap();
        assert_eq!(prog.funcs[0].name, "copy");
    }

    #[test]
    fn ternary_and_comma() {
        let e = parse_expr("a ? b : c, d").unwrap();
        assert!(matches!(e.kind, ExprKind::Comma(_, _)));
    }

    #[test]
    fn postfix_chain() {
        let e = parse_expr("a.b[1]->c(2)++").unwrap();
        assert!(matches!(
            e.kind,
            ExprKind::IncDec {
                inc: true,
                pre: false,
                ..
            }
        ));
    }

    #[test]
    fn global_initializers() {
        let prog = parse("int table[3] = {1, 2, 3}; char *msg = \"hi\";").unwrap();
        assert!(matches!(prog.globals[0].init, Some(Init::List(_))));
        assert!(matches!(prog.globals[1].init, Some(Init::Scalar(_))));
    }

    #[test]
    fn prototype_then_definition() {
        let prog = parse("int f(int); int f(int x) { return x; }").unwrap();
        assert_eq!(prog.funcs.len(), 2);
        assert!(prog.funcs[0].body.is_none());
        assert!(prog.func("f").unwrap().body.is_some());
    }

    #[test]
    fn error_on_garbage() {
        assert!(parse("int x = @;").is_err());
        assert!(parse("int f( {").is_err());
    }

    #[test]
    fn unsigned_long_specifiers() {
        let prog = parse("unsigned long big; unsigned u; long l;").unwrap();
        assert_eq!(prog.globals[0].ty, Type::ULong);
        assert_eq!(prog.globals[1].ty, Type::UInt);
        assert_eq!(prog.globals[2].ty, Type::Long);
    }

    #[test]
    fn local_decl_in_for_init() {
        let prog =
            parse("int f(void) { int s = 0; for (int i = 0; i < 4; i++) s += i; return s; }")
                .unwrap();
        assert_eq!(prog.funcs.len(), 1);
    }
}

#[cfg(test)]
mod error_path_tests {
    use super::*;

    fn parse_err(src: &str) -> crate::error::FrontError {
        parse(src).expect_err("must fail to parse")
    }

    #[test]
    fn missing_semicolon() {
        let e = parse_err("int x = 1 int y;");
        assert!(e.message.contains("';'"), "{e}");
    }

    #[test]
    fn unterminated_block() {
        let e = parse_err("int f(void) { int x = 1;");
        assert!(e.message.contains("unterminated") || e.message.contains("expected"));
    }

    #[test]
    fn struct_redefinition() {
        let e = parse_err("struct s { int a; }; struct s { int b; };");
        assert!(e.message.contains("redefinition"), "{e}");
    }

    #[test]
    fn unnamed_declaration() {
        let e = parse_err("int ;miss");
        // Either "requires a name" or a token error, but it must fail.
        assert!(!e.message.is_empty());
    }

    #[test]
    fn negative_array_size() {
        let e = parse_err("int a[-3];");
        assert!(e.message.contains("negative"), "{e}");
    }

    #[test]
    fn case_outside_constant() {
        let e = parse_err("int f(int x) { switch (x) { case x: return 1; } return 0; }");
        assert!(e.message.contains("constant"), "{e}");
    }

    #[test]
    fn do_without_while() {
        let e = parse_err("int f(void) { do {} until (1); return 0; }");
        assert!(e.message.contains("while"), "{e}");
    }

    #[test]
    fn typedef_in_params_rejected() {
        let e = parse_err("int f(typedef int t) { return 0; }");
        assert!(e.message.contains("typedef"), "{e}");
    }

    #[test]
    fn division_by_zero_in_constant() {
        let e = parse_err("int a[4 / 0];");
        assert!(e.message.contains("zero"), "{e}");
    }

    #[test]
    fn error_positions_are_meaningful() {
        let src = "int x = 1;\nint y = @;";
        let e = parse_err(src);
        let rendered = e.render(src);
        assert!(rendered.starts_with("2:"), "error on line 2: {rendered}");
    }
}
