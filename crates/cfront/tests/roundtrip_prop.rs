//! Property test: `parse(pretty(ast))` must equal `ast` structurally for
//! every tree the random generator can build — the grammar the fuzzer's
//! program generator emits. The delta-debugging minimizer depends on this:
//! it edits parsed trees and re-renders them with the pretty-printer, so
//! any print/parse disagreement would corrupt a reproducer mid-shrink.
//!
//! The generator stays inside the parser-producible AST surface: no
//! negative integer literals (the parser builds `Unary(Neg, lit)`), no
//! `KeepLive`/`CheckSame` nodes (annotator-only), no array-typed
//! parameters (the parser decays them to pointers).
//!
//! Offline container: randomness is the same inline xorshift64* the rest
//! of the suite uses, not an external crate.

use cfront::ast::*;
use cfront::pretty::{expr_to_c, program_to_c};
use cfront::span::Span;
use cfront::types::{Type, TypeTable};
use cfront::{normalize_expr, normalize_program, parse, parse_expr};

/// xorshift64* (see tests/common/mod.rs at the workspace root).
struct Rng(u64);

impl Rng {
    fn for_case(label: &str, case: u64) -> Self {
        let mut h = 0xcbf29ce484222325u64;
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        let seed = h ^ case.wrapping_mul(0x9E3779B97F4A7C15);
        Rng(if seed == 0 { 0x9E3779B97F4A7C15 } else { seed })
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    fn index(&mut self, n: usize) -> usize {
        self.below(n as u64) as usize
    }

    fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }
}

const NAMES: &[&str] = &["a", "b", "c", "i", "n", "p", "q", "v"];
const FIELDS: &[&str] = &["x", "y", "next"];

fn e(kind: ExprKind) -> Expr {
    Expr::new(NodeId(0), Span::point(0), kind)
}

fn ident(rng: &mut Rng) -> Expr {
    e(ExprKind::Ident(NAMES[rng.index(NAMES.len())].to_string()))
}

fn gen_type(rng: &mut Rng, depth: u32) -> Type {
    match rng.index(if depth == 0 { 3 } else { 5 }) {
        0 => Type::Int,
        1 => Type::Long,
        2 => Type::Char,
        3 => gen_type(rng, depth - 1).ptr_to(),
        _ => Type::Array(Box::new(gen_type(rng, depth - 1)), Some(1 + rng.below(8))),
    }
}

/// A type valid in casts and `sizeof(type)`: scalars and pointers only.
fn gen_scalar_type(rng: &mut Rng, depth: u32) -> Type {
    match rng.index(if depth == 0 { 3 } else { 4 }) {
        0 => Type::Int,
        1 => Type::Long,
        2 => Type::Char,
        _ => gen_scalar_type(rng, depth - 1).ptr_to(),
    }
}

fn gen_str(rng: &mut Rng) -> String {
    // Everything the lexer can represent: printable ASCII plus the named
    // escape set (the raw control bytes \a \b \f \v and friends).
    const POOL: &[char] = &[
        'a', 'z', 'Z', '0', '9', ' ', '!', '#', '$', '%', '&', '\'', '(', ')', '*', '+', ',', '-',
        '.', '/', ':', ';', '<', '=', '>', '?', '[', ']', '^', '_', '{', '|', '}', '~', '"', '\\',
        '\n', '\t', '\r', '\0', '\x07', '\x08', '\x0B', '\x0C',
    ];
    let len = rng.index(8);
    (0..len).map(|_| POOL[rng.index(POOL.len())]).collect()
}

const COMPOUND_OPS: &[BinOp] = &[
    BinOp::Add,
    BinOp::Sub,
    BinOp::Mul,
    BinOp::Div,
    BinOp::Rem,
    BinOp::BitAnd,
    BinOp::BitOr,
    BinOp::BitXor,
    BinOp::Shl,
    BinOp::Shr,
];

const BIN_OPS: &[BinOp] = &[
    BinOp::Add,
    BinOp::Sub,
    BinOp::Mul,
    BinOp::Div,
    BinOp::Rem,
    BinOp::Shl,
    BinOp::Shr,
    BinOp::Lt,
    BinOp::Gt,
    BinOp::Le,
    BinOp::Ge,
    BinOp::Eq,
    BinOp::Ne,
    BinOp::BitAnd,
    BinOp::BitOr,
    BinOp::BitXor,
    BinOp::LogAnd,
    BinOp::LogOr,
];

const UN_OPS: &[UnOp] = &[UnOp::Neg, UnOp::Not, UnOp::BitNot, UnOp::Plus];

fn gen_expr(rng: &mut Rng, depth: u32) -> Expr {
    if depth == 0 {
        return match rng.index(3) {
            0 => e(ExprKind::IntLit(rng.below(1000) as i64)),
            1 => e(ExprKind::StrLit(gen_str(rng))),
            _ => ident(rng),
        };
    }
    let d = depth - 1;
    match rng.index(16) {
        0 => e(ExprKind::IntLit(rng.below(1000) as i64)),
        1 => ident(rng),
        2 => e(ExprKind::Unary(
            UN_OPS[rng.index(UN_OPS.len())],
            Box::new(gen_expr(rng, d)),
        )),
        3 => e(ExprKind::Deref(Box::new(gen_expr(rng, d)))),
        4 => e(ExprKind::AddrOf(Box::new(gen_expr(rng, d)))),
        5 => e(ExprKind::Binary(
            BIN_OPS[rng.index(BIN_OPS.len())],
            Box::new(gen_expr(rng, d)),
            Box::new(gen_expr(rng, d)),
        )),
        6 => e(ExprKind::Assign {
            op: if rng.chance(1, 2) {
                Some(COMPOUND_OPS[rng.index(COMPOUND_OPS.len())])
            } else {
                None
            },
            lhs: Box::new(gen_expr(rng, d)),
            rhs: Box::new(gen_expr(rng, d)),
        }),
        7 => e(ExprKind::IncDec {
            inc: rng.chance(1, 2),
            pre: rng.chance(1, 2),
            target: Box::new(gen_expr(rng, d)),
        }),
        8 => e(ExprKind::Cond(
            Box::new(gen_expr(rng, d)),
            Box::new(gen_expr(rng, d)),
            Box::new(gen_expr(rng, d)),
        )),
        9 => e(ExprKind::Comma(
            Box::new(gen_expr(rng, d)),
            Box::new(gen_expr(rng, d)),
        )),
        10 => {
            let argc = rng.index(3);
            e(ExprKind::Call(
                Box::new(ident(rng)),
                (0..argc).map(|_| gen_expr(rng, d)).collect(),
            ))
        }
        11 => e(ExprKind::Index(
            Box::new(gen_expr(rng, d)),
            Box::new(gen_expr(rng, d)),
        )),
        12 => e(ExprKind::Member {
            obj: Box::new(gen_expr(rng, d)),
            field: FIELDS[rng.index(FIELDS.len())].to_string(),
            arrow: rng.chance(1, 2),
        }),
        13 => e(ExprKind::Cast(
            gen_scalar_type(rng, 2),
            Box::new(gen_expr(rng, d)),
        )),
        14 => e(ExprKind::SizeofType(gen_scalar_type(rng, 2))),
        _ => e(ExprKind::SizeofExpr(Box::new(gen_expr(rng, d)))),
    }
}

fn gen_local(rng: &mut Rng, base: &Type) -> LocalDecl {
    // Declarators in one statement share the base type but may decorate it.
    let ty = match rng.index(4) {
        0 | 1 => base.clone(),
        2 => base.clone().ptr_to(),
        _ => Type::Array(Box::new(base.clone()), Some(1 + rng.below(8))),
    };
    LocalDecl {
        id: NodeId(0),
        name: NAMES[rng.index(NAMES.len())].to_string(),
        ty,
        init: rng.chance(1, 2).then(|| gen_expr(rng, 2)),
        span: Span::point(0),
    }
}

fn gen_decl(rng: &mut Rng) -> Stmt {
    let base = match rng.index(3) {
        0 => Type::Int,
        1 => Type::Long,
        _ => Type::Char,
    };
    let n = 1 + rng.index(3);
    Stmt::Decl((0..n).map(|_| gen_local(rng, &base)).collect())
}

fn gen_block(rng: &mut Rng, depth: u32) -> Block {
    let n = rng.index(4);
    Block {
        stmts: (0..n).map(|_| gen_stmt(rng, depth)).collect(),
        span: Span::point(0),
    }
}

fn gen_stmt(rng: &mut Rng, depth: u32) -> Stmt {
    if depth == 0 {
        return match rng.index(5) {
            0 => Stmt::Expr(gen_expr(rng, 2)),
            1 => gen_decl(rng),
            2 => Stmt::Return(rng.chance(1, 2).then(|| gen_expr(rng, 2))),
            3 => Stmt::Empty,
            _ => Stmt::Break,
        };
    }
    let d = depth - 1;
    match rng.index(10) {
        0 => Stmt::Expr(gen_expr(rng, 3)),
        1 => gen_decl(rng),
        2 => Stmt::Block(gen_block(rng, d)),
        3 => {
            let els = rng.chance(1, 2).then(|| Box::new(gen_stmt(rng, d)));
            let mut then = gen_stmt(rng, d);
            // The parser can never produce an if-with-else whose unbraced
            // then-branch ends in an else-less if (the else would have
            // bound inward), so the generator braces those, exactly as the
            // printer does.
            if els.is_some() && swallows_else(&then) {
                then = Stmt::Block(Block {
                    stmts: vec![then],
                    span: Span::point(0),
                });
            }
            Stmt::If(gen_expr(rng, 2), Box::new(then), els)
        }
        4 => Stmt::While(gen_expr(rng, 2), Box::new(gen_stmt(rng, d))),
        5 => Stmt::DoWhile(Box::new(gen_stmt(rng, d)), gen_expr(rng, 2)),
        6 => {
            let init = match rng.index(3) {
                0 => None,
                1 => Some(Box::new(Stmt::Expr(gen_expr(rng, 2)))),
                _ => Some(Box::new(gen_decl(rng))),
            };
            Stmt::For {
                init,
                cond: rng.chance(2, 3).then(|| gen_expr(rng, 2)),
                step: rng.chance(2, 3).then(|| gen_expr(rng, 2)),
                body: Box::new(gen_stmt(rng, d)),
            }
        }
        7 => {
            // A switch body: cases and defaults interleaved with plain
            // statements, the only place the markers are meaningful.
            let n = 1 + rng.index(4);
            let mut stmts = Vec::new();
            for _ in 0..n {
                match rng.index(4) {
                    0 => stmts.push(Stmt::Case(rng.below(20) as i64 - 10)),
                    1 => stmts.push(Stmt::Default),
                    2 => stmts.push(Stmt::Break),
                    _ => stmts.push(gen_stmt(rng, d.min(1))),
                }
            }
            Stmt::Switch(
                gen_expr(rng, 2),
                Box::new(Stmt::Block(Block {
                    stmts,
                    span: Span::point(0),
                })),
            )
        }
        8 => Stmt::Return(rng.chance(1, 2).then(|| gen_expr(rng, 2))),
        _ => Stmt::Continue,
    }
}

/// Mirrors the printer's dangling-else test (see `pretty::swallows_else`).
fn swallows_else(s: &Stmt) -> bool {
    match s {
        Stmt::If(_, _, None) => true,
        Stmt::If(_, _, Some(e)) => swallows_else(e),
        Stmt::While(_, b) | Stmt::Switch(_, b) => swallows_else(b),
        Stmt::For { body, .. } => swallows_else(body),
        _ => false,
    }
}

fn gen_program(rng: &mut Rng) -> Program {
    let mut prog = Program::default();
    for name in NAMES.iter().take(rng.index(4)) {
        let ty = gen_type(rng, 2);
        let init = matches!(ty, Type::Int | Type::Long | Type::Char)
            .then(|| Init::Scalar(e(ExprKind::IntLit(rng.below(100) as i64))));
        prog.globals.push(GlobalDecl {
            id: NodeId(0),
            name: name.to_string(),
            ty,
            init: if rng.chance(1, 2) { init } else { None },
            span: Span::point(0),
        });
    }
    let nfuncs = 1 + rng.index(3);
    for fi in 0..nfuncs {
        let nparams = rng.index(3);
        let body = if rng.chance(5, 6) {
            Some(gen_block(rng, 3))
        } else {
            None // prototype
        };
        prog.funcs.push(FuncDef {
            name: format!("f{fi}"),
            ret: if rng.chance(1, 4) {
                Type::Void
            } else {
                gen_scalar_type(rng, 2)
            },
            params: (0..nparams)
                .map(|pi| Param {
                    id: NodeId(0),
                    // The parser keeps parameter names only for
                    // definitions; prototypes carry unnamed params.
                    name: if body.is_some() {
                        format!("p{pi}")
                    } else {
                        String::new()
                    },
                    ty: gen_scalar_type(rng, 2),
                    span: Span::point(0),
                })
                .collect(),
            varargs: false,
            body,
            span: Span::point(0),
        });
    }
    prog
}

#[test]
fn random_expressions_roundtrip_structurally() {
    let types = TypeTable::new();
    for case in 0..400 {
        let mut rng = Rng::for_case("expr_roundtrip", case);
        let ast = gen_expr(&mut rng, 4);
        let printed = expr_to_c(&ast, &types);
        let reparsed = parse_expr(&printed)
            .unwrap_or_else(|err| panic!("case {case}: reparse failed for `{printed}`: {err}"));
        assert_eq!(
            normalize_expr(&reparsed),
            ast,
            "case {case}: `{printed}` reparsed differently"
        );
    }
}

#[test]
fn random_programs_roundtrip_structurally() {
    for case in 0..200 {
        let mut rng = Rng::for_case("program_roundtrip", case);
        let ast = gen_program(&mut rng);
        let printed = program_to_c(&ast);
        let reparsed = parse(&printed)
            .unwrap_or_else(|err| panic!("case {case}: reparse failed for:\n{printed}\n{err}"));
        assert_eq!(
            normalize_program(&reparsed),
            ast,
            "case {case}: program reparsed differently:\n{printed}"
        );
    }
}

#[test]
fn parsed_source_roundtrips_through_the_printer() {
    // Source-level fixpoint: parse → print → parse must be stable for
    // hand-written programs exercising the printer's corner cases.
    let sources = [
        "int f(void) { long i = 0, *p, v[4]; for (long j = 0, k = 9; j < k; j++) i += j; return (int)i; }",
        "int g(int x) { return sizeof ((long)x) + sizeof(long) + sizeof x; }",
        "int h(int *p) { int **q = &p; return *p + - -5[q == &p ? p : *q]; }",
        "char s(void) { char *m = \"a\\tb\\\"c\\\\d\\a\\b\\f\\v\\0e\"; return m[2]; }",
        "int sw(int v) { switch (v) { case -1: return 0; case 3: break; default: v++; } return v; }",
    ];
    for src in sources {
        let first = parse(src).unwrap_or_else(|err| panic!("{src}: {err}"));
        let printed = program_to_c(&first);
        let second = parse(&printed).unwrap_or_else(|err| panic!("reparse of:\n{printed}\n{err}"));
        assert_eq!(
            normalize_program(&first),
            normalize_program(&second),
            "print/parse not a fixpoint for:\n{printed}"
        );
    }
}
