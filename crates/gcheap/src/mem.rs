//! Simulated flat address space shared by the VM and the collector.
//!
//! Three fixed regions mirror a conventional process image:
//!
//! * **globals** (statically allocated data) starting at [`GLOBAL_BASE`];
//! * **stack** starting at [`STACK_BASE`] and growing downward from
//!   `STACK_BASE + stack_size`;
//! * **heap** starting at [`HEAP_BASE`], managed by the collector.
//!
//! The paper's GC-roots are "the machine stack, registers, and statically
//! allocated memory" — the first two regions plus the VM register file.

use std::fmt;

/// Base address of the globals region.
pub const GLOBAL_BASE: u64 = 0x0001_0000;
/// Base address of the stack region.
pub const STACK_BASE: u64 = 0x0040_0000;
/// Base address of the heap region.
pub const HEAP_BASE: u64 = 0x1000_0000;

/// A simulated memory access error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemFault {
    /// Offending address.
    pub addr: u64,
    /// Access width in bytes.
    pub width: u32,
    /// Whether the access was a write.
    pub write: bool,
}

impl fmt::Display for MemFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "memory fault: {} of {} bytes at {:#x}",
            if self.write { "write" } else { "read" },
            self.width,
            self.addr
        )
    }
}

impl std::error::Error for MemFault {}

/// Result alias for memory accesses.
pub type MemResult<T> = Result<T, MemFault>;

/// Which region an address falls in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Region {
    /// Statically allocated data.
    Globals,
    /// The machine stack.
    Stack,
    /// The collected heap.
    Heap,
}

/// The simulated address space.
#[derive(Debug, Clone)]
pub struct Memory {
    globals: Vec<u8>,
    stack: Vec<u8>,
    heap: Vec<u8>,
}

impl Memory {
    /// Creates an address space with the given region capacities in bytes.
    pub fn new(global_size: usize, stack_size: usize, heap_size: usize) -> Self {
        Memory {
            globals: vec![0; global_size],
            stack: vec![0; stack_size],
            heap: vec![0; heap_size],
        }
    }

    /// Creates an address space with workload-sized defaults
    /// (1 MiB globals, 1 MiB stack, 32 MiB heap).
    pub fn with_defaults() -> Self {
        Memory::new(1 << 20, 1 << 20, 32 << 20)
    }

    /// Capacity of the heap region in bytes.
    pub fn heap_size(&self) -> usize {
        self.heap.len()
    }

    /// Capacity of the stack region in bytes.
    pub fn stack_size(&self) -> usize {
        self.stack.len()
    }

    /// Highest valid stack address + 1 (the initial stack pointer).
    pub fn stack_top(&self) -> u64 {
        STACK_BASE + self.stack.len() as u64
    }

    /// Classifies an address, if it is mapped.
    pub fn region_of(&self, addr: u64) -> Option<Region> {
        if (GLOBAL_BASE..GLOBAL_BASE + self.globals.len() as u64).contains(&addr) {
            Some(Region::Globals)
        } else if (STACK_BASE..STACK_BASE + self.stack.len() as u64).contains(&addr) {
            Some(Region::Stack)
        } else if (HEAP_BASE..HEAP_BASE + self.heap.len() as u64).contains(&addr) {
            Some(Region::Heap)
        } else {
            None
        }
    }

    /// Whether `addr` lies in the heap region.
    pub fn in_heap(&self, addr: u64) -> bool {
        matches!(self.region_of(addr), Some(Region::Heap))
    }

    /// Validates that the whole `len`-byte range starting at `addr` lies
    /// inside a single mapped region. Checking the endpoints alone is not
    /// enough: the regions are discontiguous, so a range whose first byte
    /// is in one region and last byte in the next straddles an unmapped
    /// hole even though both endpoints are valid.
    fn locate_range(&self, addr: u64, len: usize, write: bool) -> MemResult<(Region, usize)> {
        let fault = MemFault {
            addr,
            width: len.min(u32::MAX as usize) as u32,
            write,
        };
        let region = self.region_of(addr).ok_or(fault.clone())?;
        let (base, region_len) = match region {
            Region::Globals => (GLOBAL_BASE, self.globals.len()),
            Region::Stack => (STACK_BASE, self.stack.len()),
            Region::Heap => (HEAP_BASE, self.heap.len()),
        };
        let off = (addr - base) as usize;
        if off + len > region_len {
            return Err(fault);
        }
        Ok((region, off))
    }

    fn locate(&self, addr: u64, width: u32, write: bool) -> MemResult<(Region, usize)> {
        let region = self
            .region_of(addr)
            .ok_or(MemFault { addr, width, write })?;
        let (base, len) = match region {
            Region::Globals => (GLOBAL_BASE, self.globals.len()),
            Region::Stack => (STACK_BASE, self.stack.len()),
            Region::Heap => (HEAP_BASE, self.heap.len()),
        };
        let off = (addr - base) as usize;
        if off + width as usize > len {
            return Err(MemFault { addr, width, write });
        }
        Ok((region, off))
    }

    fn buf(&self, region: Region) -> &[u8] {
        match region {
            Region::Globals => &self.globals,
            Region::Stack => &self.stack,
            Region::Heap => &self.heap,
        }
    }

    fn buf_mut(&mut self, region: Region) -> &mut [u8] {
        match region {
            Region::Globals => &mut self.globals,
            Region::Stack => &mut self.stack,
            Region::Heap => &mut self.heap,
        }
    }

    /// Reads `width` (1, 4, or 8) bytes, little-endian, sign-agnostic.
    ///
    /// # Errors
    ///
    /// Returns a [`MemFault`] for unmapped or out-of-range accesses.
    pub fn read(&self, addr: u64, width: u32) -> MemResult<u64> {
        let (region, off) = self.locate(addr, width, false)?;
        let buf = self.buf(region);
        Ok(match width {
            1 => buf[off] as u64,
            2 => u16::from_le_bytes(buf[off..off + 2].try_into().expect("width 2")) as u64,
            4 => u32::from_le_bytes(buf[off..off + 4].try_into().expect("width 4")) as u64,
            8 => u64::from_le_bytes(buf[off..off + 8].try_into().expect("width 8")),
            _ => panic!("unsupported access width {width}"),
        })
    }

    /// Writes `width` (1, 4, or 8) bytes, little-endian.
    ///
    /// # Errors
    ///
    /// Returns a [`MemFault`] for unmapped or out-of-range accesses.
    pub fn write(&mut self, addr: u64, width: u32, value: u64) -> MemResult<()> {
        let (region, off) = self.locate(addr, width, true)?;
        let buf = self.buf_mut(region);
        match width {
            1 => buf[off] = value as u8,
            2 => buf[off..off + 2].copy_from_slice(&(value as u16).to_le_bytes()),
            4 => buf[off..off + 4].copy_from_slice(&(value as u32).to_le_bytes()),
            8 => buf[off..off + 8].copy_from_slice(&value.to_le_bytes()),
            _ => panic!("unsupported access width {width}"),
        }
        Ok(())
    }

    /// Copies `len` bytes within the address space (regions may differ;
    /// overlapping ranges behave like `memmove`).
    ///
    /// # Errors
    ///
    /// Returns a [`MemFault`] if either range is invalid.
    pub fn copy(&mut self, dst: u64, src: u64, len: usize) -> MemResult<()> {
        // Validate both full ranges before touching any byte, so a failed
        // copy leaves memory untouched.
        if len == 0 {
            return Ok(());
        }
        let (src_region, src_off) = self.locate_range(src, len, false)?;
        let (dst_region, dst_off) = self.locate_range(dst, len, true)?;
        if src_region == dst_region {
            self.buf_mut(src_region)
                .copy_within(src_off..src_off + len, dst_off);
        } else {
            let bytes = self.buf(src_region)[src_off..src_off + len].to_vec();
            self.buf_mut(dst_region)[dst_off..dst_off + len].copy_from_slice(&bytes);
        }
        Ok(())
    }

    /// Fills `len` bytes at `addr` with `byte`.
    ///
    /// # Errors
    ///
    /// Returns a [`MemFault`] if the range is invalid.
    pub fn fill(&mut self, addr: u64, byte: u8, len: usize) -> MemResult<()> {
        if len == 0 {
            return Ok(());
        }
        let (region, off) = self.locate_range(addr, len, true)?;
        self.buf_mut(region)[off..off + len].fill(byte);
        Ok(())
    }

    /// Reads a NUL-terminated C string starting at `addr` (capped at 1 MiB).
    ///
    /// # Errors
    ///
    /// Returns a [`MemFault`] if the string runs off mapped memory.
    pub fn read_cstr(&self, addr: u64) -> MemResult<Vec<u8>> {
        let mut out = Vec::new();
        let mut a = addr;
        loop {
            let b = self.read(a, 1)? as u8;
            if b == 0 {
                return Ok(out);
            }
            out.push(b);
            a += 1;
            if out.len() > (1 << 20) {
                return Err(MemFault {
                    addr: a,
                    width: 1,
                    write: false,
                });
            }
        }
    }

    /// Iterates over the aligned words of an address range, conservatively,
    /// the way the collector scans roots: only 8-byte-aligned full words.
    pub fn aligned_words(&self, start: u64, end: u64) -> Vec<u64> {
        let mut out = Vec::new();
        self.scan_words(start, end, |w| out.push(w));
        out
    }

    /// Calls `f` with each aligned word of the range, without materialising
    /// a buffer. This is the collector's scan primitive: the range is
    /// located once and walked as a byte slice, so a traced object costs
    /// no per-word region lookups and no allocation. Ranges that leave
    /// mapped memory fall back to per-word reads, skipping faulting words.
    pub fn scan_words<F: FnMut(u64)>(&self, start: u64, end: u64, mut f: F) {
        let a = (start + 7) & !7;
        if a + 8 > end {
            return;
        }
        let len = ((end - a) & !7) as usize;
        if let Ok((region, off)) = self.locate_range(a, len, false) {
            for chunk in self.buf(region)[off..off + len].chunks_exact(8) {
                f(u64::from_le_bytes(chunk.try_into().expect("width 8")));
            }
        } else {
            let mut a = a;
            while a + 8 <= end {
                if let Ok(w) = self.read(a, 8) {
                    f(w);
                }
                a += 8;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_roundtrip_widths() {
        let mut m = Memory::new(4096, 4096, 4096);
        for &(width, value) in &[
            (1u32, 0xABu64),
            (4, 0xDEAD_BEEF),
            (8, 0x0123_4567_89AB_CDEF),
        ] {
            m.write(GLOBAL_BASE + 16, width, value).unwrap();
            assert_eq!(m.read(GLOBAL_BASE + 16, width).unwrap(), value);
        }
    }

    #[test]
    fn unaligned_access_works() {
        let mut m = Memory::new(4096, 4096, 4096);
        m.write(HEAP_BASE + 3, 8, 0x1122_3344_5566_7788).unwrap();
        assert_eq!(m.read(HEAP_BASE + 3, 8).unwrap(), 0x1122_3344_5566_7788);
    }

    #[test]
    fn unmapped_access_faults() {
        let m = Memory::new(4096, 4096, 4096);
        assert!(m.read(0, 8).is_err());
        assert!(m.read(GLOBAL_BASE + 4095, 8).is_err());
        assert!(m.read(HEAP_BASE + 4096, 1).is_err());
    }

    #[test]
    fn region_classification() {
        let m = Memory::new(4096, 4096, 4096);
        assert_eq!(m.region_of(GLOBAL_BASE), Some(Region::Globals));
        assert_eq!(m.region_of(STACK_BASE + 10), Some(Region::Stack));
        assert_eq!(m.region_of(HEAP_BASE), Some(Region::Heap));
        assert_eq!(m.region_of(1), None);
        assert!(m.in_heap(HEAP_BASE + 1));
    }

    #[test]
    fn copy_handles_overlap() {
        let mut m = Memory::new(4096, 4096, 4096);
        for i in 0..8u64 {
            m.write(GLOBAL_BASE + i, 1, i + 1).unwrap();
        }
        m.copy(GLOBAL_BASE + 2, GLOBAL_BASE, 6).unwrap();
        let got: Vec<u64> = (0..8)
            .map(|i| m.read(GLOBAL_BASE + i, 1).unwrap())
            .collect();
        assert_eq!(got, vec![1, 2, 1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn copy_across_a_region_hole_faults_without_mutating() {
        // A range whose first byte ends the globals region and whose last
        // byte begins the stack region has valid endpoints but an unmapped
        // hole in the middle. The endpoint-only validation this test pins
        // down accepted it and faulted mid-write, leaving the destination
        // partially mutated.
        let mut m = Memory::new(4096, 4096, 4096);
        let hole_src = GLOBAL_BASE + 4096 - 4; // 4 valid bytes, then the hole
        let len = (STACK_BASE - hole_src) as usize + 4;
        for i in 0..8u64 {
            m.write(STACK_BASE + i, 1, 0x55).unwrap();
        }
        assert!(m.copy(STACK_BASE, hole_src, len).is_err());
        for i in 0..8u64 {
            assert_eq!(m.read(STACK_BASE + i, 1).unwrap(), 0x55, "byte {i} mutated");
        }

        // Same hole on the destination side: nothing before the hole may
        // be written either.
        let hole_dst = GLOBAL_BASE + 4096 - 4;
        assert!(m.copy(hole_dst, STACK_BASE, len).is_err());
        for i in 0..4u64 {
            assert_eq!(m.read(hole_dst + i, 1).unwrap(), 0, "dst byte {i} mutated");
        }
    }

    #[test]
    fn fill_across_a_region_hole_faults_without_mutating() {
        let mut m = Memory::new(4096, 4096, 4096);
        let start = GLOBAL_BASE + 4096 - 4;
        let len = (STACK_BASE - start) as usize + 4;
        assert!(m.fill(start, 0xEE, len).is_err());
        for i in 0..4u64 {
            assert_eq!(m.read(start + i, 1).unwrap(), 0, "byte {i} mutated");
        }
        assert_eq!(m.read(STACK_BASE, 1).unwrap(), 0);
    }

    #[test]
    fn copy_between_regions_still_works() {
        let mut m = Memory::new(4096, 4096, 4096);
        for i in 0..16u64 {
            m.write(HEAP_BASE + i, 1, i + 1).unwrap();
        }
        m.copy(GLOBAL_BASE + 100, HEAP_BASE, 16).unwrap();
        for i in 0..16u64 {
            assert_eq!(m.read(GLOBAL_BASE + 100 + i, 1).unwrap(), i + 1);
        }
    }

    #[test]
    fn cstr_roundtrip() {
        let mut m = Memory::new(4096, 4096, 4096);
        for (i, b) in b"hello\0".iter().enumerate() {
            m.write(STACK_BASE + i as u64, 1, *b as u64).unwrap();
        }
        assert_eq!(m.read_cstr(STACK_BASE).unwrap(), b"hello");
    }

    #[test]
    fn fill_sets_range() {
        let mut m = Memory::new(4096, 4096, 4096);
        m.fill(HEAP_BASE + 8, 0xDD, 16).unwrap();
        assert_eq!(m.read(HEAP_BASE + 8, 1).unwrap(), 0xDD);
        assert_eq!(m.read(HEAP_BASE + 23, 1).unwrap(), 0xDD);
        assert_eq!(m.read(HEAP_BASE + 24, 1).unwrap(), 0);
    }

    #[test]
    fn aligned_words_skips_partial() {
        let mut m = Memory::new(4096, 4096, 4096);
        m.write(STACK_BASE + 8, 8, 42).unwrap();
        let words = m.aligned_words(STACK_BASE + 3, STACK_BASE + 16);
        assert_eq!(words, vec![42]);
    }
}
