//! The collector's page-level object map.
//!
//! The paper contrasts its lookup structure with Jones & Kelly's splay
//! tree: "we use a tree of fixed height 2 describing pages of uniformly
//! sized objects", and notes that mapping "any address to the beginning of
//! the corresponding object" is "an operation crucial to the collector's
//! performance". This module is that fixed-height-2 tree: a top-level
//! directory of second-level arrays of per-page descriptors.

/// Bytes per heap page.
pub const PAGE_SIZE: u64 = 4096;
/// log2 of [`PAGE_SIZE`].
pub const PAGE_SHIFT: u32 = 12;
/// Pages per second-level leaf array.
pub const LEAF_PAGES: usize = 1024;

/// Descriptor for one heap page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PageDesc {
    /// Never allocated / returned to the free page pool.
    Free,
    /// A page carved into uniformly sized small objects.
    Small(SmallPage),
    /// First page of a large (multi-page) object.
    LargeHead {
        /// Total object size in bytes (rounded up to pages).
        size: u64,
        /// Mark bit for the whole object.
        marked: bool,
        /// Whether the object is currently allocated.
        allocated: bool,
    },
    /// Continuation page of a large object; stores the distance back to the
    /// head page in pages.
    LargeCont(u32),
}

/// `u64` bitmap words per small page — sized for the smallest size class
/// (16-byte slots → 256 bits).
pub const BITMAP_WORDS: usize = 4;

/// Uniformly sized small-object page state.
///
/// Allocation and mark state are word-wide bitmaps (one bit per slot, in
/// slot order), so the sweep is `garbage = alloc & !mark` per word, "page
/// fully empty" is a word compare, and the allocator finds its next slot
/// with a trailing-zeros scan. Bits at and beyond [`SmallPage::slots`]
/// are never set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallPage {
    /// Object slot size in bytes (a size class; divides or tiles the page).
    pub obj_size: u32,
    slots: u32,
    alloc: [u64; BITMAP_WORDS],
    mark: [u64; BITMAP_WORDS],
}

impl SmallPage {
    /// Creates a fresh page descriptor for `obj_size`-byte slots.
    pub fn new(obj_size: u32) -> Self {
        let slots = (PAGE_SIZE / obj_size as u64) as u32;
        debug_assert!(slots as usize <= BITMAP_WORDS * 64);
        SmallPage {
            obj_size,
            slots,
            alloc: [0; BITMAP_WORDS],
            mark: [0; BITMAP_WORDS],
        }
    }

    /// Number of slots in the page.
    pub fn slots(&self) -> usize {
        self.slots as usize
    }

    /// Number of bitmap words covering this page's slots.
    pub fn words(&self) -> usize {
        (self.slots as usize).div_ceil(64)
    }

    /// The valid-slot mask for bitmap word `w` (tail words of size
    /// classes that don't divide the page cover fewer than 64 slots).
    fn used_mask(&self, w: usize) -> u64 {
        let used = (self.slots as usize).saturating_sub(w * 64).min(64);
        if used == 64 {
            u64::MAX
        } else {
            (1u64 << used) - 1
        }
    }

    /// Whether slot `slot` is allocated.
    pub fn alloc_bit(&self, slot: usize) -> bool {
        self.alloc[slot / 64] >> (slot % 64) & 1 != 0
    }

    /// Allocates slot `slot`.
    pub fn set_alloc(&mut self, slot: usize) {
        self.alloc[slot / 64] |= 1 << (slot % 64);
    }

    /// Frees slot `slot`.
    pub fn clear_alloc(&mut self, slot: usize) {
        self.alloc[slot / 64] &= !(1 << (slot % 64));
    }

    /// Allocation bitmap word `w` — the word-wise view of which slots are
    /// allocated, used by the remembered-set card scan to enumerate a
    /// page's objects without probing slot by slot.
    pub fn alloc_word(&self, w: usize) -> u64 {
        self.alloc[w]
    }

    /// Whether slot `slot` is marked.
    pub fn mark_bit(&self, slot: usize) -> bool {
        self.mark[slot / 64] >> (slot % 64) & 1 != 0
    }

    /// Marks slot `slot`.
    pub fn set_mark(&mut self, slot: usize) {
        self.mark[slot / 64] |= 1 << (slot % 64);
    }

    /// The sweep's garbage word for bitmap word `w`: allocated but not
    /// marked.
    pub fn garbage_word(&self, w: usize) -> u64 {
        self.alloc[w] & !self.mark[w]
    }

    /// Retains only marked slots and clears all marks — the whole
    /// page's sweep in eight word operations.
    pub fn fold_marks(&mut self) {
        for w in 0..BITMAP_WORDS {
            self.alloc[w] &= self.mark[w];
            self.mark[w] = 0;
        }
    }

    /// Number of allocated slots (bitmap popcount).
    pub fn live_count(&self) -> u64 {
        self.alloc.iter().map(|w| u64::from(w.count_ones())).sum()
    }

    /// Whether no slot is allocated (a word compare per bitmap word).
    pub fn is_empty(&self) -> bool {
        self.alloc == [0; BITMAP_WORDS]
    }

    /// Whether at least one slot is free.
    pub fn has_free_slot(&self) -> bool {
        self.live_count() < u64::from(self.slots)
    }

    /// Lowest free slot, if any — the allocator's address-ordered fast
    /// path.
    pub fn lowest_free_slot(&self) -> Option<usize> {
        for w in 0..self.words() {
            let free = !self.alloc[w] & self.used_mask(w);
            if free != 0 {
                return Some(w * 64 + free.trailing_zeros() as usize);
            }
        }
        None
    }
}

/// Fixed-height-2 page map over the heap region.
#[derive(Debug)]
pub struct PageMap {
    heap_base: u64,
    heap_pages: usize,
    top: Vec<Option<Box<[PageDesc]>>>,
}

impl PageMap {
    /// Creates a map for a heap of `heap_size` bytes starting at `heap_base`.
    pub fn new(heap_base: u64, heap_size: u64) -> Self {
        let heap_pages = (heap_size / PAGE_SIZE) as usize;
        let top_len = heap_pages.div_ceil(LEAF_PAGES);
        PageMap {
            heap_base,
            heap_pages,
            top: (0..top_len).map(|_| None).collect(),
        }
    }

    /// Total number of heap pages covered.
    pub fn page_count(&self) -> usize {
        self.heap_pages
    }

    /// Page index of an address, if it lies in the mapped heap.
    pub fn page_index(&self, addr: u64) -> Option<usize> {
        if addr < self.heap_base {
            return None;
        }
        let idx = ((addr - self.heap_base) >> PAGE_SHIFT) as usize;
        (idx < self.heap_pages).then_some(idx)
    }

    /// Start address of page `idx`.
    pub fn page_addr(&self, idx: usize) -> u64 {
        self.heap_base + (idx as u64) * PAGE_SIZE
    }

    /// Level-1 then level-2 lookup (the fixed-height-2 tree walk).
    pub fn desc(&self, idx: usize) -> &PageDesc {
        const FREE: PageDesc = PageDesc::Free;
        match &self.top[idx / LEAF_PAGES] {
            Some(leaf) => &leaf[idx % LEAF_PAGES],
            None => &FREE,
        }
    }

    /// Mutable descriptor access, materialising the leaf on demand.
    pub fn desc_mut(&mut self, idx: usize) -> &mut PageDesc {
        let leaf = self.top[idx / LEAF_PAGES].get_or_insert_with(|| {
            (0..LEAF_PAGES)
                .map(|_| PageDesc::Free)
                .collect::<Vec<_>>()
                .into_boxed_slice()
        });
        &mut leaf[idx % LEAF_PAGES]
    }

    /// Maps an arbitrary address to the base address of the allocated
    /// object containing it — the collector's `GC_base`. Interior pointers
    /// (any address within the object's extent) are recognised; addresses
    /// in free slots or free pages yield `None`.
    pub fn object_base(&self, addr: u64) -> Option<u64> {
        let idx = self.page_index(addr)?;
        match self.desc(idx) {
            PageDesc::Free => None,
            PageDesc::Small(sp) => {
                let page_start = self.page_addr(idx);
                let slot = ((addr - page_start) / sp.obj_size as u64) as usize;
                if slot < sp.slots() && sp.alloc_bit(slot) {
                    Some(page_start + slot as u64 * sp.obj_size as u64)
                } else {
                    None
                }
            }
            PageDesc::LargeHead { allocated, .. } => allocated.then(|| self.page_addr(idx)),
            PageDesc::LargeCont(back) => {
                let head_idx = idx - *back as usize;
                match self.desc(head_idx) {
                    PageDesc::LargeHead {
                        allocated: true,
                        size,
                        ..
                    } => {
                        let head = self.page_addr(head_idx);
                        (addr < head + size).then_some(head)
                    }
                    _ => None,
                }
            }
        }
    }

    /// The allocated extent (base, size-in-bytes) of the object containing
    /// `addr`, using the *rounded* slot size — the paper notes checking
    /// "is not completely accurate, since the garbage collector rounds up
    /// object sizes".
    pub fn object_extent(&self, addr: u64) -> Option<(u64, u64)> {
        let base = self.object_base(addr)?;
        let idx = self.page_index(base)?;
        match self.desc(idx) {
            PageDesc::Small(sp) => Some((base, sp.obj_size as u64)),
            PageDesc::LargeHead { size, .. } => Some((base, *size)),
            _ => None,
        }
    }

    /// Whether two addresses fall inside the same allocated heap object
    /// (the collector facility behind `GC_same_obj`).
    pub fn same_object(&self, p: u64, q: u64) -> bool {
        match (self.object_base(p), self.object_base(q)) {
            (Some(a), Some(b)) => a == b,
            _ => false,
        }
    }

    /// Iterates over all (page index, descriptor) pairs of mapped leaves.
    pub fn pages(&self) -> impl Iterator<Item = (usize, &PageDesc)> {
        self.top.iter().enumerate().flat_map(|(ti, leaf)| {
            leaf.iter().flat_map(move |l| {
                l.iter()
                    .enumerate()
                    .map(move |(pi, d)| (ti * LEAF_PAGES + pi, d))
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: u64 = 0x1000_0000;

    fn map_with_small_page(obj_size: u32) -> PageMap {
        let mut pm = PageMap::new(BASE, 1 << 20);
        let mut sp = SmallPage::new(obj_size);
        sp.set_alloc(0);
        sp.set_alloc(2);
        *pm.desc_mut(0) = PageDesc::Small(sp);
        pm
    }

    #[test]
    fn bitmap_accessors_round_trip() {
        let mut sp = SmallPage::new(48); // 85 slots: a ragged tail word
        assert_eq!(sp.slots(), 85);
        assert_eq!(sp.words(), 2);
        assert!(sp.is_empty());
        assert_eq!(sp.lowest_free_slot(), Some(0));
        for slot in [0, 1, 63, 64, 84] {
            assert!(!sp.alloc_bit(slot));
            sp.set_alloc(slot);
            assert!(sp.alloc_bit(slot));
        }
        assert_eq!(sp.live_count(), 5);
        assert!(!sp.is_empty());
        assert!(sp.has_free_slot());
        assert_eq!(sp.lowest_free_slot(), Some(2));
        sp.clear_alloc(1);
        assert_eq!(sp.lowest_free_slot(), Some(1));
        // Marks fold into alloc: only marked slots survive.
        sp.set_mark(0);
        sp.set_mark(84);
        assert_eq!(sp.garbage_word(0), 1 << 63); // slot 63 unmarked
        assert_eq!(sp.garbage_word(1), 1 << (64 - 64)); // slot 64 unmarked
        sp.fold_marks();
        assert!(sp.alloc_bit(0));
        assert!(sp.alloc_bit(84));
        assert!(!sp.alloc_bit(63));
        assert!(!sp.alloc_bit(64));
        assert!(!sp.mark_bit(0));
        assert_eq!(sp.live_count(), 2);
    }

    #[test]
    fn lowest_free_slot_on_a_full_page() {
        let mut sp = SmallPage::new(2048);
        assert_eq!(sp.slots(), 2);
        sp.set_alloc(0);
        sp.set_alloc(1);
        assert_eq!(sp.lowest_free_slot(), None);
        assert!(!sp.has_free_slot());
    }

    #[test]
    fn small_page_slot_count() {
        assert_eq!(SmallPage::new(16).slots(), 256);
        assert_eq!(SmallPage::new(48).slots(), 85);
    }

    #[test]
    fn object_base_for_interior_pointer() {
        let pm = map_with_small_page(64);
        // Slot 0: [BASE, BASE+64). Interior pointer anywhere inside maps
        // back to the slot base.
        assert_eq!(pm.object_base(BASE), Some(BASE));
        assert_eq!(pm.object_base(BASE + 63), Some(BASE));
        // Slot 1 is unallocated.
        assert_eq!(pm.object_base(BASE + 64), None);
        // Slot 2 allocated.
        assert_eq!(pm.object_base(BASE + 130), Some(BASE + 128));
    }

    #[test]
    fn same_object_respects_slot_bounds() {
        let pm = map_with_small_page(64);
        assert!(pm.same_object(BASE, BASE + 63));
        assert!(!pm.same_object(BASE, BASE + 130));
        assert!(!pm.same_object(BASE + 64, BASE + 64));
    }

    #[test]
    fn large_object_spans_pages() {
        let mut pm = PageMap::new(BASE, 1 << 20);
        *pm.desc_mut(4) = PageDesc::LargeHead {
            size: 3 * PAGE_SIZE,
            marked: false,
            allocated: true,
        };
        *pm.desc_mut(5) = PageDesc::LargeCont(1);
        *pm.desc_mut(6) = PageDesc::LargeCont(2);
        let head = pm.page_addr(4);
        assert_eq!(pm.object_base(head), Some(head));
        assert_eq!(pm.object_base(head + PAGE_SIZE + 100), Some(head));
        assert_eq!(pm.object_base(head + 3 * PAGE_SIZE - 1), Some(head));
        assert_eq!(pm.object_extent(head + 10), Some((head, 3 * PAGE_SIZE)));
    }

    #[test]
    fn out_of_heap_addresses_have_no_base() {
        let pm = map_with_small_page(32);
        assert_eq!(pm.object_base(BASE - 8), None);
        assert_eq!(pm.object_base(BASE + (1 << 20)), None);
        assert_eq!(pm.object_base(0), None);
    }

    #[test]
    fn lazy_leaves_read_as_free() {
        let pm = PageMap::new(BASE, 1 << 24);
        assert_eq!(*pm.desc(2000), PageDesc::Free);
        assert_eq!(pm.object_base(BASE + 2000 * PAGE_SIZE + 4), None);
    }
}
