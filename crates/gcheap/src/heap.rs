//! The conservative mark-sweep collector.
//!
//! Reproduces the collector interface the paper relies on ([Boehm95] in
//! its default configuration):
//!
//! * every object is allocated "with at least one extra byte at the end"
//!   so one-past-the-end pointers stay inside the object;
//! * "the garbage collector recognizes any address corresponding to some
//!   place inside a heap allocated object as a valid pointer" — interior
//!   pointers are valid (a configuration switch implements the paper's
//!   *Extensions* mode where heap-resident pointers must point at bases);
//! * `GC_base` / `GC_same_obj` are backed by the page map, and are only as
//!   accurate as the rounded size classes (exactly the paper's caveat).

use crate::mem::{Memory, HEAP_BASE};
use crate::pagemap::{PageDesc, PageMap, SmallPage, PAGE_SHIFT, PAGE_SIZE};
use gcprof::{ClassCensus, CollectCause, CollectionRecord, HeapCensus, ProfHandle};
use gctrace::{Event, TraceHandle};
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::time::Instant;

/// Small-object size classes in bytes. Requests above the largest class
/// become multi-page "large" objects.
pub const SIZE_CLASSES: &[u32] = &[16, 32, 48, 64, 96, 128, 192, 256, 384, 512, 1024, 2048];

/// Nanoseconds elapsed since `t0`, saturating at `u64::MAX`.
fn elapsed_ns(t0: &Instant) -> u64 {
    u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// How the collector treats interior pointers found in the heap.
///
/// Roots (stack, registers, statics) always recognise interior pointers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PointerPolicy {
    /// Interior pointers are valid everywhere (the paper's main setting).
    #[default]
    InteriorEverywhere,
    /// Interior pointers are valid "only if they originate from the stack
    /// or registers"; heap-resident words must point at object bases (the
    /// paper's *Extensions* section).
    InteriorFromRootsOnly,
}

/// Collector configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct HeapConfig {
    /// Interior-pointer recognition policy.
    pub policy: PointerPolicy,
    /// Allocate one extra byte per object (paper default: on).
    pub extra_byte: bool,
    /// Overwrite freed memory with `0xDD` so premature collection is
    /// observable (used by the GC-unsafety demonstrations).
    pub poison: bool,
    /// Bytes allocated between automatic collections.
    pub gc_threshold: u64,
    /// \[Boehm93\]-style page blacklisting: candidate words observed during
    /// marking that point into *free* heap pages mark those pages as
    /// unusable, so a future allocation cannot be falsely retained by a
    /// pre-existing spurious bit pattern. (The paper cites this as what
    /// makes the everywhere-interior-pointer assumption affordable.)
    pub blacklisting: bool,
    /// Incremental tri-color marking: threshold collections run as a
    /// sequence of bounded stops at allocation safe points instead of one
    /// stop-the-world pause. Requires the mutator to report heap pointer
    /// stores through [`GcHeap::write_barrier`] while
    /// [`GcHeap::marking_active`].
    pub incremental: bool,
    /// Heap bytes scanned per bounded mark increment (incremental mode).
    pub mark_budget_bytes: u64,
    /// Generational young/old page split: pages carved since the last
    /// collection are the nursery, and most collections trace and sweep
    /// only those, using the write barrier's per-page cards to find old→
    /// young pointers. Requires [`GcHeap::write_barrier`] like
    /// `incremental`.
    pub nursery: bool,
    /// With `nursery` on, every `full_every`-th collection is a full one;
    /// the rest are nursery-only.
    pub full_every: u64,
    /// Pages visited per bounded sweep stop when an incremental cycle's
    /// sweep is retired in chunks (incremental mode; the page-walk of a
    /// finished cycle is spread over allocation safe points instead of
    /// running inside the stop that ends marking).
    pub sweep_chunk_pages: usize,
}

impl Default for HeapConfig {
    fn default() -> Self {
        HeapConfig {
            policy: PointerPolicy::InteriorEverywhere,
            extra_byte: true,
            poison: true,
            gc_threshold: 256 * 1024,
            blacklisting: false,
            incremental: false,
            mark_budget_bytes: 64 * 1024,
            nursery: false,
            full_every: 4,
            sweep_chunk_pages: 64,
        }
    }
}

impl HeapConfig {
    /// The bounded-pause configuration: incremental tri-color marking plus
    /// nursery collections, defaults otherwise. Callers must route heap
    /// pointer stores through [`GcHeap::write_barrier`] /
    /// [`GcHeap::write_barrier_range`] whenever [`GcHeap::barrier_active`].
    pub fn bounded_pause() -> Self {
        HeapConfig {
            incremental: true,
            nursery: true,
            // Nursery collections stay stop-the-world, so their young
            // set (and with it the trace part of their stop) is bounded
            // by the allocation interval between collections.
            gc_threshold: 48 * 1024,
            // A drain stop scans at worst this many bytes of marked
            // objects; at the measured worst-case scan rate that costs
            // about what a nursery trace does.
            mark_budget_bytes: 16 * 1024,
            // Small sweep chunks: page sweeps poison their garbage, so
            // per-page cost is dominated by dead slots, not the walk.
            sweep_chunk_pages: 12,
            ..HeapConfig::default()
        }
    }
}

/// Allocation failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfMemory {
    /// The request that failed, in bytes.
    pub requested: u64,
}

impl fmt::Display for OutOfMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "heap exhausted allocating {} bytes", self.requested)
    }
}

impl std::error::Error for OutOfMemory {}

/// Collector statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HeapStats {
    /// Number of completed collections.
    pub collections: u64,
    /// Objects successfully allocated over the heap's lifetime.
    pub allocations: u64,
    /// Bytes successfully requested over the heap's lifetime
    /// (pre-rounding; failed requests are not counted here).
    pub bytes_requested: u64,
    /// Allocation attempts that returned [`OutOfMemory`].
    pub failed_allocations: u64,
    /// Small pages that sweeps found fully empty and returned to the
    /// free page pool for reuse by any size class.
    pub pages_reclaimed: u64,
    /// Dirty pages adopted by the allocator on demand — the lazy half of
    /// the sweep, where free-slot discovery is deferred from the
    /// collection pause to allocation time.
    pub pages_swept_lazily: u64,
    /// Pages currently queued for lazy adoption (outstanding sweep
    /// debt); zero after [`GcHeap::sweep_all`].
    pub sweep_debt_pages: u64,
    /// Objects reclaimed by sweeps.
    pub objects_freed: u64,
    /// Objects currently live (allocated minus freed).
    pub objects_live: u64,
    /// Bytes currently live (rounded slot sizes).
    pub bytes_live: u64,
    /// `GC_same_obj`-style checks performed.
    pub same_obj_checks: u64,
    /// Checks that failed (pointer left its object).
    pub same_obj_failures: u64,
    /// Pages withdrawn from allocation by blacklisting.
    pub blacklisted_pages: u64,
    /// Total stop-the-world pause across all collections, in nanoseconds.
    pub total_pause_ns: u64,
    /// Longest single collection pause, in nanoseconds.
    pub max_pause_ns: u64,
    /// Mark-phase share of the total pause, in nanoseconds.
    pub total_mark_ns: u64,
    /// Sweep-phase share of the total pause, in nanoseconds.
    pub total_sweep_ns: u64,
    /// Root-scan share of the total mark time, in nanoseconds.
    pub total_root_scan_ns: u64,
    /// Worklist-drain (heap-scan) share of the total mark time, in
    /// nanoseconds.
    pub total_heap_scan_ns: u64,
    /// Collections triggered by the allocation threshold.
    pub collections_threshold: u64,
    /// Collections forced by a failed allocation (collect-and-retry).
    pub collections_emergency: u64,
    /// Collections requested explicitly by the program or harness.
    pub collections_explicit: u64,
    /// Incremental cycles that terminated naturally (grey worklist dry
    /// after the final root re-scan).
    pub collections_increment_finish: u64,
    /// Nursery-only (young-generation) collections.
    pub collections_nursery: u64,
    /// Bounded mark stops taken by incremental cycles: initial root
    /// scans, budgeted increments, and the re-scan stop that ends
    /// marking.
    pub mark_increments: u64,
    /// Bounded sweep stops taken by finishing incremental cycles — the
    /// page-walk of a finished cycle's sweep retired in
    /// [`HeapConfig::sweep_chunk_pages`]-page chunks at allocation safe
    /// points.
    pub sweep_increments: u64,
    /// Objects newly greyed by the Dijkstra store barrier.
    pub barrier_marks: u64,
    /// High-water mark of [`HeapStats::bytes_live`].
    pub peak_bytes_live: u64,
}

impl HeapStats {
    /// Serializes the stats as a flat JSON object (field names match the
    /// struct; all values are unsigned integers).
    pub fn to_json(&self) -> String {
        let mut w = gctrace::json::Writer::new();
        w.uint_field("collections", self.collections);
        w.uint_field("allocations", self.allocations);
        w.uint_field("bytes_requested", self.bytes_requested);
        w.uint_field("failed_allocations", self.failed_allocations);
        w.uint_field("pages_reclaimed", self.pages_reclaimed);
        w.uint_field("pages_swept_lazily", self.pages_swept_lazily);
        w.uint_field("sweep_debt_pages", self.sweep_debt_pages);
        w.uint_field("objects_freed", self.objects_freed);
        w.uint_field("objects_live", self.objects_live);
        w.uint_field("bytes_live", self.bytes_live);
        w.uint_field("same_obj_checks", self.same_obj_checks);
        w.uint_field("same_obj_failures", self.same_obj_failures);
        w.uint_field("blacklisted_pages", self.blacklisted_pages);
        w.uint_field("total_pause_ns", self.total_pause_ns);
        w.uint_field("max_pause_ns", self.max_pause_ns);
        w.uint_field("total_mark_ns", self.total_mark_ns);
        w.uint_field("total_sweep_ns", self.total_sweep_ns);
        w.uint_field("total_root_scan_ns", self.total_root_scan_ns);
        w.uint_field("total_heap_scan_ns", self.total_heap_scan_ns);
        w.uint_field("collections_threshold", self.collections_threshold);
        w.uint_field("collections_emergency", self.collections_emergency);
        w.uint_field("collections_explicit", self.collections_explicit);
        w.uint_field(
            "collections_increment_finish",
            self.collections_increment_finish,
        );
        w.uint_field("collections_nursery", self.collections_nursery);
        w.uint_field("mark_increments", self.mark_increments);
        w.uint_field("sweep_increments", self.sweep_increments);
        w.uint_field("barrier_marks", self.barrier_marks);
        w.uint_field("peak_bytes_live", self.peak_bytes_live);
        w.finish()
    }

    /// Parses stats previously produced by [`HeapStats::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a message when the text is not a JSON object or a field is
    /// missing or non-integral.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let obj = gctrace::json::parse_object(text)?;
        let get = |k: &str| -> Result<u64, String> {
            obj.get(k)
                .and_then(gctrace::json::JsonValue::as_u64)
                .ok_or_else(|| format!("missing or non-integer field {k:?}"))
        };
        Ok(HeapStats {
            collections: get("collections")?,
            allocations: get("allocations")?,
            bytes_requested: get("bytes_requested")?,
            failed_allocations: get("failed_allocations")?,
            pages_reclaimed: get("pages_reclaimed")?,
            pages_swept_lazily: get("pages_swept_lazily")?,
            sweep_debt_pages: get("sweep_debt_pages")?,
            objects_freed: get("objects_freed")?,
            objects_live: get("objects_live")?,
            bytes_live: get("bytes_live")?,
            same_obj_checks: get("same_obj_checks")?,
            same_obj_failures: get("same_obj_failures")?,
            blacklisted_pages: get("blacklisted_pages")?,
            total_pause_ns: get("total_pause_ns")?,
            max_pause_ns: get("max_pause_ns")?,
            total_mark_ns: get("total_mark_ns")?,
            total_sweep_ns: get("total_sweep_ns")?,
            total_root_scan_ns: get("total_root_scan_ns")?,
            total_heap_scan_ns: get("total_heap_scan_ns")?,
            collections_threshold: get("collections_threshold")?,
            collections_emergency: get("collections_emergency")?,
            collections_explicit: get("collections_explicit")?,
            collections_increment_finish: get("collections_increment_finish")?,
            collections_nursery: get("collections_nursery")?,
            mark_increments: get("mark_increments")?,
            sweep_increments: get("sweep_increments")?,
            barrier_marks: get("barrier_marks")?,
            peak_bytes_live: get("peak_bytes_live")?,
        })
    }
}

/// The set of GC-roots for one collection: address ranges (stack, statics)
/// plus bare register words.
#[derive(Debug, Clone, Default)]
pub struct RootSet {
    /// Half-open address ranges scanned conservatively word-by-word.
    pub ranges: Vec<(u64, u64)>,
    /// Individual candidate words (the register file).
    pub words: Vec<u64>,
}

impl RootSet {
    /// Creates an empty root set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an address range.
    pub fn add_range(&mut self, start: u64, end: u64) -> &mut Self {
        self.ranges.push((start, end));
        self
    }

    /// Adds a register word.
    pub fn add_word(&mut self, word: u64) -> &mut Self {
        self.words.push(word);
        self
    }
}

/// Flat per-page classification mirroring the page map. The mark hot
/// path indexes this instead of walking the fixed-height-2 tree and
/// matching the full descriptor enum; only slot bitmaps and large-object
/// flags still live in the [`PageMap`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PageKind {
    Free,
    Small { ci: u8, obj_size: u32 },
    LargeHead,
    LargeCont { back: u32 },
}

/// What one sweep pass observed: reclamation totals, page counts per
/// phase, and (when the heap is instrumented) per-class timing.
#[derive(Debug, Default)]
struct SweepOutcome {
    /// Objects returned to the free lists.
    objects_swept: u64,
    /// Bytes returned to the free lists (rounded slot sizes).
    bytes_swept: u64,
    /// Carved pages the sweep visited (small + large, head and tail).
    pages_swept: u64,
    /// Pages left holding at least one live object.
    pages_live: u64,
    /// Sweep nanoseconds per size class (`0` = the large-object pass);
    /// empty unless the sweep ran timed.
    class_ns: Vec<(u32, u64)>,
}

/// An in-progress incremental mark cycle: the grey worklist plus the
/// accounting that becomes one [`CollectionRecord`] when the cycle
/// finishes. Tri-color over the existing structures — white = allocated
/// and unmarked, grey = marked but still on this worklist, black =
/// marked and scanned (popped).
#[derive(Debug)]
struct MarkCycle {
    /// Marked-but-unscanned objects as (base, rounded size).
    grey: Vec<(u64, u64)>,
    /// Site label of the allocation whose threshold check began the
    /// cycle.
    site: Option<String>,
    /// Allocation debt captured (and reset) when the cycle began.
    bytes_since_gc: u64,
    roots_scanned: u64,
    words_marked: u64,
    objects_marked: u64,
    /// Root-scan share across all stops so far (initial scan + re-scans).
    root_scan_ns: u64,
    /// Worklist-drain share across all stops so far.
    heap_scan_ns: u64,
    /// Total wall clock of completed mark stops (a demanded finish's
    /// final stop is added by [`GcHeap::finish_now`]; sweep chunk stops
    /// accumulate in [`SweepCycle::sweep_stops_ns`] instead).
    steps_ns: u64,
    /// Bounded stops taken so far (initial root scan + increments).
    increments: u64,
    /// Heap words scanned per completed stop.
    increment_words: Vec<u64>,
    /// Per-stop pause entries for the MMU timeline (profiled runs only).
    increment_pauses: Vec<gcprof::Pause>,
    /// Blacklist level at cycle start, for the trace event's delta.
    blacklisted_before: u64,
}

/// A finished mark cycle whose sweep is being retired in bounded chunks.
///
/// The stop that ends marking snapshots every carved page and resets the
/// allocator's per-class queues; each subsequent allocation safe point
/// sweeps [`HeapConfig::sweep_chunk_pages`] pages from the snapshot, and
/// the final chunk promotes the nursery and emits the cycle's single
/// [`CollectionRecord`]. Pages carved while the sweep is in flight are
/// not in the snapshot, so their (all live-born) objects are never
/// confused with garbage.
#[derive(Debug)]
struct SweepCycle {
    /// The finished marking's accounting (grey is empty).
    cycle: MarkCycle,
    /// Cause the completed collection will be attributed to.
    cause: CollectCause,
    /// Carved pages at mark end, ascending; `pos` is the walk cursor.
    pages: Vec<usize>,
    pos: usize,
    /// Reclamation totals accumulated across chunks.
    out: SweepOutcome,
    /// Per-class sweep nanoseconds (`SIZE_CLASSES.len()` is the
    /// large-object slot), accumulated across timed chunks.
    class_ns: Vec<u64>,
    class_seen: Vec<bool>,
    /// Wall clock of completed sweep chunk stops.
    sweep_stops_ns: u64,
}

/// The conservative garbage-collected heap.
#[derive(Debug)]
pub struct GcHeap {
    map: PageMap,
    config: HeapConfig,
    heap_base: u64,
    heap_limit: u64,
    side: Vec<PageKind>,
    /// Per-class page currently serving allocations (lowest free bit
    /// first).
    cursor: Vec<Option<usize>>,
    /// Per-class pages with free slots, ready for adoption (filled by
    /// [`GcHeap::sweep_all`] draining the dirty queues), ascending.
    partial: Vec<VecDeque<usize>>,
    /// Per-class pages with free slots queued at the last collection,
    /// awaiting lazy adoption, ascending.
    dirty: Vec<VecDeque<usize>>,
    next_page: usize,
    free_pages: Vec<usize>,
    /// Blacklisted pages as a bitmap over page indices.
    bl: Vec<u64>,
    bl_count: u64,
    bytes_since_gc: u64,
    stats: HeapStats,
    trace: TraceHandle,
    prof: ProfHandle,
    /// In-progress incremental mark cycle, if any.
    cycle: Option<MarkCycle>,
    /// Finished cycle whose sweep is still being retired in chunks, if
    /// any. Never `Some` while `cycle` is.
    sweeping: Option<SweepCycle>,
    /// Young-generation bit per page: set when the page is carved, cleared
    /// when a collection promotes the whole nursery.
    young: Vec<u64>,
    /// The young pages (small pages and large heads), carve order.
    young_list: Vec<usize>,
    /// Remembered-set card bit per old page, set by the write barrier on
    /// stores into that page; a nursery collection scans carded pages for
    /// old→young pointers and clearing happens at promotion.
    cards: Vec<u64>,
    /// Interned allocation-site labels, first-use order.
    site_names: Vec<String>,
    /// Label → index into `site_names`.
    site_ids: HashMap<String, u32>,
    /// Object base → interned site id, maintained only while attribution
    /// is enabled (the empty map costs one branch per allocation).
    obj_sites: HashMap<u64, u32>,
    /// Whether a snapshot consumer asked for site tagging even without a
    /// trace or profile attached.
    snap_sites: bool,
}

impl GcHeap {
    /// Creates a collector managing the heap region of `mem`.
    pub fn new(mem: &Memory, config: HeapConfig) -> Self {
        let map = PageMap::new(HEAP_BASE, mem.heap_size() as u64);
        let page_count = map.page_count();
        GcHeap {
            map,
            config,
            heap_base: HEAP_BASE,
            heap_limit: HEAP_BASE + page_count as u64 * PAGE_SIZE,
            side: vec![PageKind::Free; page_count],
            cursor: vec![None; SIZE_CLASSES.len()],
            partial: vec![VecDeque::new(); SIZE_CLASSES.len()],
            dirty: vec![VecDeque::new(); SIZE_CLASSES.len()],
            next_page: 0,
            free_pages: Vec::new(),
            bl: vec![0; page_count.div_ceil(64)],
            bl_count: 0,
            bytes_since_gc: 0,
            stats: HeapStats::default(),
            trace: TraceHandle::disabled(),
            prof: ProfHandle::disabled(),
            cycle: None,
            sweeping: None,
            young: vec![0; page_count.div_ceil(64)],
            young_list: Vec::new(),
            cards: vec![0; page_count.div_ceil(64)],
            site_names: Vec::new(),
            site_ids: HashMap::new(),
            obj_sites: HashMap::new(),
            snap_sites: false,
        }
    }

    /// Routes per-collection timeline events to `trace`. The default
    /// handle is disabled and costs nothing.
    pub fn set_trace(&mut self, trace: TraceHandle) {
        self.trace = trace;
    }

    /// Routes profiling samples (allocation sizes, pause histograms,
    /// the pause timeline) to `prof`. The default handle is disabled and
    /// costs one branch per sample site.
    pub fn set_prof(&mut self, prof: ProfHandle) {
        self.prof = prof;
    }

    /// The profiling handle the heap records into.
    pub fn prof(&self) -> &ProfHandle {
        &self.prof
    }

    /// Creates a collector with the default configuration.
    pub fn with_defaults(mem: &Memory) -> Self {
        GcHeap::new(mem, HeapConfig::default())
    }

    /// Current statistics snapshot.
    pub fn stats(&self) -> HeapStats {
        self.stats
    }

    /// Active configuration.
    pub fn config(&self) -> &HeapConfig {
        &self.config
    }

    /// Whether enough allocation has happened that the mutator should
    /// trigger a collection at its next safe point.
    pub fn should_collect(&self) -> bool {
        self.bytes_since_gc >= self.config.gc_threshold
    }

    fn class_index(size: u64) -> Option<usize> {
        SIZE_CLASSES.iter().position(|&c| c as u64 >= size)
    }

    fn bl_contains(&self, p: usize) -> bool {
        self.bl[p / 64] >> (p % 64) & 1 != 0
    }

    /// Blacklists page `p`; returns whether it was newly inserted.
    fn bl_insert(&mut self, p: usize) -> bool {
        let (w, bit) = (p / 64, 1u64 << (p % 64));
        if self.bl[w] & bit != 0 {
            return false;
        }
        self.bl[w] |= bit;
        self.bl_count += 1;
        true
    }

    /// Highest blacklisted page in `[start, end)`, if any — one masked
    /// word scan per 64 pages instead of a per-page set probe.
    fn bl_last_in(&self, start: usize, end: usize) -> Option<usize> {
        let (ws, we) = (start / 64, (end - 1) / 64);
        for w in (ws..=we).rev() {
            let mut word = self.bl[w];
            if w == we {
                let top = (end - 1) % 64;
                if top < 63 {
                    word &= (1u64 << (top + 1)) - 1;
                }
            }
            if w == ws {
                word &= !((1u64 << (start % 64)) - 1);
            }
            if word != 0 {
                return Some(w * 64 + 63 - word.leading_zeros() as usize);
            }
        }
        None
    }

    fn is_young(&self, p: usize) -> bool {
        self.young[p / 64] >> (p % 64) & 1 != 0
    }

    /// Marks a freshly carved page (small page or large head) as nursery.
    fn set_young(&mut self, p: usize) {
        if !self.config.nursery || self.is_young(p) {
            return;
        }
        self.young[p / 64] |= 1 << (p % 64);
        self.young_list.push(p);
    }

    /// Promotes the whole nursery: every collection ends with all
    /// surviving pages old, and the remembered-set cards reset (a full
    /// collection needs no cards; a nursery collection just scanned them).
    fn promote_young(&mut self) {
        for &p in &self.young_list {
            self.young[p / 64] &= !(1 << (p % 64));
        }
        self.young_list.clear();
        if self.config.nursery {
            self.cards.iter_mut().for_each(|w| *w = 0);
        }
    }

    fn take_page(&mut self) -> Option<usize> {
        while let Some(p) = self.free_pages.pop() {
            if !self.bl_contains(p) {
                return Some(p);
            }
            // Blacklisted recycled pages are simply abandoned — the real
            // cost of blacklisting is lost capacity.
        }
        while self.next_page < self.map.page_count() {
            let p = self.next_page;
            self.next_page += 1;
            if !self.bl_contains(p) {
                return Some(p);
            }
        }
        None
    }

    fn take_pages(&mut self, n: usize) -> Option<usize> {
        // Large objects need contiguous pages; only the bump region
        // guarantees contiguity. A window with any blacklisted page is
        // skipped wholesale — jumping past its *last* blacklisted page
        // lands exactly where the old first-hit advance converged, in
        // one step per stretch instead of one per blacklisted page.
        while self.next_page + n <= self.map.page_count() {
            match self.bl_last_in(self.next_page, self.next_page + n) {
                Some(last) => self.next_page = last + 1,
                None => {
                    let p = self.next_page;
                    self.next_page += n;
                    return Some(p);
                }
            }
        }
        None
    }

    /// Allocates `size` bytes (plus the configured extra byte), zeroed.
    /// Returns the object base address.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfMemory`] when neither the free lists nor fresh pages
    /// can satisfy the request; the caller should collect and retry via
    /// [`GcHeap::alloc_with_roots`] or fail.
    pub fn alloc(&mut self, mem: &mut Memory, size: u64) -> Result<u64, OutOfMemory> {
        let effective = size + u64::from(self.config.extra_byte);
        let effective = effective.max(1);
        let attempt = if let Some(ci) = Self::class_index(effective) {
            self.alloc_small(ci)
                .map(|addr| (addr, u64::from(SIZE_CLASSES[ci])))
        } else {
            let extent = effective.div_ceil(PAGE_SIZE) * PAGE_SIZE;
            self.alloc_large(effective).map(|addr| (addr, extent))
        };
        let Some((addr, extent)) = attempt else {
            // Failed attempts are counted on their own so `allocations` /
            // `bytes_requested` describe the objects that actually exist.
            self.stats.failed_allocations += 1;
            return Err(OutOfMemory { requested: size });
        };
        self.stats.allocations += 1;
        self.stats.bytes_requested += size;
        if !self.obj_sites.is_empty() {
            // A reclaimed base must not inherit the site of the object
            // that used to live there; sited callers re-tag after this.
            self.obj_sites.remove(&addr);
        }
        mem.fill(addr, 0, extent as usize)
            .expect("object memory is mapped");
        if self.cycle.is_some() {
            // Allocate black: objects born during a mark cycle survive it
            // (they would all be live had the collection run to completion
            // at its trigger point), and their stores are barriered, so
            // they never need scanning by this cycle.
            self.blacken(addr);
        }
        self.bytes_since_gc += extent;
        self.stats.objects_live += 1;
        self.stats.bytes_live += extent;
        self.stats.peak_bytes_live = self.stats.peak_bytes_live.max(self.stats.bytes_live);
        self.prof.record_alloc_size(size);
        Ok(addr)
    }

    /// Allocates with automatic collection: if the threshold has been
    /// reached or memory is exhausted, collects using `roots` and retries.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfMemory`] if the heap is exhausted even after a
    /// collection.
    pub fn alloc_with_roots(
        &mut self,
        mem: &mut Memory,
        size: u64,
        roots: &RootSet,
    ) -> Result<u64, OutOfMemory> {
        self.alloc_with_roots_sited(mem, size, roots, None)
    }

    /// [`GcHeap::alloc_with_roots`] carrying the allocation-site label of
    /// the request, so any collection this allocation triggers is
    /// attributed to it. Callers should only build the label when
    /// [`GcHeap::attribution_enabled`] — a `None` site is always correct.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfMemory`] if the heap is exhausted even after a
    /// collection.
    pub fn alloc_with_roots_sited(
        &mut self,
        mem: &mut Memory,
        size: u64,
        roots: &RootSet,
        site: Option<&str>,
    ) -> Result<u64, OutOfMemory> {
        let res = self.alloc_sited_inner(mem, size, roots, site);
        if let (Ok(addr), Some(label)) = (&res, site) {
            if self.attribution_enabled() {
                self.tag_site(*addr, label);
            }
        }
        res
    }

    /// Interns `label` and tags the object at `addr` with it, so heap
    /// snapshots can attribute the object to its allocation site.
    fn tag_site(&mut self, addr: u64, label: &str) {
        let id = match self.site_ids.get(label) {
            Some(&id) => id,
            None => {
                let id = self.site_names.len() as u32;
                self.site_names.push(label.to_string());
                self.site_ids.insert(label.to_string(), id);
                id
            }
        };
        self.obj_sites.insert(addr, id);
    }

    fn alloc_sited_inner(
        &mut self,
        mem: &mut Memory,
        size: u64,
        roots: &RootSet,
        site: Option<&str>,
    ) -> Result<u64, OutOfMemory> {
        // `full_swept` means a complete mark+sweep just ran: a failed
        // allocation after one is definitive — a second back-to-back
        // collection cannot free anything more.
        let mut full_swept = false;
        if self.cycle.is_some() {
            // This safe point's share of the in-progress cycle.
            self.mark_step(mem, roots);
        } else if self.sweeping.is_some() {
            // This safe point's chunk of a finished cycle's sweep.
            self.sweep_step(mem);
        } else if self.should_collect() {
            if self.nursery_due() {
                // Young-only collections stay stop-the-world: the nursery
                // is bounded by the allocation threshold, so they are
                // short by construction.
                self.collect_as(mem, roots, CollectCause::Nursery, site);
            } else if self.config.incremental {
                self.begin_cycle(mem, roots, site);
            } else {
                self.collect_as(mem, roots, CollectCause::Threshold, site);
                full_swept = true;
            }
        }
        match self.alloc(mem, size) {
            Ok(a) => Ok(a),
            Err(e) if full_swept => Err(e),
            Err(_) => {
                // Memory is exhausted: finish any in-progress cycle now
                // (the emergency needs the whole heap swept), else run a
                // full stop-the-world collection, then retry once.
                if self.cycle.is_some() {
                    self.finish_cycle(mem, roots, CollectCause::Emergency);
                    return self.alloc(mem, size);
                }
                if self.sweeping.is_some() {
                    // A finished cycle's sweep is still in flight: the
                    // unswept tail may hold exactly the garbage this
                    // request needs, so retire it before declaring an
                    // emergency.
                    self.finish_pending_sweep(mem);
                    if let Ok(a) = self.alloc(mem, size) {
                        return Ok(a);
                    }
                }
                self.collect_as(mem, roots, CollectCause::Emergency, site);
                self.alloc(mem, size)
            }
        }
    }

    /// Whether the next triggered collection should be nursery-only:
    /// with the generational split on, every [`HeapConfig::full_every`]-th
    /// collection is a full one and the rest visit only young pages.
    fn nursery_due(&self) -> bool {
        self.config.nursery
            && !(self.stats.collections + 1).is_multiple_of(self.config.full_every.max(1))
    }

    /// Whether an attached trace, profile, or snapshot consumer will use
    /// attribution detail (trigger cause, site label, per-class sweep
    /// timing). Callers use this to skip building site strings on the
    /// fast path; the heap uses it to skip per-page sweep timing.
    pub fn attribution_enabled(&self) -> bool {
        self.trace.is_enabled() || self.prof.is_enabled() || self.snap_sites
    }

    /// Declares that heap snapshots will be taken, so allocation sites
    /// must be tagged even without a trace or profile attached (the
    /// snapshot graph attributes retained sizes to sites).
    pub fn set_snap_sites(&mut self, on: bool) {
        self.snap_sites = on;
    }

    /// Serves the lowest free slot of `page` from its allocation bitmap,
    /// or `None` when the page is full.
    fn alloc_in_page(&mut self, page: usize) -> Option<u64> {
        let page_start = self.map.page_addr(page);
        let PageDesc::Small(sp) = self.map.desc_mut(page) else {
            unreachable!("allocation cursor on a non-small page")
        };
        let slot = sp.lowest_free_slot()?;
        sp.set_alloc(slot);
        Some(page_start + slot as u64 * sp.obj_size as u64)
    }

    fn alloc_small(&mut self, ci: usize) -> Option<u64> {
        // Fast path: the class's current page serves lowest-free-bit
        // first, preserving address-ordered allocation.
        if let Some(page) = self.cursor[ci] {
            if let Some(addr) = self.alloc_in_page(page) {
                return Some(addr);
            }
            // Page full; it resurfaces at the next sweep if it thins out.
            self.cursor[ci] = None;
        }
        // Ready pages first (sweep debt already retired), then the dirty
        // queue — the lazy half of the sweep, where a page's free slots
        // are only discovered when its class actually allocates again.
        let next = self.partial[ci].pop_front().or_else(|| {
            let page = self.dirty[ci].pop_front()?;
            self.stats.sweep_debt_pages -= 1;
            self.stats.pages_swept_lazily += 1;
            Some(page)
        });
        if let Some(page) = next {
            self.cursor[ci] = Some(page);
            let addr = self
                .alloc_in_page(page)
                .expect("queued page has a free slot");
            return Some(addr);
        }
        // Carve a fresh page.
        let obj_size = SIZE_CLASSES[ci];
        let page = self.take_page()?;
        let mut sp = SmallPage::new(obj_size);
        sp.set_alloc(0);
        let page_start = self.map.page_addr(page);
        *self.map.desc_mut(page) = PageDesc::Small(sp);
        self.side[page] = PageKind::Small {
            ci: ci as u8,
            obj_size,
        };
        self.set_young(page);
        self.cursor[ci] = Some(page);
        Some(page_start)
    }

    fn alloc_large(&mut self, size: u64) -> Option<u64> {
        let pages = size.div_ceil(PAGE_SIZE) as usize;
        let head = self.take_pages(pages)?;
        *self.map.desc_mut(head) = PageDesc::LargeHead {
            size: pages as u64 * PAGE_SIZE,
            marked: false,
            allocated: true,
        };
        self.side[head] = PageKind::LargeHead;
        self.set_young(head);
        for i in 1..pages {
            *self.map.desc_mut(head + i) = PageDesc::LargeCont(i as u32);
            self.side[head + i] = PageKind::LargeCont { back: i as u32 };
        }
        Some(self.map.page_addr(head))
    }

    /// `GC_base`: the base of the allocated object containing `addr`.
    pub fn base(&self, addr: u64) -> Option<u64> {
        self.map.object_base(addr)
    }

    /// The rounded extent of the object containing `addr`.
    pub fn extent(&self, addr: u64) -> Option<(u64, u64)> {
        self.map.object_extent(addr)
    }

    /// Whether `addr` points into a currently allocated object.
    pub fn is_allocated(&self, addr: u64) -> bool {
        self.map.object_base(addr).is_some()
    }

    /// `GC_same_obj`: whether `p` and `q` point into the same allocated
    /// heap object. Updates the check statistics.
    pub fn same_obj(&mut self, p: u64, q: u64) -> bool {
        self.stats.same_obj_checks += 1;
        let ok = self.map.same_object(p, q);
        if !ok {
            self.stats.same_obj_failures += 1;
        }
        ok
    }

    /// Walks the page map and produces a point-in-time [`HeapCensus`]:
    /// live objects/bytes per size class, per-page occupancy deciles for
    /// the fragmentation ratio, large-object totals, and blacklist
    /// pressure. Free pages that sit in the reuse pool and pages the bump
    /// allocator has never touched both count as free; blacklisted pages
    /// are reported separately (they are withdrawn, not occupied).
    pub fn census(&self) -> HeapCensus {
        let mut classes: Vec<ClassCensus> = SIZE_CLASSES
            .iter()
            .map(|&obj_size| ClassCensus {
                obj_size,
                ..ClassCensus::default()
            })
            .collect();
        let mut census = HeapCensus {
            pages_total: self.map.page_count() as u64,
            blacklisted_pages: self.bl_count,
            ..HeapCensus::default()
        };
        for idx in 0..self.next_page {
            match self.map.desc(idx) {
                PageDesc::Free | PageDesc::LargeCont(_) => {}
                PageDesc::Small(sp) => {
                    let ci = SIZE_CLASSES
                        .iter()
                        .position(|&c| c == sp.obj_size)
                        .expect("small page carries a known size class");
                    let live = sp.live_count();
                    let slots = sp.slots() as u64;
                    let c = &mut classes[ci];
                    c.pages += 1;
                    c.slots += slots;
                    c.live_objects += live;
                    c.live_bytes += live * u64::from(sp.obj_size);
                    census.small_pages += 1;
                    census.small_capacity_bytes += slots * u64::from(sp.obj_size);
                    census.occupancy_deciles[HeapCensus::occupancy_decile(live, slots)] += 1;
                }
                PageDesc::LargeHead {
                    size,
                    allocated: true,
                    ..
                } => {
                    census.large_objects += 1;
                    census.large_bytes += size;
                    census.large_pages += size / PAGE_SIZE;
                }
                PageDesc::LargeHead { .. } => {}
            }
        }
        census.free_pages = census.pages_total - census.small_pages - census.large_pages;
        census.live_objects =
            census.large_objects + classes.iter().map(|c| c.live_objects).sum::<u64>();
        census.live_bytes = census.large_bytes + classes.iter().map(|c| c.live_bytes).sum::<u64>();
        census.classes = classes.into_iter().filter(|c| c.pages > 0).collect();
        census
    }

    /// Runs a full stop-the-world mark-sweep collection, attributed as
    /// [`CollectCause::Explicit`] (the program or harness asked for it).
    pub fn collect(&mut self, mem: &mut Memory, roots: &RootSet) {
        self.collect_as(mem, roots, CollectCause::Explicit, None);
    }

    /// Runs a full stop-the-world mark-sweep collection attributed to
    /// `cause` — and, when the caller knows it, to the allocation-site
    /// label whose request triggered it. The per-collection trace event
    /// and the [`CollectionRecord`] handed to the profile both carry the
    /// attribution plus a phase breakdown finer than mark/sweep:
    /// root-scan vs. heap-scan nanoseconds inside the mark, per-size-class
    /// sweep nanoseconds, and pages visited/live per phase.
    pub fn collect_as(
        &mut self,
        mem: &mut Memory,
        roots: &RootSet,
        cause: CollectCause,
        site: Option<&str>,
    ) {
        if self.cycle.is_some() {
            // A collection demanded mid-cycle finishes the cycle under
            // the demanded cause — two overlapping collections would
            // break the tri-color invariant (and the statistics).
            self.finish_cycle(mem, roots, cause);
            return;
        }
        if self.sweeping.is_some() {
            // A finished cycle's sweep is still in flight: retire it
            // first (it completes as its own collection), then run the
            // demanded one on the fully swept heap.
            self.finish_pending_sweep(mem);
        }
        if cause == CollectCause::Nursery {
            self.collect_nursery(mem, roots, site);
            return;
        }
        let t0 = Instant::now();
        self.stats.collections += 1;
        self.bump_cause(cause);
        let bytes_since_gc = self.bytes_since_gc;
        self.bytes_since_gc = 0;
        let blacklisted_before = self.stats.blacklisted_pages;
        // --- mark: root scan ---
        let mut roots_scanned: u64 = 0;
        let mut words_marked: u64 = 0;
        let mut objects_marked: u64 = 0;
        // Worklist entries carry (base, rounded size) so tracing an
        // object needs no extent lookup.
        let mut worklist: Vec<(u64, u64)> = Vec::new();
        for &(start, end) in &roots.ranges {
            mem.scan_words(start, end, |word| {
                roots_scanned += 1;
                objects_marked += u64::from(self.mark_candidate(word, true, false, &mut worklist));
            });
        }
        for &word in &roots.words {
            roots_scanned += 1;
            objects_marked += u64::from(self.mark_candidate(word, true, false, &mut worklist));
        }
        let root_scan_ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
        // --- mark: heap scan (worklist drain) ---
        while let Some((start, size)) = worklist.pop() {
            mem.scan_words(start, start + size, |word| {
                words_marked += 1;
                objects_marked += u64::from(self.mark_candidate(word, false, false, &mut worklist));
            });
        }
        let mark_ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let heap_scan_ns = mark_ns.saturating_sub(root_scan_ns);
        // --- sweep ---
        let detail = self.attribution_enabled();
        let sw = self.sweep(mem, detail);
        self.promote_young();
        let pause_ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let sweep_ns = pause_ns.saturating_sub(mark_ns);
        self.stats.total_pause_ns += pause_ns;
        self.stats.max_pause_ns = self.stats.max_pause_ns.max(pause_ns);
        self.stats.total_mark_ns += mark_ns;
        self.stats.total_sweep_ns += sweep_ns;
        self.stats.total_root_scan_ns += root_scan_ns;
        self.stats.total_heap_scan_ns += heap_scan_ns;
        if !detail {
            return;
        }
        let stats = self.stats;
        let rec = CollectionRecord {
            cause,
            site: site.map(str::to_string),
            bytes_since_gc,
            bytes_live: stats.bytes_live,
            freed_bytes: sw.bytes_swept,
            roots_scanned,
            words_marked,
            pages_live: sw.pages_live,
            pages_swept: sw.pages_swept,
            sweep_debt_pages: stats.sweep_debt_pages,
            pause_ns,
            mark_ns,
            sweep_ns,
            root_scan_ns,
            heap_scan_ns,
            class_sweep_ns: sw.class_ns,
            ..CollectionRecord::default()
        };
        self.trace.emit(|| {
            Event::new("gc", "collection")
                .field("n", stats.collections)
                .field("cause", cause.as_str())
                .field("site", rec.site.clone().unwrap_or_default())
                .field("bytes_since_gc", bytes_since_gc)
                .field("roots_scanned", roots_scanned)
                .field("words_marked", words_marked)
                .field("objects_marked", objects_marked)
                .field("objects_swept", sw.objects_swept)
                .field("bytes_swept", sw.bytes_swept)
                .field("pages_swept", sw.pages_swept)
                .field("pages_live", sw.pages_live)
                .field("sweep_debt_pages", stats.sweep_debt_pages)
                .field(
                    "blacklist_hits",
                    stats.blacklisted_pages - blacklisted_before,
                )
                .field("objects_live", stats.objects_live)
                .field("bytes_live", stats.bytes_live)
                .field("pause_ns", pause_ns)
                .field("mark_ns", mark_ns)
                .field("sweep_ns", sweep_ns)
                .field("root_scan_ns", root_scan_ns)
                .field("heap_scan_ns", heap_scan_ns)
                .field("class_sweep_ns", rec.class_sweep_encoded())
                .field("increments", 0u64)
                .field("increment_words", rec.increment_words_encoded())
                .field("young_pages_swept", 0u64)
        });
        self.prof.record_collection(move || rec);
    }

    fn bump_cause(&mut self, cause: CollectCause) {
        match cause {
            CollectCause::Threshold => self.stats.collections_threshold += 1,
            CollectCause::Emergency => self.stats.collections_emergency += 1,
            CollectCause::Explicit => self.stats.collections_explicit += 1,
            CollectCause::IncrementFinish => self.stats.collections_increment_finish += 1,
            CollectCause::Nursery => self.stats.collections_nursery += 1,
        }
    }

    /// If `word` looks like a pointer into a live object, marks it and
    /// pushes it on the worklist, returning whether the object was newly
    /// marked. `from_root` selects the interior-pointer rule per the
    /// configured policy. With `young_only`, pointers into old pages are
    /// ignored entirely — the nursery collection neither marks nor traces
    /// them (old objects are implicitly live, and any old→young pointer
    /// is found through the remembered-set cards instead).
    ///
    /// This is the collector's hottest path: a heap-bounds compare
    /// rejects most candidate words outright, and the flat side table
    /// classifies the page without walking the page-map tree, so a real
    /// pointer costs one descriptor access instead of three.
    fn mark_candidate(
        &mut self,
        word: u64,
        from_root: bool,
        young_only: bool,
        worklist: &mut Vec<(u64, u64)>,
    ) -> bool {
        if word < self.heap_base || word >= self.heap_limit {
            return false;
        }
        let idx = ((word - self.heap_base) >> PAGE_SHIFT) as usize;
        let interior_ok = from_root || self.config.policy == PointerPolicy::InteriorEverywhere;
        match self.side[idx] {
            PageKind::Free => {
                // A heap-range bit pattern with no object behind it is a
                // false pointer in waiting: blacklist its page so nothing
                // is ever allocated where a spurious root already points.
                if self.config.blacklisting && self.bl_insert(idx) {
                    self.stats.blacklisted_pages += 1;
                }
                false
            }
            PageKind::Small { .. } | PageKind::LargeHead if young_only && !self.is_young(idx) => {
                false
            }
            PageKind::Small { obj_size, .. } => {
                let page_start = self.map.page_addr(idx);
                let slot = ((word - page_start) / u64::from(obj_size)) as usize;
                let PageDesc::Small(sp) = self.map.desc_mut(idx) else {
                    unreachable!("side table says small page")
                };
                if slot >= sp.slots() || !sp.alloc_bit(slot) {
                    // A free slot (or the tail gap of a ragged class) is
                    // not an object; pages with live neighbours are never
                    // blacklisted.
                    return false;
                }
                let base = page_start + slot as u64 * u64::from(obj_size);
                if (!interior_ok && base != word) || sp.mark_bit(slot) {
                    return false;
                }
                sp.set_mark(slot);
                worklist.push((base, u64::from(obj_size)));
                true
            }
            PageKind::LargeHead => self.mark_large(idx, word, interior_ok, worklist),
            PageKind::LargeCont { back } => {
                let head = idx - back as usize;
                if young_only && !self.is_young(head) {
                    return false;
                }
                self.mark_large(head, word, interior_ok, worklist)
            }
        }
    }

    /// Marks the large object headed at page `head` if `word` falls
    /// inside its allocated extent.
    fn mark_large(
        &mut self,
        head: usize,
        word: u64,
        interior_ok: bool,
        worklist: &mut Vec<(u64, u64)>,
    ) -> bool {
        let head_addr = self.map.page_addr(head);
        let PageDesc::LargeHead {
            size,
            marked,
            allocated,
        } = self.map.desc_mut(head)
        else {
            unreachable!("side table says large head")
        };
        if !*allocated || word >= head_addr + *size {
            return false;
        }
        if (!interior_ok && word != head_addr) || *marked {
            return false;
        }
        *marked = true;
        worklist.push((head_addr, *size));
        true
    }

    /// Sets the mark bit of the object at `addr` without scanning it —
    /// allocate-black for objects born during a mark cycle.
    fn blacken(&mut self, addr: u64) {
        let idx = ((addr - self.heap_base) >> PAGE_SHIFT) as usize;
        match self.side[idx] {
            PageKind::Small { obj_size, .. } => {
                let page_start = self.map.page_addr(idx);
                let slot = ((addr - page_start) / u64::from(obj_size)) as usize;
                let PageDesc::Small(sp) = self.map.desc_mut(idx) else {
                    unreachable!("side table says small page")
                };
                sp.set_mark(slot);
            }
            PageKind::LargeHead => {
                let PageDesc::LargeHead { marked, .. } = self.map.desc_mut(idx) else {
                    unreachable!("side table says large head")
                };
                *marked = true;
            }
            PageKind::Free | PageKind::LargeCont { .. } => {
                unreachable!("freshly allocated object on a free page")
            }
        }
    }

    /// Whether an incremental mark cycle is in progress (the mutator must
    /// route heap stores through [`GcHeap::write_barrier`] until it ends).
    pub fn marking_active(&self) -> bool {
        self.cycle.is_some()
    }

    /// Whether heap stores must be reported through
    /// [`GcHeap::write_barrier`]: during an incremental mark cycle (the
    /// Dijkstra greying half) and whenever the generational split is on
    /// (the remembered-set card half).
    #[inline]
    pub fn barrier_active(&self) -> bool {
        self.config.nursery || self.cycle.is_some()
    }

    /// The store barrier, called with a heap store's target address and
    /// the value written. Two halves share it:
    ///
    /// * **Cards** (generational): the old page written to is remembered,
    ///   so the next nursery collection re-scans it for old→young
    ///   pointers.
    /// * **Dijkstra greying** (incremental): if the value points at a
    ///   white object while marking is active, the object is greyed —
    ///   storing the only pointer to a white object into an
    ///   already-scanned black object can therefore never lose it.
    ///
    /// Stores outside the heap need no barrier: non-heap locations are
    /// roots, and the cycle's final root re-scan sees them.
    pub fn write_barrier(&mut self, addr: u64, value: u64) {
        if addr < self.heap_base || addr >= self.heap_limit {
            return;
        }
        if self.config.nursery {
            let p = ((addr - self.heap_base) >> PAGE_SHIFT) as usize;
            self.card_page(p);
        }
        if self.cycle.is_some() {
            self.grey_value(value);
        }
    }

    /// [`GcHeap::write_barrier`] for a bulk store (memcpy/memset/strcpy):
    /// cards every old page the range overlaps, and greys every aligned
    /// word of the written range while marking is active. Call it *after*
    /// the bytes are written, so the scan sees the stored values.
    pub fn write_barrier_range(&mut self, mem: &Memory, addr: u64, len: u64) {
        let end = addr.saturating_add(len);
        if len == 0 || end <= self.heap_base || addr >= self.heap_limit {
            return;
        }
        if self.config.nursery {
            let lo = addr.max(self.heap_base);
            let hi = end.min(self.heap_limit);
            let first = ((lo - self.heap_base) >> PAGE_SHIFT) as usize;
            let last = ((hi - 1 - self.heap_base) >> PAGE_SHIFT) as usize;
            for p in first..=last {
                self.card_page(p);
            }
        }
        if let Some(mut cycle) = self.cycle.take() {
            let mut grey = std::mem::take(&mut cycle.grey);
            let mut marks = 0u64;
            mem.scan_words(addr & !7, (end + 7) & !7, |word| {
                marks += u64::from(self.mark_candidate(word, false, false, &mut grey));
            });
            cycle.objects_marked += marks;
            self.stats.barrier_marks += marks;
            cycle.grey = grey;
            self.cycle = Some(cycle);
        }
    }

    /// Remembers a store into page `p` (continuations resolve to their
    /// head). Young pages need no card — the nursery collection scans
    /// them anyway — and free pages hold nothing to scan.
    fn card_page(&mut self, mut p: usize) {
        if let PageKind::LargeCont { back } = self.side[p] {
            p -= back as usize;
        }
        if matches!(self.side[p], PageKind::Free) || self.is_young(p) {
            return;
        }
        self.cards[p / 64] |= 1 << (p % 64);
    }

    /// The Dijkstra half of [`GcHeap::write_barrier`]: greys the stored
    /// value's object if it is still white.
    fn grey_value(&mut self, value: u64) {
        let Some(mut cycle) = self.cycle.take() else {
            return;
        };
        let mut grey = std::mem::take(&mut cycle.grey);
        if self.mark_candidate(value, false, false, &mut grey) {
            cycle.objects_marked += 1;
            self.stats.barrier_marks += 1;
        }
        cycle.grey = grey;
        self.cycle = Some(cycle);
    }

    /// Starts an incremental mark cycle: one bounded stop that scans the
    /// roots into the grey worklist. Subsequent allocation safe points
    /// drive [`GcHeap::mark_step`] until the cycle finishes.
    fn begin_cycle(&mut self, mem: &Memory, roots: &RootSet, site: Option<&str>) {
        let t0 = Instant::now();
        let blacklisted_before = self.stats.blacklisted_pages;
        let bytes_since_gc = self.bytes_since_gc;
        self.bytes_since_gc = 0;
        let mut grey: Vec<(u64, u64)> = Vec::new();
        let mut roots_scanned = 0u64;
        let mut objects_marked = 0u64;
        for &(start, end) in &roots.ranges {
            mem.scan_words(start, end, |word| {
                roots_scanned += 1;
                objects_marked += u64::from(self.mark_candidate(word, true, false, &mut grey));
            });
        }
        for &word in &roots.words {
            roots_scanned += 1;
            objects_marked += u64::from(self.mark_candidate(word, true, false, &mut grey));
        }
        let root_ns = elapsed_ns(&t0);
        let mut cycle = MarkCycle {
            grey,
            site: site.map(str::to_string),
            bytes_since_gc,
            roots_scanned,
            words_marked: 0,
            objects_marked,
            root_scan_ns: root_ns,
            heap_scan_ns: 0,
            steps_ns: 0,
            increments: 0,
            increment_words: Vec::new(),
            increment_pauses: Vec::new(),
            blacklisted_before,
        };
        let stop_ns = elapsed_ns(&t0);
        cycle.steps_ns = stop_ns;
        cycle.increments = 1;
        cycle.increment_words.push(0);
        if self.prof.is_enabled() {
            cycle.increment_pauses.push(gcprof::Pause {
                end_ns: self.prof.now_ns(),
                pause_ns: stop_ns,
            });
        }
        self.stats.total_pause_ns += stop_ns;
        self.stats.max_pause_ns = self.stats.max_pause_ns.max(stop_ns);
        self.stats.total_mark_ns += stop_ns;
        self.stats.total_root_scan_ns += root_ns;
        self.stats.mark_increments += 1;
        let n = self.stats.collections + 1;
        let grey_len = cycle.grey.len() as u64;
        self.trace.emit(|| {
            Event::new("gc", "mark-increment")
                .field("n", n)
                .field("increment", 1u64)
                .field("roots_scanned", roots_scanned)
                .field("words_scanned", 0u64)
                .field("grey", grey_len)
                .field("pause_ns", stop_ns)
        });
        self.cycle = Some(cycle);
    }

    /// One bounded stop of an in-progress cycle: drains the grey worklist
    /// up to the byte budget. A stop that finds the worklist already dry
    /// re-scans the roots instead, and — if grey stays dry — ends marking
    /// in the same stop and installs the chunked sweep (retired by
    /// [`GcHeap::sweep_step`] at the next safe points).
    ///
    /// Termination: the grey worklist only ever receives still-white
    /// objects, objects born mid-cycle are black, and marks are never
    /// undone, so the white population shrinks monotonically; every stop
    /// either retires at least one grey object or finds grey dry, and a
    /// dry worklist that survives a root re-scan proves every object
    /// reachable at that instant is marked (heap stores were greyed by
    /// the barrier as they happened).
    fn mark_step(&mut self, mem: &mut Memory, roots: &RootSet) {
        let t0 = Instant::now();
        let mut cycle = self
            .cycle
            .take()
            .expect("mark_step requires an active cycle");
        let mut grey = std::mem::take(&mut cycle.grey);
        let budget = self.config.mark_budget_bytes.max(1);
        let mut scanned = 0u64;
        let mut words = 0u64;
        while scanned < budget {
            let Some((start, size)) = grey.pop() else {
                break;
            };
            // An object bigger than the remaining budget is scanned in
            // budget-sized segments: the unscanned tail goes back on the
            // worklist as a bare range, so one large object can never
            // blow a single stop.
            let take = size.min((budget - scanned).next_multiple_of(8));
            if take < size {
                grey.push((start + take, size - take));
            }
            mem.scan_words(start, start + take, |word| {
                words += 1;
                cycle.objects_marked +=
                    u64::from(self.mark_candidate(word, false, false, &mut grey));
            });
            scanned += take;
        }
        let drain_ns = elapsed_ns(&t0);
        cycle.words_marked += words;
        cycle.heap_scan_ns += drain_ns;
        self.stats.total_heap_scan_ns += drain_ns;
        // The termination re-scan runs only in a stop whose drain had
        // nothing to do — piggybacking it on a full-budget drain would
        // double that stop's cost.
        if grey.is_empty() && scanned == 0 {
            // The final (bounded) root re-scan: pointers the mutator kept
            // only in roots since the initial scan are caught here.
            let mut rescanned = 0u64;
            for &(start, end) in &roots.ranges {
                mem.scan_words(start, end, |word| {
                    rescanned += 1;
                    cycle.objects_marked +=
                        u64::from(self.mark_candidate(word, true, false, &mut grey));
                });
            }
            for &word in &roots.words {
                rescanned += 1;
                cycle.objects_marked +=
                    u64::from(self.mark_candidate(word, true, false, &mut grey));
            }
            let rescan_ns = elapsed_ns(&t0).saturating_sub(drain_ns);
            cycle.roots_scanned += rescanned;
            cycle.root_scan_ns += rescan_ns;
            self.stats.total_root_scan_ns += rescan_ns;
            if grey.is_empty() {
                cycle.grey = grey;
                // Marking is over. Still inside this stop: reset the
                // allocator's recycled-slot queues (their free-slot
                // knowledge predates the new marks) and snapshot the
                // carved pages; the sweep walk itself is retired in
                // chunks at the next safe points instead of here.
                for ci in 0..SIZE_CLASSES.len() {
                    self.cursor[ci] = None;
                    self.partial[ci].clear();
                    self.dirty[ci].clear();
                }
                self.stats.sweep_debt_pages = 0;
                let pages: Vec<usize> = (0..self.next_page)
                    .filter(|&i| !matches!(self.side[i], PageKind::Free))
                    .collect();
                let stop_ns = elapsed_ns(&t0);
                cycle.steps_ns += stop_ns;
                cycle.increments += 1;
                cycle.increment_words.push(words);
                if self.prof.is_enabled() {
                    cycle.increment_pauses.push(gcprof::Pause {
                        end_ns: self.prof.now_ns(),
                        pause_ns: stop_ns,
                    });
                }
                self.stats.total_pause_ns += stop_ns;
                self.stats.max_pause_ns = self.stats.max_pause_ns.max(stop_ns);
                self.stats.total_mark_ns += stop_ns;
                self.stats.mark_increments += 1;
                let n = self.stats.collections + 1;
                let increment = cycle.increments;
                self.trace.emit(|| {
                    Event::new("gc", "mark-increment")
                        .field("n", n)
                        .field("increment", increment)
                        .field("roots_scanned", rescanned)
                        .field("words_scanned", words)
                        .field("grey", 0u64)
                        .field("pause_ns", stop_ns)
                });
                self.sweeping = Some(SweepCycle {
                    cycle,
                    cause: CollectCause::IncrementFinish,
                    pages,
                    pos: 0,
                    out: SweepOutcome::default(),
                    class_ns: vec![0; SIZE_CLASSES.len() + 1],
                    class_seen: vec![false; SIZE_CLASSES.len() + 1],
                    sweep_stops_ns: 0,
                });
                return;
            }
        }
        // A plain increment: record the stop and hand back to the
        // mutator.
        let stop_ns = elapsed_ns(&t0);
        cycle.grey = grey;
        cycle.steps_ns += stop_ns;
        cycle.increments += 1;
        cycle.increment_words.push(words);
        if self.prof.is_enabled() {
            cycle.increment_pauses.push(gcprof::Pause {
                end_ns: self.prof.now_ns(),
                pause_ns: stop_ns,
            });
        }
        self.stats.total_pause_ns += stop_ns;
        self.stats.max_pause_ns = self.stats.max_pause_ns.max(stop_ns);
        self.stats.total_mark_ns += stop_ns;
        self.stats.mark_increments += 1;
        let n = self.stats.collections + 1;
        let increment = cycle.increments;
        let grey_len = cycle.grey.len() as u64;
        self.trace.emit(|| {
            Event::new("gc", "mark-increment")
                .field("n", n)
                .field("increment", increment)
                .field("roots_scanned", 0u64)
                .field("words_scanned", words)
                .field("grey", grey_len)
                .field("pause_ns", stop_ns)
        });
        self.cycle = Some(cycle);
    }

    /// Finishes the in-progress cycle immediately under `cause`
    /// (an emergency or an externally demanded collection): drains grey
    /// without a budget, re-scans the roots, drains again, then sweeps.
    fn finish_cycle(&mut self, mem: &mut Memory, roots: &RootSet, cause: CollectCause) {
        let t0 = Instant::now();
        let mut cycle = self
            .cycle
            .take()
            .expect("finish_cycle requires an active cycle");
        let mut grey = std::mem::take(&mut cycle.grey);
        let mut words = 0u64;
        let mut objs = 0u64;
        while let Some((start, size)) = grey.pop() {
            mem.scan_words(start, start + size, |word| {
                words += 1;
                objs += u64::from(self.mark_candidate(word, false, false, &mut grey));
            });
        }
        let drain1_ns = elapsed_ns(&t0);
        let mut rescanned = 0u64;
        for &(start, end) in &roots.ranges {
            mem.scan_words(start, end, |word| {
                rescanned += 1;
                objs += u64::from(self.mark_candidate(word, true, false, &mut grey));
            });
        }
        for &word in &roots.words {
            rescanned += 1;
            objs += u64::from(self.mark_candidate(word, true, false, &mut grey));
        }
        let rescan_ns = elapsed_ns(&t0).saturating_sub(drain1_ns);
        while let Some((start, size)) = grey.pop() {
            mem.scan_words(start, start + size, |word| {
                words += 1;
                objs += u64::from(self.mark_candidate(word, false, false, &mut grey));
            });
        }
        let mark_stop_ns = elapsed_ns(&t0);
        cycle.objects_marked += objs;
        cycle.words_marked += words;
        cycle.roots_scanned += rescanned;
        cycle.root_scan_ns += rescan_ns;
        cycle.heap_scan_ns += mark_stop_ns.saturating_sub(rescan_ns);
        self.stats.total_root_scan_ns += rescan_ns;
        self.stats.total_heap_scan_ns += mark_stop_ns.saturating_sub(rescan_ns);
        cycle.grey = grey;
        self.finish_now(mem, cycle, cause, &t0, mark_stop_ns);
    }

    /// The synchronous tail of a demanded finish: sweep, promotion, and
    /// the cycle's completion, all in the current stop.
    fn finish_now(
        &mut self,
        mem: &mut Memory,
        cycle: MarkCycle,
        cause: CollectCause,
        t0: &Instant,
        mark_stop_ns: u64,
    ) {
        let detail = self.attribution_enabled();
        let sw = self.sweep(mem, detail);
        self.promote_young();
        let stop_ns = elapsed_ns(t0);
        self.stats.total_pause_ns += stop_ns;
        self.stats.max_pause_ns = self.stats.max_pause_ns.max(stop_ns);
        self.stats.total_mark_ns += mark_stop_ns;
        self.stats.total_sweep_ns += stop_ns.saturating_sub(mark_stop_ns);
        let pause_ns = cycle.steps_ns + stop_ns;
        self.complete_cycle(cycle, cause, &sw, pause_ns);
    }

    /// Retires one bounded chunk of a pending sweep: pages from the
    /// mark-end snapshot until [`HeapConfig::sweep_chunk_pages`] pages
    /// have actually been *touched*. Metering by pages touched rather
    /// than by list entries matters for large objects: freeing a dead
    /// run poisons the whole run, so its head entry is charged the run
    /// length, and one stop frees at most one oversized object instead
    /// of a chunkful of them. The final chunk promotes the nursery and
    /// completes the collection (statistics plus the cycle's single
    /// [`CollectionRecord`]).
    fn sweep_step(&mut self, mem: &mut Memory) {
        let t0 = Instant::now();
        let timed = self.attribution_enabled();
        let mut sc = self
            .sweeping
            .take()
            .expect("sweep_step requires a pending sweep");
        let budget = self.config.sweep_chunk_pages.max(1);
        let mut out = SweepOutcome::default();
        let mut class_ns = vec![0u64; SIZE_CLASSES.len() + 1];
        let mut class_seen = vec![false; SIZE_CLASSES.len() + 1];
        let mut debt = 0u64;
        let mut touched = 0usize;
        while touched < budget && sc.pos < sc.pages.len() {
            let idx = sc.pages[sc.pos];
            sc.pos += 1;
            let (d, t) =
                self.sweep_one_page(mem, idx, timed, &mut out, &mut class_ns, &mut class_seen);
            debt += d;
            touched += t;
        }
        self.stats.objects_freed += out.objects_swept;
        self.stats.objects_live -= out.objects_swept;
        self.stats.bytes_live -= out.bytes_swept;
        self.stats.sweep_debt_pages += debt;
        sc.out.objects_swept += out.objects_swept;
        sc.out.bytes_swept += out.bytes_swept;
        sc.out.pages_swept += out.pages_swept;
        sc.out.pages_live += out.pages_live;
        for s in 0..class_ns.len() {
            sc.class_ns[s] += class_ns[s];
            sc.class_seen[s] |= class_seen[s];
        }
        let done = sc.pos >= sc.pages.len();
        if done {
            self.promote_young();
        }
        let stop_ns = elapsed_ns(&t0);
        sc.sweep_stops_ns += stop_ns;
        self.stats.total_pause_ns += stop_ns;
        self.stats.max_pause_ns = self.stats.max_pause_ns.max(stop_ns);
        self.stats.total_sweep_ns += stop_ns;
        self.stats.sweep_increments += 1;
        if self.prof.is_enabled() {
            sc.cycle.increment_pauses.push(gcprof::Pause {
                end_ns: self.prof.now_ns(),
                pause_ns: stop_ns,
            });
        }
        if done {
            let mut sw = sc.out;
            if timed || sc.class_seen.iter().any(|&s| s) {
                sw.class_ns = sc
                    .class_seen
                    .iter()
                    .enumerate()
                    .filter(|&(_, &seen)| seen)
                    .map(|(s, _)| (SIZE_CLASSES.get(s).copied().unwrap_or(0), sc.class_ns[s]))
                    .collect();
            }
            let pause_ns = sc.cycle.steps_ns + sc.sweep_stops_ns;
            self.complete_cycle(sc.cycle, sc.cause, &sw, pause_ns);
        } else {
            self.sweeping = Some(sc);
        }
    }

    /// Retires every remaining chunk of a pending sweep back to back — an
    /// emergency or a demanded collection needs the heap fully swept now.
    fn finish_pending_sweep(&mut self, mem: &mut Memory) {
        while self.sweeping.is_some() {
            self.sweep_step(mem);
        }
    }

    /// The shared completion of a finishing cycle: collection counters
    /// and the (single) [`CollectionRecord`] covering every stop of the
    /// cycle — bounded mark stops, sweep chunks, and whatever final stop
    /// demanded the finish. `pause_ns` is the sum of all of them; the
    /// sweep share is the remainder after the measured root/heap-scan
    /// time so the phase partition holds exactly.
    fn complete_cycle(
        &mut self,
        cycle: MarkCycle,
        cause: CollectCause,
        sw: &SweepOutcome,
        pause_ns: u64,
    ) {
        self.stats.collections += 1;
        self.bump_cause(cause);
        if !self.attribution_enabled() {
            return;
        }
        let stats = self.stats;
        let root_scan_ns = cycle.root_scan_ns;
        let heap_scan_ns = cycle.heap_scan_ns;
        let mark_ns = root_scan_ns + heap_scan_ns;
        let sweep_ns = pause_ns.saturating_sub(mark_ns);
        let rec = CollectionRecord {
            cause,
            site: cycle.site,
            bytes_since_gc: cycle.bytes_since_gc,
            bytes_live: stats.bytes_live,
            freed_bytes: sw.bytes_swept,
            roots_scanned: cycle.roots_scanned,
            words_marked: cycle.words_marked,
            pages_live: sw.pages_live,
            pages_swept: sw.pages_swept,
            sweep_debt_pages: stats.sweep_debt_pages,
            pause_ns,
            mark_ns,
            sweep_ns,
            root_scan_ns,
            heap_scan_ns,
            class_sweep_ns: sw.class_ns.clone(),
            increments: cycle.increments,
            increment_words: cycle.increment_words,
            increment_pauses: cycle.increment_pauses,
            young_pages_swept: 0,
        };
        let objects_marked = cycle.objects_marked;
        let blacklisted_before = cycle.blacklisted_before;
        self.trace.emit(|| {
            Event::new("gc", "collection")
                .field("n", stats.collections)
                .field("cause", cause.as_str())
                .field("site", rec.site.clone().unwrap_or_default())
                .field("bytes_since_gc", rec.bytes_since_gc)
                .field("roots_scanned", rec.roots_scanned)
                .field("words_marked", rec.words_marked)
                .field("objects_marked", objects_marked)
                .field("objects_swept", sw.objects_swept)
                .field("bytes_swept", sw.bytes_swept)
                .field("pages_swept", sw.pages_swept)
                .field("pages_live", sw.pages_live)
                .field("sweep_debt_pages", stats.sweep_debt_pages)
                .field(
                    "blacklist_hits",
                    stats.blacklisted_pages - blacklisted_before,
                )
                .field("objects_live", stats.objects_live)
                .field("bytes_live", stats.bytes_live)
                .field("pause_ns", pause_ns)
                .field("mark_ns", mark_ns)
                .field("sweep_ns", sweep_ns)
                .field("root_scan_ns", root_scan_ns)
                .field("heap_scan_ns", heap_scan_ns)
                .field("class_sweep_ns", rec.class_sweep_encoded())
                .field("increments", rec.increments)
                .field("increment_words", rec.increment_words_encoded())
                .field("young_pages_swept", 0u64)
        });
        self.prof.record_collection(move || rec);
    }

    /// A stop-the-world nursery collection: marks from the roots and the
    /// remembered-set cards, tracing only young pages (old objects are
    /// implicitly live), then sweeps only young pages. Old pages are
    /// neither marked nor touched, so their mark bitmaps stay clear for
    /// the next full collection.
    fn collect_nursery(&mut self, mem: &mut Memory, roots: &RootSet, site: Option<&str>) {
        let t0 = Instant::now();
        self.stats.collections += 1;
        self.bump_cause(CollectCause::Nursery);
        let bytes_since_gc = self.bytes_since_gc;
        self.bytes_since_gc = 0;
        let blacklisted_before = self.stats.blacklisted_pages;
        let mut roots_scanned = 0u64;
        let mut words_marked = 0u64;
        let mut objects_marked = 0u64;
        let mut worklist: Vec<(u64, u64)> = Vec::new();
        for &(start, end) in &roots.ranges {
            mem.scan_words(start, end, |word| {
                roots_scanned += 1;
                objects_marked += u64::from(self.mark_candidate(word, true, true, &mut worklist));
            });
        }
        for &word in &roots.words {
            roots_scanned += 1;
            objects_marked += u64::from(self.mark_candidate(word, true, true, &mut worklist));
        }
        let root_scan_ns = elapsed_ns(&t0);
        // The remembered set: every allocated object on a carded old page
        // is re-scanned for old→young pointers. Any pointer to a young
        // object was stored after the page was carved, i.e. after the
        // last collection, so the barrier carded its page.
        let mut extents: Vec<(u64, u64)> = Vec::new();
        for w in 0..self.cards.len() {
            let mut bits = self.cards[w];
            while bits != 0 {
                let idx = w * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                if idx >= self.next_page {
                    continue;
                }
                let page_start = self.map.page_addr(idx);
                match self.map.desc(idx) {
                    PageDesc::Small(sp) => {
                        let obj = u64::from(sp.obj_size);
                        for bw in 0..sp.words() {
                            let mut a = sp.alloc_word(bw);
                            while a != 0 {
                                let slot = bw * 64 + a.trailing_zeros() as usize;
                                a &= a - 1;
                                extents.push((page_start + slot as u64 * obj, obj));
                            }
                        }
                    }
                    PageDesc::LargeHead {
                        size,
                        allocated: true,
                        ..
                    } => extents.push((page_start, *size)),
                    _ => {}
                }
            }
        }
        for &(start, size) in &extents {
            mem.scan_words(start, start + size, |word| {
                words_marked += 1;
                objects_marked += u64::from(self.mark_candidate(word, false, true, &mut worklist));
            });
        }
        while let Some((start, size)) = worklist.pop() {
            mem.scan_words(start, start + size, |word| {
                words_marked += 1;
                objects_marked += u64::from(self.mark_candidate(word, false, true, &mut worklist));
            });
        }
        let mark_ns = elapsed_ns(&t0);
        let heap_scan_ns = mark_ns.saturating_sub(root_scan_ns);
        let detail = self.attribution_enabled();
        let sw = self.sweep_young(mem, detail);
        self.promote_young();
        let pause_ns = elapsed_ns(&t0);
        let sweep_ns = pause_ns.saturating_sub(mark_ns);
        self.stats.total_pause_ns += pause_ns;
        self.stats.max_pause_ns = self.stats.max_pause_ns.max(pause_ns);
        self.stats.total_mark_ns += mark_ns;
        self.stats.total_sweep_ns += sweep_ns;
        self.stats.total_root_scan_ns += root_scan_ns;
        self.stats.total_heap_scan_ns += heap_scan_ns;
        if !detail {
            return;
        }
        let stats = self.stats;
        let rec = CollectionRecord {
            cause: CollectCause::Nursery,
            site: site.map(str::to_string),
            bytes_since_gc,
            bytes_live: stats.bytes_live,
            freed_bytes: sw.bytes_swept,
            roots_scanned,
            words_marked,
            pages_live: sw.pages_live,
            pages_swept: sw.pages_swept,
            sweep_debt_pages: stats.sweep_debt_pages,
            pause_ns,
            mark_ns,
            sweep_ns,
            root_scan_ns,
            heap_scan_ns,
            class_sweep_ns: sw.class_ns,
            young_pages_swept: sw.pages_swept,
            ..CollectionRecord::default()
        };
        self.trace.emit(|| {
            Event::new("gc", "collection")
                .field("n", stats.collections)
                .field("cause", CollectCause::Nursery.as_str())
                .field("site", rec.site.clone().unwrap_or_default())
                .field("bytes_since_gc", bytes_since_gc)
                .field("roots_scanned", roots_scanned)
                .field("words_marked", words_marked)
                .field("objects_marked", objects_marked)
                .field("objects_swept", sw.objects_swept)
                .field("bytes_swept", sw.bytes_swept)
                .field("pages_swept", sw.pages_swept)
                .field("pages_live", sw.pages_live)
                .field("sweep_debt_pages", stats.sweep_debt_pages)
                .field(
                    "blacklist_hits",
                    stats.blacklisted_pages - blacklisted_before,
                )
                .field("objects_live", stats.objects_live)
                .field("bytes_live", stats.bytes_live)
                .field("pause_ns", pause_ns)
                .field("mark_ns", mark_ns)
                .field("sweep_ns", sweep_ns)
                .field("root_scan_ns", root_scan_ns)
                .field("heap_scan_ns", heap_scan_ns)
                .field("class_sweep_ns", rec.class_sweep_encoded())
                .field("increments", 0u64)
                .field("increment_words", rec.increment_words_encoded())
                .field("young_pages_swept", sw.pages_swept)
        });
        self.prof.record_collection(move || rec);
    }

    /// Sweeps one small page (shared by the full and nursery sweeps):
    /// poisons and counts garbage slots, folds marks into the allocation
    /// bitmap, and accumulates the outcome totals. Returns
    /// `(now empty, has free slot)`.
    fn sweep_small_page(
        &mut self,
        mem: &mut Memory,
        idx: usize,
        out: &mut SweepOutcome,
    ) -> (bool, bool) {
        let poison = self.config.poison;
        let page_start = self.map.page_addr(idx);
        let PageDesc::Small(sp) = self.map.desc_mut(idx) else {
            unreachable!("sweeping a non-small page")
        };
        let obj = u64::from(sp.obj_size);
        let mut freed: u64 = 0;
        for w in 0..sp.words() {
            let garbage = sp.garbage_word(w);
            if garbage == 0 {
                continue;
            }
            freed += u64::from(garbage.count_ones());
            if poison {
                let mut g = garbage;
                while g != 0 {
                    let slot = w * 64 + g.trailing_zeros() as usize;
                    g &= g - 1;
                    mem.fill(page_start + slot as u64 * obj, 0xDD, obj as usize)
                        .expect("freed object is mapped");
                }
            }
        }
        sp.fold_marks();
        out.objects_swept += freed;
        out.bytes_swept += freed * obj;
        if !sp.is_empty() {
            out.pages_live += 1;
        }
        (sp.is_empty(), sp.has_free_slot())
    }

    /// Sweeps one large object head (shared by the full and nursery
    /// sweeps); returns the number of pages to release (zero when the
    /// object survives).
    fn sweep_large_head(&mut self, mem: &mut Memory, idx: usize, out: &mut SweepOutcome) -> usize {
        let poison = self.config.poison;
        let page_start = self.map.page_addr(idx);
        let PageDesc::LargeHead {
            size,
            marked,
            allocated,
        } = self.map.desc_mut(idx)
        else {
            unreachable!("sweeping a non-head page")
        };
        let mut free_pages = 0usize;
        if *allocated && !*marked {
            *allocated = false;
            out.objects_swept += 1;
            out.bytes_swept += *size;
            free_pages = (*size / PAGE_SIZE) as usize;
            if poison {
                mem.fill(page_start, 0xDD, *size as usize)
                    .expect("freed object is mapped");
            }
        }
        if *allocated {
            out.pages_live += *size / PAGE_SIZE;
        }
        *marked = false;
        free_pages
    }

    /// The nursery sweep: only pages carved since the last collection are
    /// visited, ascending. Surviving young pages with free slots join
    /// their class's dirty queue (adding to the sweep debt rather than
    /// rebuilding it); empty ones are reclaimed. Old pages are untouched,
    /// so their mark bitmaps stay clear for the next full mark, and the
    /// lazy queues they sit on remain valid.
    fn sweep_young(&mut self, mem: &mut Memory, timed: bool) -> SweepOutcome {
        let mut out = SweepOutcome::default();
        let mut class_ns = vec![0u64; SIZE_CLASSES.len() + 1];
        let mut class_seen = vec![false; SIZE_CLASSES.len() + 1];
        let mut pages = self.young_list.clone();
        pages.sort_unstable();
        // A young page can be referenced by its class's cursor (it was
        // carved after the last sweep rebuilt the queues, so it cannot
        // sit in partial/dirty); detach cursors before slots vanish under
        // them.
        for ci in 0..SIZE_CLASSES.len() {
            if let Some(p) = self.cursor[ci] {
                if self.is_young(p) {
                    self.cursor[ci] = None;
                }
            }
        }
        let mut queued: Vec<(usize, usize)> = Vec::new();
        for idx in pages {
            let t_page = if timed { Some(Instant::now()) } else { None };
            let kind = self.side[idx];
            let mut reclaim_small = false;
            let mut free_large_pages = 0usize;
            match kind {
                PageKind::Free | PageKind::LargeCont { .. } => {}
                PageKind::Small { ci, .. } => {
                    let (empty, has_free) = self.sweep_small_page(mem, idx, &mut out);
                    if empty {
                        reclaim_small = true;
                    } else if has_free {
                        queued.push((ci as usize, idx));
                    }
                }
                PageKind::LargeHead => {
                    free_large_pages = self.sweep_large_head(mem, idx, &mut out);
                }
            }
            if reclaim_small {
                *self.map.desc_mut(idx) = PageDesc::Free;
                self.side[idx] = PageKind::Free;
                self.stats.pages_reclaimed += 1;
                if !self.bl_contains(idx) {
                    self.free_pages.push(idx);
                }
            }
            for i in 0..free_large_pages {
                *self.map.desc_mut(idx + i) = PageDesc::Free;
                self.side[idx + i] = PageKind::Free;
                self.free_pages.push(idx + i);
            }
            let slot = match kind {
                PageKind::Free => None,
                PageKind::Small { ci, .. } => Some(ci as usize),
                PageKind::LargeHead | PageKind::LargeCont { .. } => Some(SIZE_CLASSES.len()),
            };
            if let Some(s) = slot {
                out.pages_swept += 1;
                class_seen[s] = true;
                if let Some(t) = t_page {
                    class_ns[s] += elapsed_ns(&t);
                }
            }
        }
        for &(ci, page) in &queued {
            self.dirty[ci].push_back(page);
            self.stats.sweep_debt_pages += 1;
        }
        // Keep each touched dirty queue in ascending page order — young
        // indices can interleave with leftovers from the previous full
        // sweep when recycled pages were carved into the nursery.
        let mut touched: Vec<usize> = queued.iter().map(|&(ci, _)| ci).collect();
        touched.sort_unstable();
        touched.dedup();
        for ci in touched {
            self.dirty[ci].make_contiguous().sort_unstable();
        }
        if timed {
            out.class_ns = class_seen
                .iter()
                .enumerate()
                .filter(|&(_, &seen)| seen)
                .map(|(s, _)| (SIZE_CLASSES.get(s).copied().unwrap_or(0), class_ns[s]))
                .collect();
        }
        self.stats.objects_freed += out.objects_swept;
        self.stats.objects_live -= out.objects_swept;
        self.stats.bytes_live -= out.bytes_swept;
        out
    }

    /// Sweeps one carved page — the body of the full page-walk, shared
    /// by the stop-the-world sweep and the chunked sweep of a finishing
    /// incremental cycle. Fully empty small pages are reclaimed into the
    /// page pool in the same pass (without this, a size-class phase
    /// shift — fill with class A, drop it, switch to class B — can
    /// exhaust the heap while every page is pure free slots, because
    /// free slots only ever serve their own class); blacklisted pages
    /// become `Free` but are never handed out again — the cost of
    /// blacklisting is lost capacity. Small pages left with free slots
    /// join their class's lazy queue; a dead large object's pages are
    /// all released (contiguity cannot be guaranteed once recycled, so
    /// those pages feed small-object allocation only). Returns the
    /// lazy-queue debt added (0 or 1) and the number of pages the call
    /// actually touched — a dead large object counts its whole run,
    /// because poisoning it costs proportional to the run, not to the
    /// single head entry in a page list.
    fn sweep_one_page(
        &mut self,
        mem: &mut Memory,
        idx: usize,
        timed: bool,
        out: &mut SweepOutcome,
        class_ns: &mut [u64],
        class_seen: &mut [bool],
    ) -> (u64, usize) {
        let t_page = if timed { Some(Instant::now()) } else { None };
        let kind = self.side[idx];
        let mut reclaim_small = false;
        let mut queue_small = false;
        let mut free_large_pages = 0usize;
        match kind {
            PageKind::Free | PageKind::LargeCont { .. } => {}
            PageKind::Small { .. } => {
                let (empty, has_free) = self.sweep_small_page(mem, idx, out);
                if empty {
                    reclaim_small = true;
                } else if has_free {
                    queue_small = true;
                }
            }
            PageKind::LargeHead => {
                free_large_pages = self.sweep_large_head(mem, idx, out);
            }
        }
        let mut debt = 0u64;
        if reclaim_small {
            *self.map.desc_mut(idx) = PageDesc::Free;
            self.side[idx] = PageKind::Free;
            self.stats.pages_reclaimed += 1;
            if !self.bl_contains(idx) {
                self.free_pages.push(idx);
            }
        } else if queue_small {
            let PageKind::Small { ci, .. } = self.side[idx] else {
                unreachable!("queued page is small")
            };
            self.dirty[ci as usize].push_back(idx);
            debt = 1;
        }
        for i in 0..free_large_pages {
            *self.map.desc_mut(idx + i) = PageDesc::Free;
            self.side[idx + i] = PageKind::Free;
            self.free_pages.push(idx + i);
        }
        let slot = match kind {
            PageKind::Free => None,
            PageKind::Small { ci, .. } => Some(ci as usize),
            PageKind::LargeHead | PageKind::LargeCont { .. } => Some(SIZE_CLASSES.len()),
        };
        if let Some(s) = slot {
            out.pages_swept += 1;
            class_seen[s] = true;
            if let Some(t) = t_page {
                class_ns[s] += elapsed_ns(&t);
            }
        }
        let touched = match kind {
            PageKind::Free | PageKind::LargeCont { .. } => 0,
            PageKind::Small { .. } => 1,
            PageKind::LargeHead => free_large_pages.max(1),
        };
        (debt, touched)
    }

    /// The sweep: a single ascending pass over every carved page.
    ///
    /// Per small page this is word arithmetic — `garbage = alloc & !mark`
    /// drives poisoning (trailing-zeros per dead slot) and a popcount
    /// keeps the statistics exact, then the mark bitmap folds into the
    /// allocation bitmap. Fully empty pages (a word compare) are
    /// reclaimed into the page pool on the spot; pages left with free
    /// slots are queued per class for *lazy* adoption — the allocator
    /// discovers their free slots on demand instead of this pause
    /// rebuilding free lists. Statistics, poisoning, and the census are
    /// therefore exact the moment `collect` returns; only free-slot
    /// discovery is deferred, and its backlog is `sweep_debt_pages`.
    fn sweep(&mut self, mem: &mut Memory, timed: bool) -> SweepOutcome {
        let mut out = SweepOutcome::default();
        // Per-class sweep nanoseconds (`timed` only): one slot per size
        // class plus a trailing slot for the large-object pass.
        let mut class_ns = vec![0u64; SIZE_CLASSES.len() + 1];
        let mut class_seen = vec![false; SIZE_CLASSES.len() + 1];
        for ci in 0..SIZE_CLASSES.len() {
            self.cursor[ci] = None;
            self.partial[ci].clear();
            self.dirty[ci].clear();
        }
        let mut debt: u64 = 0;
        for idx in 0..self.next_page {
            let (d, _) =
                self.sweep_one_page(mem, idx, timed, &mut out, &mut class_ns, &mut class_seen);
            debt += d;
        }
        if timed {
            out.class_ns = class_seen
                .iter()
                .enumerate()
                .filter(|&(_, &seen)| seen)
                .map(|(s, _)| {
                    // Size 0 stands for the large-object pass.
                    let size = SIZE_CLASSES.get(s).copied().unwrap_or(0);
                    (size, class_ns[s])
                })
                .collect();
        }
        self.stats.objects_freed += out.objects_swept;
        self.stats.objects_live -= out.objects_swept;
        self.stats.bytes_live -= out.bytes_swept;
        self.stats.sweep_debt_pages = debt;
        out
    }

    /// Eagerly retires all outstanding lazy-sweep debt: every page
    /// queued at the last collection moves to its class's ready list, so
    /// no future allocation pays an adoption. Statistics and the census
    /// are exact without this — the sweep folds bitmaps and poisons
    /// eagerly — so this is a barrier for observation points that must
    /// report `sweep_debt_pages == 0` (end-of-run [`HeapStats`], the
    /// fuzz oracle's census check).
    pub fn sweep_all(&mut self) {
        for ci in 0..SIZE_CLASSES.len() {
            while let Some(page) = self.dirty[ci].pop_front() {
                self.partial[ci].push_back(page);
            }
        }
        self.stats.sweep_debt_pages = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Memory, GcHeap) {
        let mem = Memory::new(1 << 16, 1 << 16, 1 << 22);
        let heap = GcHeap::with_defaults(&mem);
        (mem, heap)
    }

    #[test]
    fn alloc_returns_zeroed_distinct_objects() {
        let (mut mem, mut heap) = setup();
        let a = heap.alloc(&mut mem, 24).unwrap();
        let b = heap.alloc(&mut mem, 24).unwrap();
        assert_ne!(a, b);
        assert_eq!(mem.read(a, 8).unwrap(), 0);
        assert_eq!(heap.base(a + 10), Some(a));
        assert_eq!(heap.base(b + 10), Some(b));
    }

    #[test]
    fn extra_byte_keeps_one_past_end_inside() {
        let (mut mem, mut heap) = setup();
        // 32 bytes + 1 extra → 48-byte class; one-past-end of the request
        // (base+32) must still resolve to the object.
        let a = heap.alloc(&mut mem, 32).unwrap();
        assert_eq!(heap.base(a + 32), Some(a));
    }

    #[test]
    fn same_obj_rounds_like_the_paper_says() {
        let (mut mem, mut heap) = setup();
        let a = heap.alloc(&mut mem, 20).unwrap(); // 21 → 32-byte class
        assert!(heap.same_obj(a, a + 31));
        assert!(!heap.same_obj(a, a + 32));
        assert_eq!(heap.stats().same_obj_failures, 1);
    }

    #[test]
    fn collect_frees_unreachable_keeps_reachable() {
        let (mut mem, mut heap) = setup();
        let keep = heap.alloc(&mut mem, 40).unwrap();
        let lose = heap.alloc(&mut mem, 40).unwrap();
        let mut roots = RootSet::new();
        roots.add_word(keep);
        heap.collect(&mut mem, &roots);
        assert!(heap.is_allocated(keep));
        assert!(!heap.is_allocated(lose));
        assert_eq!(heap.stats().objects_freed, 1);
        // Freed memory is poisoned.
        assert_eq!(mem.read(lose, 1).unwrap(), 0xDD);
    }

    #[test]
    fn interior_pointer_roots_retain() {
        let (mut mem, mut heap) = setup();
        let obj = heap.alloc(&mut mem, 100).unwrap();
        let mut roots = RootSet::new();
        roots.add_word(obj + 57); // interior
        heap.collect(&mut mem, &roots);
        assert!(heap.is_allocated(obj));
    }

    #[test]
    fn heap_chain_is_traced() {
        let (mut mem, mut heap) = setup();
        let a = heap.alloc(&mut mem, 16).unwrap();
        let b = heap.alloc(&mut mem, 16).unwrap();
        let c = heap.alloc(&mut mem, 16).unwrap();
        mem.write(a, 8, b).unwrap();
        mem.write(b, 8, c).unwrap();
        let mut roots = RootSet::new();
        roots.add_word(a);
        heap.collect(&mut mem, &roots);
        assert!(heap.is_allocated(a));
        assert!(heap.is_allocated(b));
        assert!(heap.is_allocated(c));
    }

    #[test]
    fn base_only_policy_drops_heap_interior_pointers() {
        let mem = Memory::new(1 << 16, 1 << 16, 1 << 22);
        let mut heap = GcHeap::new(
            &mem,
            HeapConfig {
                policy: PointerPolicy::InteriorFromRootsOnly,
                ..HeapConfig::default()
            },
        );
        let mut mem = mem;
        let a = heap.alloc(&mut mem, 16).unwrap();
        let b = heap.alloc(&mut mem, 64).unwrap();
        // a holds an *interior* pointer to b — not a base.
        mem.write(a, 8, b + 8).unwrap();
        let mut roots = RootSet::new();
        roots.add_word(a);
        heap.collect(&mut mem, &roots);
        assert!(heap.is_allocated(a));
        assert!(
            !heap.is_allocated(b),
            "interior heap pointer must not retain"
        );
        // But a root interior pointer still works.
        let c = heap.alloc(&mut mem, 64).unwrap();
        let mut roots = RootSet::new();
        roots.add_word(c + 8);
        heap.collect(&mut mem, &roots);
        assert!(heap.is_allocated(c));
    }

    #[test]
    fn large_objects_allocate_and_free() {
        let (mut mem, mut heap) = setup();
        let big = heap.alloc(&mut mem, 3 * 4096).unwrap();
        assert_eq!(heap.base(big + 9000), Some(big));
        heap.collect(&mut mem, &RootSet::new());
        assert!(!heap.is_allocated(big));
    }

    #[test]
    fn reuse_after_collection() {
        let (mut mem, mut heap) = setup();
        let a = heap.alloc(&mut mem, 24).unwrap();
        heap.collect(&mut mem, &RootSet::new());
        let b = heap.alloc(&mut mem, 24).unwrap();
        assert_eq!(a, b, "slot is recycled through the free list");
    }

    #[test]
    fn stack_range_roots() {
        let (mut mem, mut heap) = setup();
        let obj = heap.alloc(&mut mem, 48).unwrap();
        let sp = crate::mem::STACK_BASE + 256;
        mem.write(sp + 16, 8, obj).unwrap();
        let mut roots = RootSet::new();
        roots.add_range(sp, sp + 64);
        heap.collect(&mut mem, &roots);
        assert!(heap.is_allocated(obj));
    }

    #[test]
    fn non_pointer_words_do_not_retain() {
        let (mut mem, mut heap) = setup();
        let obj = heap.alloc(&mut mem, 48).unwrap();
        let mut roots = RootSet::new();
        roots.add_word(12345); // small integer, not a heap address
        roots.add_word(obj - 1); // just below the object (unallocated slot area)
        heap.collect(&mut mem, &roots);
        assert!(!heap.is_allocated(obj) || obj == 0);
    }

    #[test]
    fn failed_allocations_do_not_inflate_stats() {
        let mem = Memory::new(1 << 12, 1 << 12, 1 << 14); // 4 pages of heap
        let mut heap = GcHeap::with_defaults(&mem);
        let mut mem = mem;
        for _ in 0..8 {
            heap.alloc(&mut mem, 1500).unwrap();
        }
        let before = heap.stats();
        assert!(heap.alloc(&mut mem, 1500).is_err());
        let after = heap.stats();
        assert_eq!(after.allocations, before.allocations);
        assert_eq!(after.bytes_requested, before.bytes_requested);
        assert_eq!(after.failed_allocations, before.failed_allocations + 1);
    }

    #[test]
    fn threshold_collection_is_not_followed_by_a_back_to_back_one() {
        // Exhausted heap + reached threshold: the old driver collected,
        // failed the alloc, then collected again although nothing could
        // have changed in between.
        let mem = Memory::new(1 << 12, 1 << 12, 1 << 14);
        let mut heap = GcHeap::new(
            &mem,
            HeapConfig {
                gc_threshold: 1,
                ..HeapConfig::default()
            },
        );
        let mut mem = mem;
        let mut keep = Vec::new();
        while let Ok(a) = heap.alloc(&mut mem, 1500) {
            keep.push(a);
        }
        let mut roots = RootSet::new();
        for &a in &keep {
            roots.add_word(a);
        }
        let before = heap.stats().collections;
        assert!(heap.alloc_with_roots(&mut mem, 1500, &roots).is_err());
        assert_eq!(
            heap.stats().collections,
            before + 1,
            "one collection per failed alloc_with_roots, not two"
        );
    }

    #[test]
    fn empty_small_pages_return_to_the_page_pool() {
        let mem = Memory::new(1 << 12, 1 << 12, 1 << 14); // 4 pages of heap
        let mut heap = GcHeap::with_defaults(&mem);
        let mut mem = mem;
        // Fill the whole heap with 64-byte-class objects, unrooted.
        while heap.alloc(&mut mem, 60).is_ok() {}
        heap.collect(&mut mem, &RootSet::new());
        assert_eq!(heap.stats().pages_reclaimed, 4);
        // A 2048-byte-class allocation needs a fresh page; before the
        // sweep returned empty pages this OOMed.
        assert!(heap.alloc(&mut mem, 1500).is_ok());
    }

    #[test]
    fn reclaimed_pages_respect_the_blacklist() {
        use crate::pagemap::PAGE_SIZE;
        let mem = Memory::new(1 << 12, 1 << 12, 1 << 14);
        let mut heap = GcHeap::new(
            &mem,
            HeapConfig {
                blacklisting: true,
                ..HeapConfig::default()
            },
        );
        let mut mem = mem;
        // Occupy every page with unrooted small objects and reclaim them
        // all, so page 1 sits in the free page pool. A collection with a
        // spurious root into the now-free page 1 must blacklist it even
        // though it is queued for reuse.
        while heap.alloc(&mut mem, 60).is_ok() {}
        heap.collect(&mut mem, &RootSet::new());
        assert_eq!(heap.stats().pages_reclaimed, 4);
        let bogus = crate::mem::HEAP_BASE + PAGE_SIZE + 40;
        let mut roots = RootSet::new();
        roots.add_word(bogus);
        heap.collect(&mut mem, &roots);
        assert_eq!(heap.stats().blacklisted_pages, 1);
        // Refill: nothing may land on the blacklisted page 1.
        while let Ok(a) = heap.alloc(&mut mem, 60) {
            let page = (a - crate::mem::HEAP_BASE) / PAGE_SIZE;
            assert_ne!(page, 1, "allocation on a blacklisted reclaimed page");
        }
    }

    #[test]
    fn oom_then_collect_recovers() {
        let mem = Memory::new(1 << 12, 1 << 12, 1 << 14); // 4 pages of heap
        let mut heap = GcHeap::with_defaults(&mem);
        let mut mem = mem;
        // Exhaust: 4 pages of 2048-byte objects = 8 objects.
        for _ in 0..8 {
            heap.alloc(&mut mem, 1500).unwrap();
        }
        assert!(heap.alloc(&mut mem, 1500).is_err());
        let got = heap.alloc_with_roots(&mut mem, 1500, &RootSet::new());
        assert!(got.is_ok(), "collection reclaims everything");
    }

    #[test]
    fn blacklisting_withdraws_falsely_pointed_pages() {
        use crate::pagemap::PAGE_SIZE;
        let mem = Memory::new(1 << 12, 1 << 12, 1 << 16); // 16 heap pages
        let mut heap = GcHeap::new(
            &mem,
            HeapConfig {
                blacklisting: true,
                ..HeapConfig::default()
            },
        );
        let mut mem = mem;
        // A spurious root pointing into the (still free) page 3.
        let bogus = crate::mem::HEAP_BASE + 3 * PAGE_SIZE + 40;
        let mut roots = RootSet::new();
        roots.add_word(bogus);
        heap.collect(&mut mem, &roots);
        assert_eq!(heap.stats().blacklisted_pages, 1);
        // Fill the heap: no allocation may land on page 3.
        while let Ok(a) = heap.alloc(&mut mem, 3000) {
            let page = (a - crate::mem::HEAP_BASE) / PAGE_SIZE;
            assert_ne!(page, 3, "allocation on a blacklisted page");
        }
    }

    #[test]
    fn without_blacklisting_the_page_is_usable() {
        use crate::pagemap::PAGE_SIZE;
        let mem = Memory::new(1 << 12, 1 << 12, 1 << 16);
        let mut heap = GcHeap::with_defaults(&mem);
        let mut mem = mem;
        let bogus = crate::mem::HEAP_BASE + 3 * PAGE_SIZE + 40;
        let mut roots = RootSet::new();
        roots.add_word(bogus);
        heap.collect(&mut mem, &roots);
        assert_eq!(heap.stats().blacklisted_pages, 0);
        let mut hit = false;
        while let Ok(a) = heap.alloc(&mut mem, 3000) {
            if (a - crate::mem::HEAP_BASE) / PAGE_SIZE == 3 {
                hit = true;
            }
        }
        assert!(hit, "page 3 is allocatable without blacklisting");
    }

    #[test]
    fn allocated_pages_are_never_blacklisted() {
        let mem = Memory::new(1 << 12, 1 << 12, 1 << 16);
        let mut heap = GcHeap::new(
            &mem,
            HeapConfig {
                blacklisting: true,
                ..HeapConfig::default()
            },
        );
        let mut mem = mem;
        let live = heap.alloc(&mut mem, 100).unwrap();
        let mut roots = RootSet::new();
        roots.add_word(live + 50); // interior pointer to a real object
        heap.collect(&mut mem, &roots);
        assert_eq!(heap.stats().blacklisted_pages, 0);
        assert!(heap.is_allocated(live));
    }

    #[test]
    fn should_collect_after_threshold() {
        let mem = Memory::new(1 << 12, 1 << 12, 1 << 20);
        let mut heap = GcHeap::new(
            &mem,
            HeapConfig {
                gc_threshold: 1024,
                ..HeapConfig::default()
            },
        );
        let mut mem = mem;
        assert!(!heap.should_collect());
        for _ in 0..40 {
            heap.alloc(&mut mem, 30).unwrap();
        }
        assert!(heap.should_collect());
        heap.collect(&mut mem, &RootSet::new());
        assert!(!heap.should_collect());
    }

    #[test]
    fn collections_accumulate_pause_time() {
        let (mut mem, mut heap) = setup();
        for _ in 0..50 {
            heap.alloc(&mut mem, 64).unwrap();
        }
        heap.collect(&mut mem, &RootSet::new());
        let after_one = heap.stats();
        assert!(
            after_one.total_pause_ns > 0,
            "a collection takes nonzero time"
        );
        assert!(after_one.max_pause_ns > 0);
        assert!(after_one.max_pause_ns <= after_one.total_pause_ns);
        heap.collect(&mut mem, &RootSet::new());
        let after_two = heap.stats();
        assert!(after_two.total_pause_ns > after_one.total_pause_ns);
        assert!(after_two.max_pause_ns >= after_one.max_pause_ns);
    }

    #[test]
    fn collection_emits_a_timeline_event() {
        let (mut mem, mut heap) = setup();
        let (trace, sink) = TraceHandle::memory();
        heap.set_trace(trace);
        let keep = heap.alloc(&mut mem, 16).unwrap();
        let child = heap.alloc(&mut mem, 16).unwrap();
        let _lose = heap.alloc(&mut mem, 40).unwrap();
        mem.write(keep, 8, child).unwrap();
        let mut roots = RootSet::new();
        roots.add_word(keep);
        heap.collect(&mut mem, &roots);
        let evs = sink.snapshot();
        assert_eq!(evs.len(), 1);
        let e = &evs[0];
        assert_eq!((e.stage, e.kind), ("gc", "collection"));
        let get = |k: &str| match e.get(k) {
            Some(gctrace::Value::UInt(u)) => *u,
            other => panic!("field {k}: {other:?}"),
        };
        assert_eq!(get("n"), 1);
        assert_eq!(get("roots_scanned"), 1);
        assert_eq!(get("objects_marked"), 2, "keep and child");
        assert_eq!(get("objects_swept"), 1, "the unrooted 40-byte object");
        assert!(get("bytes_swept") >= 40);
        assert_eq!(get("objects_live"), 2);
        assert!(get("pause_ns") > 0);
        assert!(
            get("words_marked") >= 2,
            "both survivors' words were scanned"
        );
    }

    #[test]
    fn heap_stats_json_round_trips() {
        let (mut mem, mut heap) = setup();
        heap.alloc(&mut mem, 24).unwrap();
        heap.alloc(&mut mem, 512).unwrap();
        heap.collect(&mut mem, &RootSet::new());
        let stats = heap.stats();
        let text = stats.to_json();
        let back = HeapStats::from_json(&text).expect("round trips");
        assert_eq!(back, stats);
        // Shape: every struct field appears by name in the JSON.
        for key in [
            "collections",
            "allocations",
            "bytes_requested",
            "failed_allocations",
            "pages_reclaimed",
            "pages_swept_lazily",
            "sweep_debt_pages",
            "objects_freed",
            "objects_live",
            "bytes_live",
            "same_obj_checks",
            "same_obj_failures",
            "blacklisted_pages",
            "total_pause_ns",
            "max_pause_ns",
            "total_mark_ns",
            "total_sweep_ns",
            "total_root_scan_ns",
            "total_heap_scan_ns",
            "collections_threshold",
            "collections_emergency",
            "collections_explicit",
            "collections_increment_finish",
            "collections_nursery",
            "mark_increments",
            "barrier_marks",
            "peak_bytes_live",
        ] {
            assert!(
                text.contains(&format!("\"{key}\":")),
                "missing {key} in {text}"
            );
        }
    }

    #[test]
    fn pause_splits_into_mark_and_sweep() {
        let (mut mem, mut heap) = setup();
        for _ in 0..200 {
            heap.alloc(&mut mem, 64).unwrap();
        }
        heap.collect(&mut mem, &RootSet::new());
        let s = heap.stats();
        assert!(s.total_mark_ns > 0, "marking takes nonzero time");
        assert!(s.total_sweep_ns > 0, "sweeping takes nonzero time");
        assert!(
            s.total_mark_ns + s.total_sweep_ns <= s.total_pause_ns,
            "the phases partition the pause: {} + {} vs {}",
            s.total_mark_ns,
            s.total_sweep_ns,
            s.total_pause_ns
        );
    }

    #[test]
    fn collection_event_carries_the_phase_split() {
        let (mut mem, mut heap) = setup();
        let (trace, sink) = TraceHandle::memory();
        heap.set_trace(trace);
        heap.alloc(&mut mem, 64).unwrap();
        heap.collect(&mut mem, &RootSet::new());
        let evs = sink.snapshot();
        let e = &evs[0];
        let get = |k: &str| match e.get(k) {
            Some(gctrace::Value::UInt(u)) => *u,
            other => panic!("field {k}: {other:?}"),
        };
        assert!(get("mark_ns") > 0);
        assert_eq!(get("mark_ns") + get("sweep_ns"), get("pause_ns"));
        assert_eq!(
            get("root_scan_ns") + get("heap_scan_ns"),
            get("mark_ns"),
            "root scan + heap scan partition the mark phase"
        );
        let Some(gctrace::Value::Str(cause)) = e.get("cause") else {
            panic!("collection event without a cause: {e:?}");
        };
        assert_eq!(cause, "explicit", "bare collect() is an explicit cause");
        let Some(gctrace::Value::Str(classes)) = e.get("class_sweep_ns") else {
            panic!("collection event without class_sweep_ns: {e:?}");
        };
        assert!(
            classes.split(' ').any(|p| p.starts_with("96:")),
            "the 64-byte request rounds into the 96-byte class: {classes}"
        );
        assert!(get("pages_swept") >= 1);
    }

    /// The attribution pillar: every collection knows why it ran, both in
    /// the [`HeapStats`] cause counters and in the per-collection
    /// [`CollectionRecord`] log, and a threshold/emergency collection
    /// carries the triggering allocation-site label end to end.
    #[test]
    fn collections_carry_cause_and_site_attribution() {
        let mem = Memory::new(1 << 12, 1 << 12, 1 << 20);
        let mut heap = GcHeap::new(
            &mem,
            HeapConfig {
                gc_threshold: 2048,
                ..HeapConfig::default()
            },
        );
        let prof = gcprof::ProfHandle::enabled();
        heap.set_prof(prof.clone());
        assert!(heap.attribution_enabled());
        let mut mem = mem;
        // Cross the threshold, then allocate with a site label attached.
        for _ in 0..40 {
            heap.alloc(&mut mem, 64).unwrap();
        }
        assert!(heap.should_collect());
        heap.alloc_with_roots_sited(&mut mem, 64, &RootSet::new(), Some("main;malloc@9:3"))
            .unwrap();
        // And one explicit collection.
        heap.collect(&mut mem, &RootSet::new());
        let s = heap.stats();
        assert_eq!(s.collections, 2);
        assert_eq!(
            (
                s.collections_threshold,
                s.collections_emergency,
                s.collections_explicit
            ),
            (1, 0, 1),
            "cause counters partition the collection count"
        );
        assert_eq!(
            s.collections_threshold
                + s.collections_emergency
                + s.collections_explicit
                + s.collections_increment_finish
                + s.collections_nursery,
            s.collections,
            "the five cause counters partition the collection count"
        );
        let d = prof.snapshot().expect("prof enabled");
        assert_eq!(d.collection_log.len(), 2);
        let first = &d.collection_log[0];
        assert_eq!(first.cause, CollectCause::Threshold);
        assert_eq!(first.site.as_deref(), Some("main;malloc@9:3"));
        assert!(
            first.bytes_since_gc >= 2048,
            "the record captures the allocation debt that tripped the threshold"
        );
        assert_eq!(first.root_scan_ns + first.heap_scan_ns, first.mark_ns);
        assert!(first.pages_swept >= 1);
        assert!(
            !first.class_sweep_ns.is_empty(),
            "instrumented sweeps carry per-class timing"
        );
        let second = &d.collection_log[1];
        assert_eq!(second.cause, CollectCause::Explicit);
        assert_eq!(second.site, None);
    }

    /// With neither trace nor prof attached the sweep must skip per-page
    /// timing and build no records — but cause counters still tally.
    #[test]
    fn uninstrumented_collections_still_count_causes() {
        let (mut mem, mut heap) = setup();
        assert!(!heap.attribution_enabled());
        heap.alloc(&mut mem, 64).unwrap();
        heap.collect(&mut mem, &RootSet::new());
        let s = heap.stats();
        assert_eq!(s.collections_explicit, 1);
        assert!(s.total_root_scan_ns + s.total_heap_scan_ns <= s.total_mark_ns);
    }

    #[test]
    fn peak_bytes_live_is_a_high_water_mark() {
        let (mut mem, mut heap) = setup();
        for _ in 0..10 {
            heap.alloc(&mut mem, 96).unwrap();
        }
        let peak = heap.stats().peak_bytes_live;
        assert_eq!(peak, heap.stats().bytes_live);
        heap.collect(&mut mem, &RootSet::new()); // drops everything
        assert_eq!(heap.stats().bytes_live, 0);
        assert_eq!(heap.stats().peak_bytes_live, peak, "peak survives the drop");
        heap.alloc(&mut mem, 16).unwrap();
        assert_eq!(heap.stats().peak_bytes_live, peak);
    }

    /// The emergency-collection path: a failed allocation that triggers a
    /// collection must still contribute to the pause accounting and the
    /// pause histogram — these pauses are real stop-the-world time even
    /// though the allocation comes back [`OutOfMemory`].
    #[test]
    fn failed_allocation_pause_is_accounted() {
        let mem = Memory::new(1 << 12, 1 << 12, 1 << 14); // 4 pages of heap
        let mut heap = GcHeap::with_defaults(&mem);
        let prof = gcprof::ProfHandle::enabled();
        heap.set_prof(prof.clone());
        let mut mem = mem;
        let mut keep = Vec::new();
        for _ in 0..8 {
            keep.push(heap.alloc(&mut mem, 1500).unwrap());
        }
        let mut roots = RootSet::new();
        for &a in &keep {
            roots.add_word(a);
        }
        // Heap full, everything rooted, threshold not reached: the alloc
        // fails, the emergency collection frees nothing, the retry fails.
        assert!(!heap.should_collect());
        assert!(heap.alloc_with_roots(&mut mem, 1500, &roots).is_err());
        let s = heap.stats();
        assert_eq!(s.collections, 1, "the emergency collection ran");
        assert!(s.total_pause_ns > 0, "its pause is accounted");
        assert!(s.max_pause_ns > 0);
        let d = prof.snapshot().expect("prof enabled");
        assert_eq!(
            d.pause_ns.count(),
            s.collections,
            "the pause histogram saw the emergency collection"
        );
        assert_eq!(d.collections, 1);
    }

    #[test]
    fn census_agrees_with_stats() {
        let (mut mem, mut heap) = setup();
        let mut keep = Vec::new();
        for i in 0..60u64 {
            keep.push(heap.alloc(&mut mem, 16 + (i % 5) * 90).unwrap());
        }
        // One byte under the page multiple so the extra byte doesn't
        // round onto a fourth/third page.
        let _large = heap.alloc(&mut mem, 3 * 4096 - 1).unwrap(); // unrooted
        let large_kept = heap.alloc(&mut mem, 2 * 4096 - 1).unwrap();
        keep.push(large_kept);
        let mut roots = RootSet::new();
        for &a in &keep[..30] {
            roots.add_word(a);
        }
        roots.add_word(large_kept);
        heap.collect(&mut mem, &roots);
        let census = heap.census();
        let s = heap.stats();
        assert_eq!(census.live_objects, s.objects_live);
        assert_eq!(census.live_bytes, s.bytes_live);
        assert_eq!(census.large_objects, 1);
        assert_eq!(census.large_bytes, 2 * 4096);
        assert_eq!(
            census.small_pages + census.large_pages + census.free_pages,
            census.pages_total
        );
        let decile_pages: u64 = census.occupancy_deciles.iter().sum();
        assert_eq!(decile_pages, census.small_pages);
        for c in &census.classes {
            assert!(c.pages > 0);
            assert!(c.live_objects <= c.slots);
            assert_eq!(c.live_bytes, c.live_objects * u64::from(c.obj_size));
        }
        assert!(census.fragmentation_permille() <= 1000);
    }

    #[test]
    fn lazy_sweep_defers_adoption_to_allocation() {
        let (mut mem, mut heap) = setup();
        // Two pages of the 32-byte class (128 slots each), alternating
        // keep/drop so both pages survive with free slots.
        let mut keep = Vec::new();
        for i in 0..256 {
            let a = heap.alloc(&mut mem, 24).unwrap();
            if i % 2 == 0 {
                keep.push(a);
            }
        }
        let mut roots = RootSet::new();
        for &a in &keep {
            roots.add_word(a);
        }
        heap.collect(&mut mem, &roots);
        let s = heap.stats();
        assert_eq!(s.objects_freed, 128);
        assert_eq!(s.sweep_debt_pages, 2, "both half-empty pages queued");
        assert_eq!(s.pages_swept_lazily, 0, "nothing adopted yet");
        // The next allocation adopts the lowest dirty page and serves its
        // lowest free slot: the second-ever object's old address.
        let a = heap.alloc(&mut mem, 24).unwrap();
        assert_eq!(a, crate::mem::HEAP_BASE + 32);
        let s = heap.stats();
        assert_eq!(s.pages_swept_lazily, 1);
        assert_eq!(s.sweep_debt_pages, 1, "second page still queued");
        // 63 more allocations fill page one's holes in address order
        // before the second page is touched.
        let mut prev = a;
        for _ in 0..63 {
            let b = heap.alloc(&mut mem, 24).unwrap();
            assert!(b > prev, "address-ordered reuse");
            assert!(b < crate::mem::HEAP_BASE + PAGE_SIZE);
            prev = b;
        }
        let c = heap.alloc(&mut mem, 24).unwrap();
        assert!(c >= crate::mem::HEAP_BASE + PAGE_SIZE, "page two adopted");
        assert_eq!(heap.stats().pages_swept_lazily, 2);
        assert_eq!(heap.stats().sweep_debt_pages, 0);
    }

    #[test]
    fn sweep_all_retires_debt_eagerly() {
        let (mut mem, mut heap) = setup();
        let mut keep = Vec::new();
        for i in 0..256 {
            let a = heap.alloc(&mut mem, 24).unwrap();
            if i % 2 == 0 {
                keep.push(a);
            }
        }
        let mut roots = RootSet::new();
        for &a in &keep {
            roots.add_word(a);
        }
        heap.collect(&mut mem, &roots);
        assert_eq!(heap.stats().sweep_debt_pages, 2);
        heap.sweep_all();
        assert_eq!(heap.stats().sweep_debt_pages, 0);
        // Ready pages serve without counting as lazy adoptions, in the
        // same address order.
        let a = heap.alloc(&mut mem, 24).unwrap();
        assert_eq!(a, crate::mem::HEAP_BASE + 32);
        assert_eq!(heap.stats().pages_swept_lazily, 0);
    }

    #[test]
    fn stats_stay_exact_with_debt_outstanding() {
        let (mut mem, mut heap) = setup();
        let mut keep = Vec::new();
        for i in 0..300 {
            let a = heap.alloc(&mut mem, 50 + (i % 3) * 40).unwrap();
            if i % 3 == 0 {
                keep.push(a);
            }
        }
        let mut roots = RootSet::new();
        for &a in &keep {
            roots.add_word(a);
        }
        heap.collect(&mut mem, &roots);
        // Debt outstanding, yet census and stats agree exactly.
        let s = heap.stats();
        assert!(s.sweep_debt_pages > 0, "collection left dirty pages");
        let census = heap.census();
        assert_eq!(census.live_objects, s.objects_live);
        assert_eq!(census.live_bytes, s.bytes_live);
        assert_eq!(s.objects_live, keep.len() as u64);
    }

    #[test]
    fn census_sees_blacklisted_pages() {
        use crate::pagemap::PAGE_SIZE;
        let mem = Memory::new(1 << 12, 1 << 12, 1 << 16);
        let mut heap = GcHeap::new(
            &mem,
            HeapConfig {
                blacklisting: true,
                ..HeapConfig::default()
            },
        );
        let mut mem = mem;
        let bogus = crate::mem::HEAP_BASE + 3 * PAGE_SIZE + 40;
        let mut roots = RootSet::new();
        roots.add_word(bogus);
        heap.collect(&mut mem, &roots);
        assert_eq!(heap.census().blacklisted_pages, 1);
    }

    /// The classic tri-color violation, deterministically: during a mark
    /// cycle the mutator stores the only pointer to a white object into
    /// an already-scanned (black) object. With the Dijkstra store
    /// barrier the object survives; without it, the cycle provably loses
    /// it.
    #[test]
    fn store_barrier_keeps_a_white_object_stored_into_a_black_one() {
        let run = |barrier: bool| {
            let mem = Memory::new(1 << 16, 1 << 16, 1 << 22);
            let mut heap = GcHeap::new(
                &mem,
                HeapConfig {
                    incremental: true,
                    mark_budget_bytes: 16,
                    ..HeapConfig::default()
                },
            );
            let mut mem = mem;
            let a = heap.alloc(&mut mem, 8).unwrap(); // 16-byte class
            let b = heap.alloc(&mut mem, 8).unwrap(); // the white victim
            let d = heap.alloc(&mut mem, 1500).unwrap(); // ballast keeps the cycle open
            let mut roots = RootSet::new();
            roots.add_word(d);
            roots.add_word(a);
            heap.begin_cycle(&mem, &roots, None); // grey = [d, a]
            assert!(heap.marking_active());
            assert!(heap.barrier_active());
            // One budgeted step scans exactly `a` (16 bytes = the whole
            // budget): `a` is black, `d` still grey, the cycle open.
            heap.mark_step(&mut mem, &roots);
            assert!(heap.marking_active());
            // The mutator stores the only pointer to white `b` into
            // black `a`; no root holds `b`.
            mem.write(a, 8, b).unwrap();
            if barrier {
                heap.write_barrier(a, b);
            }
            while heap.marking_active() {
                heap.mark_step(&mut mem, &roots);
            }
            // Marking is over; retire the chunked sweep so the verdict
            // on `b` is final.
            heap.finish_pending_sweep(&mut mem);
            (heap.is_allocated(b), heap.stats())
        };
        let (b_live, s) = run(true);
        assert!(b_live, "the barrier greys b; the finish must not sweep it");
        assert!(s.barrier_marks >= 1, "the barrier mark is counted");
        assert_eq!(s.collections, 1);
        assert_eq!(s.collections_increment_finish, 1);
        assert!(s.mark_increments >= 2, "initial scan plus an increment");
        let (b_live, _) = run(false);
        assert!(!b_live, "without the barrier the cycle loses b");
    }

    #[test]
    fn incremental_marking_preserves_a_rooted_list_and_frees_garbage() {
        let mem = Memory::new(1 << 16, 1 << 16, 1 << 22);
        let mut heap = GcHeap::new(
            &mem,
            HeapConfig {
                incremental: true,
                mark_budget_bytes: 256,
                gc_threshold: 4096,
                ..HeapConfig::default()
            },
        );
        let prof = gcprof::ProfHandle::enabled();
        heap.set_prof(prof.clone());
        let mut mem = mem;
        // A rooted 50-node linked list, built before any cycle starts.
        let mut nodes = Vec::new();
        let mut prev = 0u64;
        for _ in 0..50 {
            let n = heap.alloc(&mut mem, 64).unwrap();
            if prev != 0 {
                mem.write(prev, 8, n).unwrap();
            }
            nodes.push(n);
            prev = n;
        }
        let mut roots = RootSet::new();
        roots.add_word(nodes[0]);
        // Churn: every allocation is garbage, every safe point advances
        // the collector by at most one bounded stop.
        for _ in 0..300 {
            heap.alloc_with_roots(&mut mem, 64, &roots).unwrap();
        }
        let s = heap.stats();
        assert!(s.collections_increment_finish >= 1, "cycles finished");
        assert!(
            s.mark_increments > 2 * s.collections_increment_finish,
            "cycles take multiple bounded stops ({} stops over {} cycles)",
            s.mark_increments,
            s.collections_increment_finish
        );
        assert_eq!(
            s.collections_threshold, 0,
            "threshold triggers become cycles, not stop-the-world marks"
        );
        assert!(s.objects_freed > 0, "garbage is reclaimed at finishes");
        for &n in &nodes {
            assert!(heap.is_allocated(n), "the rooted list survives");
        }
        assert_eq!(
            s.collections_threshold
                + s.collections_emergency
                + s.collections_explicit
                + s.collections_increment_finish
                + s.collections_nursery,
            s.collections
        );
        let d = prof.snapshot().expect("prof enabled");
        assert_eq!(
            d.pause_ns.count(),
            s.collections,
            "the pause histogram keeps one entry per finished cycle"
        );
        assert!(
            d.pauses.len() as u64 > s.collections,
            "the MMU timeline sees every bounded stop, not just finishes"
        );
    }

    #[test]
    fn explicit_collect_mid_cycle_finishes_the_cycle() {
        let mem = Memory::new(1 << 16, 1 << 16, 1 << 22);
        let mut heap = GcHeap::new(
            &mem,
            HeapConfig {
                incremental: true,
                mark_budget_bytes: 16,
                ..HeapConfig::default()
            },
        );
        let mut mem = mem;
        let a = heap.alloc(&mut mem, 8).unwrap();
        let lose = heap.alloc(&mut mem, 8).unwrap();
        let mut roots = RootSet::new();
        roots.add_word(a);
        heap.begin_cycle(&mem, &roots, None);
        assert!(heap.marking_active());
        heap.collect(&mut mem, &roots);
        assert!(!heap.marking_active(), "the demand finished the cycle");
        let s = heap.stats();
        assert_eq!(s.collections, 1, "one cycle, one collection");
        assert_eq!(s.collections_explicit, 1, "under the demanded cause");
        assert!(heap.is_allocated(a));
        assert!(!heap.is_allocated(lose));
    }

    #[test]
    fn nursery_collections_skip_old_pages_and_cards_catch_old_to_young() {
        let mem = Memory::new(1 << 16, 1 << 16, 1 << 22);
        let mut heap = GcHeap::new(
            &mem,
            HeapConfig {
                nursery: true,
                ..HeapConfig::default()
            },
        );
        let mut mem = mem;
        // An object that survives a full collection is old.
        let old = heap.alloc(&mut mem, 64).unwrap();
        let mut roots = RootSet::new();
        roots.add_word(old);
        heap.collect(&mut mem, &roots);
        assert!(heap.is_allocated(old));
        // Young: one object reachable only through `old`, one garbage.
        let kept = heap.alloc(&mut mem, 8).unwrap();
        let lost = heap.alloc(&mut mem, 8).unwrap();
        mem.write(old, 8, kept).unwrap();
        heap.write_barrier(old, kept);
        // Nursery collection with *no* roots at all: `old` must survive
        // (old pages are implicitly live), `kept` must survive through
        // the remembered-set card, `lost` must go.
        heap.collect_as(&mut mem, &RootSet::new(), CollectCause::Nursery, None);
        let s = heap.stats();
        assert_eq!(s.collections_nursery, 1);
        assert!(heap.is_allocated(old), "old pages float through a nursery");
        assert!(heap.is_allocated(kept), "the card kept the old→young edge");
        assert!(!heap.is_allocated(lost), "young garbage is swept");
        // A full collection with no roots reclaims the old generation.
        heap.collect(&mut mem, &RootSet::new());
        assert!(!heap.is_allocated(old));
        assert!(!heap.is_allocated(kept));
    }

    #[test]
    fn generational_schedule_interleaves_nursery_and_full_collections() {
        let mem = Memory::new(1 << 12, 1 << 12, 1 << 20);
        let mut heap = GcHeap::new(
            &mem,
            HeapConfig {
                nursery: true,
                gc_threshold: 2048,
                ..HeapConfig::default()
            },
        );
        let mut mem = mem;
        for _ in 0..400 {
            heap.alloc_with_roots(&mut mem, 64, &RootSet::new())
                .unwrap();
        }
        let s = heap.stats();
        assert!(s.collections_nursery > 0, "most collections are nursery");
        assert!(
            s.collections_threshold > 0,
            "every fourth collection is a full one"
        );
        assert!(
            s.collections_nursery > s.collections_threshold,
            "nursery collections dominate ({} vs {})",
            s.collections_nursery,
            s.collections_threshold
        );
        assert_eq!(
            s.collections_nursery + s.collections_threshold + s.collections_emergency,
            s.collections
        );
        assert!(s.pages_reclaimed > 0, "nursery sweeps recycle pages");
    }
}

impl GcHeap {
    /// Resolves a candidate pointer word to the base of the allocated
    /// object it references, under the same conservative rules as
    /// [`GcHeap::mark_candidate`] — heap bounds, allocation bits, the
    /// interior-pointer policy (roots always allow interior pointers) —
    /// but strictly read-only: no mark bits are set and no pages are
    /// blacklisted. This is the snapshot walk's edge resolver; keeping it
    /// side-effect free is what lets a snapshot be taken mid-cycle
    /// without perturbing the collection it observes.
    fn resolve_candidate(&self, word: u64, from_root: bool) -> Option<u64> {
        if word < self.heap_base || word >= self.heap_limit {
            return None;
        }
        let idx = ((word - self.heap_base) >> PAGE_SHIFT) as usize;
        let interior_ok = from_root || self.config.policy == PointerPolicy::InteriorEverywhere;
        match self.side[idx] {
            PageKind::Free => None,
            PageKind::Small { obj_size, .. } => {
                let page_start = self.map.page_addr(idx);
                let slot = ((word - page_start) / u64::from(obj_size)) as usize;
                let PageDesc::Small(sp) = self.map.desc(idx) else {
                    unreachable!("side table says small page")
                };
                if slot >= sp.slots() || !sp.alloc_bit(slot) {
                    return None;
                }
                let base = page_start + slot as u64 * u64::from(obj_size);
                if !interior_ok && base != word {
                    return None;
                }
                Some(base)
            }
            PageKind::LargeHead => self.resolve_large(idx, word, interior_ok),
            PageKind::LargeCont { back } => {
                self.resolve_large(idx - back as usize, word, interior_ok)
            }
        }
    }

    /// Read-only counterpart of [`GcHeap::mark_large`].
    fn resolve_large(&self, head: usize, word: u64, interior_ok: bool) -> Option<u64> {
        let head_addr = self.map.page_addr(head);
        let PageDesc::LargeHead {
            size, allocated, ..
        } = self.map.desc(head)
        else {
            unreachable!("side table says large head")
        };
        if !*allocated || word >= head_addr + *size {
            return None;
        }
        if !interior_ok && word != head_addr {
            return None;
        }
        Some(head_addr)
    }

    /// One snapshot node per allocated object — ascending page order,
    /// ascending slot order within a page, so node ids are stable across
    /// identical heaps — plus the interned site table in first-use
    /// order. Edges are left empty; [`GcHeap::snapshot`] fills them.
    ///
    /// The walk enumerates allocation bits exactly the way
    /// [`GcHeap::census`] counts them, so the two views agree at every
    /// observation point, including with lazy-sweep debt outstanding and
    /// mid-`MarkCycle`.
    fn snapshot_skeleton(&self) -> (Vec<gcsnap::Node>, Vec<String>) {
        let mut nodes: Vec<gcsnap::Node> = Vec::new();
        let mut sites: Vec<String> = Vec::new();
        let mut remap: HashMap<u32, u32> = HashMap::new();
        let mut site_of =
            |obj_sites: &HashMap<u64, u32>, site_names: &[String], addr: u64| -> Option<u32> {
                let &hid = obj_sites.get(&addr)?;
                Some(*remap.entry(hid).or_insert_with(|| {
                    sites.push(site_names[hid as usize].clone());
                    (sites.len() - 1) as u32
                }))
            };
        for idx in 0..self.next_page {
            match self.map.desc(idx) {
                PageDesc::Free | PageDesc::LargeCont(_) => {}
                PageDesc::Small(sp) => {
                    let page_start = self.map.page_addr(idx);
                    let young = self.is_young(idx);
                    for slot in 0..sp.slots() {
                        if !sp.alloc_bit(slot) {
                            continue;
                        }
                        let addr = page_start + slot as u64 * u64::from(sp.obj_size);
                        nodes.push(gcsnap::Node {
                            addr,
                            size: u64::from(sp.obj_size),
                            class: sp.obj_size,
                            large: false,
                            young,
                            marked: sp.mark_bit(slot),
                            site: site_of(&self.obj_sites, &self.site_names, addr),
                            edges: Vec::new(),
                        });
                    }
                }
                PageDesc::LargeHead {
                    size,
                    marked,
                    allocated: true,
                } => {
                    let addr = self.map.page_addr(idx);
                    nodes.push(gcsnap::Node {
                        addr,
                        size: *size,
                        class: 0,
                        large: true,
                        young: self.is_young(idx),
                        marked: *marked,
                        site: site_of(&self.obj_sites, &self.site_names, addr),
                        edges: Vec::new(),
                    });
                }
                PageDesc::LargeHead { .. } => {}
            }
        }
        (nodes, sites)
    }

    /// The heap graph without edges or roots: every allocated object as
    /// an address-ordered snapshot node. This is the walk behind
    /// [`GcHeap::dump`] and the census-agreement property tests.
    pub fn snapshot_nodes(&self) -> gcsnap::Snapshot {
        let (nodes, sites) = self.snapshot_skeleton();
        gcsnap::Snapshot {
            sites,
            nodes,
            roots: Vec::new(),
        }
    }

    /// Takes a deterministic heap-graph snapshot: one node per allocated
    /// object, one edge per in-bounds pointer word (resolved with the
    /// marker's conservative rules, read-only), and one root reference
    /// per resolved root word. `range_labels` names `roots.ranges`
    /// positionally (e.g. `["globals", "stack"]`); precise root words are
    /// labeled `reg`. The snapshot carries no wall-clock data: identical
    /// heaps produce identical snapshots.
    pub fn snapshot(
        &self,
        mem: &Memory,
        roots: &RootSet,
        range_labels: &[&str],
    ) -> gcsnap::Snapshot {
        let (mut nodes, sites) = self.snapshot_skeleton();
        let id_of = |nodes: &[gcsnap::Node], base: u64| -> u32 {
            nodes
                .binary_search_by(|n| n.addr.cmp(&base))
                .expect("resolved base is an enumerated node") as u32
        };
        for i in 0..nodes.len() {
            let (addr, size) = (nodes[i].addr, nodes[i].size);
            let mut edges: Vec<u32> = Vec::new();
            mem.scan_words(addr, addr + size, |w| {
                if let Some(base) = self.resolve_candidate(w, false) {
                    edges.push(id_of(&nodes, base));
                }
            });
            edges.sort_unstable();
            edges.dedup();
            nodes[i].edges = edges;
        }
        let mut rr: Vec<gcsnap::RootRef> = Vec::new();
        for (i, &(start, end)) in roots.ranges.iter().enumerate() {
            let label = range_labels.get(i).copied().unwrap_or("root");
            mem.scan_words(start, end, |w| {
                if let Some(base) = self.resolve_candidate(w, true) {
                    rr.push(gcsnap::RootRef {
                        label: label.to_string(),
                        node: id_of(&nodes, base),
                    });
                }
            });
        }
        for &w in &roots.words {
            if let Some(base) = self.resolve_candidate(w, true) {
                rr.push(gcsnap::RootRef {
                    label: "reg".to_string(),
                    node: id_of(&nodes, base),
                });
            }
        }
        rr.sort_by(|a, b| a.node.cmp(&b.node).then_with(|| a.label.cmp(&b.label)));
        rr.dedup();
        gcsnap::Snapshot {
            sites,
            nodes,
            roots: rr,
        }
    }

    /// Renders a one-line-per-page summary of heap occupancy — a
    /// diagnostic analogous to the Boehm collector's `GC_dump` — from
    /// the snapshot walk: the live counts, byte totals, and per-site
    /// roll-up all come from [`GcHeap::snapshot_nodes`], so this view
    /// cannot drift from what snapshots export.
    pub fn dump(&self) -> String {
        use std::fmt::Write;
        let snap = self.snapshot_nodes();
        // Per-page object counts from the snapshot walk.
        let mut page_live: HashMap<usize, u64> = HashMap::new();
        for n in &snap.nodes {
            *page_live
                .entry(((n.addr - self.heap_base) >> PAGE_SHIFT) as usize)
                .or_insert(0) += 1;
        }
        let mut out = String::new();
        let _ = writeln!(
            out,
            "heap: {} pages used, {} free-listed, {} blacklisted; {} objects / {} bytes live",
            self.next_page,
            self.free_pages.len(),
            self.bl_count,
            snap.objects(),
            snap.bytes()
        );
        for idx in 0..self.next_page {
            let used = page_live.get(&idx).copied().unwrap_or(0);
            match self.map.desc(idx) {
                PageDesc::Free => {
                    let _ = writeln!(out, "  page {idx:4}: free");
                }
                PageDesc::Small(sp) => {
                    let _ = writeln!(
                        out,
                        "  page {idx:4}: {}-byte objects, {used}/{} slots live",
                        sp.obj_size,
                        sp.slots()
                    );
                }
                PageDesc::LargeHead {
                    size, allocated, ..
                } => {
                    let _ = writeln!(
                        out,
                        "  page {idx:4}: large head, {size} bytes, {}",
                        if *allocated { "live" } else { "free" }
                    );
                }
                PageDesc::LargeCont(back) => {
                    let _ = writeln!(out, "  page {idx:4}: large continuation (-{back})");
                }
            }
        }
        for (i, site) in snap.sites.iter().enumerate() {
            let (objs, bytes) = snap
                .nodes
                .iter()
                .filter(|n| n.site == Some(i as u32))
                .fold((0u64, 0u64), |(o, b), n| (o + 1, b + n.size));
            let _ = writeln!(out, "  site {site}: {objs} objects / {bytes} bytes");
        }
        out
    }
}

#[cfg(test)]
mod dump_tests {
    use super::*;

    #[test]
    fn dump_reflects_heap_shape() {
        let mem = Memory::new(1 << 12, 1 << 12, 1 << 16);
        let mut heap = GcHeap::with_defaults(&mem);
        let mut mem = mem;
        heap.alloc(&mut mem, 24).unwrap();
        heap.alloc(&mut mem, 24).unwrap();
        heap.alloc(&mut mem, 5000).unwrap();
        let d = heap.dump();
        assert!(d.contains("32-byte objects, 2/"), "{d}");
        assert!(d.contains("large head, 8192 bytes, live"), "{d}");
        assert!(d.contains("3 pages used"), "pages counted: {d}");
    }

    /// The drift pin: every number `dump` renders must be re-derivable
    /// from `snapshot_nodes`, and the snapshot walk in turn must agree
    /// with the page descriptors' own live counts — so the textual view,
    /// the snapshot view, and the bitmaps cannot diverge unnoticed.
    #[test]
    fn dump_agrees_with_the_snapshot_walk() {
        let mem = Memory::new(1 << 12, 1 << 12, 1 << 18);
        let mut heap = GcHeap::with_defaults(&mem);
        heap.set_prof(ProfHandle::enabled()); // attribution on: sites stick
        let mut mem = mem;
        let roots = RootSet::new();
        for i in 0..20 {
            let site = if i % 2 == 0 { "even@1:1" } else { "odd@2:2" };
            heap.alloc_with_roots_sited(&mut mem, 40 + (i % 3) * 100, &roots, Some(site))
                .unwrap();
        }
        heap.alloc_with_roots_sited(&mut mem, 5000, &roots, Some("big@3:3"))
            .unwrap();
        let snap = heap.snapshot_nodes();
        let d = heap.dump();
        // Header totals come from the snapshot.
        assert!(
            d.contains(&format!(
                "{} objects / {} bytes live",
                snap.objects(),
                snap.bytes()
            )),
            "{d}"
        );
        // Each small-page line's live count equals both the snapshot's
        // node count for that page and the bitmap's live count.
        for idx in 0..heap.next_page {
            let PageDesc::Small(sp) = heap.map.desc(idx) else {
                continue;
            };
            let page_start = heap.map.page_addr(idx);
            let in_page = snap
                .nodes
                .iter()
                .filter(|n| n.addr >= page_start && n.addr < page_start + PAGE_SIZE)
                .count() as u64;
            assert_eq!(in_page, sp.live_count(), "page {idx}");
            assert!(
                d.contains(&format!(
                    "page {idx:4}: {}-byte objects, {in_page}/{} slots live",
                    sp.obj_size,
                    sp.slots()
                )),
                "page {idx} line missing or drifted: {d}"
            );
        }
        // The per-site roll-up renders every tagged site with the
        // snapshot's own counts.
        for (i, site) in snap.sites.iter().enumerate() {
            let (objs, bytes) = snap
                .nodes
                .iter()
                .filter(|n| n.site == Some(i as u32))
                .fold((0u64, 0u64), |(o, b), n| (o + 1, b + n.size));
            assert!(objs > 0, "site {site} tagged nothing");
            assert!(
                d.contains(&format!("site {site}: {objs} objects / {bytes} bytes")),
                "{d}"
            );
        }
        assert_eq!(snap.sites.len(), 3, "all three sites interned");
    }
}
