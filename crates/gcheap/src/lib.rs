//! # gcheap — conservative mark-sweep collector substrate
//!
//! The collector the paper's techniques target ([Boehm95] in its default
//! configuration), rebuilt over a simulated address space:
//!
//! * [`mem::Memory`] — a flat simulated address space with globals, stack,
//!   and heap regions (the GC-roots are the first two plus the VM's
//!   register file);
//! * [`pagemap::PageMap`] — the paper's "tree of fixed height 2 describing
//!   pages of uniformly sized objects", giving O(1) `GC_base`;
//! * [`heap::GcHeap`] — size-classed allocation (with the paper's one
//!   extra byte per object), conservative marking with interior-pointer
//!   recognition, sweeping with optional poisoning, and the
//!   `GC_same_obj` facility used by the checking mode.
//!
//! ## Example
//!
//! ```
//! use gcheap::{GcHeap, Memory, RootSet};
//!
//! let mut mem = Memory::with_defaults();
//! let mut heap = GcHeap::with_defaults(&mem);
//! let obj = heap.alloc(&mut mem, 64)?;
//! // An interior pointer in a root keeps the object alive…
//! let mut roots = RootSet::new();
//! roots.add_word(obj + 32);
//! heap.collect(&mut mem, &roots);
//! assert!(heap.is_allocated(obj));
//! // …and without any root it is reclaimed.
//! heap.collect(&mut mem, &RootSet::new());
//! assert!(!heap.is_allocated(obj));
//! # Ok::<(), gcheap::OutOfMemory>(())
//! ```

#![warn(missing_docs)]

pub mod heap;
pub mod mem;
pub mod pagemap;

pub use gcprof::{CollectCause, CollectionRecord};
pub use heap::{GcHeap, HeapConfig, HeapStats, OutOfMemory, PointerPolicy, RootSet, SIZE_CLASSES};
pub use mem::{MemFault, MemResult, Memory, Region, GLOBAL_BASE, HEAP_BASE, STACK_BASE};
pub use pagemap::{PageDesc, PageMap, SmallPage, BITMAP_WORDS, PAGE_SIZE};
