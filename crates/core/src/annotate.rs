//! The annotation algorithm and its optimizations.
//!
//! The paper: "replace every pointer-valued expression *e* that occurs as
//! the right side of an assignment, or as the argument of a dereferencing
//! operation, or as a function argument or result, by the expression
//! `KEEP_LIVE(e, BASE(e))`. C increment and decrement operators are treated
//! as assignments."
//!
//! Two modes share the same insertion points (the paper's central claim):
//!
//! * [`Mode::GcSafe`] inserts [`ExprKind::KeepLive`] — the compiler-facing
//!   opacity/liveness primitive;
//! * [`Mode::Checked`] inserts [`ExprKind::CheckSame`] (`GC_same_obj`) and
//!   the specialized `GC_pre_incr` / `GC_post_incr` calls — the debugging
//!   pointer-arithmetic checker.
//!
//! The paper's four optimizations are individually switchable for
//! ablation:
//!
//! 1. skip `KEEP_LIVE` on plain copies (`p = q`);
//! 2. specialized expansion of `++`/`--` that avoids forcing the operand
//!    to memory in GC-safe mode;
//! 3. the base-pointer heuristic — "replace base pointers … by equivalent,
//!    but less rapidly varying base pointers" (the `strcpy` example);
//! 4. call-site-only collection: drop the dereference-address wraps, keep
//!    the stored-value wraps.

use crate::base::{Base, BaseAnalysis};
use cfront::ast::*;
use cfront::edit::EditList;
use cfront::pretty::expr_to_c;
use cfront::sema::{Resolution, SemaInfo};
use cfront::types::{Type, TypeTable};
use gctrace::{Event, TraceHandle};
use std::collections::HashMap;

/// Annotation mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Mode {
    /// Insert `KEEP_LIVE` for compiler GC-safety.
    #[default]
    GcSafe,
    /// Insert `GC_same_obj` / `GC_pre_incr` / `GC_post_incr` runtime checks.
    Checked,
}

/// Annotator configuration (mode plus the paper's optimizations).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Config {
    /// Which primitive to insert.
    pub mode: Mode,
    /// Optimization 1: no wrap when the value is statically a copy.
    pub skip_copies: bool,
    /// Optimization 2: specialized `++`/`--` expansions.
    pub specialize_incdec: bool,
    /// Optimization 3: prefer slowly varying equivalent base pointers.
    pub base_heuristic: bool,
    /// Optimization 4: collections only at call sites — dereference-address
    /// wraps become unnecessary.
    pub call_sites_only: bool,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            mode: Mode::GcSafe,
            skip_copies: true,
            specialize_incdec: true,
            base_heuristic: false,
            call_sites_only: false,
        }
    }
}

impl Config {
    /// The paper's measured GC-safe configuration (optimizations 1 and 2:
    /// "Only optimizations (1) and (2) from above are implemented").
    pub fn gc_safe() -> Self {
        Config::default()
    }

    /// The paper's debugging/checking configuration.
    pub fn checked() -> Self {
        Config {
            mode: Mode::Checked,
            ..Config::default()
        }
    }
}

/// Counters describing what the annotator did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AnnotStats {
    /// `KEEP_LIVE` wraps inserted.
    pub keep_lives: usize,
    /// `GC_same_obj` wraps inserted.
    pub checks: usize,
    /// Specialized increment/decrement rewrites.
    pub incdec_specials: usize,
    /// Wraps skipped because the value was a plain copy (optimization 1).
    pub skipped_copies: usize,
    /// Base pointers replaced by a slower-varying equivalent (optimization 3).
    pub base_heuristic_hits: usize,
    /// Dereference wraps skipped under call-site-only mode (optimization 4).
    pub skipped_deref_wraps: usize,
}

/// Result of annotating a program.
#[derive(Debug, Clone, Default)]
pub struct AnnotResult {
    /// Counters.
    pub stats: AnnotStats,
    /// Source-level edits reproducing the transformation on the original
    /// text (the paper's preprocessor output mechanism).
    pub edits: EditList,
}

/// Annotates `prog` in place. Expression types must be filled (run
/// [`cfront::analyze`] first) and must be re-filled afterwards (run it
/// again): the annotator inserts new, untyped nodes.
pub fn annotate(prog: &mut Program, sema: &SemaInfo, config: &Config) -> AnnotResult {
    annotate_traced(prog, sema, config, &TraceHandle::disabled())
}

/// [`annotate`] with a per-annotation audit stream: every wrap, every
/// optimization-suppressed wrap, and every base-heuristic substitution
/// emits an `"annotate"`-stage event on `trace`, followed by one
/// `"summary"` event per function carrying that function's counters, so
/// summing a field across summaries yields the program total.
pub fn annotate_traced(
    prog: &mut Program,
    sema: &SemaInfo,
    config: &Config,
    trace: &TraceHandle,
) -> AnnotResult {
    let types = prog.types.clone();
    let mut ids = std::mem::take(&mut prog.node_ids);
    let mut result = AnnotResult::default();
    let mut funcs = std::mem::take(&mut prog.funcs);
    for f in &mut funcs {
        let Some(body) = f.body.take() else { continue };
        let before = result.stats;
        let origins = if config.base_heuristic {
            compute_origins(&body, sema)
        } else {
            HashMap::new()
        };
        let mut cx = Annotator {
            cfg: config,
            sema,
            types: &types,
            ids: &mut ids,
            stats: &mut result.stats,
            edits: &mut result.edits,
            origins,
            trace,
        };
        let body = cx.block(body);
        f.body = Some(body);
        let stats = result.stats;
        trace.emit(|| {
            Event::new("annotate", "summary")
                .field("function", f.name.as_str())
                .field("keep_lives", stats.keep_lives - before.keep_lives)
                .field("checks", stats.checks - before.checks)
                .field(
                    "incdec_specials",
                    stats.incdec_specials - before.incdec_specials,
                )
                .field(
                    "skipped_copies",
                    stats.skipped_copies - before.skipped_copies,
                )
                .field(
                    "base_heuristic_hits",
                    stats.base_heuristic_hits - before.base_heuristic_hits,
                )
                .field(
                    "skipped_deref_wraps",
                    stats.skipped_deref_wraps - before.skipped_deref_wraps,
                )
        });
    }
    prog.funcs = funcs;
    prog.node_ids = ids;
    result
}

/// Optimization 3 support: for each pointer variable, the unique "less
/// rapidly varying" variable it is provably derived from, if any.
///
/// `origin(x) = s` requires that every assignment to `x` in the function
/// has `BASE(rhs) ∈ {x, s}` and that `s` itself is never assigned (so `s`
/// keeps pointing at the object `x` walks through — the paper's `strcpy`
/// example replaces bases `p`, `q` by `s`, `t`).
fn compute_origins(body: &Block, sema: &SemaInfo) -> HashMap<String, String> {
    let analysis = BaseAnalysis::new(sema);
    #[derive(Default)]
    struct VarFacts {
        sources: Vec<String>,
        poisoned: bool,
        assigned: bool,
    }
    let mut facts: HashMap<String, VarFacts> = HashMap::new();
    let record = |name: &str, src: Base, facts: &mut HashMap<String, VarFacts>| {
        let entry = facts.entry(name.to_string()).or_default();
        entry.assigned = true;
        match src {
            Base::Var(s) if s != name => entry.sources.push(s),
            Base::Var(_) => {} // self-derived: p = p + 1 keeps the object
            _ => entry.poisoned = true,
        }
    };
    let stmt_block = Stmt::Block(body.clone());
    visit_exprs(&stmt_block, &mut |e| match &e.kind {
        ExprKind::Assign { op, lhs, rhs } => {
            if let ExprKind::Ident(name) = &lhs.kind {
                if matches!(lhs.ty.as_ref().map(Type::decayed), Some(Type::Ptr(_))) {
                    let src = if op.is_some() {
                        // p += k stays within the object: self-derived.
                        Base::Var(name.clone())
                    } else {
                        analysis.base(rhs)
                    };
                    record(name, src, &mut facts);
                }
            }
        }
        ExprKind::IncDec { target, .. } => {
            if let ExprKind::Ident(name) = &target.kind {
                if matches!(target.ty.as_ref().map(Type::decayed), Some(Type::Ptr(_))) {
                    record(name, Base::Var(name.clone()), &mut facts);
                }
            }
        }
        ExprKind::AddrOf(inner) => {
            // &x permits indirect writes: poison both as target and source.
            if let ExprKind::Ident(name) = &inner.kind {
                let entry = facts.entry(name.clone()).or_default();
                entry.poisoned = true;
                entry.assigned = true;
            }
        }
        _ => {}
    });
    // Declared initializers count as assignments.
    collect_decl_inits(&stmt_block, &mut |name, init| {
        let src = analysis.base(init);
        record(name, src, &mut facts);
    });
    let mut origins = HashMap::new();
    for (name, f) in &facts {
        if f.poisoned {
            continue;
        }
        let mut uniq: Vec<&String> = f.sources.iter().collect();
        uniq.sort();
        uniq.dedup();
        if uniq.len() != 1 {
            continue;
        }
        let src = uniq[0];
        // The source must never be assigned in this function body (its decl
        // init or parameter value is its only definition).
        let src_ok = facts.get(src).map(|sf| !sf.assigned).unwrap_or(true);
        if src_ok {
            origins.insert(name.clone(), src.clone());
        }
    }
    origins
}

fn collect_decl_inits(stmt: &Stmt, f: &mut dyn FnMut(&str, &Expr)) {
    match stmt {
        Stmt::Decl(decls) => {
            for d in decls {
                if let (Some(init), Type::Ptr(_)) = (&d.init, &d.ty.decayed()) {
                    f(&d.name, init);
                }
            }
        }
        Stmt::Block(b) => {
            for s in &b.stmts {
                collect_decl_inits(s, f);
            }
        }
        Stmt::If(_, t, e) => {
            collect_decl_inits(t, f);
            if let Some(e) = e {
                collect_decl_inits(e, f);
            }
        }
        Stmt::While(_, b) | Stmt::DoWhile(b, _) | Stmt::Switch(_, b) => collect_decl_inits(b, f),
        Stmt::For { init, body, .. } => {
            if let Some(i) = init {
                collect_decl_inits(i, f);
            }
            collect_decl_inits(body, f);
        }
        _ => {}
    }
}

/// Position of an expression relative to the paper's wrap rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pos {
    /// RHS of assignment, dereference argument, call argument, or return
    /// value: wrap pointer arithmetic here.
    Value,
    /// Anywhere else: only recurse.
    Plain,
}

struct Annotator<'a> {
    cfg: &'a Config,
    sema: &'a SemaInfo,
    types: &'a TypeTable,
    ids: &'a mut NodeIdGen,
    stats: &'a mut AnnotStats,
    edits: &'a mut EditList,
    origins: HashMap<String, String>,
    trace: &'a TraceHandle,
}

impl Annotator<'_> {
    fn analysis(&self) -> BaseAnalysis<'_> {
        BaseAnalysis::new(self.sema)
    }

    fn mk(&mut self, span: cfront::Span, kind: ExprKind) -> Expr {
        Expr::new(self.ids.fresh(), span, kind)
    }

    fn ident(&mut self, span: cfront::Span, name: &str) -> Expr {
        self.mk(span, ExprKind::Ident(name.to_string()))
    }

    fn heap_ptr_var(&self, e: &Expr) -> Option<String> {
        let ExprKind::Ident(name) = &e.kind else {
            return None;
        };
        if !matches!(e.ty.as_ref(), Some(Type::Ptr(_))) {
            return None;
        }
        match self.sema.res.get(&e.id) {
            Some(Resolution::Local(_) | Resolution::Global(_)) => Some(name.clone()),
            _ => None,
        }
    }

    /// Applies optimization 3 to a chosen base variable.
    fn final_base(&mut self, base: Base) -> Base {
        let Base::Var(name) = base else { return base };
        if !self.cfg.base_heuristic {
            return Base::Var(name);
        }
        let mut cur = name.clone();
        let mut hops = 0;
        while let Some(next) = self.origins.get(&cur) {
            cur = next.clone();
            hops += 1;
            if hops > 8 {
                break; // cycle guard; origins should be acyclic
            }
        }
        if cur != name {
            self.stats.base_heuristic_hits += 1;
            self.trace.emit(|| {
                Event::new("annotate", "base_heuristic")
                    .field("from", name.as_str())
                    .field("to", cur.as_str())
            });
        }
        Base::Var(cur)
    }

    /// Emits one wrap audit event (the closure only runs when tracing is
    /// enabled, so the pretty-printed expression costs nothing otherwise).
    fn audit_wrap(
        &self,
        value: &Expr,
        primitive: &'static str,
        rule: &'static str,
        base_name: Option<&str>,
    ) {
        self.trace.emit(|| {
            let mut ev = Event::new("annotate", "wrap")
                .field("primitive", primitive)
                .field("rule", rule)
                .field("expr", expr_to_c(value, self.types))
                .field("span_start", value.span.start)
                .field("span_end", value.span.end);
            if let Some(b) = base_name {
                ev = ev.field("base", b);
            }
            ev
        });
    }

    /// Emits one suppressed-wrap audit event.
    fn audit_skip(&self, value: &Expr, reason: &'static str) {
        self.trace.emit(|| {
            Event::new("annotate", "skip")
                .field("reason", reason)
                .field("expr", expr_to_c(value, self.types))
                .field("span_start", value.span.start)
                .field("span_end", value.span.end)
        });
    }

    /// Wraps `value` in the mode's annotation primitive with the given
    /// base. `Base::Nil` (provably non-heap) returns the value unchanged.
    /// When `record_edit` is true a plain textual wrap is recorded at the
    /// value's span.
    fn wrap(&mut self, value: Expr, base: Base, record_edit: bool) -> Expr {
        let base = self.final_base(base);
        let span = value.span;
        match (&self.cfg.mode, base) {
            (_, Base::Nil) => value,
            (Mode::GcSafe, Base::Var(b)) => {
                self.stats.keep_lives += 1;
                self.audit_wrap(&value, "KEEP_LIVE", "base_var", Some(&b));
                if record_edit {
                    self.edits.insert(span.start, "KEEP_LIVE(");
                    self.edits.insert(span.end, format!(", {b})"));
                }
                let base_e = self.ident(span, &b);
                self.mk(
                    span,
                    ExprKind::KeepLive {
                        value: Box::new(value),
                        base: Some(Box::new(base_e)),
                    },
                )
            }
            (Mode::GcSafe, Base::Opaque) => {
                self.stats.keep_lives += 1;
                self.audit_wrap(&value, "KEEP_LIVE", "base_opaque", None);
                if record_edit {
                    self.edits.insert(span.start, "KEEP_LIVE(");
                    self.edits.insert(span.end, ", 0)");
                }
                self.mk(
                    span,
                    ExprKind::KeepLive {
                        value: Box::new(value),
                        base: None,
                    },
                )
            }
            (Mode::Checked, Base::Var(b)) => {
                self.stats.checks += 1;
                self.audit_wrap(&value, "GC_same_obj", "base_var", Some(&b));
                if record_edit {
                    self.edits.insert(span.start, "GC_same_obj(");
                    self.edits.insert(span.end, format!(", {b})"));
                }
                let base_e = self.ident(span, &b);
                self.mk(
                    span,
                    ExprKind::CheckSame {
                        value: Box::new(value),
                        base: Box::new(base_e),
                    },
                )
            }
            (Mode::Checked, Base::Opaque) => {
                // No named base to check against; fall back to opacity.
                self.stats.keep_lives += 1;
                self.audit_wrap(&value, "KEEP_LIVE", "base_opaque", None);
                self.mk(
                    span,
                    ExprKind::KeepLive {
                        value: Box::new(value),
                        base: None,
                    },
                )
            }
        }
    }

    fn block(&mut self, mut b: Block) -> Block {
        b.stmts = b.stmts.into_iter().map(|s| self.stmt(s)).collect();
        b
    }

    fn stmt(&mut self, s: Stmt) -> Stmt {
        match s {
            Stmt::Expr(e) => Stmt::Expr(self.expr(e, Pos::Plain)),
            Stmt::Decl(decls) => Stmt::Decl(
                decls
                    .into_iter()
                    .map(|mut d| {
                        d.init = d.init.take().map(|e| self.expr(e, Pos::Value));
                        d
                    })
                    .collect(),
            ),
            Stmt::Block(b) => Stmt::Block(self.block(b)),
            Stmt::If(c, t, e) => Stmt::If(
                self.expr(c, Pos::Plain),
                Box::new(self.stmt(*t)),
                e.map(|e| Box::new(self.stmt(*e))),
            ),
            Stmt::While(c, b) => Stmt::While(self.expr(c, Pos::Plain), Box::new(self.stmt(*b))),
            Stmt::DoWhile(b, c) => Stmt::DoWhile(Box::new(self.stmt(*b)), self.expr(c, Pos::Plain)),
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => Stmt::For {
                init: init.map(|i| Box::new(self.stmt(*i))),
                cond: cond.map(|c| self.expr(c, Pos::Plain)),
                step: step.map(|st| self.expr(st, Pos::Plain)),
                body: Box::new(self.stmt(*body)),
            },
            Stmt::Switch(c, b) => Stmt::Switch(self.expr(c, Pos::Plain), Box::new(self.stmt(*b))),
            Stmt::Return(Some(e)) => Stmt::Return(Some(self.expr(e, Pos::Value))),
            other => other,
        }
    }

    /// Whether a value expression is statically a copy of a value stored
    /// elsewhere (optimization 1: `p = q` needs no `KEEP_LIVE`).
    fn is_copy(e: &Expr) -> bool {
        match &e.kind {
            ExprKind::Ident(_)
            | ExprKind::IntLit(_)
            | ExprKind::StrLit(_)
            | ExprKind::Call(..)
            | ExprKind::KeepLive { .. }
            | ExprKind::CheckSame { .. }
            | ExprKind::Deref(_)
            | ExprKind::Index(..)
            | ExprKind::Member { .. }
            | ExprKind::SizeofExpr(_)
            | ExprKind::SizeofType(_)
            | ExprKind::Assign { .. }
            | ExprKind::IncDec { .. } => true,
            ExprKind::Cast(_, inner) => Self::is_copy(inner),
            ExprKind::Comma(_, r) => Self::is_copy(r),
            ExprKind::Cond(_, t, f) => Self::is_copy(t) && Self::is_copy(f),
            _ => false,
        }
    }

    /// The dereference-address transformation: rewrites `a[i]` / `e->x` /
    /// `e.x`-via-pointer into `*WRAP(&lvalue, base)` per the paper's
    /// `*&(e1[e2].x)` normalization. Returns `None` when no wrap applies
    /// (non-heap base, or call-site-only mode).
    fn deref_address(&mut self, e: &Expr) -> Option<Base> {
        let base = match &e.kind {
            ExprKind::Index(..) | ExprKind::Member { .. } => self.analysis().base_addr(e),
            _ => return None,
        };
        // Var: wrap with the named base. Opaque: the value flows through a
        // generating expression; wrap with no named base — lowering binds
        // the evaluated pointer operand as the base, which is what the
        // paper's introduced temporary would have been. Nil: provably
        // non-heap, leave alone.
        if matches!(base, Base::Nil) {
            return None;
        }
        if self.cfg.call_sites_only {
            self.stats.skipped_deref_wraps += 1;
            self.audit_skip(e, "opt4_call_sites_only");
            return None;
        }
        Some(base)
    }

    fn expr(&mut self, e: Expr, pos: Pos) -> Expr {
        let span = e.span;
        let ty = e.ty.clone();
        let id = e.id;
        // Rebuild a node in place, preserving its id so BASE analysis (which
        // consults the pre-annotation sema tables) keeps resolving it.
        let rebuild = |ty: Option<cfront::Type>, kind: ExprKind| Expr { id, span, ty, kind };
        match e.kind {
            // ------ stores --------------------------------------------------
            ExprKind::Assign { op: None, lhs, rhs } => {
                let lhs = self.expr(*lhs, Pos::Plain);
                let rhs = self.expr(*rhs, Pos::Value);
                rebuild(
                    ty,
                    ExprKind::Assign {
                        op: None,
                        lhs: Box::new(lhs),
                        rhs: Box::new(rhs),
                    },
                )
            }
            ExprKind::Assign {
                op: Some(op),
                lhs,
                rhs,
            } => {
                // Pointer compound assignment: p += k → p = WRAP(p + k, p).
                let lhs_is_heap_ptr = self.heap_ptr_var(&lhs).is_some();
                if lhs_is_heap_ptr && matches!(op, BinOp::Add | BinOp::Sub) {
                    let name = self.heap_ptr_var(&lhs).expect("checked above");
                    let rhs = self.expr(*rhs, Pos::Plain);
                    let lhs_copy = self.ident(lhs.span, &name);
                    let mut arith = self.mk(
                        span,
                        ExprKind::Binary(op, Box::new(lhs_copy), Box::new(rhs)),
                    );
                    arith.ty = lhs.ty.clone();
                    let wrapped = self.wrap(arith, Base::Var(name), false);
                    let new = self.mk(
                        span,
                        ExprKind::Assign {
                            op: None,
                            lhs,
                            rhs: Box::new(wrapped),
                        },
                    );
                    self.edits.replace(
                        span.start,
                        span.end - span.start,
                        expr_to_c(&new, self.types),
                    );
                    return new;
                }
                let lhs = self.expr(*lhs, Pos::Plain);
                let rhs = self.expr(*rhs, Pos::Plain);
                rebuild(
                    ty,
                    ExprKind::Assign {
                        op: Some(op),
                        lhs: Box::new(lhs),
                        rhs: Box::new(rhs),
                    },
                )
            }
            ExprKind::IncDec { inc, pre, target } => {
                if let Some(name) = self.heap_ptr_var(&target) {
                    if self.cfg.mode == Mode::Checked && self.cfg.specialize_incdec {
                        // ++p → (T)GC_pre_incr(&p, ±sizeof *p);  p++ →
                        // (T)GC_post_incr(&p, ±sizeof *p). Forces p to
                        // memory — the paper's measured cost.
                        self.stats.incdec_specials += 1;
                        let elem = target
                            .ty
                            .as_ref()
                            .and_then(Type::pointee)
                            .and_then(|t| t.size(self.types))
                            .unwrap_or(1) as i64;
                        let delta = if inc { elem } else { -elem };
                        let fname = if pre { "GC_pre_incr" } else { "GC_post_incr" };
                        let callee = self.ident(span, fname);
                        let addr = {
                            let t = self.ident(target.span, &name);
                            self.mk(span, ExprKind::AddrOf(Box::new(t)))
                        };
                        let amount = self.mk(span, ExprKind::IntLit(delta));
                        let call =
                            self.mk(span, ExprKind::Call(Box::new(callee), vec![addr, amount]));
                        let target_ty = target.ty.clone().expect("sema ran before annotation");
                        let new = self.mk(span, ExprKind::Cast(target_ty, Box::new(call)));
                        self.trace.emit(|| {
                            Event::new("annotate", "incdec")
                                .field("primitive", fname)
                                .field("var", name.as_str())
                                .field("delta", delta)
                                .field("span_start", span.start)
                                .field("span_end", span.end)
                        });
                        self.edits.replace(
                            span.start,
                            span.end - span.start,
                            expr_to_c(&new, self.types),
                        );
                        return new;
                    }
                    // GC-safe mode (or generic checked): wrap the whole
                    // inc/dec; lowering pins the new value on the old one —
                    // the paper's optimized `(tmp = e, e = tmp + 1, tmp)`
                    // expansion without forcing e to memory.
                    self.stats.incdec_specials += 1;
                    self.trace.emit(|| {
                        Event::new("annotate", "incdec")
                            .field("primitive", "KEEP_LIVE")
                            .field("var", name.as_str())
                            .field("span_start", span.start)
                            .field("span_end", span.end)
                    });
                    let node = self.mk(span, ExprKind::IncDec { inc, pre, target });
                    return self.wrap(node, Base::Var(name), true);
                }
                let target = self.expr(*target, Pos::Plain);
                rebuild(
                    ty,
                    ExprKind::IncDec {
                        inc,
                        pre,
                        target: Box::new(target),
                    },
                )
            }
            // ------ dereference points -------------------------------------
            ExprKind::Deref(inner) => {
                let inner = self.expr(*inner, Pos::Value);
                rebuild(ty, ExprKind::Deref(Box::new(inner)))
            }
            ExprKind::Index(a, i) => {
                let probe = Expr {
                    id: e.id,
                    span,
                    ty: ty.clone(),
                    kind: ExprKind::Index(a, i),
                };
                let wrap_base = self.deref_address(&probe);
                let ExprKind::Index(a, i) = probe.kind else {
                    unreachable!()
                };
                let a = self.expr(*a, Pos::Plain);
                let i = self.expr(*i, Pos::Plain);
                let idx = rebuild(ty.clone(), ExprKind::Index(Box::new(a), Box::new(i)));
                match wrap_base {
                    Some(base) => {
                        // a[i] → *WRAP(&a[i], base)
                        self.edits.insert(span.start, "(*".to_string());
                        let prefix_done = self.wrap_addr_edits_prefix(span.start);
                        let addr = self.mk(span, ExprKind::AddrOf(Box::new(idx)));
                        let wrapped = self.wrap(addr, base, false);
                        self.wrap_addr_edits_suffix(span.end, &wrapped, prefix_done);
                        let mut out = self.mk(span, ExprKind::Deref(Box::new(wrapped)));
                        out.ty = ty;
                        out
                    }
                    None => idx,
                }
            }
            ExprKind::Member { obj, field, arrow } => {
                let probe = Expr {
                    id: e.id,
                    span,
                    ty: ty.clone(),
                    kind: ExprKind::Member {
                        obj,
                        field: field.clone(),
                        arrow,
                    },
                };
                let wrap_base = self.deref_address(&probe);
                let ExprKind::Member { obj, .. } = probe.kind else {
                    unreachable!()
                };
                let obj = self.expr(*obj, Pos::Plain);
                let mem = rebuild(
                    ty.clone(),
                    ExprKind::Member {
                        obj: Box::new(obj),
                        field: field.clone(),
                        arrow,
                    },
                );
                match wrap_base {
                    Some(base) => {
                        self.edits.insert(span.start, "(*".to_string());
                        let prefix_done = self.wrap_addr_edits_prefix(span.start);
                        let addr = self.mk(span, ExprKind::AddrOf(Box::new(mem)));
                        let wrapped = self.wrap(addr, base, false);
                        self.wrap_addr_edits_suffix(span.end, &wrapped, prefix_done);
                        let mut out = self.mk(span, ExprKind::Deref(Box::new(wrapped)));
                        out.ty = ty;
                        out
                    }
                    None => mem,
                }
            }
            // ------ arithmetic values --------------------------------------
            ExprKind::Binary(op, l, r) => {
                let is_ptr_arith = matches!(op, BinOp::Add | BinOp::Sub)
                    && matches!(ty.as_ref().map(Type::decayed), Some(Type::Ptr(_)));
                let l = self.expr(*l, Pos::Plain);
                let r = self.expr(*r, Pos::Plain);
                let out = rebuild(ty, ExprKind::Binary(op, Box::new(l), Box::new(r)));
                if is_ptr_arith && pos == Pos::Value {
                    let base = self.analysis().base(&out);
                    return self.wrap(out, base, true);
                }
                out
            }
            ExprKind::AddrOf(inner) => {
                // &a[i] / &p->f as a *value* is derived-pointer arithmetic.
                let needs = matches!(
                    inner.kind,
                    ExprKind::Index(..) | ExprKind::Member { .. } | ExprKind::Deref(_)
                );
                let base = self.analysis().base_addr(&inner);
                let inner = self.expr_no_deref_wrap(*inner);
                let out = rebuild(ty, ExprKind::AddrOf(Box::new(inner)));
                if needs && pos == Pos::Value {
                    return self.wrap(out, base, true);
                }
                out
            }
            // ------ pass-through forms -------------------------------------
            ExprKind::Cast(t, inner) => {
                let inner = self.expr(*inner, pos);
                rebuild(ty, ExprKind::Cast(t, Box::new(inner)))
            }
            ExprKind::Cond(c, t, f) => {
                let c = self.expr(*c, Pos::Plain);
                let t = self.expr(*t, pos);
                let f = self.expr(*f, pos);
                rebuild(ty, ExprKind::Cond(Box::new(c), Box::new(t), Box::new(f)))
            }
            ExprKind::Comma(l, r) => {
                let l = self.expr(*l, Pos::Plain);
                let r = self.expr(*r, pos);
                rebuild(ty, ExprKind::Comma(Box::new(l), Box::new(r)))
            }
            ExprKind::Call(callee, args) => {
                let callee = self.expr(*callee, Pos::Plain);
                let args = args.into_iter().map(|a| self.expr(a, Pos::Value)).collect();
                rebuild(ty, ExprKind::Call(Box::new(callee), args))
            }
            ExprKind::Unary(op, inner) => {
                let inner = self.expr(*inner, Pos::Plain);
                rebuild(ty, ExprKind::Unary(op, Box::new(inner)))
            }
            // Leaves and unevaluated operands.
            kind @ (ExprKind::Ident(_)
            | ExprKind::IntLit(_)
            | ExprKind::StrLit(_)
            | ExprKind::SizeofType(_)
            | ExprKind::SizeofExpr(_)
            | ExprKind::KeepLive { .. }
            | ExprKind::CheckSame { .. }) => {
                let out = rebuild(ty.clone(), kind);
                if pos == Pos::Value && Self::is_copy(&out) {
                    if !self.cfg.skip_copies
                        && matches!(ty.as_ref().map(Type::decayed), Some(Type::Ptr(_)))
                    {
                        // Ablation mode: wrap copies too.
                        let base = self.analysis().base(&out);
                        return self.wrap(out, base, true);
                    }
                    self.stats.skipped_copies += 1;
                    self.audit_skip(&out, "opt1_copy");
                }
                out
            }
        }
    }

    /// Annotates an lvalue path under `&` without applying the dereference
    /// wrap to the outermost member/index (the single outer wrap covers the
    /// whole address computation, per the paper's `*&(e1[e2].x)` form).
    fn expr_no_deref_wrap(&mut self, e: Expr) -> Expr {
        let span = e.span;
        let ty = e.ty.clone();
        let id = e.id;
        let rebuild = |ty: Option<cfront::Type>, kind: ExprKind| Expr { id, span, ty, kind };
        match e.kind {
            ExprKind::Index(a, i) => {
                let a = self.expr(*a, Pos::Plain);
                let i = self.expr(*i, Pos::Plain);
                rebuild(ty, ExprKind::Index(Box::new(a), Box::new(i)))
            }
            ExprKind::Member { obj, field, arrow } => {
                let obj = if arrow {
                    self.expr(*obj, Pos::Plain)
                } else {
                    self.expr_no_deref_wrap(*obj)
                };
                rebuild(
                    ty,
                    ExprKind::Member {
                        obj: Box::new(obj),
                        field,
                        arrow,
                    },
                )
            }
            ExprKind::Deref(inner) => {
                let inner = self.expr(*inner, Pos::Plain);
                rebuild(ty, ExprKind::Deref(Box::new(inner)))
            }
            _ => self.expr(e, Pos::Plain),
        }
    }

    /// Records the textual prefix for a deref-address wrap and reports
    /// whether an edit was opened.
    fn wrap_addr_edits_prefix(&mut self, start: usize) -> bool {
        let name = match self.cfg.mode {
            Mode::GcSafe => "KEEP_LIVE",
            Mode::Checked => "GC_same_obj",
        };
        self.edits.insert(start, format!("{name}(&("));
        true
    }

    /// Records the textual suffix for a deref-address wrap.
    fn wrap_addr_edits_suffix(&mut self, end: usize, wrapped: &Expr, opened: bool) {
        if !opened {
            return;
        }
        let base_text = match &wrapped.kind {
            ExprKind::KeepLive { base: Some(b), .. } | ExprKind::CheckSame { base: b, .. } => {
                expr_to_c(b, self.types)
            }
            _ => "0".to_string(),
        };
        self.edits.insert(end, format!("), {base_text}))"));
    }
}

#[cfg(test)]
mod origin_tests {
    use super::*;

    fn origins_of(src: &str, func: &str) -> HashMap<String, String> {
        let mut prog = cfront::parse(src).expect("parses");
        let sema = cfront::analyze(&mut prog).expect("sema");
        let f = prog.func(func).expect("exists");
        compute_origins(f.body.as_ref().expect("body"), &sema)
    }

    #[test]
    fn single_assignment_source_resolves() {
        let src = "void f(char *s) { char *p; char *q; p = s; q = p; while (*q++); }";
        let o = origins_of(src, "f");
        assert_eq!(o.get("p").map(String::as_str), Some("s"));
        // q's source p is itself assigned in this function, so the
        // conservative rule refuses an origin for q: if p were reassigned
        // after `q = p`, the substitution would be unsound.
        assert!(!o.contains_key("q"));
    }

    #[test]
    fn conditional_two_sources_poison() {
        let src = "void f(char *s, char *t, int c) {\n\
                     char *p;\n\
                     if (c) p = s; else p = t;\n\
                     while (*p++);\n\
                   }";
        let o = origins_of(src, "f");
        assert!(!o.contains_key("p"), "two sources: no unique origin");
    }

    #[test]
    fn address_taken_poisons() {
        let src = "void g(char **); void f(char *s) { char *p; p = s; g(&p); while (*p++); }";
        let o = origins_of(src, "f");
        assert!(!o.contains_key("p"), "&p allows indirect writes");
    }

    #[test]
    fn arithmetic_derivation_counts_as_source() {
        // p = s + 4 still has BASE s: same-object guarantee holds.
        let src = "void f(char *s) { char *p; p = s + 4; while (*p++); }";
        let o = origins_of(src, "f");
        assert_eq!(o.get("p").map(String::as_str), Some("s"));
    }

    #[test]
    fn opaque_source_poisons() {
        let src = "char *mk(void); void f(void) { char *p; p = mk(); while (*p++); }";
        let o = origins_of(src, "f");
        assert!(!o.contains_key("p"), "call results have no named origin");
    }
}
