//! The paper's inductive BASE / BASEADDR definition.
//!
//! `BASE(e)` is "the pointer variable from which the value of `e` is
//! computed, or NIL if there is no such pointer variable; that is … `e` and
//! `BASE(e)` are guaranteed to point to the same object whenever `e` points
//! to a heap object". `BASEADDR(e)` is "the possible base pointer for
//! `&e`".
//!
//! We extend the paper's two-valued answer (variable / NIL) with a third,
//! *Opaque*: the value flows from a **generating expression** (pointer
//! dereference, function call, conditional). The paper assumes temporaries
//! have been introduced so generating results always sit in named
//! variables; working directly on the tree, Opaque marks exactly those
//! places, and the annotator protects them with a base-less `KEEP_LIVE`
//! (pure opacity — the value itself stays visible), which is what the
//! temporary would have bought.

use cfront::ast::{BinOp, Expr, ExprKind};
use cfront::sema::{Resolution, SemaInfo};
use cfront::types::Type;

/// Outcome of a BASE / BASEADDR query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Base {
    /// No base pointer exists and the value provably never points into the
    /// collected heap (literals, addresses of variables, string literals,
    /// array-typed variables — all of which live in GC-roots).
    Nil,
    /// The named pointer variable is a valid base: it points into the same
    /// object whenever the expression points into the heap.
    Var(String),
    /// The value flows from a generating expression (dereference, call,
    /// conditional); no *named* base exists, but the value may well be a
    /// heap pointer.
    Opaque,
}

impl Base {
    /// The BASEADDR subscript rule: first non-NIL of the two operands.
    fn or(self, other: Base) -> Base {
        match self {
            Base::Var(_) => self,
            Base::Nil => other,
            Base::Opaque => match other {
                Base::Var(_) => other,
                _ => Base::Opaque,
            },
        }
    }
}

/// Computes BASE / BASEADDR against sema results.
#[derive(Debug, Clone, Copy)]
pub struct BaseAnalysis<'a> {
    sema: &'a SemaInfo,
}

impl<'a> BaseAnalysis<'a> {
    /// Creates an analysis bound to one sema run.
    pub fn new(sema: &'a SemaInfo) -> Self {
        BaseAnalysis { sema }
    }

    /// Whether `e` is a *possible heap pointer* variable reference: a
    /// pointer-typed local or global. Array-typed variables decay to
    /// pointers into GC-roots and are excluded, as are function names.
    fn heap_pointer_var(&self, e: &Expr) -> Option<String> {
        let ExprKind::Ident(name) = &e.kind else {
            return None;
        };
        if !matches!(e.ty.as_ref(), Some(Type::Ptr(_))) {
            return None;
        }
        match self.sema.res.get(&e.id) {
            Some(Resolution::Local(_) | Resolution::Global(_)) => Some(name.clone()),
            _ => None,
        }
    }

    /// BASE(e) per the paper's table.
    pub fn base(&self, e: &Expr) -> Base {
        match &e.kind {
            // BASE(0) = NIL; all literals and sizeofs are non-pointers.
            ExprKind::IntLit(_)
            | ExprKind::SizeofType(_)
            | ExprKind::SizeofExpr(_)
            | ExprKind::Unary(..) => Base::Nil,
            // String literals live in statically allocated memory.
            ExprKind::StrLit(_) => Base::Nil,
            // BASE(x) = x if x is a variable and possible heap pointer.
            ExprKind::Ident(_) => match self.heap_pointer_var(e) {
                Some(name) => Base::Var(name),
                None => Base::Nil,
            },
            // BASE(x = e) = x if x is a pointer variable, else BASE(e).
            ExprKind::Assign { op, lhs, rhs } => {
                if let Some(name) = self.heap_pointer_var(lhs) {
                    Base::Var(name)
                } else if op.is_some() {
                    // Compound on a non-pointer lvalue is integer arithmetic.
                    Base::Nil
                } else {
                    self.base(rhs)
                }
            }
            // BASE(e1 ++) = BASE(++ e1) = BASE(e1) (same for --).
            ExprKind::IncDec { target, .. } => self.base(target),
            // BASE(e1 + e2) = BASE(e1) where e1 is the pointer-typed one;
            // BASE(e1 - e2) = BASE(e1).
            ExprKind::Binary(op, l, r) => match op {
                BinOp::Add => {
                    let l_ptr = matches!(l.ty.as_ref().map(Type::decayed), Some(Type::Ptr(_)));
                    if l_ptr {
                        self.base(l)
                    } else {
                        self.base(r)
                    }
                }
                BinOp::Sub => self.base(l),
                _ => Base::Nil,
            },
            // BASE(e1, e2) = BASE(e2).
            ExprKind::Comma(_, r) => self.base(r),
            // BASE(&e1) = BASEADDR(e1).
            ExprKind::AddrOf(inner) => self.base_addr(inner),
            // Casts are transparent for provenance.
            ExprKind::Cast(_, inner) => self.base(inner),
            // Generating expressions: BASE is not defined; the value may be
            // a heap pointer without a named base.
            ExprKind::Deref(_)
            | ExprKind::Call(..)
            | ExprKind::Cond(..)
            | ExprKind::Index(..)
            | ExprKind::Member { .. } => Base::Opaque,
            // Already-annotated values are opaque and visible by
            // construction: re-protecting them is never needed.
            ExprKind::KeepLive { .. } | ExprKind::CheckSame { .. } => Base::Opaque,
        }
    }

    /// BASEADDR(e) per the paper's table.
    pub fn base_addr(&self, e: &Expr) -> Base {
        match &e.kind {
            // BASEADDR(x) = NIL if x is a variable: its address is a root.
            ExprKind::Ident(_) => Base::Nil,
            // BASEADDR(e1[e2]) = BASE(e1), or BASE(e2) if that is NIL.
            ExprKind::Index(a, i) => self.base(a).or(self.base(i)),
            // BASEADDR(e1 -> x) = BASE(e1).
            ExprKind::Member {
                obj, arrow: true, ..
            } => self.base(obj),
            // `.` on an lvalue shares the lvalue's base address.
            ExprKind::Member {
                obj, arrow: false, ..
            } => self.base_addr(obj),
            // &*e ≡ e, so BASEADDR(*e) = BASE(e).
            ExprKind::Deref(inner) => self.base(inner),
            ExprKind::Cast(_, inner) => self.base_addr(inner),
            // Everything else is not an lvalue; & may not be applied.
            _ => Base::Nil,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfront::{analyze, parse};

    /// Parses a function whose last statement is `sink = <expr>;` and
    /// returns BASE of that expression.
    fn base_of(body: &str) -> Base {
        let src = format!("char *sink;\nvoid f(char *p, char *q, long i) {{ {body} }}");
        let mut prog = parse(&src).unwrap();
        let sema = analyze(&mut prog).unwrap();
        let f = prog.func("f").unwrap();
        let block = f.body.as_ref().unwrap();
        let last = block.stmts.last().unwrap();
        let cfront::ast::Stmt::Expr(e) = last else {
            panic!("want expr stmt")
        };
        let cfront::ast::ExprKind::Assign { rhs, .. } = &e.kind else {
            panic!("want assignment")
        };
        BaseAnalysis::new(&sema).base(rhs)
    }

    #[test]
    fn base_of_zero_is_nil() {
        assert_eq!(base_of("sink = 0;"), Base::Nil);
    }

    #[test]
    fn base_of_pointer_var_is_itself() {
        assert_eq!(base_of("sink = p;"), Base::Var("p".into()));
    }

    #[test]
    fn base_of_pointer_plus_int() {
        assert_eq!(base_of("sink = p + i;"), Base::Var("p".into()));
        assert_eq!(base_of("sink = i + p;"), Base::Var("p".into()));
        assert_eq!(base_of("sink = p - i;"), Base::Var("p".into()));
    }

    #[test]
    fn base_of_assignment_chain() {
        assert_eq!(base_of("sink = (q = p + 4);"), Base::Var("q".into()));
    }

    #[test]
    fn base_of_incdec() {
        assert_eq!(base_of("sink = p++;"), Base::Var("p".into()));
        assert_eq!(base_of("sink = --q;"), Base::Var("q".into()));
    }

    #[test]
    fn base_of_comma_is_rhs() {
        assert_eq!(base_of("sink = (p, q);"), Base::Var("q".into()));
    }

    #[test]
    fn base_of_addr_of_subscript() {
        assert_eq!(base_of("sink = &p[i];"), Base::Var("p".into()));
    }

    #[test]
    fn base_addr_of_local_array_is_nil() {
        assert_eq!(base_of("char buf[16]; sink = &buf[i];"), Base::Nil);
        assert_eq!(base_of("char buf[16]; sink = buf + i;"), Base::Nil);
    }

    #[test]
    fn base_of_deref_is_opaque() {
        assert_eq!(base_of("char **pp; pp = 0; sink = *pp;"), Base::Opaque);
    }

    #[test]
    fn base_of_call_is_opaque() {
        assert_eq!(base_of("sink = (char *) malloc(8);"), Base::Opaque);
    }

    #[test]
    fn base_of_cast_is_transparent() {
        assert_eq!(base_of("sink = (char *)(p + 2);"), Base::Var("p".into()));
    }

    #[test]
    fn base_of_addr_of_arrow_field() {
        let src = "struct s { long a; char c[4]; };\n\
                   char *sink;\n\
                   void f(struct s *sp) { sink = (char *)&sp->a; }";
        let mut prog = parse(src).unwrap();
        let sema = analyze(&mut prog).unwrap();
        let f = prog.func("f").unwrap();
        let cfront::ast::Stmt::Expr(e) = f.body.as_ref().unwrap().stmts.last().unwrap() else {
            panic!()
        };
        let cfront::ast::ExprKind::Assign { rhs, .. } = &e.kind else {
            panic!()
        };
        assert_eq!(BaseAnalysis::new(&sema).base(rhs), Base::Var("sp".into()));
    }

    #[test]
    fn base_of_string_literal_is_nil() {
        assert_eq!(base_of("sink = \"abc\";"), Base::Nil);
    }
}
