//! # gcsafe — the paper's contribution
//!
//! Implements the annotation system of Hans-J. Boehm, *Simple
//! Garbage-Collector-Safety*, PLDI 1996:
//!
//! * [`base`] — the inductive BASE / BASEADDR definition;
//! * [`annotate`] — the algorithm that wraps pointer-valued expressions in
//!   `KEEP_LIVE(e, BASE(e))` (GC-safe mode) or `GC_same_obj(e, BASE(e))`
//!   (pointer-arithmetic-checking mode), with the paper's optimizations
//!   1–4 individually switchable.
//!
//! The same insertion points serve both purposes — that is the paper's
//! central claim, and it is visible in the code: [`annotate::Config::mode`]
//! is the only difference between the two pipelines.
//!
//! ## Example
//!
//! ```
//! use gcsafe::Config;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let src = "char g(char *p, long i) { return p[i - 1000]; }";
//! let annotated = gcsafe::annotate_program(src, &Config::gc_safe())?;
//! // The subscript address is now pinned to its base pointer:
//! assert!(annotated.annotated_source.contains("KEEP_LIVE(&(p[i - 1000]), p)"));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod annotate;
pub mod base;

pub use annotate::{annotate, annotate_traced, AnnotResult, AnnotStats, Config, Mode};
pub use base::{Base, BaseAnalysis};
pub use gctrace::TraceHandle;

use cfront::sema::SemaInfo;
use cfront::{FrontError, Program};
use std::sync::{Arc, OnceLock};

/// A fully annotated, re-type-checked program plus annotation metadata.
#[derive(Debug, Clone)]
pub struct Annotated {
    /// The transformed program (types refreshed).
    pub program: Program,
    /// Sema results for the transformed program.
    pub sema: SemaInfo,
    /// What the annotator did.
    pub result: AnnotResult,
    /// The annotated source text, produced by applying the edit list to the
    /// original source (the paper's preprocessor output).
    pub annotated_source: String,
}

/// One-call pipeline: parse → sema → annotate → re-sema → apply edits.
///
/// # Errors
///
/// Returns parse/sema errors from either sema run, or an edit-application
/// failure (which would indicate an annotator bug).
pub fn annotate_program(source: &str, config: &Config) -> Result<Annotated, FrontError> {
    annotate_program_traced(source, config, &TraceHandle::disabled())
}

/// [`annotate_program`] with an audit-event stream (see
/// [`annotate::annotate_traced`]).
///
/// # Errors
///
/// Same failure modes as [`annotate_program`].
pub fn annotate_program_traced(
    source: &str,
    config: &Config,
    trace: &TraceHandle,
) -> Result<Annotated, FrontError> {
    let program = cfront::parse(source)?;
    annotate_parsed_traced(program, source, config, trace)
}

/// One memoized annotation artifact: everything [`annotate_program`]
/// produces, plus the exact source text it was produced from and — when
/// the producing run was traced — the audit-event stream.
///
/// The edit list and `annotated_source` are *positional* (character
/// offsets into the source), so entries are only reusable for the exact
/// text that produced them; the structural hash in the key merely makes a
/// reformatted program replace its stale entry instead of piling up.
struct AnnotEntry {
    annotated: Annotated,
    src_fp: u64,
    events: Option<Vec<gctrace::Event>>,
}

fn annotate_cache() -> &'static gccache::Cache<(u64, Config), Arc<AnnotEntry>> {
    static CACHE: OnceLock<gccache::Cache<(u64, Config), Arc<AnnotEntry>>> = OnceLock::new();
    CACHE.get_or_init(|| gccache::Cache::new("annotate", 512))
}

/// Counters of the annotation-stage memoization cache.
pub fn annotate_cache_stats() -> gccache::StageStats {
    annotate_cache().stats()
}

/// Drops every memoized annotation artifact (counters are cumulative).
pub fn annotate_cache_clear() {
    annotate_cache().clear();
}

/// [`annotate_program_traced`] for an already-parsed program, memoized.
///
/// `source` must be the text `program` was parsed from: the returned edit
/// list and `annotated_source` are positional. Cache hits replay the
/// original run's audit events into `trace`, byte-identically; a traced
/// request never accepts an entry whose events were not captured (an
/// untraced producer), so a traced warm run is indistinguishable from a
/// cold one.
///
/// # Errors
///
/// Same failure modes as [`annotate_program`].
pub fn annotate_parsed_traced(
    mut program: Program,
    source: &str,
    config: &Config,
    trace: &TraceHandle,
) -> Result<Annotated, FrontError> {
    let key = (cfront::program_hash(&program), config.clone());
    let src_fp = gccache::fingerprint(source.as_bytes());
    let traced = trace.is_enabled();
    if let Some(entry) = annotate_cache().get_if(&key, |e| {
        e.src_fp == src_fp && (!traced || e.events.is_some())
    }) {
        if let Some(events) = &entry.events {
            for ev in events {
                trace.emit(|| ev.clone());
            }
        }
        return Ok(entry.annotated.clone());
    }
    let capture = trace
        .sink()
        .map(|inner| Arc::new(gctrace::CaptureSink::new(inner)));
    let work_trace = match &capture {
        Some(c) => TraceHandle::new(c.clone()),
        None => TraceHandle::disabled(),
    };
    let sema = cfront::analyze(&mut program)?;
    let result = annotate_traced(&mut program, &sema, config, &work_trace);
    let sema = cfront::analyze(&mut program)?;
    let annotated_source = result.edits.apply(source).map_err(|e| {
        FrontError::new(
            cfront::error::Phase::Sema,
            format!("edit application: {e}"),
            cfront::Span::point(0),
        )
    })?;
    let annotated = Annotated {
        program,
        sema,
        result,
        annotated_source,
    };
    annotate_cache().insert(
        key,
        Arc::new(AnnotEntry {
            annotated: annotated.clone(),
            src_fp,
            events: capture.map(|c| c.take()),
        }),
    );
    Ok(annotated)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfront::ast::visit_exprs;
    use cfront::ast::{ExprKind, Stmt};

    fn count_wraps(prog: &Program) -> (usize, usize) {
        let mut keep = 0;
        let mut check = 0;
        for f in prog.definitions() {
            let b = Stmt::Block(f.body.clone().expect("definition"));
            visit_exprs(&b, &mut |e| match e.kind {
                ExprKind::KeepLive { .. } => keep += 1,
                ExprKind::CheckSame { .. } => check += 1,
                _ => {}
            });
        }
        (keep, check)
    }

    #[test]
    fn headline_example_gets_annotated() {
        // The paper's opening example: a final reference p[i-1000].
        let src = "char f(char *p, long i) { return p[i - 1000]; }";
        let out = annotate_program(src, &Config::gc_safe()).unwrap();
        let (keep, check) = count_wraps(&out.program);
        assert_eq!(keep, 1);
        assert_eq!(check, 0);
        assert!(out
            .annotated_source
            .contains("KEEP_LIVE(&(p[i - 1000]), p)"));
    }

    #[test]
    fn checked_mode_uses_same_points() {
        let src = "char f(char *p, long i) { return p[i - 1000]; }";
        let safe = annotate_program(src, &Config::gc_safe()).unwrap();
        let checked = annotate_program(src, &Config::checked()).unwrap();
        let (k, c) = count_wraps(&safe.program);
        let (k2, c2) = count_wraps(&checked.program);
        assert_eq!(k + c, k2 + c2, "both modes annotate the same points");
        assert!(c2 > 0);
        assert!(checked.annotated_source.contains("GC_same_obj"));
    }

    #[test]
    fn plain_copy_is_not_wrapped() {
        let src = "char *f(char *p) { char *q; q = p; return q; }";
        let out = annotate_program(src, &Config::gc_safe()).unwrap();
        let (keep, _) = count_wraps(&out.program);
        assert_eq!(keep, 0, "p = q must not become KEEP_LIVE(q, q)");
        assert!(out.result.stats.skipped_copies > 0);
    }

    #[test]
    fn copies_wrapped_when_optimization_disabled() {
        let src = "char *f(char *p) { char *q; q = p; return q; }";
        let cfg = Config {
            skip_copies: false,
            ..Config::gc_safe()
        };
        let out = annotate_program(src, &cfg).unwrap();
        let (keep, _) = count_wraps(&out.program);
        assert!(keep >= 2, "ablation: copies get wrapped, got {keep}");
    }

    #[test]
    fn stored_pointer_arithmetic_is_wrapped() {
        let src = "char *f(char *p) { char *q; q = p + 4; return q; }";
        let out = annotate_program(src, &Config::gc_safe()).unwrap();
        assert!(out.annotated_source.contains("KEEP_LIVE(p + 4, p)"));
    }

    #[test]
    fn compound_assign_rewritten() {
        let src = "void f(char *p) { p += 10; }";
        let out = annotate_program(src, &Config::gc_safe()).unwrap();
        assert!(
            out.annotated_source.contains("p = KEEP_LIVE(p + 10, p)"),
            "got: {}",
            out.annotated_source
        );
    }

    #[test]
    fn incdec_wrapped_in_safe_mode() {
        let src = "void f(char *p) { while (*p++); }";
        let out = annotate_program(src, &Config::gc_safe()).unwrap();
        let (keep, _) = count_wraps(&out.program);
        assert_eq!(keep, 1);
        assert!(out.result.stats.incdec_specials == 1);
    }

    #[test]
    fn incdec_becomes_runtime_call_in_checked_mode() {
        let src = "void f(char *p) { ++p; }";
        let out = annotate_program(src, &Config::checked()).unwrap();
        assert!(
            out.annotated_source.contains("GC_pre_incr(&p, 1)"),
            "got: {}",
            out.annotated_source
        );
        // The rewrite forces p's address to be taken → memory home.
        let fi = &out.sema.funcs["f"];
        assert!(fi.vars.iter().any(|v| v.name == "p" && v.addr_taken));
    }

    #[test]
    fn post_incr_scales_by_element_size() {
        let src = "void f(long *p) { p++; }";
        let out = annotate_program(src, &Config::checked()).unwrap();
        assert!(
            out.annotated_source.contains("GC_post_incr(&p, 8)"),
            "got: {}",
            out.annotated_source
        );
    }

    #[test]
    fn local_arrays_are_not_annotated() {
        let src = "int f(long i) { char buf[32]; buf[i] = 1; return buf[i]; }";
        let out = annotate_program(src, &Config::gc_safe()).unwrap();
        let (keep, check) = count_wraps(&out.program);
        assert_eq!((keep, check), (0, 0), "stack memory needs no protection");
    }

    #[test]
    fn struct_field_access_through_pointer_is_wrapped() {
        let src = "struct node { int v; struct node *next; };\n\
                   int f(struct node *n) { return n->v; }";
        let out = annotate_program(src, &Config::gc_safe()).unwrap();
        assert!(
            out.annotated_source.contains("KEEP_LIVE(&(n->v), n)"),
            "got: {}",
            out.annotated_source
        );
    }

    #[test]
    fn call_site_only_drops_deref_wraps_keeps_stores() {
        let src = "char *f(char *p, long i) { char *q; q = p + i; return p[i]; }";
        let full = annotate_program(src, &Config::gc_safe()).unwrap();
        let cfg = Config {
            call_sites_only: true,
            ..Config::gc_safe()
        };
        let reduced = annotate_program(src, &cfg).unwrap();
        let (kf, _) = count_wraps(&full.program);
        let (kr, _) = count_wraps(&reduced.program);
        assert!(
            kr < kf,
            "call-site-only must reduce wrap count ({kr} vs {kf})"
        );
        assert!(kr >= 1, "the stored value q = p + i is still wrapped");
        assert!(reduced.result.stats.skipped_deref_wraps > 0);
    }

    #[test]
    fn base_heuristic_uses_slow_base() {
        // The paper's canonical string-copy loop: bases p, q should be
        // replaced by the loop-invariant s, t.
        let src = "void copy(char *s, char *t) {\n\
                     char *p; char *q;\n\
                     p = s; q = t;\n\
                     while (*p++ = *q++);\n\
                   }";
        let cfg = Config {
            base_heuristic: true,
            ..Config::gc_safe()
        };
        let out = annotate_program(src, &cfg).unwrap();
        assert!(
            out.result.stats.base_heuristic_hits >= 2,
            "stats: {:?}",
            out.result.stats
        );
        let printed = cfront::pretty::program_to_c(&out.program);
        assert!(printed.contains(", s)"), "base replaced by s in: {printed}");
        assert!(printed.contains(", t)"), "base replaced by t in: {printed}");
    }

    #[test]
    fn base_heuristic_respects_reassigned_sources() {
        // s is reassigned, so p's base must stay p.
        let src = "void f(char *s) { char *p; p = s; s = 0; while (*p++); }";
        let cfg = Config {
            base_heuristic: true,
            ..Config::gc_safe()
        };
        let out = annotate_program(src, &cfg).unwrap();
        assert_eq!(out.result.stats.base_heuristic_hits, 0);
    }

    #[test]
    fn function_argument_arithmetic_is_wrapped() {
        let src = "void g(char *); void f(char *p) { g(p + 1); }";
        let out = annotate_program(src, &Config::gc_safe()).unwrap();
        assert!(out.annotated_source.contains("g(KEEP_LIVE(p + 1, p))"));
    }

    #[test]
    fn returned_arithmetic_is_wrapped() {
        let src = "char *f(char *p) { return p + 8; }";
        let out = annotate_program(src, &Config::gc_safe()).unwrap();
        assert!(out.annotated_source.contains("return KEEP_LIVE(p + 8, p);"));
    }

    #[test]
    fn annotated_source_is_balanced() {
        let src = "struct s { char buf[8]; struct s *link; };\n\
                   char f(struct s *x, long i) { return x->link->buf[i]; }";
        let out = annotate_program(src, &Config::gc_safe()).unwrap();
        let opens = out.annotated_source.matches('(').count();
        let closes = out.annotated_source.matches(')').count();
        assert_eq!(opens, closes, "unbalanced: {}", out.annotated_source);
    }

    #[test]
    fn audit_events_mirror_the_stats() {
        let src = "struct nd { long v; struct nd *next; };\n\
                   long f(struct nd *n, char *p, long i) {\n\
                     char *q; q = p + i;\n\
                     while (*q++);\n\
                     return n->next->v + p[i];\n\
                   }";
        for config in [Config::gc_safe(), Config::checked()] {
            let (trace, sink) = TraceHandle::memory();
            let out = annotate_program_traced(src, &config, &trace).unwrap();
            let evs = sink.snapshot();
            let count = |kind: &str| evs.iter().filter(|e| e.kind == kind).count();
            let stats = out.result.stats;
            assert_eq!(count("wrap"), stats.keep_lives + stats.checks, "{config:?}");
            assert_eq!(count("incdec"), stats.incdec_specials, "{config:?}");
            assert_eq!(
                evs.iter()
                    .filter(|e| {
                        e.kind == "skip"
                            && e.get("reason")
                                .map(|v| v == &gctrace::Value::Str("opt1_copy".into()))
                                == Some(true)
                    })
                    .count(),
                stats.skipped_copies,
                "{config:?}"
            );
            // One summary per defined function.
            assert_eq!(count("summary"), 1);
            assert!(evs.iter().all(|e| e.stage == "annotate"));
        }
    }

    #[test]
    fn untraced_annotation_matches_traced() {
        let src = "char *f(char *p, long i) { return p + i; }";
        let plain = annotate_program(src, &Config::gc_safe()).unwrap();
        let (trace, _sink) = TraceHandle::memory();
        let traced = annotate_program_traced(src, &Config::gc_safe(), &trace).unwrap();
        assert_eq!(plain.annotated_source, traced.annotated_source);
        assert_eq!(plain.result.stats, traced.result.stats);
    }

    #[test]
    fn annotation_is_stable_under_reannotation() {
        // Annotating an already annotated tree must not add more wraps
        // (KEEP_LIVE results are opaque copies).
        let src = "char *f(char *p) { return p + 8; }";
        let out = annotate_program(src, &Config::gc_safe()).unwrap();
        let mut prog = out.program.clone();
        let sema = cfront::analyze(&mut prog).unwrap();
        let second = annotate(&mut prog, &sema, &Config::gc_safe());
        assert_eq!(second.stats.keep_lives, 0, "no new wraps on second pass");
    }
}
