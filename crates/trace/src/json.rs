//! Hand-rolled JSON: a flat-object writer and a small recursive-descent
//! parser. The workspace deliberately carries no external dependencies,
//! so this module is what `Event::to_json`, the stats structs in
//! `gcheap` / `asmpost`, and the `gcbench` trace report all share.
//!
//! The writer emits objects with fields in insertion order. The parser
//! accepts the full JSON value grammar (objects, arrays, strings,
//! numbers, booleans, null) — enough to read back anything the writer
//! or the JSONL sink produced.

use std::collections::BTreeMap;

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

/// Incremental single-object writer: `{"k":v,...}` in call order.
#[derive(Debug, Default)]
pub struct Writer {
    buf: String,
}

impl Writer {
    /// Starts an empty object.
    pub fn new() -> Self {
        Writer {
            buf: String::from("{"),
        }
    }

    fn key(&mut self, k: &str) {
        if self.buf.len() > 1 {
            self.buf.push(',');
        }
        self.buf.push('"');
        escape_into(k, &mut self.buf);
        self.buf.push_str("\":");
    }

    /// Appends a string field.
    pub fn str_field(&mut self, k: &str, v: &str) {
        self.key(k);
        self.buf.push('"');
        escape_into(v, &mut self.buf);
        self.buf.push('"');
    }

    /// Appends a signed integer field.
    pub fn int_field(&mut self, k: &str, v: i64) {
        self.key(k);
        self.buf.push_str(&v.to_string());
    }

    /// Appends an unsigned integer field.
    pub fn uint_field(&mut self, k: &str, v: u64) {
        self.key(k);
        self.buf.push_str(&v.to_string());
    }

    /// Appends a float field (finite values only; callers hold that).
    pub fn float_field(&mut self, k: &str, v: f64) {
        self.key(k);
        self.buf.push_str(&format_float(v));
    }

    /// Appends a boolean field.
    pub fn bool_field(&mut self, k: &str, v: bool) {
        self.key(k);
        self.buf.push_str(if v { "true" } else { "false" });
    }

    /// Appends a field whose value is already-serialized JSON.
    pub fn raw_field(&mut self, k: &str, json: &str) {
        self.key(k);
        self.buf.push_str(json);
    }

    /// Closes the object and returns the text.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

fn format_float(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        // Keep a decimal point so the value round-trips as a float.
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number; parsed as f64 (integers up to 2^53 are exact,
    /// larger trace counters never occur in practice).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object (key order not preserved).
    Obj(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an f64, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a u64, if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.trunc() == *n => Some(*n as u64),
            _ => None,
        }
    }

    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(m) => m.get(key),
            _ => None,
        }
    }
}

/// Parses a complete JSON value; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<JsonValue, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(v)
}

/// Parses one JSON object into its member map (the JSONL-line shape).
pub fn parse_object(text: &str) -> Result<BTreeMap<String, JsonValue>, String> {
    match parse(text)? {
        JsonValue::Obj(m) => Ok(m),
        other => Err(format!("expected object, got {other:?}")),
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(JsonValue::Obj(map));
            }
            loop {
                skip_ws(b, pos);
                let key = match parse_value(b, pos)? {
                    JsonValue::Str(s) => s,
                    other => return Err(format!("object key must be a string, got {other:?}")),
                };
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}", pos = *pos));
                }
                *pos += 1;
                let val = parse_value(b, pos)?;
                map.insert(key, val);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(JsonValue::Obj(map));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut arr = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(JsonValue::Arr(arr));
            }
            loop {
                arr.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(JsonValue::Arr(arr));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'"') => parse_string(b, pos).map(JsonValue::Str),
        Some(b't') => expect_lit(b, pos, "true").map(|_| JsonValue::Bool(true)),
        Some(b'f') => expect_lit(b, pos, "false").map(|_| JsonValue::Bool(false)),
        Some(b'n') => expect_lit(b, pos, "null").map(|_| JsonValue::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn expect_lit(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let code = parse_hex4(b, *pos + 1)?;
                        *pos += 4;
                        if (0xD800..=0xDBFF).contains(&code) {
                            // High surrogate: valid external JSONL encodes
                            // astral characters as a \uXXXX\uXXXX pair.
                            // Combine it with the following low surrogate;
                            // a lone surrogate degrades to U+FFFD.
                            if b.get(*pos + 1..*pos + 3) == Some(b"\\u") {
                                let lo = parse_hex4(b, *pos + 3)?;
                                if (0xDC00..=0xDFFF).contains(&lo) {
                                    let combined =
                                        0x10000 + ((code - 0xD800) << 10) + (lo - 0xDC00);
                                    out.push(char::from_u32(combined).unwrap_or('\u{fffd}'));
                                    *pos += 6;
                                } else {
                                    // \uXXXX follows but is not a low
                                    // surrogate: the high one is lone; the
                                    // second escape is decoded on its own.
                                    out.push('\u{fffd}');
                                }
                            } else {
                                out.push('\u{fffd}');
                            }
                        } else {
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                    }
                    _ => return Err("bad escape".into()),
                }
                *pos += 1;
            }
            Some(_) => {
                // Advance one full UTF-8 scalar.
                let s = std::str::from_utf8(&b[*pos..]).map_err(|_| "invalid utf-8")?;
                let c = s.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_hex4(b: &[u8], at: usize) -> Result<u32, String> {
    let hex = b.get(at..at + 4).ok_or("truncated \\u escape")?;
    u32::from_str_radix(std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?, 16)
        .map_err(|_| "bad \\u escape".to_string())
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|_| "invalid number")?;
    text.parse::<f64>()
        .map(JsonValue::Num)
        .map_err(|_| format!("invalid number {text:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_and_parser_round_trip() {
        let mut w = Writer::new();
        w.str_field("name", "gawk");
        w.int_field("delta", -3);
        w.uint_field("bytes", 18_446_744_073_709_551_615 / 1024);
        w.bool_field("checked", true);
        w.float_field("ratio", 1.31);
        let text = w.finish();
        let m = parse_object(&text).expect("round trips");
        assert_eq!(m["name"].as_str(), Some("gawk"));
        assert_eq!(m["delta"].as_f64(), Some(-3.0));
        assert_eq!(m["checked"], JsonValue::Bool(true));
        assert!((m["ratio"].as_f64().unwrap() - 1.31).abs() < 1e-12);
    }

    #[test]
    fn parser_handles_nesting_and_escapes() {
        let v = parse(r#"{"a":[1,2,{"b":"x\n\"y\""}],"c":null,"d":false}"#).expect("parses");
        assert_eq!(v.get("c"), Some(&JsonValue::Null));
        match v.get("a") {
            Some(JsonValue::Arr(items)) => {
                assert_eq!(items[0].as_u64(), Some(1));
                assert_eq!(
                    items[2].get("b").and_then(JsonValue::as_str),
                    Some("x\n\"y\"")
                );
            }
            other => panic!("expected array, got {other:?}"),
        }
    }

    #[test]
    fn surrogate_pairs_combine_into_real_code_points() {
        // U+1F600 as the \uD83D\uDE00 pair, the encoding external JSONL
        // producers use for astral characters.
        let v = parse(r#"{"s":"\uD83D\uDE00"}"#).expect("parses");
        assert_eq!(v.get("s").and_then(JsonValue::as_str), Some("\u{1F600}"));
        // A pair embedded in surrounding text.
        let v = parse(r#"{"s":"a\uD83D\uDE00b"}"#).expect("parses");
        assert_eq!(v.get("s").and_then(JsonValue::as_str), Some("a\u{1F600}b"));
        // Lower-case hex digits work too.
        let v = parse(r#"{"s":"\ud83d\ude00"}"#).expect("parses");
        assert_eq!(v.get("s").and_then(JsonValue::as_str), Some("\u{1F600}"));
    }

    #[test]
    fn lone_surrogates_degrade_to_replacement_chars() {
        // Unpaired high surrogate before a plain character.
        let v = parse(r#"{"s":"\uD83Dx"}"#).expect("parses");
        assert_eq!(v.get("s").and_then(JsonValue::as_str), Some("\u{fffd}x"));
        // Unpaired low surrogate.
        let v = parse(r#"{"s":"\uDE00"}"#).expect("parses");
        assert_eq!(v.get("s").and_then(JsonValue::as_str), Some("\u{fffd}"));
        // High surrogate followed by a non-surrogate escape: the second
        // escape survives on its own.
        let v = parse(r#"{"s":"\uD83D\u0041"}"#).expect("parses");
        assert_eq!(v.get("s").and_then(JsonValue::as_str), Some("\u{fffd}A"));
        // High surrogate at end of string.
        let v = parse(r#"{"s":"\uD800"}"#).expect("parses");
        assert_eq!(v.get("s").and_then(JsonValue::as_str), Some("\u{fffd}"));
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} extra").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn empty_object_and_array() {
        assert_eq!(parse("{}").unwrap(), JsonValue::Obj(BTreeMap::new()));
        assert_eq!(parse("[]").unwrap(), JsonValue::Arr(vec![]));
    }
}
