//! # gctrace — structured events for the gc-safety pipeline
//!
//! Every stage of the pipeline (annotator, optimizer, collector, VM,
//! postprocessor) can emit typed [`Event`]s through a shared
//! [`TraceHandle`]. The handle is a thin `Option<Arc<dyn Sink>>`:
//!
//! * **Disabled** (the default, [`TraceHandle::disabled`]): `emit` takes a
//!   closure and never calls it — no timestamps are read, no strings are
//!   built, no allocation happens. The only cost is one branch on an
//!   `Option`, so instrumented hot paths stay at their uninstrumented
//!   speed.
//! * **Enabled**: the closure builds the event once and the sink decides
//!   what to do with it — buffer it ([`MemorySink`]), or serialize it as
//!   one JSON object per line ([`JsonlSink`]).
//!
//! Events are deliberately flat: a `stage` (which crate emitted it), a
//! `kind` (what happened), and a list of `(&'static str, Value)` fields.
//! Flat events keep the emitting side allocation-light and make the
//! JSON-Lines export trivially greppable.
//!
//! The [`json`] module carries the hand-rolled writer/parser used both
//! here and by the stats structs in `gcheap` / `asmpost` — the workspace
//! has no serde, by design.

#![warn(missing_docs)]

use std::fmt;
use std::io::Write;
use std::sync::{Arc, Mutex};

pub mod json;

// ---------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------

/// A single typed field value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Borrowed or owned text (rule names, pass names, snippets).
    Str(String),
    /// Signed counter / offset.
    Int(i64),
    /// Unsigned counter (sizes, addresses, nanoseconds).
    UInt(u64),
    /// Flag.
    Bool(bool),
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::UInt(v)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::UInt(v as u64)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::UInt(v as u64)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

/// One structured event: which stage, what happened, and typed fields.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Emitting pipeline stage: `"annotate"`, `"opt"`, `"gc"`, `"vm"`,
    /// `"peephole"`, `"bench"`, `"prof"`, …
    pub stage: &'static str,
    /// Event kind within the stage: `"wrap"`, `"pass"`, `"collection"`, …
    pub kind: &'static str,
    /// Flat key/value payload, in emission order.
    pub fields: Vec<(&'static str, Value)>,
}

impl Event {
    /// Starts an event for `stage` / `kind` with no fields yet.
    pub fn new(stage: &'static str, kind: &'static str) -> Self {
        Event {
            stage,
            kind,
            fields: Vec::new(),
        }
    }

    /// Builder-style field append.
    pub fn field(mut self, key: &'static str, value: impl Into<Value>) -> Self {
        self.fields.push((key, value.into()));
        self
    }

    /// Starts a `("prof", "histogram")` event — the standard shape a
    /// histogram crosses the trace boundary in: a `name`, the sample
    /// `count` and `sum`, and the sparse `"index:count ..."` bucket
    /// encoding (see `gcprof::encode_buckets`). Only *deterministic*
    /// histograms should travel as events: traces are compared
    /// byte-for-byte across worker counts, so wall-clock series belong in
    /// gcprof exports, never here.
    pub fn histogram(name: &'static str, count: u64, sum: u64, buckets: String) -> Self {
        Event::new("prof", "histogram")
            .field("name", name)
            .field("count", count)
            .field("sum", sum)
            .field("buckets", buckets)
    }

    /// Looks a field up by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }

    /// Serializes the event as a single JSON object (one JSONL line,
    /// without the trailing newline).
    pub fn to_json(&self) -> String {
        let mut w = json::Writer::new();
        w.str_field("stage", self.stage);
        w.str_field("kind", self.kind);
        for (k, v) in &self.fields {
            match v {
                Value::Str(s) => w.str_field(k, s),
                Value::Int(i) => w.int_field(k, *i),
                Value::UInt(u) => w.uint_field(k, *u),
                Value::Bool(b) => w.bool_field(k, *b),
            }
        }
        w.finish()
    }
}

// ---------------------------------------------------------------------
// Sinks
// ---------------------------------------------------------------------

/// Where events go. Implementations must be thread-safe: the VM and the
/// collector share one handle.
pub trait Sink: Send + Sync {
    /// Receives one event.
    fn emit(&self, event: Event);
}

/// Buffers events in memory; the test- and report-side sink.
#[derive(Default)]
pub struct MemorySink {
    events: Mutex<Vec<Event>>,
}

impl MemorySink {
    /// A fresh, empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes a snapshot of everything emitted so far.
    pub fn snapshot(&self) -> Vec<Event> {
        self.events.lock().expect("sink lock").clone()
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.lock().expect("sink lock").len()
    }

    /// True when nothing has been emitted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Sink for MemorySink {
    fn emit(&self, event: Event) {
        self.events.lock().expect("sink lock").push(event);
    }
}

/// A tee: forwards every event to an inner sink unchanged while keeping a
/// copy. The compilation cache wraps a compile's trace with one of these
/// so the event stream can be stored next to the artifact and replayed —
/// byte-identically — on later cache hits.
pub struct CaptureSink {
    inner: Arc<dyn Sink>,
    events: Mutex<Vec<Event>>,
}

impl CaptureSink {
    /// A capture tee in front of `inner`.
    pub fn new(inner: Arc<dyn Sink>) -> Self {
        CaptureSink {
            inner,
            events: Mutex::new(Vec::new()),
        }
    }

    /// Takes the captured events, leaving the buffer empty.
    pub fn take(&self) -> Vec<Event> {
        std::mem::take(&mut *self.events.lock().expect("sink lock"))
    }
}

impl Sink for CaptureSink {
    fn emit(&self, event: Event) {
        self.events.lock().expect("sink lock").push(event.clone());
        self.inner.emit(event);
    }
}

/// A buffering sink for one task of a fan-out, tagged with the
/// coordinates that [`merge_tagged`] sorts by.
///
/// The parallel measurement driver gives every (workload, mode) cell its
/// own `TaggedSink`; once all cells have finished, the buffered streams
/// are replayed into the user's real sink in ascending
/// `(primary, secondary, seq)` order, where `seq` is simply each event's
/// position within its own buffer. The tag lives on the *sink*, not on
/// the events, so the replayed stream is byte-identical to what a serial
/// run would have emitted.
pub struct TaggedSink {
    tag: (u64, u64),
    events: Mutex<Vec<Event>>,
}

impl TaggedSink {
    /// A fresh buffer tagged `(primary, secondary)` — for the measurement
    /// matrix, `(workload index, mode index)`.
    pub fn new(primary: u64, secondary: u64) -> Self {
        TaggedSink {
            tag: (primary, secondary),
            events: Mutex::new(Vec::new()),
        }
    }

    /// The merge coordinates this sink was created with.
    pub fn tag(&self) -> (u64, u64) {
        self.tag
    }

    /// Removes and returns everything buffered so far, in emission order.
    pub fn take(&self) -> Vec<Event> {
        std::mem::take(&mut *self.events.lock().expect("sink lock"))
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.lock().expect("sink lock").len()
    }

    /// True when nothing has been emitted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Sink for TaggedSink {
    fn emit(&self, event: Event) {
        self.events.lock().expect("sink lock").push(event);
    }
}

/// Drains a set of [`TaggedSink`]s into `out` in deterministic
/// `(primary, secondary, seq)` order, regardless of the order the
/// buffers were filled in. Within one sink, emission order is preserved.
///
/// Sinks sharing a tag are replayed in the order given.
pub fn merge_tagged(streams: &[Arc<TaggedSink>], out: &TraceHandle) {
    let mut ordered: Vec<&Arc<TaggedSink>> = streams.iter().collect();
    ordered.sort_by_key(|s| s.tag());
    for sink in ordered {
        for event in sink.take() {
            out.emit(|| event.clone());
        }
    }
}

/// Writes each event as one JSON object per line to any `Write`.
pub struct JsonlSink {
    out: Mutex<Box<dyn Write + Send>>,
}

impl JsonlSink {
    /// Wraps a writer (file, stdout, `Vec<u8>`, …).
    pub fn new(out: Box<dyn Write + Send>) -> Self {
        JsonlSink {
            out: Mutex::new(out),
        }
    }
}

impl Sink for JsonlSink {
    fn emit(&self, event: Event) {
        let mut line = event.to_json();
        line.push('\n');
        let mut out = self.out.lock().expect("sink lock");
        // A full disk mid-trace must not take the measured program down.
        let _ = out.write_all(line.as_bytes());
    }
}

// ---------------------------------------------------------------------
// Handle
// ---------------------------------------------------------------------

/// The handle every pipeline stage holds. Cloning is cheap (an `Arc`
/// bump or a `None` copy); the disabled handle does literally nothing.
#[derive(Clone, Default)]
pub struct TraceHandle(Option<Arc<dyn Sink>>);

impl TraceHandle {
    /// The zero-overhead handle: `emit` never evaluates its closure.
    pub fn disabled() -> Self {
        TraceHandle(None)
    }

    /// A handle feeding the given sink.
    pub fn new(sink: Arc<dyn Sink>) -> Self {
        TraceHandle(Some(sink))
    }

    /// A handle buffering into a fresh [`MemorySink`]; returns both.
    pub fn memory() -> (Self, Arc<MemorySink>) {
        let sink = Arc::new(MemorySink::new());
        (TraceHandle(Some(sink.clone())), sink)
    }

    /// Whether events will actually be recorded.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// The underlying sink, if enabled. Lets callers wrap the sink (e.g.
    /// the compilation cache tees events into a buffer while they still
    /// reach the original sink unchanged).
    pub fn sink(&self) -> Option<Arc<dyn Sink>> {
        self.0.clone()
    }

    /// Emits the event built by `build` — but only if the handle is
    /// enabled. When disabled, `build` is never called, so constructing
    /// field values costs nothing.
    #[inline]
    pub fn emit(&self, build: impl FnOnce() -> Event) {
        if let Some(sink) = &self.0 {
            sink.emit(build());
        }
    }
}

impl fmt::Debug for TraceHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(if self.is_enabled() {
            "TraceHandle(enabled)"
        } else {
            "TraceHandle(disabled)"
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_events_carry_the_standard_shape() {
        let e = Event::histogram("alloc_size", 3, 96, "5:2 6:1".to_string());
        assert_eq!((e.stage, e.kind), ("prof", "histogram"));
        assert_eq!(e.get("name"), Some(&Value::Str("alloc_size".into())));
        assert_eq!(e.get("count"), Some(&Value::UInt(3)));
        assert_eq!(e.get("sum"), Some(&Value::UInt(96)));
        let json = e.to_json();
        let obj = json::parse_object(&json).expect("round-trips");
        assert_eq!(
            obj["buckets"].as_str(),
            Some("5:2 6:1"),
            "bucket encoding survives JSON: {json}"
        );
    }

    #[test]
    fn disabled_handle_never_builds_the_event() {
        let h = TraceHandle::disabled();
        let mut called = false;
        h.emit(|| {
            called = true;
            Event::new("t", "x")
        });
        assert!(!called, "disabled handle must not evaluate the closure");
        assert!(!h.is_enabled());
    }

    #[test]
    fn memory_sink_buffers_in_order() {
        let (h, sink) = TraceHandle::memory();
        h.emit(|| Event::new("gc", "collection").field("n", 1u64));
        h.emit(|| Event::new("opt", "pass").field("name", "licm"));
        let evs = sink.snapshot();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].stage, "gc");
        assert_eq!(evs[0].get("n"), Some(&Value::UInt(1)));
        assert_eq!(evs[1].get("name"), Some(&Value::Str("licm".into())));
    }

    #[test]
    fn jsonl_sink_writes_one_object_per_line() {
        let buf: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));

        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let h = TraceHandle::new(Arc::new(JsonlSink::new(Box::new(Shared(buf.clone())))));
        h.emit(|| {
            Event::new("gc", "collection")
                .field("pause_ns", 125u64)
                .field("full", true)
        });
        h.emit(|| Event::new("annotate", "wrap").field("rule", "Base::Var"));
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            r#"{"stage":"gc","kind":"collection","pause_ns":125,"full":true}"#
        );
        let parsed = json::parse_object(lines[1]).expect("valid json");
        assert_eq!(
            parsed.get("kind"),
            Some(&json::JsonValue::Str("wrap".into()))
        );
    }

    #[test]
    fn tagged_sinks_merge_in_tag_then_seq_order() {
        // Fill the buffers deliberately out of tag order, as parallel
        // workers would.
        let b10 = Arc::new(TaggedSink::new(1, 0));
        let b01 = Arc::new(TaggedSink::new(0, 1));
        let b00 = Arc::new(TaggedSink::new(0, 0));
        b10.emit(Event::new("t", "c"));
        b01.emit(Event::new("t", "b1"));
        b01.emit(Event::new("t", "b2"));
        b00.emit(Event::new("t", "a"));
        assert_eq!(b01.len(), 2);
        assert!(!b01.is_empty());
        assert_eq!(b10.tag(), (1, 0));
        let (out, sink) = TraceHandle::memory();
        merge_tagged(&[b10.clone(), b01, b00], &out);
        let kinds: Vec<&str> = sink.snapshot().iter().map(|e| e.kind).collect();
        assert_eq!(kinds, ["a", "b1", "b2", "c"]);
        assert!(b10.is_empty(), "merge drains the buffers");
    }

    #[test]
    fn merged_stream_is_byte_identical_to_a_serial_one() {
        // The serial reference: one handle, events in program order.
        let (serial, serial_sink) = TraceHandle::memory();
        for (w, m) in [(0u64, 0u64), (0, 1), (1, 0), (1, 1)] {
            serial.emit(|| Event::new("bench", "cell").field("w", w).field("m", m));
            serial.emit(|| Event::new("gc", "collection").field("w", w).field("m", m));
        }
        // The parallel run: per-cell buffers filled in scrambled order.
        let sinks: Vec<Arc<TaggedSink>> = [(1u64, 1u64), (0, 1), (1, 0), (0, 0)]
            .iter()
            .map(|&(w, m)| {
                let s = Arc::new(TaggedSink::new(w, m));
                s.emit(Event::new("bench", "cell").field("w", w).field("m", m));
                s.emit(Event::new("gc", "collection").field("w", w).field("m", m));
                s
            })
            .collect();
        let (merged, merged_sink) = TraceHandle::memory();
        merge_tagged(&sinks, &merged);
        let serial_jsonl: Vec<String> = serial_sink.snapshot().iter().map(Event::to_json).collect();
        let merged_jsonl: Vec<String> = merged_sink.snapshot().iter().map(Event::to_json).collect();
        assert_eq!(serial_jsonl, merged_jsonl);
    }

    #[test]
    fn event_json_escapes_strings() {
        let e = Event::new("vm", "output").field("text", "a\"b\\c\nd\te");
        let line = e.to_json();
        let parsed = json::parse_object(&line).expect("valid json");
        assert_eq!(
            parsed.get("text"),
            Some(&json::JsonValue::Str("a\"b\\c\nd\te".into()))
        );
    }
}
