//! Reachability, immediate dominators, and retained sizes over a
//! [`Snapshot`]'s stable node ids.
//!
//! The dominator tree is computed with the iterative Cooper–Harvey–
//! Kennedy algorithm ("A Simple, Fast Dominance Algorithm") over a
//! virtual root connected to every root-referenced node: process nodes
//! in reverse postorder, intersecting the candidate dominators of each
//! node's processed predecessors, until a fixed point. On reducible and
//! irreducible graphs alike this converges in a handful of passes, and
//! it needs nothing but two `Vec<u32>`s — no semidominator buckets.
//!
//! Retained size of a node `v` is the total size of the nodes `v`
//! dominates (including itself): exactly the bytes that become
//! unreachable if `v`'s incoming references disappear.

use crate::Snapshot;

/// Sentinel id for the virtual super-root in [`Analysis::idom`].
pub const VIRTUAL_ROOT: u32 = u32::MAX;

/// The derived view of a snapshot: reachability, dominators, retained
/// sizes, and floating-garbage totals.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Analysis {
    /// Per node: reachable from the recorded roots.
    pub reachable: Vec<bool>,
    /// Per node: immediate dominator id, [`VIRTUAL_ROOT`] when the node
    /// is dominated only by the root set itself. Unreachable nodes also
    /// carry [`VIRTUAL_ROOT`]; check [`Analysis::reachable`] first.
    pub idom: Vec<u32>,
    /// Per node: retained bytes (own size + dominated subtree); zero for
    /// unreachable nodes.
    pub retained: Vec<u64>,
    /// Objects reachable from the roots.
    pub reachable_objects: u64,
    /// Bytes (rounded extents) reachable from the roots.
    pub reachable_bytes: u64,
    /// Allocated-but-unreachable objects: floating garbage the sweep has
    /// not yet retired (lazy-sweep debt, unfinished cycles, or simply no
    /// collection since the objects died).
    pub floating_objects: u64,
    /// Bytes of floating garbage.
    pub floating_bytes: u64,
}

/// Per-site aggregation across one snapshot, used by the Prometheus
/// export and the leak diff.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SiteRollup {
    /// The site label, or `(unattributed)` for unlabeled allocations.
    pub site: String,
    /// Allocated objects carrying this site (reachable or floating).
    pub objects: u64,
    /// Shallow bytes: the sum of those objects' rounded sizes.
    pub shallow_bytes: u64,
    /// Retained bytes: the sum of retained sizes of this site's
    /// dominator-tree-topmost reachable nodes (a node is skipped when a
    /// dominator ancestor carries the same site, so nothing is counted
    /// twice).
    pub retained_bytes: u64,
}

/// Computes reachability, dominators, and retained sizes for `snap`.
pub fn analyze(snap: &Snapshot) -> Analysis {
    let n = snap.nodes.len();
    let mut a = Analysis {
        reachable: vec![false; n],
        idom: vec![VIRTUAL_ROOT; n],
        retained: vec![0; n],
        ..Analysis::default()
    };
    // Virtual-root successors: the unique root-referenced nodes,
    // ascending (RootRefs are sorted by node id).
    let mut root_succ: Vec<u32> = snap.roots.iter().map(|r| r.node).collect();
    root_succ.dedup();

    // Reverse postorder over the reachable subgraph from the virtual
    // root, iteratively (node, next-child-index). The virtual root is
    // not numbered; `order` holds real node ids in postorder.
    let mut post: Vec<u32> = Vec::new();
    let mut state: Vec<(u32, usize)> = Vec::new();
    for &r in &root_succ {
        if a.reachable[r as usize] {
            continue;
        }
        a.reachable[r as usize] = true;
        state.push((r, 0));
        while let Some(&mut (v, ref mut ci)) = state.last_mut() {
            let edges = &snap.nodes[v as usize].edges;
            if *ci < edges.len() {
                let t = edges[*ci];
                *ci += 1;
                if !a.reachable[t as usize] {
                    a.reachable[t as usize] = true;
                    state.push((t, 0));
                }
            } else {
                post.push(v);
                state.pop();
            }
        }
    }
    let rpo: Vec<u32> = post.iter().rev().copied().collect();
    // rpo_num: position in reverse postorder; the virtual root is
    // implicitly before everything.
    let mut rpo_num = vec![u32::MAX; n];
    for (i, &v) in rpo.iter().enumerate() {
        rpo_num[v as usize] = i as u32;
    }

    // Predecessor lists over the reachable subgraph, plus the virtual
    // root as predecessor of every root-referenced node.
    let mut preds: Vec<Vec<u32>> = vec![Vec::new(); n];
    for &r in &root_succ {
        preds[r as usize].push(VIRTUAL_ROOT);
    }
    for (v, node) in snap.nodes.iter().enumerate() {
        if !a.reachable[v] {
            continue;
        }
        for &t in &node.edges {
            preds[t as usize].push(v as u32);
        }
    }

    // CHK fixed point. `idom` entries start undefined (we reuse the
    // VIRTUAL_ROOT sentinel plus a `defined` bitmap so "undefined" and
    // "dominated by the root set" stay distinct during iteration).
    let mut defined = vec![false; n];
    let intersect = |idom: &[u32], defined: &[bool], rpo_num: &[u32], mut x: u32, mut y: u32| {
        loop {
            if x == y {
                return x;
            }
            if x == VIRTUAL_ROOT || y == VIRTUAL_ROOT {
                return VIRTUAL_ROOT;
            }
            // Walk the deeper (larger rpo number) side up.
            if rpo_num[x as usize] > rpo_num[y as usize] {
                debug_assert!(defined[x as usize]);
                x = idom[x as usize];
            } else {
                debug_assert!(defined[y as usize]);
                y = idom[y as usize];
            }
        }
    };
    let mut changed = true;
    while changed {
        changed = false;
        for &v in &rpo {
            let mut new_idom: Option<u32> = None;
            for &p in &preds[v as usize] {
                if p != VIRTUAL_ROOT && !defined[p as usize] {
                    continue;
                }
                new_idom = Some(match new_idom {
                    None => p,
                    Some(cur) => intersect(&a.idom, &defined, &rpo_num, p, cur),
                });
            }
            let new_idom = new_idom.expect("reachable node has a processed predecessor");
            if !defined[v as usize] || a.idom[v as usize] != new_idom {
                a.idom[v as usize] = new_idom;
                defined[v as usize] = true;
                changed = true;
            }
        }
    }

    // Retained sizes: seed with own size, then fold each node into its
    // immediate dominator in reverse RPO (children before ancestors —
    // an idom always precedes its dominated nodes in RPO).
    for &v in &rpo {
        a.retained[v as usize] = snap.nodes[v as usize].size;
    }
    for &v in rpo.iter().rev() {
        let d = a.idom[v as usize];
        if d != VIRTUAL_ROOT {
            a.retained[d as usize] += a.retained[v as usize];
        }
    }

    for (v, node) in snap.nodes.iter().enumerate() {
        if a.reachable[v] {
            a.reachable_objects += 1;
            a.reachable_bytes += node.size;
        } else {
            a.floating_objects += 1;
            a.floating_bytes += node.size;
        }
    }
    a
}

/// Label used for nodes whose allocation carried no site.
pub const UNATTRIBUTED: &str = "(unattributed)";

/// Aggregates a snapshot per allocation site, sorted by retained bytes
/// descending, then shallow bytes descending, then label.
pub fn site_rollup(snap: &Snapshot, a: &Analysis) -> Vec<SiteRollup> {
    use std::collections::BTreeMap;
    let mut by_site: BTreeMap<&str, SiteRollup> = BTreeMap::new();
    let label_of = |v: usize| snap.site_of(v as u32).unwrap_or(UNATTRIBUTED);
    for (v, node) in snap.nodes.iter().enumerate() {
        let e = by_site.entry(label_of(v)).or_default();
        e.objects += 1;
        e.shallow_bytes += node.size;
    }
    // Retained: only dominator-topmost nodes of each site contribute, so
    // a site never counts bytes both at a node and at its dominated
    // descendant.
    for (v, _) in snap.nodes.iter().enumerate() {
        if !a.reachable[v] {
            continue;
        }
        let site = label_of(v);
        let mut anc = a.idom[v];
        let mut topmost = true;
        while anc != VIRTUAL_ROOT {
            if label_of(anc as usize) == site {
                topmost = false;
                break;
            }
            anc = a.idom[anc as usize];
        }
        if topmost {
            by_site.get_mut(site).expect("seeded above").retained_bytes += a.retained[v];
        }
    }
    let mut rows: Vec<SiteRollup> = by_site
        .into_iter()
        .map(|(site, mut r)| {
            r.site = site.to_string();
            r
        })
        .collect();
    rows.sort_by(|x, y| {
        y.retained_bytes
            .cmp(&x.retained_bytes)
            .then(y.shallow_bytes.cmp(&x.shallow_bytes))
            .then(x.site.cmp(&y.site))
    });
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Node, RootRef};

    fn node(addr: u64, size: u64, edges: Vec<u32>) -> Node {
        Node {
            addr,
            size,
            class: size as u32,
            large: false,
            young: false,
            marked: false,
            site: None,
            edges,
        }
    }

    fn snap_of(sizes: &[u64], edges: &[(u32, u32)], roots: &[u32]) -> Snapshot {
        let mut nodes: Vec<Node> = sizes
            .iter()
            .enumerate()
            .map(|(i, &s)| node(0x1000_0000 + i as u64 * 64, s, Vec::new()))
            .collect();
        for &(f, t) in edges {
            nodes[f as usize].edges.push(t);
        }
        for n in &mut nodes {
            n.edges.sort_unstable();
            n.edges.dedup();
        }
        let mut rs: Vec<RootRef> = roots
            .iter()
            .map(|&r| RootRef {
                label: "root".into(),
                node: r,
            })
            .collect();
        rs.sort_by(|a, b| a.node.cmp(&b.node));
        Snapshot {
            sites: Vec::new(),
            nodes,
            roots: rs,
        }
    }

    struct Rng(u64);
    impl Rng {
        fn new(seed: u64) -> Self {
            Rng(seed ^ 0x9E37_79B9_7F4A_7C15)
        }
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
        fn below(&mut self, n: u64) -> u64 {
            self.next() % n
        }
    }

    /// Brute-force reachability with node `cut` removed.
    fn reachable_without(snap: &Snapshot, cut: Option<u32>) -> Vec<bool> {
        let mut seen = vec![false; snap.nodes.len()];
        let mut work: Vec<u32> = snap
            .roots
            .iter()
            .map(|r| r.node)
            .filter(|&r| Some(r) != cut)
            .collect();
        while let Some(v) = work.pop() {
            if seen[v as usize] {
                continue;
            }
            seen[v as usize] = true;
            for &t in &snap.nodes[v as usize].edges {
                if Some(t) != cut && !seen[t as usize] {
                    work.push(t);
                }
            }
        }
        seen
    }

    #[test]
    fn chain_retains_its_tail() {
        // root -> 0 -> 1 -> 2, sizes 16/32/64.
        let s = snap_of(&[16, 32, 64], &[(0, 1), (1, 2)], &[0]);
        let a = analyze(&s);
        assert_eq!(a.retained, vec![112, 96, 64]);
        assert_eq!(a.idom, vec![VIRTUAL_ROOT, 0, 1]);
        assert_eq!(a.reachable_bytes, 112);
        assert_eq!(a.floating_objects, 0);
    }

    #[test]
    fn diamond_joins_at_the_root() {
        // root -> 0; 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3: node 3 is dominated
        // by 0, not by either branch.
        let s = snap_of(&[8, 8, 8, 8], &[(0, 1), (0, 2), (1, 3), (2, 3)], &[0]);
        let a = analyze(&s);
        assert_eq!(a.idom[3], 0);
        assert_eq!(a.retained, vec![32, 8, 8, 8]);
    }

    #[test]
    fn multi_rooted_node_is_dominated_by_the_root_set() {
        // Two roots each reach node 2 through different paths.
        let s = snap_of(&[8, 8, 8], &[(0, 2), (1, 2)], &[0, 1]);
        let a = analyze(&s);
        assert_eq!(a.idom[2], VIRTUAL_ROOT);
        assert_eq!(a.retained, vec![8, 8, 8]);
    }

    #[test]
    fn floating_garbage_is_counted_not_retained() {
        let s = snap_of(&[8, 16], &[], &[0]);
        let a = analyze(&s);
        assert!(a.reachable[0] && !a.reachable[1]);
        assert_eq!(a.retained[1], 0);
        assert_eq!((a.floating_objects, a.floating_bytes), (1, 16));
    }

    #[test]
    fn cycles_converge_and_retain_as_a_unit() {
        // root -> 0 -> 1 -> 2 -> 1 (cycle 1<->2 entered at 1).
        let s = snap_of(&[8, 8, 8], &[(0, 1), (1, 2), (2, 1)], &[0]);
        let a = analyze(&s);
        assert_eq!(a.idom, vec![VIRTUAL_ROOT, 0, 1]);
        assert_eq!(a.retained, vec![24, 16, 8]);
    }

    /// The satellite oracle: on randomized graphs, retained(v) must
    /// equal the bytes that drop out of reachability when v is removed —
    /// the defining property of dominator-based retained sizes.
    #[test]
    fn retained_matches_remove_and_recount_oracle() {
        for case in 0..96u64 {
            let mut rng = Rng::new(case.wrapping_mul(0x9E37_79B9) + 1);
            let n = 2 + rng.below(22) as usize;
            let sizes: Vec<u64> = (0..n).map(|_| 8 + rng.below(64) * 8).collect();
            let mut edges: Vec<(u32, u32)> = Vec::new();
            let m = rng.below(3 * n as u64 + 1);
            for _ in 0..m {
                edges.push((rng.below(n as u64) as u32, rng.below(n as u64) as u32));
            }
            let mut roots: Vec<u32> = (0..n as u32).filter(|_| rng.below(4) == 0).collect();
            if roots.is_empty() {
                roots.push(rng.below(n as u64) as u32);
            }
            let s = snap_of(&sizes, &edges, &roots);
            let a = analyze(&s);
            let full = reachable_without(&s, None);
            for v in 0..n {
                assert_eq!(full[v], a.reachable[v], "case {case}: reachability of {v}");
                if !full[v] {
                    continue;
                }
                let without = reachable_without(&s, Some(v as u32));
                let lost: u64 = (0..n)
                    .filter(|&u| full[u] && !without[u])
                    .map(|u| s.nodes[u].size)
                    .sum();
                assert_eq!(
                    a.retained[v], lost,
                    "case {case}: retained of node {v} (n={n}, roots={roots:?})"
                );
            }
            // Totals partition the heap.
            assert_eq!(
                a.reachable_bytes + a.floating_bytes,
                s.bytes(),
                "case {case}"
            );
        }
    }

    #[test]
    fn site_rollup_never_double_counts() {
        // Both nodes of a chain carry the same site: only the top one
        // contributes its retained size.
        let mut s = snap_of(&[16, 32], &[(0, 1)], &[0]);
        s.sites = vec!["malloc@1:1".into()];
        s.nodes[0].site = Some(0);
        s.nodes[1].site = Some(0);
        let a = analyze(&s);
        let rows = site_rollup(&s, &a);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].site, "malloc@1:1");
        assert_eq!(rows[0].objects, 2);
        assert_eq!(rows[0].shallow_bytes, 48);
        assert_eq!(rows[0].retained_bytes, 48);
    }
}
