//! The versioned `snap/1` JSON schema: a deterministic writer and a
//! strict round-trip validator.
//!
//! The writer emits one node per line with fields in a fixed order and
//! no wall-clock data, so two snapshots of identical heaps are
//! byte-identical. The validator re-parses the document with the
//! dependency-free `gctrace::json` grammar parser, checks every
//! structural invariant (ids dense and ascending, addresses strictly
//! increasing, edges sorted/deduplicated/in-bounds, site and root
//! indices in range), then **recomputes** the reachability/dominator
//! analysis and cross-checks the stored per-node `reachable`/`retained`
//! fields and the totals block — a snapshot that validates is one whose
//! derived numbers can be reproduced from its own graph.

use crate::{analyze, escape_json, Analysis, Node, RootRef, Snapshot};
use gctrace::json::{self, JsonValue};
use std::fmt::Write as _;

/// A validated snapshot: its label, graph, and (recomputed) analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedSnap {
    /// The writer-supplied label (`begin`, `end`, ...).
    pub label: String,
    /// The heap graph.
    pub snapshot: Snapshot,
    /// The analysis recomputed during validation.
    pub analysis: Analysis,
}

/// Serializes a snapshot (and its analysis) as `snap/1` JSON.
pub fn to_json(label: &str, snap: &Snapshot, a: &Analysis) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"schema\":\"snap/1\",\"label\":\"{}\",\n\"sites\":[",
        escape_json(label)
    );
    for (i, s) in snap.sites.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\"", escape_json(s));
    }
    out.push_str("],\n\"nodes\":[");
    for (id, n) in snap.nodes.iter().enumerate() {
        out.push_str(if id == 0 { "\n" } else { ",\n" });
        let _ = write!(
            out,
            "{{\"id\":{id},\"addr\":{},\"size\":{},\"class\":{},\"large\":{},\"young\":{},\"marked\":{},\"site\":",
            n.addr, n.size, n.class, n.large, n.young, n.marked
        );
        match n.site {
            Some(s) => {
                let _ = write!(out, "{s}");
            }
            None => out.push_str("null"),
        }
        let _ = write!(
            out,
            ",\"reachable\":{},\"retained\":{},\"edges\":[",
            a.reachable[id], a.retained[id]
        );
        for (i, e) in n.edges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{e}");
        }
        out.push_str("]}");
    }
    out.push_str("\n],\n\"roots\":[");
    for (i, r) in snap.roots.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        let _ = write!(
            out,
            "{{\"label\":\"{}\",\"node\":{}}}",
            escape_json(&r.label),
            r.node
        );
    }
    let _ = write!(
        out,
        "\n],\n\"totals\":{{\"objects\":{},\"bytes\":{},\"reachable_objects\":{},\"reachable_bytes\":{},\"floating_objects\":{},\"floating_bytes\":{}}}}}\n",
        snap.objects(),
        snap.bytes(),
        a.reachable_objects,
        a.reachable_bytes,
        a.floating_objects,
        a.floating_bytes
    );
    out
}

fn u64_field(v: &JsonValue, key: &str, at: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| format!("{at}: missing or non-integral \"{key}\""))
}

fn bool_field(v: &JsonValue, key: &str, at: &str) -> Result<bool, String> {
    match v.get(key) {
        Some(JsonValue::Bool(b)) => Ok(*b),
        _ => Err(format!("{at}: missing or non-boolean \"{key}\"")),
    }
}

fn arr<'j>(v: &'j JsonValue, key: &str) -> Result<&'j [JsonValue], String> {
    match v.get(key) {
        Some(JsonValue::Arr(a)) => Ok(a),
        _ => Err(format!("missing or non-array \"{key}\"")),
    }
}

/// Parses and fully validates a `snap/1` document.
///
/// # Errors
///
/// Returns a description of the first violated invariant: bad JSON,
/// wrong schema version, non-dense ids, unordered addresses or edges,
/// out-of-range indices, or derived fields (`reachable`, `retained`,
/// the totals block) that do not match the graph they ship with.
pub fn validate(text: &str) -> Result<ParsedSnap, String> {
    let doc = json::parse(text)?;
    match doc.get("schema").and_then(JsonValue::as_str) {
        Some("snap/1") => {}
        Some(other) => return Err(format!("unsupported schema \"{other}\"")),
        None => return Err("missing \"schema\"".into()),
    }
    let label = doc
        .get("label")
        .and_then(JsonValue::as_str)
        .ok_or("missing \"label\"")?
        .to_string();
    let sites: Vec<String> = arr(&doc, "sites")?
        .iter()
        .enumerate()
        .map(|(i, s)| {
            s.as_str()
                .map(str::to_string)
                .ok_or_else(|| format!("sites[{i}]: not a string"))
        })
        .collect::<Result<_, _>>()?;

    let raw_nodes = arr(&doc, "nodes")?;
    let mut nodes: Vec<Node> = Vec::with_capacity(raw_nodes.len());
    let mut stored_reach: Vec<bool> = Vec::with_capacity(raw_nodes.len());
    let mut stored_retained: Vec<u64> = Vec::with_capacity(raw_nodes.len());
    for (i, v) in raw_nodes.iter().enumerate() {
        let at = format!("nodes[{i}]");
        if u64_field(v, "id", &at)? != i as u64 {
            return Err(format!("{at}: ids must be dense and ascending"));
        }
        let addr = u64_field(v, "addr", &at)?;
        if let Some(prev) = nodes.last() {
            if addr <= prev.addr {
                return Err(format!("{at}: addresses must be strictly ascending"));
            }
        }
        let site = match v.get("site") {
            Some(JsonValue::Null) => None,
            Some(s) => {
                let s = s
                    .as_u64()
                    .ok_or_else(|| format!("{at}: \"site\" must be null or an index"))?;
                if s as usize >= sites.len() {
                    return Err(format!("{at}: site index {s} out of range"));
                }
                Some(s as u32)
            }
            None => return Err(format!("{at}: missing \"site\"")),
        };
        let edges_raw = match v.get("edges") {
            Some(JsonValue::Arr(a)) => a,
            _ => return Err(format!("{at}: missing or non-array \"edges\"")),
        };
        let mut edges: Vec<u32> = Vec::with_capacity(edges_raw.len());
        for (j, e) in edges_raw.iter().enumerate() {
            let e = e
                .as_u64()
                .ok_or_else(|| format!("{at}: edges[{j}] not an id"))?;
            if e as usize >= raw_nodes.len() {
                return Err(format!("{at}: edge target {e} out of range"));
            }
            if let Some(&prev) = edges.last() {
                if e as u32 <= prev {
                    return Err(format!("{at}: edges must be ascending and deduplicated"));
                }
            }
            edges.push(e as u32);
        }
        stored_reach.push(bool_field(v, "reachable", &at)?);
        stored_retained.push(u64_field(v, "retained", &at)?);
        nodes.push(Node {
            addr,
            size: u64_field(v, "size", &at)?,
            class: u64_field(v, "class", &at)? as u32,
            large: bool_field(v, "large", &at)?,
            young: bool_field(v, "young", &at)?,
            marked: bool_field(v, "marked", &at)?,
            site,
            edges,
        });
    }

    let mut roots: Vec<RootRef> = Vec::new();
    for (i, v) in arr(&doc, "roots")?.iter().enumerate() {
        let at = format!("roots[{i}]");
        let node = u64_field(v, "node", &at)?;
        if node as usize >= nodes.len() {
            return Err(format!("{at}: node {node} out of range"));
        }
        let r = RootRef {
            label: v
                .get("label")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| format!("{at}: missing \"label\""))?
                .to_string(),
            node: node as u32,
        };
        if let Some(prev) = roots.last() {
            if (r.node, &r.label) <= (prev.node, &prev.label) {
                return Err(format!("{at}: roots must be sorted by (node, label)"));
            }
        }
        roots.push(r);
    }

    let snapshot = Snapshot {
        sites,
        nodes,
        roots,
    };
    let analysis = analyze(&snapshot);
    if analysis.reachable != stored_reach {
        return Err("stored reachability disagrees with the graph".into());
    }
    if analysis.retained != stored_retained {
        return Err("stored retained sizes disagree with the graph".into());
    }
    let totals = doc.get("totals").ok_or("missing \"totals\"")?;
    for (key, want) in [
        ("objects", snapshot.objects()),
        ("bytes", snapshot.bytes()),
        ("reachable_objects", analysis.reachable_objects),
        ("reachable_bytes", analysis.reachable_bytes),
        ("floating_objects", analysis.floating_objects),
        ("floating_bytes", analysis.floating_bytes),
    ] {
        let got = u64_field(totals, key, "totals")?;
        if got != want {
            return Err(format!("totals.{key}: stored {got}, graph says {want}"));
        }
    }
    Ok(ParsedSnap {
        label,
        snapshot,
        analysis,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        Snapshot {
            sites: vec!["main;malloc@3:5".into()],
            nodes: vec![
                Node {
                    addr: 0x1000_0000,
                    size: 32,
                    class: 32,
                    large: false,
                    young: true,
                    marked: false,
                    site: Some(0),
                    edges: vec![1],
                },
                Node {
                    addr: 0x1000_0020,
                    size: 32,
                    class: 32,
                    large: false,
                    young: true,
                    marked: true,
                    site: None,
                    edges: vec![],
                },
                Node {
                    addr: 0x1000_1000,
                    size: 8192,
                    class: 0,
                    large: true,
                    young: false,
                    marked: false,
                    site: Some(0),
                    edges: vec![0, 1],
                },
            ],
            roots: vec![
                RootRef {
                    label: "stack".into(),
                    node: 0,
                },
                RootRef {
                    label: "globals".into(),
                    node: 2,
                },
            ],
        }
    }

    #[test]
    fn round_trip_preserves_everything() {
        let snap = sample();
        let a = analyze(&snap);
        let text = to_json("end", &snap, &a);
        let parsed = validate(&text).expect("self-produced snapshot validates");
        assert_eq!(parsed.label, "end");
        assert_eq!(parsed.snapshot, snap);
        assert_eq!(parsed.analysis, a);
        // Serialization is a fixed point: re-serializing the parsed
        // snapshot is byte-identical.
        assert_eq!(to_json("end", &parsed.snapshot, &parsed.analysis), text);
    }

    #[test]
    fn validator_rejects_tampered_retained_sizes() {
        let snap = sample();
        let a = analyze(&snap);
        let text = to_json("end", &snap, &a);
        let tampered = text.replacen("\"retained\":32", "\"retained\":33", 1);
        assert_ne!(tampered, text, "sample must contain the expected field");
        let err = validate(&tampered).expect_err("tampering must be caught");
        assert!(err.contains("retained"), "{err}");
    }

    #[test]
    fn validator_rejects_unordered_edges_and_bad_schema() {
        let snap = sample();
        let a = analyze(&snap);
        let text = to_json("end", &snap, &a);
        let bad = text.replacen("\"edges\":[0,1]", "\"edges\":[1,0]", 1);
        assert!(validate(&bad).is_err());
        let bad = text.replacen("snap/1", "snap/2", 1);
        assert!(validate(&bad).unwrap_err().contains("snap/2"));
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let snap = Snapshot::default();
        let a = analyze(&snap);
        let text = to_json("begin", &snap, &a);
        let parsed = validate(&text).expect("empty snapshot validates");
        assert_eq!(parsed.snapshot, snap);
    }
}
