//! gcsnap: deterministic heap-graph snapshots for the conservative
//! collector — the graph itself, not just aggregate counts.
//!
//! A [`Snapshot`] is one node per allocated heap object (address-ordered
//! stable ids, rounded size, size class, young/old generation, mark bit,
//! and the `malloc@line:col` allocation site the VM tags allocations
//! with) plus one edge per in-bounds pointer word, resolved with exactly
//! the conservative rules the marker uses. On top of the raw graph,
//! [`analyze`] computes reachability from the recorded roots, an
//! immediate-dominator tree (iterative Cooper–Harvey–Kennedy over the
//! stable ids), per-node **retained sizes** (the bytes that would be
//! freed if this node's incoming references vanished), per-site retained
//! roll-ups, and unreachable-but-unswept ("floating garbage")
//! accounting.
//!
//! The [`schema`] module serializes snapshots in the versioned `snap/1`
//! JSON schema and re-validates them with a strict round-trip parser
//! that recomputes the analysis; [`diff`] attributes heap growth between
//! two snapshots to allocation sites. Everything here is deterministic:
//! no wall-clock, no hashing of addresses, no randomized iteration
//! order — two runs of the same program produce byte-identical exports.

use std::sync::{Arc, Mutex};

pub mod diff;
mod dominators;
pub mod schema;

pub use dominators::{analyze, site_rollup, Analysis, SiteRollup, UNATTRIBUTED, VIRTUAL_ROOT};
pub use schema::{to_json, validate, ParsedSnap};

/// One heap object in a snapshot. Its id is its index in
/// [`Snapshot::nodes`]; nodes are emitted in ascending address order, so
/// ids are stable across identical heaps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Node {
    /// Object base address (simulated address space).
    pub addr: u64,
    /// Rounded extent: the slot size for small objects, the page-rounded
    /// size for large ones.
    pub size: u64,
    /// The size class (slot size in bytes) for small objects, `0` for
    /// large (page-spanning) objects.
    pub class: u32,
    /// Whether the object spans whole pages rather than a bitmap slot.
    pub large: bool,
    /// Whether the object's page is still in the young generation.
    pub young: bool,
    /// The object's mark bit at snapshot time (meaningful mid-cycle).
    pub marked: bool,
    /// Index into [`Snapshot::sites`], if the allocation carried a site.
    pub site: Option<u32>,
    /// Outgoing edges as target node ids, ascending and deduplicated.
    /// Self-edges are kept (an object may point into itself).
    pub edges: Vec<u32>,
}

/// One root reference: a conservatively resolved pointer from outside
/// the heap (a root range or a precise root word) to a heap object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RootRef {
    /// Provenance label, e.g. `globals`, `stack`, `reg`.
    pub label: String,
    /// The referenced node id.
    pub node: u32,
}

/// A deterministic point-in-time heap graph.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Interned allocation-site labels, in first-use (node) order.
    pub sites: Vec<String>,
    /// All allocated objects, ascending by address.
    pub nodes: Vec<Node>,
    /// Root references, sorted by `(node, label)` and deduplicated.
    pub roots: Vec<RootRef>,
}

impl Snapshot {
    /// Total allocated objects (live or floating).
    pub fn objects(&self) -> u64 {
        self.nodes.len() as u64
    }

    /// Total allocated bytes (rounded extents).
    pub fn bytes(&self) -> u64 {
        self.nodes.iter().map(|n| n.size).sum()
    }

    /// The site label of a node, if any.
    pub fn site_of(&self, node: u32) -> Option<&str> {
        self.nodes[node as usize]
            .site
            .map(|s| self.sites[s as usize].as_str())
    }
}

/// The shared store behind an enabled [`SnapHandle`].
type SnapStore = Arc<Mutex<Vec<(String, Snapshot)>>>;

/// A cheap, cloneable handle collecting labeled snapshots, mirroring
/// `gcprof::ProfHandle`: the disabled handle costs one branch and never
/// evaluates the snapshot closure.
#[derive(Debug, Clone, Default)]
pub struct SnapHandle(Option<SnapStore>);

impl SnapHandle {
    /// A handle that drops everything (the default).
    pub fn disabled() -> Self {
        SnapHandle(None)
    }

    /// A handle that collects labeled snapshots.
    pub fn enabled() -> Self {
        SnapHandle(Some(Arc::default()))
    }

    /// Whether snapshots are being collected.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Records a labeled snapshot; `f` is only evaluated when enabled.
    pub fn record(&self, label: &str, f: impl FnOnce() -> Snapshot) {
        if let Some(cell) = &self.0 {
            let snap = f();
            cell.lock()
                .expect("snap store poisoned")
                .push((label.to_string(), snap));
        }
    }

    /// The snapshots recorded so far (label, graph), in record order;
    /// `None` when disabled.
    pub fn snapshots(&self) -> Option<Vec<(String, Snapshot)>> {
        self.0
            .as_ref()
            .map(|cell| cell.lock().expect("snap store poisoned").clone())
    }
}

/// Escapes a string for inclusion in a JSON document (used by the
/// schema writer for site and root labels).
pub(crate) fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_never_evaluates() {
        let h = SnapHandle::disabled();
        h.record("begin", || panic!("must not run"));
        assert!(!h.is_enabled());
        assert!(h.snapshots().is_none());
    }

    #[test]
    fn enabled_handle_collects_in_order() {
        let h = SnapHandle::enabled();
        h.record("begin", Snapshot::default);
        h.record("end", Snapshot::default);
        let got = h.snapshots().expect("enabled");
        assert_eq!(
            got.iter().map(|(l, _)| l.as_str()).collect::<Vec<_>>(),
            ["begin", "end"]
        );
    }

    #[test]
    fn escape_covers_controls_and_quotes() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }
}
