//! Leak-diff attribution: given two validated snapshots of the same
//! program (typically `begin` and `end`), attribute heap growth to
//! allocation sites by comparing per-site retained sizes, and gate on a
//! byte budget so a CI job can fail when a schedule starts leaking.

use crate::dominators::site_rollup;
use crate::ParsedSnap;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One site's before/after aggregates.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SiteDelta {
    /// The site label (or `(unattributed)`).
    pub site: String,
    /// Allocated objects carrying the site, before.
    pub objects_a: u64,
    /// Allocated objects carrying the site, after.
    pub objects_b: u64,
    /// Shallow bytes, before.
    pub shallow_a: u64,
    /// Shallow bytes, after.
    pub shallow_b: u64,
    /// Retained bytes, before.
    pub retained_a: u64,
    /// Retained bytes, after.
    pub retained_b: u64,
}

impl SiteDelta {
    /// Retained growth (after − before), signed.
    pub fn retained_delta(&self) -> i64 {
        self.retained_b as i64 - self.retained_a as i64
    }
}

/// The diff of two snapshots: per-site rows plus heap-level growth.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Diff {
    /// Per-site rows, sorted by retained growth descending, then label.
    pub rows: Vec<SiteDelta>,
    /// Reachable-byte growth of the whole heap (after − before); this is
    /// the number the budget gate compares.
    pub reachable_growth: i64,
    /// Floating-garbage byte growth (after − before).
    pub floating_growth: i64,
}

impl Diff {
    /// Whether reachable growth exceeds the byte budget.
    pub fn over_budget(&self, budget_bytes: u64) -> bool {
        self.reachable_growth > budget_bytes as i64
    }

    /// The row with the largest retained growth, if any grew.
    pub fn top_growth(&self) -> Option<&SiteDelta> {
        self.rows.first().filter(|r| r.retained_delta() > 0)
    }
}

/// Diffs two validated snapshots per allocation site.
pub fn diff(a: &ParsedSnap, b: &ParsedSnap) -> Diff {
    let mut rows: BTreeMap<String, SiteDelta> = BTreeMap::new();
    for r in site_rollup(&a.snapshot, &a.analysis) {
        let e = rows.entry(r.site.clone()).or_default();
        e.site = r.site;
        (e.objects_a, e.shallow_a, e.retained_a) = (r.objects, r.shallow_bytes, r.retained_bytes);
    }
    for r in site_rollup(&b.snapshot, &b.analysis) {
        let e = rows.entry(r.site.clone()).or_default();
        e.site = r.site;
        (e.objects_b, e.shallow_b, e.retained_b) = (r.objects, r.shallow_bytes, r.retained_bytes);
    }
    let mut rows: Vec<SiteDelta> = rows.into_values().collect();
    rows.sort_by(|x, y| {
        y.retained_delta()
            .cmp(&x.retained_delta())
            .then_with(|| x.site.cmp(&y.site))
    });
    Diff {
        rows,
        reachable_growth: b.analysis.reachable_bytes as i64 - a.analysis.reachable_bytes as i64,
        floating_growth: b.analysis.floating_bytes as i64 - a.analysis.floating_bytes as i64,
    }
}

fn signed(v: i64) -> String {
    if v > 0 {
        format!("+{v}")
    } else {
        v.to_string()
    }
}

/// Renders the diff as an aligned table with a totals footer.
pub fn render_table(d: &Diff, a_label: &str, b_label: &str) -> String {
    let header = [
        "site".to_string(),
        "objects".to_string(),
        "shallow B".to_string(),
        "retained B".to_string(),
        "Δretained".to_string(),
    ];
    let mut body: Vec<[String; 5]> = Vec::new();
    for r in &d.rows {
        body.push([
            r.site.clone(),
            format!("{} -> {}", r.objects_a, r.objects_b),
            format!("{} -> {}", r.shallow_a, r.shallow_b),
            format!("{} -> {}", r.retained_a, r.retained_b),
            signed(r.retained_delta()),
        ]);
    }
    let mut w = [0usize; 5];
    for row in std::iter::once(&header).chain(body.iter()) {
        for (i, cell) in row.iter().enumerate() {
            w[i] = w[i].max(cell.chars().count());
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "snapshot diff: {a_label} -> {b_label}");
    for row in std::iter::once(&header).chain(body.iter()) {
        let mut line = String::new();
        for (i, cell) in row.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            let pad = w[i] - cell.chars().count();
            if i == 0 {
                // Left-align the label column, right-align the numbers.
                line.push_str(cell);
                line.push_str(&" ".repeat(pad));
            } else {
                line.push_str(&" ".repeat(pad));
                line.push_str(cell);
            }
        }
        let _ = writeln!(out, "{}", line.trim_end());
    }
    let _ = writeln!(
        out,
        "reachable growth: {} bytes; floating-garbage growth: {} bytes",
        signed(d.reachable_growth),
        signed(d.floating_growth)
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{analyze, to_json, validate, Node, RootRef, Snapshot};

    fn snap(sizes_and_sites: &[(u64, Option<u32>)], roots: &[u32]) -> ParsedSnap {
        let nodes: Vec<Node> = sizes_and_sites
            .iter()
            .enumerate()
            .map(|(i, &(size, site))| Node {
                addr: 0x1000_0000 + i as u64 * 64,
                size,
                class: size as u32,
                large: false,
                young: false,
                marked: false,
                site,
                edges: Vec::new(),
            })
            .collect();
        let snapshot = Snapshot {
            sites: vec!["steady@1:1".into(), "leak@2:2".into()],
            nodes,
            roots: roots
                .iter()
                .map(|&r| RootRef {
                    label: "stack".into(),
                    node: r,
                })
                .collect(),
        };
        let analysis = analyze(&snapshot);
        // Route through the schema so the diff operates on exactly what
        // the CLI would read back from disk.
        validate(&to_json("t", &snapshot, &analysis)).expect("validates")
    }

    #[test]
    fn self_diff_is_all_zero_and_under_any_budget() {
        let s = snap(&[(32, Some(0)), (64, Some(1))], &[0, 1]);
        let d = diff(&s, &s);
        assert_eq!(d.reachable_growth, 0);
        assert_eq!(d.floating_growth, 0);
        assert!(!d.over_budget(0));
        assert!(d.top_growth().is_none());
        assert!(d.rows.iter().all(|r| r.retained_delta() == 0));
    }

    #[test]
    fn growth_is_attributed_to_the_growing_site() {
        let before = snap(&[(32, Some(0)), (64, Some(1))], &[0, 1]);
        let after = snap(
            &[(32, Some(0)), (64, Some(1)), (64, Some(1)), (64, Some(1))],
            &[0, 1, 2, 3],
        );
        let d = diff(&before, &after);
        assert_eq!(d.reachable_growth, 128);
        assert!(d.over_budget(100));
        assert!(!d.over_budget(128));
        let top = d.top_growth().expect("something grew");
        assert_eq!(top.site, "leak@2:2");
        assert_eq!(top.retained_delta(), 128);
        let table = render_table(&d, "begin", "end");
        assert!(table.contains("leak@2:2"), "{table}");
        assert!(table.contains("+128"), "{table}");
    }
}
